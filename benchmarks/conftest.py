"""Shared experiment fixtures for the reproduction benchmarks.

The heavy measurement campaigns are session-scoped so several
table/figure benchmarks can share one run of each experiment; every
fixture is fully deterministic (seeded machines), so sharing does not
couple the benchmarks' outcomes.
"""

from __future__ import annotations

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.data.calibration import CHIP_NAMES, chip_calibration
from repro.hardware import XGene2Machine
from repro.prediction import PredictionPipeline
from repro.workloads import all_programs, figure_benchmarks

#: Campaign repetitions for the massive Figure-4 grid.  The paper runs
#: 10; 3 keeps the grid regeneration under a minute while preserving
#: the highest-of-campaigns semantics (EXPERIMENTS.md discusses the
#: residual +/-5 mV cell noise this leaves).
GRID_CAMPAIGNS = 3


def _fresh_framework(chip: str, campaigns: int, seed: int = 2017,
                     start_mv: int = 930):
    machine = XGene2Machine(chip, seed=seed)
    machine.power_on()
    return CharacterizationFramework(
        machine, FrameworkConfig(start_mv=start_mv, campaigns=campaigns)
    )


@pytest.fixture(scope="session")
def figure3_measurements():
    """Most-robust-core characterization: 3 chips x 10 benchmarks,
    the paper's 10 campaign repetitions."""
    results = {}
    for chip in CHIP_NAMES:
        framework = _fresh_framework(chip, campaigns=10)
        core = chip_calibration(chip).most_robust_core()
        for bench in figure_benchmarks():
            results[(chip, bench.name)] = framework.characterize(bench, core)
    return results


@pytest.fixture(scope="session")
def figure4_grid():
    """The full grid: 3 chips x 10 benchmarks x 8 cores."""
    results = {}
    for chip in CHIP_NAMES:
        framework = _fresh_framework(chip, campaigns=GRID_CAMPAIGNS)
        for bench in figure_benchmarks():
            for core in range(8):
                results[(chip, bench.name, core)] = framework.characterize(
                    bench, core)
    return results


@pytest.fixture(scope="session")
def figure5_results():
    """bwaves on all eight TTT cores, 10 campaigns (the Figure-5 map)."""
    framework = _fresh_framework("TTT", campaigns=10, seed=42)
    from repro.workloads import get_benchmark
    bench = get_benchmark("bwaves")
    return {core: framework.characterize(bench, core) for core in range(8)}


@pytest.fixture(scope="session")
def prediction_pipeline():
    """The Section-4 pipeline over all 40 programs on one TTT machine."""
    machine = XGene2Machine("TTT", seed=2017)
    machine.power_on()
    return PredictionPipeline(machine)


@pytest.fixture(scope="session")
def study_programs():
    return all_programs()
