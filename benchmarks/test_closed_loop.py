"""Closed-loop validation: harvested margins save energy while
preserving correctness -- and what breaks when they are exceeded.

The quantitative end-to-end version of the paper's thesis, with the
margin sweep as the energy-vs-risk frontier.
"""

import pytest

from repro.energy.tradeoffs import FIGURE9_WORKLOAD
from repro.scheduling import EnergyEfficiencySimulation
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def simulation():
    workload = [get_benchmark(name) for name in FIGURE9_WORKLOAD]
    return EnergyEfficiencySimulation(workload, seed=7)


def test_closed_loop_policies(benchmark, simulation):
    reports = benchmark.pedantic(
        lambda: simulation.compare_policies(repeats=2),
        rounds=1, iterations=1,
    )
    static = reports["static_vmin"]
    oracle = reports["oracle"]
    # Real, violation-free savings at a 10 mV margin.
    assert static.correct and static.crash_recoveries == 0
    assert 0.08 < static.saving_fraction < 0.20
    assert oracle.saving_fraction >= static.saving_fraction
    benchmark.extra_info["static_vmin"] = (
        f"{static.voltage_mv}mV, {100 * static.saving_fraction:.1f}% saving, "
        f"0 violations"
    )
    benchmark.extra_info["oracle"] = (
        f"{oracle.voltage_mv}mV, {100 * oracle.saving_fraction:.1f}% saving"
    )


def test_closed_loop_margin_frontier(benchmark, simulation):
    margins = [20, 10, 0, -10, -25]
    sweep = benchmark.pedantic(
        lambda: simulation.margin_sweep(margins, repeats=2),
        rounds=1, iterations=1,
    )
    by_margin = dict(zip(margins, sweep))
    # Clean region: monotone savings down to the measured Vmin.
    assert by_margin[20].correct and by_margin[0].correct
    assert by_margin[0].saving_fraction > by_margin[20].saving_fraction
    # Beyond it: violations, then net-negative energy.
    assert (by_margin[-10].sdc_runs + by_margin[-10].crash_recoveries) > 0
    assert by_margin[-25].saving_fraction < by_margin[0].saving_fraction
    benchmark.extra_info["frontier"] = {
        f"{m:+d}mV": f"{100 * r.saving_fraction:.1f}% "
                     f"(sdc={r.sdc_runs}, sc={r.crash_recoveries})"
        for m, r in by_margin.items()
    }
