"""Design-enhancement ablations (Section 6) and the scheduling study
(Section 5) as measurable experiments."""

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.effects import EffectType
from repro.energy import finer_domains_ablation
from repro.energy.tradeoffs import FIGURE9_WORKLOAD
from repro.faults.manifestation import ProtectionConfig
from repro.hardware import XGene2Machine
from repro.scheduling import DvfsPolicy, SeverityAwareScheduler
from repro.workloads import get_benchmark


def _effect_mass(protection):
    machine = XGene2Machine("TTT", seed=13, protection=protection)
    machine.power_on()
    framework = CharacterizationFramework(
        machine, FrameworkConfig(start_mv=920, campaigns=3)
    )
    result = framework.characterize(get_benchmark("bwaves"), core=0)
    pooled = result.pooled_counts()
    return {
        effect: sum(c[effect] for c in pooled.values())
        for effect in (EffectType.SDC, EffectType.CE, EffectType.UE)
    }


def test_ablation_stronger_ecc(benchmark):
    """Section 6, "stronger error protection": DEC-TED plus wider
    coverage converts SDC/UE mass into corrected errors."""
    def run():
        stock = _effect_mass(ProtectionConfig())
        strong = _effect_mass(ProtectionConfig(ecc="dected", coverage=0.7))
        return stock, strong

    stock, strong = benchmark.pedantic(run, rounds=1, iterations=1)
    assert strong[EffectType.SDC] < 0.6 * stock[EffectType.SDC]
    assert strong[EffectType.CE] > stock[EffectType.CE]
    assert strong[EffectType.UE] <= stock[EffectType.UE]
    benchmark.extra_info["stock"] = {e.value: n for e, n in stock.items()}
    benchmark.extra_info["enhanced"] = {e.value: n for e, n in strong.items()}
    benchmark.extra_info["paper"] = (
        "SDC behaviour transformed to corrected-errors behaviour [9,10]"
    )


def test_ablation_finer_voltage_domains(benchmark):
    """Section 6, "finer-grained voltage domains": per-PMD planes
    recover the savings the weakest core otherwise blocks."""
    ablation = benchmark(finer_domains_ablation)
    assert ablation.per_pmd_power_rel < ablation.shared_plane_power_rel
    extra_pct = round(100 * ablation.extra_saving_fraction, 1)
    assert extra_pct >= 2.0
    benchmark.extra_info["shared_plane_power_pct"] = round(
        100 * ablation.shared_plane_power_rel, 1)
    benchmark.extra_info["per_pmd_power_pct"] = round(
        100 * ablation.per_pmd_power_rel, 1)
    benchmark.extra_info["extra_saving_pct"] = extra_pct


def test_ablation_task_scheduling(benchmark):
    """Section 5: variation-aware placement beats arrival order."""
    workload = [get_benchmark(name) for name in FIGURE9_WORKLOAD]
    def run():
        scheduler = SeverityAwareScheduler("TTT")
        return scheduler.compare_policies(workload)
    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    naive = comparison["naive"]
    robust = comparison["robust_first"]
    assert robust.chip_vmin_mv < naive.chip_vmin_mv
    benchmark.extra_info["naive"] = (
        f"{naive.chip_vmin_mv}mV, {100 * naive.saving_fraction:.1f}% saving")
    benchmark.extra_info["robust_first"] = (
        f"{robust.chip_vmin_mv}mV, {100 * robust.saving_fraction:.1f}% saving")


def test_ablation_dvfs_baseline(benchmark):
    """Harvested guardbands vs a conventional DVFS table: the harvested
    voltage beats the vendor OPP at every shared frequency."""
    def run():
        policy = DvfsPolicy()
        return {
            2400: policy.undervolting_advantage(2400, harvested_vmin_mv=915),
            1200: policy.undervolting_advantage(1200, harvested_vmin_mv=760),
        }
    advantages = benchmark.pedantic(run, rounds=1, iterations=1)
    assert advantages[2400] > 0.10
    assert advantages[1200] > 0.0
    benchmark.extra_info["advantage_at_2400"] = round(advantages[2400], 3)
    benchmark.extra_info["advantage_at_1200"] = round(advantages[1200], 3)
