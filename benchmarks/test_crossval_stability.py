"""Split-stability of the Section-4.3 conclusions.

The paper evaluates each model on a single 80/20 split; k-fold
cross-validation shows which of its conclusions are split-robust:

* severity prediction beats the naive baseline in *every* fold;
* the Vmin model's R-squared swings wildly between folds (the honest
  version of "R-squared close to 0"), while its RMSE stays at a few
  regulator steps.
"""

import numpy as np
import pytest

from repro.prediction import kfold_cross_validate
from repro.prediction.features import VOLTAGE_FEATURE
from repro.prediction.rfe import RecursiveFeatureElimination


def _reduced(dataset, n_features=5, forced=()):
    """RFE down to the study's feature count before CV (the CV then
    measures the *selected* model, as the paper's flow would)."""
    dataset, _dropped = dataset.drop_constant_features()
    eliminable = [n for n in dataset.feature_names if n not in forced]
    sub = dataset.select_features(eliminable)
    result = RecursiveFeatureElimination(n_features=n_features, step=8).fit(
        sub.x, sub.y, sub.feature_names)
    return dataset.select_features(tuple(result.selected) + tuple(forced))


def test_crossval_stability(benchmark, prediction_pipeline, study_programs):
    def run():
        vmin_ds = _reduced(
            prediction_pipeline.build_vmin_dataset(study_programs, core=0))
        severity_ds = _reduced(
            prediction_pipeline.build_severity_dataset(
                study_programs, core=0, max_samples=100),
            forced=(VOLTAGE_FEATURE,))
        return (
            kfold_cross_validate(vmin_ds, k=5, seed=1),
            kfold_cross_validate(severity_ds, k=5, seed=1),
            float(np.std(severity_ds.y)),
        )

    vmin_cv, severity_cv, severity_sigma = benchmark.pedantic(
        run, rounds=1, iterations=1)

    # Severity: robust across folds -- every fold clearly beats the
    # target's own sigma (what the naive baseline would score).
    assert all(r < severity_sigma * 0.75 for r in severity_cv.fold_rmse)
    assert severity_cv.mean_r2 > 0.6

    # Vmin: small absolute error but unstable explanatory power.
    assert vmin_cv.mean_rmse < 12.0
    r2_low, r2_high = vmin_cv.r2_range
    assert r2_high - r2_low > 0.3  # fold-to-fold swing
    assert vmin_cv.mean_r2 < severity_cv.mean_r2

    benchmark.extra_info["vmin_cv"] = (
        f"RMSE {vmin_cv.mean_rmse:.1f}+/-{vmin_cv.std_rmse:.1f} mV, "
        f"R2 folds [{r2_low:.2f}, {r2_high:.2f}]"
    )
    benchmark.extra_info["severity_cv"] = (
        f"RMSE {severity_cv.mean_rmse:.2f}+/-{severity_cv.std_rmse:.2f}, "
        f"mean R2 {severity_cv.mean_r2:.2f}"
    )
    benchmark.extra_info["paper"] = (
        "single-split results: Vmin R2 ~ 0; severity R2 ~ 0.9"
    )
