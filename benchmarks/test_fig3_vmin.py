"""Figure 3: Vmin at 2.4 GHz, most robust core, 10 benchmarks x 3 chips.

Measured with the full framework (10 campaign repetitions per cell, as
in the paper) and compared against the digitised anchors.  The run-level
non-determinism leaves a small chance of a +/-1-step deviation per cell
-- the same reason the paper reports the highest of ten campaigns.
"""

import pytest

from repro.analysis.figures import figure3_vmin_series
from repro.data.calibration import CHIP_NAMES, chip_calibration
from repro.units import PMD_NOMINAL_MV
from repro.workloads import figure_benchmarks


def test_figure3_vmin(benchmark, figure3_measurements):
    def regenerate():
        return figure3_vmin_series(measured=figure3_measurements)

    series = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    exact = 0
    total = 0
    for chip in CHIP_NAMES:
        calibration = chip_calibration(chip)
        core = calibration.most_robust_core()
        for bench in figure_benchmarks():
            anchor = calibration.vmin_mv(core, bench.stress)
            measured = series[chip][bench.name]
            total += 1
            if measured == anchor:
                exact += 1
            assert abs(measured - anchor) <= 5, (chip, bench.name)

    # Published ranges: TTT 860-885, TFF 870-885, TSS 870-900 mV.
    for chip, (low, high) in {
        "TTT": (860, 885), "TFF": (870, 885), "TSS": (870, 900),
    }.items():
        values = list(series[chip].values())
        assert min(values) >= low - 5 and max(values) <= high + 5, chip

    # Guardband claims: >= 18.4 % (TTT/TFF), 15.7 % (TSS) energy saving
    # even for the most demanding benchmark.
    for chip, claimed in {"TTT": 0.184, "TFF": 0.184, "TSS": 0.157}.items():
        worst = max(series[chip].values())
        saving = 1 - (worst / PMD_NOMINAL_MV) ** 2
        assert saving >= claimed - 0.01, chip

    # Workload ordering identical across chips (Section 3.2), checked
    # for pairs whose gap exceeds the +/-5 mV per-cell measurement
    # noise of the highest-of-campaigns statistic.
    names = [b.name for b in figure_benchmarks()]
    for a, b in [("TTT", "TFF"), ("TTT", "TSS")]:
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                da = series[a][names[i]] - series[a][names[j]]
                db = series[b][names[i]] - series[b][names[j]]
                if abs(da) > 5 and abs(db) > 5:
                    assert (da > 0) == (db > 0), (names[i], names[j])

    benchmark.extra_info["cells_exact"] = f"{exact}/{total}"
    benchmark.extra_info["paper"] = "TTT 860-885, TFF 870-885, TSS 870-900 mV"
