"""Figure 9 and the headline savings numbers (exact reproduction)."""

import pytest

from repro.energy import figure9_ladder, headline_savings


def test_figure9_ladder(benchmark):
    ladder = benchmark(figure9_ladder)
    table = [(p.chip_voltage_mv, round(100 * p.performance_rel, 1),
              round(100 * p.power_rel, 1)) for p in ladder]
    assert table == [
        (980, 100.0, 100.0),
        (915, 100.0, 87.2),
        (900, 87.5, 73.8),
        (885, 75.0, 61.2),
        (875, 62.5, 49.8),
        (760, 50.0, 30.1),
    ]
    benchmark.extra_info["measured"] = table
    benchmark.extra_info["paper"] = (
        "(915,100,87.2) (900,87.5,73.8) (885,75,61.2) (875,62.5,49.8); "
        "prose gives 30.1% at 760mV, the figure 37.6%"
    )


def test_figure9_clock_tree_variant(benchmark):
    ladder = benchmark.pedantic(
        lambda: figure9_ladder(clock_tree_fraction=0.25),
        rounds=1, iterations=1,
    )
    # The figure's divergent 760 mV point.
    assert round(100 * ladder[-1].power_rel, 1) == 37.6
    benchmark.extra_info["measured_760mV_power_pct"] = 37.6


def test_headline_savings(benchmark):
    savings = benchmark(headline_savings)
    table = savings.as_percent()
    assert table == {
        "robust_core_full_speed_pct": 19.4,
        "chip_wide_full_speed_pct": 12.8,
        "two_pmds_slowed_pct": 38.8,
        "all_slowed_power_pct": 69.9,
        "all_slowed_performance_loss_pct": 50.0,
    }
    benchmark.extra_info["measured"] = table
    benchmark.extra_info["paper"] = "19.4 / 12.8 / 38.8 / 69.9 %"
