"""Performance benchmarks of the simulator itself.

Not a paper figure -- these track the cost of the two inner loops every
reproduction experiment amortises: one characterization run through the
full fault path, and one 101-event PMU profile.
"""

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.hardware import XGene2Machine
from repro.workloads import get_benchmark


@pytest.fixture()
def running_machine():
    machine = XGene2Machine("TTT", seed=99)
    machine.power_on()
    return machine


def test_single_run_throughput(benchmark, running_machine):
    """One characterization run in the unsafe region (fault sampling,
    cache/ECC path, EDAC reporting)."""
    bench = get_benchmark("bwaves")
    running_machine.clocks.park_all_except([0])
    running_machine.slimpro.set_pmd_voltage_mv(895)

    def one_run():
        if running_machine.state.value != "running":
            running_machine.press_reset()
            running_machine.clocks.park_all_except([0])
            running_machine.slimpro.set_pmd_voltage_mv(895)
        return running_machine.run_program(bench, core=0)

    outcome = benchmark(one_run)
    assert outcome.voltage_mv in (895, 980)


def test_profile_throughput(benchmark, running_machine):
    """One full 101-event PMU profile."""
    bench = get_benchmark("gcc")
    snapshot = benchmark(
        lambda: running_machine.profile_program(bench, core=0))
    assert len(snapshot) == 101


def test_campaign_throughput(benchmark):
    """A complete single campaign (sweep + watchdog recoveries)."""
    def campaign():
        machine = XGene2Machine("TTT", seed=55)
        machine.power_on()
        framework = CharacterizationFramework(
            machine, FrameworkConfig(start_mv=920, campaigns=1)
        )
        return framework.run_campaign(get_benchmark("mcf"), core=0)

    result = benchmark.pedantic(campaign, rounds=3, iterations=1)
    assert result.vmin_mv > 0
