"""Performance benchmarks of the simulator itself.

Not a paper figure -- these track the cost of the inner loops every
reproduction experiment amortises: one characterization run through the
full fault path, one 101-event PMU profile, one full campaign on the
vectorized batch kernel (gated against the scalar reference measured in
the same session), and a multi-benchmark grid sweep.

Campaign timings run with the garbage collector disabled: GC pauses are
allocation-proportional and would otherwise dominate the batch path's
variance, hiding regressions the thresholds are meant to catch.
"""

import gc
import time

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.hardware import XGene2Machine
from repro.workloads import get_benchmark

#: Minimum batch-kernel speedup over the scalar path (the PR's
#: acceptance floor; measured headroom is ~11x).
MIN_KERNEL_SPEEDUP = 10.0


@pytest.fixture()
def running_machine():
    machine = XGene2Machine("TTT", seed=99)
    machine.power_on()
    return machine


def test_single_run_throughput(benchmark, running_machine):
    """One characterization run in the unsafe region (fault sampling,
    cache/ECC path, EDAC reporting)."""
    bench = get_benchmark("bwaves")
    running_machine.clocks.park_all_except([0])
    running_machine.slimpro.set_pmd_voltage_mv(895)

    def one_run():
        if running_machine.state.value != "running":
            running_machine.press_reset()
            running_machine.clocks.park_all_except([0])
            running_machine.slimpro.set_pmd_voltage_mv(895)
        return running_machine.run_program(bench, core=0)

    outcome = benchmark(one_run)
    assert outcome.voltage_mv in (895, 980)


def test_profile_throughput(benchmark, running_machine):
    """One full 101-event PMU profile."""
    bench = get_benchmark("gcc")
    snapshot = benchmark(
        lambda: running_machine.profile_program(bench, core=0))
    assert len(snapshot) == 101


def _campaign_framework(use_kernel):
    """A framework with its kernel cache (or scalar path) warmed."""
    machine = XGene2Machine("TTT", seed=55)
    framework = CharacterizationFramework(
        machine,
        FrameworkConfig(start_mv=920, campaigns=1),
        use_kernel=use_kernel,
    )
    framework.run_campaign(get_benchmark("mcf"), core=0)
    return framework


def _interleaved_best(scalar, batch, bench, rounds=7, max_rounds=31):
    """Best wall time per path, alternating rounds.

    Interleaving means a host load spike lands on both paths instead of
    biasing one; taking each path's minimum then recovers its
    quiet-machine time.  If the minima still sit below the speedup
    floor (a spike spanning the whole initial window), more rounds are
    added -- the extra samples only ever *lower* the per-path minima,
    so this never manufactures a speedup, it just waits out load.
    """
    scalar_best = batch_best = float("inf")
    done = 0
    while True:
        for _ in range(rounds):
            start = time.perf_counter()
            scalar.run_campaign(bench, core=0)
            scalar_best = min(scalar_best, time.perf_counter() - start)
            start = time.perf_counter()
            batch.run_campaign(bench, core=0)
            batch_best = min(batch_best, time.perf_counter() - start)
        done += rounds
        if scalar_best / batch_best >= MIN_KERNEL_SPEEDUP or done >= max_rounds:
            return scalar_best, batch_best
        rounds = 6


def test_campaign_throughput(benchmark):
    """A complete single campaign on the batch kernel.

    The benchmarked artifact is the batch path; the scalar reference is
    timed in the same session and the kernel must hold a
    >=``MIN_KERNEL_SPEEDUP`` advantage over it.
    """
    bench = get_benchmark("mcf")
    scalar = _campaign_framework(use_kernel=False)
    batch = _campaign_framework(use_kernel=True)
    gc.disable()
    try:
        result = benchmark.pedantic(
            lambda: batch.run_campaign(bench, core=0),
            rounds=7,
            iterations=1,
            warmup_rounds=1,
        )
        scalar_best, batch_best = _interleaved_best(scalar, batch, bench)
    finally:
        gc.enable()
    assert result.vmin_mv > 0
    assert batch.last_campaign_path == "batch"
    assert scalar.last_campaign_path == "scalar"
    speedup = scalar_best / batch_best
    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"batch kernel speedup {speedup:.2f}x below the "
        f"{MIN_KERNEL_SPEEDUP:.0f}x floor "
        f"(scalar {scalar_best * 1e3:.2f} ms, batch {batch_best * 1e3:.2f} ms)"
    )


def test_grid_throughput(benchmark):
    """A multi-benchmark x multi-core characterization grid.

    Exercises the kernel cache across (program, core) setups the way
    real sweeps do -- every grid cell compiles at most once.
    """
    machine = XGene2Machine("TTT", seed=55)
    framework = CharacterizationFramework(
        machine, FrameworkConfig(start_mv=915, campaigns=1)
    )
    workloads = [get_benchmark("mcf"), get_benchmark("namd")]
    cores = [0, 3]

    def grid():
        return framework.characterize_many(workloads, cores)

    gc.disable()
    try:
        results = benchmark.pedantic(grid, rounds=3, iterations=1)
    finally:
        gc.enable()
    assert len(results) == len(workloads) * len(cores)
    for result in results.values():
        assert result.highest_vmin_mv > 0
