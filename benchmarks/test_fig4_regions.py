"""Figure 4: safe/unsafe/crash regions for every (chip, benchmark, core).

The full 240-cell grid, measured through the framework, then checked
for every structural property the paper reads off the figure.
"""

import pytest

from repro.analysis.figures import figure4_chip_averages, figure4_region_grid
from repro.data.calibration import CHIP_NAMES, chip_calibration
from repro.workloads import figure_benchmarks


def test_figure4_regions(benchmark, figure4_grid):
    def regenerate():
        return figure4_region_grid(measured=figure4_grid)

    columns = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert len(columns) == 3 * 10 * 8

    by_key = {(c.chip, c.benchmark, c.core): c for c in columns}

    # Every cell within two regulator steps of its anchor, and 95 %
    # within one step (the residual is the expected tail of the
    # highest-of-campaigns statistic: a ~1e-4-per-run event at the
    # first level above the anchor shifts that cell's Vmin by +10 mV).
    off_by_two = []
    within_one_step = 0
    for (chip, bench_name, core), column in by_key.items():
        calibration = chip_calibration(chip)
        bench = next(b for b in figure_benchmarks() if b.name == bench_name)
        anchor = calibration.vmin_mv(core, bench.stress)
        deviation = abs(column.vmin_mv - anchor)
        assert deviation <= 10, (chip, bench_name, core, column.vmin_mv, anchor)
        if deviation <= 5:
            within_one_step += 1
        else:
            off_by_two.append((chip, bench_name, core))
        assert column.crash_mv is not None
        assert column.crash_mv < column.vmin_mv
    assert within_one_step >= 0.95 * len(by_key), off_by_two

    # PMD 2 is the most robust PMD on every chip (Section 3.3).
    for chip in CHIP_NAMES:
        pmd_vmin = {
            pmd: max(
                by_key[(chip, b.name, core)].vmin_mv
                for b in figure_benchmarks()
                for core in (2 * pmd, 2 * pmd + 1)
            )
            for pmd in range(4)
        }
        assert pmd_vmin[2] == min(pmd_vmin.values()), (chip, pmd_vmin)

    # Green/red average lines: TFF < TTT < TSS for Vmin; crash averages
    # stay below Vmin averages ("only small divergences" in the unsafe
    # band across chips).
    averages = figure4_chip_averages(columns)
    assert averages["TFF"][0] < averages["TTT"][0] < averages["TSS"][0]
    unsafe_widths = {
        chip: averages[chip][0] - averages[chip][1] for chip in CHIP_NAMES
    }
    assert max(unsafe_widths.values()) - min(unsafe_widths.values()) < 8.0

    benchmark.extra_info["avg_vmin"] = {
        chip: round(averages[chip][0], 1) for chip in CHIP_NAMES
    }
    benchmark.extra_info["paper"] = (
        "PMD2 most robust on all chips; TFF avg < TTT avg << TSS avg"
    )
