"""Section 3.4: the X-Gene's SDC-before-CE signature and the
component-focused self-tests that explain it."""

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.effects import EffectType
from repro.hardware import XGene2Machine
from repro.workloads import figure_benchmarks
from repro.workloads.selftests import cache_tests, pipeline_tests


def test_sdc_before_lone_ce_for_every_benchmark(benchmark, figure4_grid):
    """"Silent data corruptions appear at higher voltage levels than
    corrected errors alone for any benchmark" (TTT, most sensitive
    core)."""
    def analyse():
        # An effect's onset voltage requires at least two pooled
        # occurrences: a single ~1e-4-probability event far above the
        # onset would otherwise masquerade as the band's edge.
        orderings = {}
        for bench in figure_benchmarks():
            pooled = figure4_grid[("TTT", bench.name, 0)].pooled_counts()
            first_sdc = max(
                (v for v, c in pooled.items() if c[EffectType.SDC] >= 2),
                default=None)
            first_ce = max(
                (v for v, c in pooled.items() if c[EffectType.CE] >= 2),
                default=None)
            orderings[bench.name] = (first_sdc, first_ce)
        return orderings

    orderings = benchmark.pedantic(analyse, rounds=1, iterations=1)
    for name, (first_sdc, first_ce) in orderings.items():
        assert first_sdc is not None, name
        if first_ce is not None:
            assert first_sdc >= first_ce, (name, first_sdc, first_ce)
    benchmark.extra_info["orderings"] = {
        name: f"SDC@{sdc} CE@{ce}" for name, (sdc, ce) in orderings.items()
    }
    benchmark.extra_info["paper"] = "SDCs precede lone CEs on every benchmark"


def test_selftests_localise_the_weakness(benchmark):
    """ALU/FPU stress tests show SDCs at much higher voltages than the
    cache march tests fail at all -- timing paths, not SRAM, limit the
    X-Gene 2."""
    def run():
        machine = XGene2Machine("TTT", seed=31)
        machine.power_on()
        framework = CharacterizationFramework(
            machine, FrameworkConfig(campaigns=3, runs_per_level=5)
        )
        out = {}
        for test in pipeline_tests() + cache_tests():
            out[test.name] = framework.characterize(test, core=0)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    pipeline_vmin = min(
        results[t.name].highest_vmin_mv for t in pipeline_tests())
    cache_crash = max(
        results[t.name].highest_crash_mv for t in cache_tests())
    # The pipeline tests' first SDCs sit above the voltage where the
    # cache tests even begin to misbehave.
    assert pipeline_vmin > cache_crash + 10
    for test in pipeline_tests():
        pooled = results[test.name].pooled_counts()
        assert any(c[EffectType.SDC] > 0 for c in pooled.values()), test.name
    benchmark.extra_info["pipeline_tests_vmin_mv"] = pipeline_vmin
    benchmark.extra_info["cache_tests_crash_mv"] = cache_crash
    benchmark.extra_info["paper"] = (
        "cache tests crash far below the ALU/FPU tests' SDC voltages"
    )
