"""Scaling benchmarks: the parallel engine and the aggregation paths.

Tracks the perf trajectory this PR starts: run with

    PYTHONPATH=src python -m pytest benchmarks/test_framework_throughput.py \
        benchmarks/test_parallel_scaling.py \
        --benchmark-json=BENCH_parallel.json

The aggregation checks demonstrate that ``severity_by_voltage`` no
longer scales quadratically: its cost used to be
O(records x voltages) because every voltage level rescanned the whole
record list; the cached single-pass index makes it O(records).  The
speedup check demonstrates the engine's fan-out on multicore hosts and
is skipped (not weakened) on single-CPU runners.
"""

import os
import time

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.core.campaign import CampaignResult, CharacterizationResult
from repro.core.runs import CharacterizationSetup, RunRecord
from repro.effects import EffectType
from repro.hardware import XGene2Machine
from repro.parallel import MachineSpec, ParallelCampaignEngine
from repro.workloads import get_benchmark

# -- synthetic characterizations for the aggregation benchmarks ----------


def _effects_for(voltage, run):
    if voltage >= 900:
        return {EffectType.NO}
    if voltage >= 850:
        return {EffectType.CE} if run % 2 else {EffectType.SDC}
    return {EffectType.SC}


def make_records(n_levels, runs_per_level, campaign):
    top = 980
    records = []
    for step in range(n_levels):
        voltage = top - 5 * step
        for run in range(1, runs_per_level + 1):
            records.append(RunRecord(
                chip="TTT", benchmark="synth",
                setup=CharacterizationSetup(
                    voltage_mv=voltage, freq_mhz=2400, core=0),
                campaign_index=campaign, run_index=run,
                effects=frozenset(_effects_for(voltage, run)),
                exit_code=0, output_matches=True,
            ))
    return tuple(records)


def make_characterization(n_campaigns=10, n_levels=50, runs_per_level=10):
    campaigns = tuple(
        CampaignResult(chip="TTT", benchmark="synth", core=0, freq_mhz=2400,
                       campaign_index=i,
                       records=make_records(n_levels, runs_per_level, i))
        for i in range(1, n_campaigns + 1)
    )
    return CharacterizationResult(campaigns=campaigns)


def severity_cost_s(n_levels, repeats=5):
    """Best-of-N cost of one cold severity_by_voltage aggregation."""
    record_sets = [
        tuple(
            CampaignResult(chip="TTT", benchmark="synth", core=0,
                           freq_mhz=2400, campaign_index=i,
                           records=make_records(n_levels, 10, i))
            for i in range(1, 11)
        )
        for _ in range(repeats)
    ]
    best = float("inf")
    for campaigns in record_sets:
        result = CharacterizationResult(campaigns=campaigns)
        start = time.perf_counter()
        result.severity_by_voltage()
        best = min(best, time.perf_counter() - start)
    return best


def test_severity_by_voltage_not_quadratic():
    """Doubling the voltage levels must not quadruple the cost.

    The old implementation rescanned every record once per voltage
    (cost ~ records x voltages: 4x when levels double, with runs per
    level fixed); the single-pass index costs ~ records (2x).  3.2x is
    the generous dividing line.
    """
    small = severity_cost_s(n_levels=25)
    large = severity_cost_s(n_levels=50)
    assert large < 3.2 * max(small, 1e-6), (
        f"severity_by_voltage scaled superlinearly: "
        f"{small * 1e6:.0f}us -> {large * 1e6:.0f}us"
    )


def test_severity_by_voltage_10x50x10(benchmark):
    """The acceptance-criteria aggregation: 10 campaigns x 50 levels x
    10 runs, cold cache every iteration."""
    campaigns = make_characterization().campaigns

    def aggregate():
        return CharacterizationResult(campaigns=campaigns).severity_by_voltage()

    severity = benchmark(aggregate)
    assert len(severity) == 50
    assert severity[980] == 0.0 and severity[735] == 16.0


def test_campaign_severity_warm_cache(benchmark):
    """Repeated severity queries on one instance (the daemon pattern)."""
    result = make_characterization()
    result.severity_by_voltage()  # prime
    severity = benchmark(result.severity_by_voltage)
    assert severity[735] == 16.0


# -- engine benchmarks ---------------------------------------------------

GRID_CFG = FrameworkConfig(start_mv=930, campaigns=2, runs_per_level=10)
GRID_BENCHMARKS = ("bwaves", "mcf")
GRID_CORES = (0, 4)


def run_grid(jobs, backend="auto"):
    engine = ParallelCampaignEngine(
        MachineSpec(chip="TTT", seed=2017), GRID_CFG,
        jobs=jobs, backend=backend,
    )
    return engine.run([get_benchmark(b) for b in GRID_BENCHMARKS],
                      list(GRID_CORES))


def test_engine_serial_grid(benchmark):
    """Cost of the reference serial grid (2 benchmarks x 2 cores)."""
    report = benchmark.pedantic(lambda: run_grid(jobs=1), rounds=3,
                                iterations=1)
    assert report.tasks_run == 8


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speedup needs at least 2 CPUs",
)
def test_parallel_speedup_over_serial():
    """jobs=4 over the 2x2 grid must be >= 2x faster than serial."""
    run_grid(jobs=1)  # warm imports/caches outside the timed region

    start = time.perf_counter()
    serial = run_grid(jobs=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_grid(jobs=4, backend="process")
    parallel_s = time.perf_counter() - start

    assert serial.results == parallel.results
    assert parallel_s < serial_s / 2, (
        f"speedup {serial_s / parallel_s:.2f}x < 2x "
        f"(serial {serial_s:.2f}s, parallel {parallel_s:.2f}s)"
    )


def test_characterize_many_parallel_matches_serial_aggregates():
    """End-to-end guard run on every host, CPU count regardless."""
    def fresh():
        machine = XGene2Machine("TTT", seed=2017)
        machine.power_on()
        return CharacterizationFramework(machine, GRID_CFG)

    benchmarks = [get_benchmark(b) for b in GRID_BENCHMARKS]
    serial = fresh().characterize_many(benchmarks, list(GRID_CORES), jobs=1)
    parallel = fresh().characterize_many(benchmarks, list(GRID_CORES), jobs=4)
    assert serial == parallel
    for key in serial:
        assert serial[key].severity_by_voltage() == \
            parallel[key].severity_by_voltage()
