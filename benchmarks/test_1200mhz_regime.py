"""Section 3.2's 1.2 GHz regime, measured end to end.

At 1.2 GHz (clock division) the paper found: every TTT core runs every
program safely at 760 mV, nothing but crashes happens below the safe
Vmin, and the operating point is worth 69.9 % power vs nominal.
"""

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.effects import EffectType
from repro.energy.model import relative_power
from repro.hardware import XGene2Machine
from repro.workloads import get_benchmark


def test_1200mhz_regime(benchmark):
    def run():
        machine = XGene2Machine("TTT", seed=21)
        machine.power_on()
        framework = CharacterizationFramework(
            machine,
            FrameworkConfig(start_mv=790, campaigns=10, freq_mhz=1200),
        )
        results = {}
        for name in ("bwaves", "mcf", "zeusmp"):
            for core in (0, 4):
                results[(name, core)] = framework.characterize(
                    get_benchmark(name), core)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    exact = 0
    for key, result in results.items():
        # Program- and core-independent safe Vmin of 760 mV (one-step
        # sampling tolerance; see the residual-noise note in
        # EXPERIMENTS.md).
        assert abs(result.highest_vmin_mv - 760) <= 5, key
        exact += result.highest_vmin_mv == 760
        # Nothing but crashes below it: no SDC/CE/UE/AC anywhere.
        pooled = result.pooled_counts()
        for effect in (EffectType.SDC, EffectType.CE, EffectType.UE,
                       EffectType.AC):
            assert all(counts[effect] == 0 for counts in pooled.values()), \
                (key, effect)
        assert result.pooled_regions().unsafe_width_mv == 0

    assert exact >= len(results) - 1

    power = relative_power(760, [1200] * 4)
    assert round(100 * (1 - power), 1) == 69.9
    benchmark.extra_info["vmin_mv"] = 760
    benchmark.extra_info["power_saving_pct"] = 69.9
    benchmark.extra_info["paper"] = (
        "all programs safe at 760 mV on every core; only crashes below; "
        "69.9% power saving at 50% performance"
    )
