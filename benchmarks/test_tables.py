"""Regenerate Tables 1-4 (exact-content reproduction)."""

from repro.analysis.tables import (
    render_table,
    table1_prior_work,
    table2_parameters,
    table3_effects,
    table4_weights,
)


def test_table1_prior_work(benchmark):
    headers, rows = benchmark(table1_prior_work)
    text = render_table(headers, rows)
    assert "ARMv8" in text and "This work" in text
    assert len(rows) == 4
    benchmark.extra_info["rows"] = len(rows)


def test_table2_parameters(benchmark):
    headers, rows = benchmark(table2_parameters)
    table = dict(rows)
    expected = {
        "ISA": "ARMv8 (AArch64, AArch32, Thumb)",
        "Pipeline": "64-bit OoO (4-issue)",
        "CPU": "8 cores",
        "Core clock": "2.4 GHz",
        "L1 Instr. cache": "32KB per core (Parity Protected)",
        "L1 Data cache": "32KB per core (Parity Protected)",
        "L2 cache": "256KB per PMD (ECC Protected)",
        "L3 cache": "8MB (ECC Protected)",
        "Technology": "28 nm",
        "Max TDP": "35 W",
    }
    assert table == expected
    benchmark.extra_info["matches_paper"] = True


def test_table3_effects(benchmark):
    _headers, rows = benchmark(table3_effects)
    assert [row[0] for row in rows] == ["NO", "SDC", "CE", "UE", "AC", "SC"]
    descriptions = dict(rows)
    assert "mismatch between the program output" in descriptions["SDC"]
    assert "EDAC" in descriptions["CE"]


def test_table4_weights(benchmark):
    _headers, rows = benchmark(table4_weights)
    assert dict(rows) == {
        "W_SC": "16", "W_AC": "8", "W_SDC": "4",
        "W_UE": "2", "W_CE": "1", "W_NO": "0",
    }
