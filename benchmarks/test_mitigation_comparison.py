"""Hardware-mitigation shoot-out below the safe Vmin.

Three orthogonal mitigations for the SDC band (Sections 4.4 / 6 /
related work [34]):

* stronger ECC + wider coverage -- converts SDCs to corrected errors;
* adaptive clocking -- moves the SDC onset to lower voltages;
* DeCoR-style rollback -- detects and replays corrupted runs.

All three are run at the *same* 15 mV-below-Vmin operating point on
the same seeds; the benchmark records what each buys in correctness.
"""

from collections import Counter

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.effects import EffectType
from repro.faults.manifestation import ProtectionConfig
from repro.hardware import (
    AdaptiveClockingUnit,
    MachineState,
    RollbackUnit,
    XGene2Machine,
)
from repro.workloads import get_benchmark


def _run_band(machine, voltage_mv, runs=80):
    bench = get_benchmark("bwaves")
    machine.clocks.park_all_except([0])
    machine.slimpro.set_pmd_voltage_mv(voltage_mv)
    counts = Counter()
    for _ in range(runs):
        if machine.state is not MachineState.RUNNING:
            machine.press_reset()
            machine.clocks.park_all_except([0])
            machine.slimpro.set_pmd_voltage_mv(voltage_mv)
        outcome = machine.run_program(bench, core=0)
        for effect in outcome.effects:
            counts[effect] += 1
    return counts


def test_mitigation_comparison(benchmark):
    voltage = 895  # 15 mV below bwaves' core-0 Vmin (910)

    def run():
        variants = {
            "stock": XGene2Machine("TTT", seed=6),
            "stronger_ecc": XGene2Machine(
                "TTT", seed=6,
                protection=ProtectionConfig(ecc="dected", coverage=0.8)),
            "adaptive_clock": XGene2Machine(
                "TTT", seed=6,
                adaptive_clock=AdaptiveClockingUnit(recovery_mv=20.0)),
            "rollback": XGene2Machine(
                "TTT", seed=6,
                rollback_unit=RollbackUnit(detection_coverage=0.95)),
        }
        results = {}
        for name, machine in variants.items():
            machine.power_on()
            results[name] = _run_band(machine, voltage)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    stock_sdc = results["stock"][EffectType.SDC]
    assert stock_sdc > 30  # the band really is SDC-dominated

    # Each mitigation slashes SDCs through its own mechanism:
    assert results["stronger_ecc"][EffectType.SDC] < 0.35 * stock_sdc
    assert results["stronger_ecc"][EffectType.CE] > \
        results["stock"][EffectType.CE]
    assert results["adaptive_clock"][EffectType.SDC] < 0.35 * stock_sdc
    assert results["rollback"][EffectType.SDC] < 0.35 * stock_sdc

    benchmark.extra_info["sdc_runs_of_80"] = {
        name: counts[EffectType.SDC] for name, counts in results.items()
    }
    benchmark.extra_info["operating_point"] = f"{voltage} mV (Vmin-15)"


def test_mitigations_extend_the_safe_region(benchmark):
    """Measured safe Vmin with each mitigation armed: adaptive clocking
    genuinely lowers it; rollback lowers the *correctness* floor even
    though crashes still bound the far end."""
    def measure(machine):
        machine.power_on()
        framework = CharacterizationFramework(
            machine, FrameworkConfig(start_mv=930, campaigns=3))
        return framework.characterize(
            get_benchmark("bwaves"), core=0).highest_vmin_mv

    def run():
        return {
            "stock": measure(XGene2Machine("TTT", seed=8)),
            "adaptive_clock": measure(XGene2Machine(
                "TTT", seed=8,
                adaptive_clock=AdaptiveClockingUnit(recovery_mv=20.0))),
            "rollback": measure(XGene2Machine(
                "TTT", seed=8,
                rollback_unit=RollbackUnit(detection_coverage=1.0))),
        }

    vmins = benchmark.pedantic(run, rounds=1, iterations=1)
    assert vmins["adaptive_clock"] < vmins["stock"]
    assert vmins["rollback"] < vmins["stock"]
    benchmark.extra_info["measured_vmin_mv"] = vmins
