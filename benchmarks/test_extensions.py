"""Extension studies: experiments the paper motivates but could not run
on fixed silicon -- fleet variation, droop/adaptive clocking,
temperature sensitivity and aging, all ablatable in the simulator."""

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.hardware import (
    AdaptiveClockingUnit,
    AgingModel,
    ChipGenerator,
    SupplyDroopModel,
    TemperatureSensitivity,
    XGene2Machine,
    fleet_vmin_distribution,
)
from repro.units import PMD_NOMINAL_MV
from repro.workloads import get_benchmark


def _vmin(**machine_kwargs):
    machine = XGene2Machine("TTT", seed=5, **machine_kwargs)
    machine.power_on()
    hours = machine_kwargs.pop("_age_hours", 0.0)
    if machine.aging_model is not None:
        machine.age(20_000.0)
    framework = CharacterizationFramework(
        machine, FrameworkConfig(start_mv=950, campaigns=3)
    )
    return framework.characterize(get_benchmark("bwaves"), core=0).highest_vmin_mv


def test_fleet_variation_study(benchmark):
    """Chip-to-chip variation at fleet scale: one fleet-wide voltage
    setting wastes measurable power vs per-chip settings."""
    def run():
        fleet = ChipGenerator("TTT", lot_seed=1).fleet(40)
        return fleet_vmin_distribution(fleet)
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats["chips"] == 40
    assert stats["std_mv"] > 3.0
    assert stats["fleet_setting_penalty"] > 0.01
    benchmark.extra_info["fleet"] = {
        k: round(v, 2) for k, v in stats.items()
    }


def test_ablation_droop_and_adaptive_clocking(benchmark):
    """Supply droop erodes the measured guardband; adaptive clocking
    (paper footnote 1) recovers it at a bounded throughput cost."""
    def run():
        base = _vmin()
        droopy = _vmin(droop_model=SupplyDroopModel())
        relieved = _vmin(
            droop_model=SupplyDroopModel(),
            adaptive_clock=AdaptiveClockingUnit(recovery_mv=15.0),
        )
        return base, droopy, relieved
    base, droopy, relieved = benchmark.pedantic(run, rounds=1, iterations=1)
    assert droopy > base
    assert relieved < droopy
    benchmark.extra_info["vmin_mv"] = {
        "no_droop": base, "with_droop": droopy,
        "droop_plus_adaptive_clock": relieved,
    }


def test_ablation_temperature(benchmark):
    """Hotter operation needs more voltage: the reason the study pins
    the die at 43 C."""
    def run():
        machine = XGene2Machine(
            "TTT", seed=5, temperature_sensitivity=TemperatureSensitivity()
        )
        machine.power_on()
        machine.slimpro.set_fan_setpoint_c(75.0)
        framework = CharacterizationFramework(
            machine, FrameworkConfig(start_mv=950, campaigns=3)
        )
        hot = framework.characterize(get_benchmark("bwaves"), core=0)
        return hot.highest_vmin_mv
    hot_vmin = benchmark.pedantic(run, rounds=1, iterations=1)
    cool_vmin = _vmin()
    assert hot_vmin > cool_vmin
    benchmark.extra_info["vmin_43C_vs_75C"] = (cool_vmin, hot_vmin)


def test_ablation_aging(benchmark):
    """BTI aging erodes a deployed part's harvested margin -- the case
    for online (rather than one-off) Vmin management."""
    def run():
        aged_vmin = _vmin(aging_model=AgingModel())
        aging = AgingModel()
        exhaustion_h = aging.hours_until_exhausted(
            PMD_NOMINAL_MV - _vmin()
        )
        return aged_vmin, exhaustion_h
    aged_vmin, exhaustion_h = benchmark.pedantic(run, rounds=1, iterations=1)
    fresh_vmin = _vmin()
    assert aged_vmin > fresh_vmin
    # The whole guardband outlives any realistic deployment by far.
    assert exhaustion_h > 100_000
    benchmark.extra_info["fresh_vs_aged20kh_mv"] = (fresh_vmin, aged_vmin)
    benchmark.extra_info["hours_to_exhaust_guardband"] = round(exhaustion_h)


def test_extension_soc_domain_characterization(benchmark):
    """Characterize the PCP/SoC domain the paper leaves unexplored:
    sweep the SoC plane, find its safe Vmin / CE band / crash point,
    and quantify the extra (modest) power on the table."""
    from collections import Counter

    from repro.effects import EffectType
    from repro.hardware import MachineState

    def run():
        machine = XGene2Machine("TTT", seed=4)
        machine.power_on()
        bench = get_benchmark("gromacs")
        per_voltage = {}
        for soc_v in range(900, 835, -5):
            counts = Counter()
            for _ in range(10):
                if machine.state is not MachineState.RUNNING:
                    machine.press_reset()
                machine.slimpro.set_soc_voltage_mv(soc_v)
                outcome = machine.run_program(bench, core=0)
                for effect in outcome.effects:
                    counts[effect] += 1
            per_voltage[soc_v] = counts
        return per_voltage

    per_voltage = benchmark.pedantic(run, rounds=1, iterations=1)
    abnormal = [v for v, c in per_voltage.items()
                if any(e is not EffectType.NO and n > 0 for e, n in c.items())]
    crash = [v for v, c in per_voltage.items() if c[EffectType.SC] > 0]
    soc_vmin = max(abnormal) + 5
    soc_crash = max(crash)
    anchor = 870  # calibration soc_vmin_mv for TTT
    assert abs(soc_vmin - anchor) <= 5
    assert soc_crash < soc_vmin
    from repro.units import SOC_NOMINAL_MV
    saving_w = 6.0 * (1 - (soc_vmin / SOC_NOMINAL_MV) ** 2)
    benchmark.extra_info["soc_vmin_mv"] = soc_vmin
    benchmark.extra_info["soc_crash_mv"] = soc_crash
    benchmark.extra_info["soc_power_saving_w"] = round(saving_w, 2)
