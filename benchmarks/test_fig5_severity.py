"""Figure 5: bwaves severity heat-map across the TTT chip's cores."""

import pytest

from repro.analysis.figures import figure5_severity_map
from repro.core.severity import DEFAULT_WEIGHTS
from repro.data.calibration import chip_calibration
from repro.workloads import get_benchmark


def test_figure5_severity_map(benchmark, figure5_results):
    def regenerate():
        return figure5_severity_map(figure5_results)

    matrix = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    voltages = sorted(matrix, reverse=True)
    assert voltages, "severity map must not be empty"

    calibration = chip_calibration("TTT")
    bwaves = get_benchmark("bwaves")

    # Severity per core is (noise-tolerantly) monotone in undervolting
    # and reaches the all-crash plateau of 16.  Cells a core's sweep
    # never reached (it stopped at its own crash floor) are None.
    for core in range(8):
        values = [matrix[v][core] for v in voltages
                  if matrix[v].get(core) is not None]
        for earlier, later in zip(values, values[1:]):
            assert later >= earlier - 1.6, (core, earlier, later)
        assert max(values) == DEFAULT_WEIGHTS.maximum

    # Sensitive cores (PMD0) start degrading at higher voltages than
    # robust cores (PMD2): the staircase shape of the figure.
    def onset(core):
        return max((v for v in voltages
                    if (matrix[v].get(core) or 0.0) > 0), default=0)
    assert onset(0) > onset(4)
    assert onset(0) == calibration.vmin_mv(0, bwaves.stress) - 5

    # The unsafe band is wide ("significantly large unsafe region")
    # with a smooth, gradual increase: intermediate severities exist.
    core0 = [matrix[v][0] for v in voltages if matrix[v].get(0) is not None]
    assert any(0.0 < value <= 5.0 for value in core0)
    assert any(5.0 < value < 15.0 for value in core0)

    benchmark.extra_info["voltage_rows"] = len(voltages)
    benchmark.extra_info["paper"] = (
        "smooth severity ramp, 16.0 at the crash plateau, sensitive "
        "cores degrade first"
    )
