"""Gate CI on the framework-throughput benchmark against a baseline.

``pytest-benchmark`` JSON from ``test_framework_throughput.py`` is
compared against the committed baseline
(``benchmarks/framework_baseline.json``).  Raw wall times differ
between runners, so the gated metric is *normalized* campaign cost::

    normalized = min(test_campaign_throughput) / min(test_single_run_throughput)

i.e. how many single characterization runs one batch-kernel campaign
costs.  Both numerator and denominator move together with host speed,
so the ratio tracks the kernel's algorithmic cost, not the machine.
The check fails when the ratio regresses more than ``--threshold``
(default 25%) over the baseline.

Usage::

    python benchmarks/check_framework_regression.py BENCH_framework.json
    python benchmarks/check_framework_regression.py BENCH_framework.json --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE = Path(__file__).resolve().parent / "framework_baseline.json"
CAMPAIGN = "test_campaign_throughput"
SINGLE_RUN = "test_single_run_throughput"
DEFAULT_THRESHOLD = 1.25


def _min_times(bench_json: dict) -> dict:
    """``{benchmark name: min wall time in seconds}``."""
    times = {}
    for bench in bench_json.get("benchmarks", []):
        times[bench["name"]] = float(bench["stats"]["min"])
    return times


def normalized_campaign_cost(bench_json: dict) -> dict:
    times = _min_times(bench_json)
    missing = [name for name in (CAMPAIGN, SINGLE_RUN) if name not in times]
    if missing:
        raise SystemExit(
            f"benchmark JSON lacks {missing}; "
            f"found {sorted(times)} -- was the full framework "
            "benchmark file run?"
        )
    return {
        "normalized_campaign_cost": times[CAMPAIGN] / times[SINGLE_RUN],
        "campaign_min_s": times[CAMPAIGN],
        "single_run_min_s": times[SINGLE_RUN],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", type=Path,
                        help="pytest-benchmark JSON to check")
    parser.add_argument("--baseline", type=Path, default=BASELINE)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="fail above baseline * THRESHOLD "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run "
                             "instead of checking against it")
    args = parser.parse_args(argv)

    current = normalized_campaign_cost(
        json.loads(args.bench_json.read_text())
    )

    if args.update:
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {args.baseline} "
              f"(normalized cost {current['normalized_campaign_cost']:.2f})")
        return 0

    baseline = json.loads(args.baseline.read_text())
    allowed = baseline["normalized_campaign_cost"] * args.threshold
    got = current["normalized_campaign_cost"]
    verdict = "OK" if got <= allowed else "REGRESSION"
    print(
        f"{verdict}: one campaign costs {got:.2f} single runs "
        f"(baseline {baseline['normalized_campaign_cost']:.2f}, "
        f"allowed <= {allowed:.2f}; campaign "
        f"{current['campaign_min_s'] * 1e3:.2f} ms, single run "
        f"{current['single_run_min_s'] * 1e6:.1f} us)"
    )
    if got > allowed:
        print(
            "campaign throughput regressed more than "
            f"{(args.threshold - 1) * 100:.0f}% over the committed "
            "baseline; if the slowdown is intentional, refresh it with "
            f"`python {Path(__file__).name} <json> --update`",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
