#!/usr/bin/env python3
"""Energy-performance trade-offs: Figure 9 and the headline savings.

Builds the Figure-9 ladder for the paper's eight-benchmark workload,
prints every point next to the published one, and quantifies the two
Section-6 design-enhancement ablations (stronger ECC is exercised by
the benchmark harness; the finer-voltage-domain one is shown here).

Run:  python examples/energy_tradeoffs.py
"""

from repro.analysis.ascii_plots import scatter
from repro.energy import (
    FIGURE9_WORKLOAD,
    figure9_ladder,
    finer_domains_ablation,
    headline_savings,
)

PAPER_POINTS = {
    980: (100.0, 100.0),
    915: (100.0, 87.2),
    900: (87.5, 73.8),
    885: (75.0, 61.2),
    875: (62.5, 49.8),
    760: (50.0, 37.6),  # the figure's value; the prose implies 30.1
}


def main() -> None:
    print(f"workload: {', '.join(FIGURE9_WORKLOAD)} (one task per core, TTT)\n")

    print("Figure 9 ladder (model, clock-tree term off -- matches the prose):")
    print(f"{'step':<16}{'Vdd':>7}{'perf %':>8}{'power %':>9}"
          f"{'paper %':>9}")
    ladder = figure9_ladder()
    for point in ladder:
        paper = PAPER_POINTS.get(point.chip_voltage_mv, ("-", "-"))
        print(f"{point.label:<16}{point.chip_voltage_mv:>5}mV"
              f"{100 * point.performance_rel:>8.1f}"
              f"{100 * point.power_rel:>9.1f}{paper[1]:>9}")

    variant = figure9_ladder(clock_tree_fraction=0.25)
    print(f"\nwith the clock-tree residual (0.25) the 760 mV point becomes "
          f"{100 * variant[-1].power_rel:.1f} % -- the figure's 37.6 %.")

    print("\nheadline savings:")
    for key, value in headline_savings().as_percent().items():
        print(f"  {key:<36} {value:>5.1f} %")

    ablation = finer_domains_ablation()
    print("\nSection-6 finer-voltage-domains ablation (Figure-9 workload):")
    print(f"  shared plane power : {100 * ablation.shared_plane_power_rel:.1f} %")
    print(f"  per-PMD planes     : {100 * ablation.per_pmd_power_rel:.1f} %")
    print(f"  extra saving       : {100 * ablation.extra_saving_fraction:.1f} %")

    print("\nthe Pareto frontier (x = power %, y = performance %):")
    points = [(100 * p.power_rel, 100 * p.performance_rel) for p in ladder]
    print(scatter(points, x_label="power %", y_label="perf %"))


if __name__ == "__main__":
    main()
