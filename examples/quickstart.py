#!/usr/bin/env python3
"""Quickstart: characterize one benchmark on one core.

Boots a simulated X-Gene 2 (TTT part), runs the paper's automated
undervolting campaign for bwaves on core 0, and prints the regions of
operation, the safe Vmin and the severity ramp -- the minimal version
of the paper's Figures 4 and 5.

Run:  python examples/quickstart.py
"""

from repro import CharacterizationFramework, FrameworkConfig, MachineSpec
from repro.analysis.ascii_plots import region_strip
from repro.machines import build_machine
from repro.units import PMD_NOMINAL_MV
from repro.workloads import get_benchmark


def main() -> None:
    # A powered-on machine built from its declarative blueprint; every
    # run is deterministic in the spec's seed.
    machine = build_machine(MachineSpec(chip="TTT", seed=2017))

    # The paper's configuration: sweep down in 5 mV steps, 10 runs per
    # level, 10 campaign repetitions, watchdog-recovered crashes.
    framework = CharacterizationFramework(
        machine, FrameworkConfig(start_mv=930, campaigns=10)
    )
    bench = get_benchmark("bwaves")
    print(f"characterizing {bench.name} on {machine.chip.name} core 0 ...")
    result = framework.characterize(bench, core=0)

    regions = result.pooled_regions()
    print(f"\nsafe Vmin           : {result.highest_vmin_mv} mV "
          f"(nominal {PMD_NOMINAL_MV} mV)")
    print(f"guardband           : {regions.guardband_mv(PMD_NOMINAL_MV)} mV")
    print(f"highest crash level : {result.highest_crash_mv} mV")
    print(f"watchdog recoveries : {framework.watchdog.intervention_count}")

    print("\nregions (S=safe, u=unsafe, #=crash):")
    print(region_strip({v: regions.classify(v) for v in result.campaigns[0].voltages()}))

    print("\nseverity ramp (Table-4 weights):")
    severity = result.severity_by_voltage()
    for voltage in sorted(severity, reverse=True):
        bar = "#" * int(round(severity[voltage] * 3))
        print(f"  {voltage} mV  {severity[voltage]:5.2f}  {bar}")

    saving = 1 - (result.highest_vmin_mv / PMD_NOMINAL_MV) ** 2
    print(f"\nrunning this benchmark at its Vmin would save "
          f"{saving * 100:.1f} % power at full speed.")


if __name__ == "__main__":
    main()
