#!/usr/bin/env python3
"""The Section-4 prediction studies: Figure 6's four-phase flow.

Runs the three test cases of Section 4.3 over the full 40-program
suite -- Vmin prediction on the most sensitive core, severity
prediction on the most sensitive (Figure 7) and most robust (Figure 8)
cores -- and renders the Figure-7 observed-vs-predicted scatter.

Run:  python examples/predict_severity.py [--programs N]
"""

import argparse

from repro import MachineSpec, PredictionPipeline
from repro.analysis.ascii_plots import scatter
from repro.machines import build_machine
from repro.analysis.figures import figure7_prediction_series
from repro.workloads import all_programs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--programs", type=int, default=40,
                        help="number of programs to study (default all 40)")
    args = parser.parse_args()

    machine = build_machine(MachineSpec(chip="TTT", seed=2017))
    pipeline = PredictionPipeline(machine)
    programs = all_programs()[: args.programs]
    print(f"phase 1+2: characterizing and profiling {len(programs)} programs "
          f"(cached per core) ...")

    print("\n=== case 1: Vmin of the most sensitive core (core 0) ===")
    vmin_report = pipeline.vmin_study(programs, core=0)
    print(vmin_report.summary())
    print(f"paper: RMSE 5 mV (0.51 % of nominal), R^2 ~ 0, naive equal; "
          f"our naive/model ratio: {vmin_report.improvement_over_naive:.2f}x")

    print("\n=== case 2: severity of the most sensitive core (Figure 7) ===")
    severity0 = pipeline.severity_study(programs, core=0, max_samples=100)
    print(severity0.summary())
    print("paper: RMSE 2.8 vs naive 6.4, R^2 0.92")

    print("\n=== case 3: severity of the most robust core (Figure 8) ===")
    severity4 = pipeline.severity_study(programs, core=4, max_samples=90)
    print(severity4.summary())
    print("paper: RMSE 2.65 vs naive 6.9, R^2 0.91")

    print("\nFigure-7 scatter (x = observed severity, y = predicted):")
    series = figure7_prediction_series(severity0)
    points = [(truth, pred) for _tag, truth, pred in series]
    print(scatter(points, x_label="observed", y_label="predicted"))

    print("\nmost important features (standardised-|weight| order):")
    for name in severity0.selected_features:
        print(f"  - {name}")


if __name__ == "__main__":
    main()
