#!/usr/bin/env python3
"""Online voltage governance and severity-aware scheduling (Section 5).

The full system-software loop the paper sketches:

1. characterize a training set of programs (offline);
2. train the governor's Vmin model on the five predictive PMU events;
3. schedule an eight-task workload -- naive vs robust-first placement;
4. let the governor pick the plane voltage from live PMU snapshots;
5. show the severity-tolerant "aggressive" mode for SDC-tolerant
   applications, and what mitigation each severity regime needs.

Run:  python examples/governor_demo.py
"""

from repro import MachineSpec, PredictionPipeline, SeverityAwareScheduler
from repro.data.calibration import chip_calibration
from repro.machines import build_machine
from repro.energy.tradeoffs import FIGURE9_WORKLOAD
from repro.scheduling import (
    ApplicationClass,
    CheckpointRollback,
    VoltageGovernor,
    recommend_mitigation,
)
from repro.workloads import all_programs, get_benchmark


def main() -> None:
    calibration = chip_calibration("TTT")
    machine = build_machine(MachineSpec(chip="TTT", seed=2017))
    pipeline = PredictionPipeline(machine)

    # -- offline: train on a 14-program set ------------------------------
    training = [p for p in all_programs() if p.input_set == "ref"][:14]
    print(f"training the governor on {len(training)} programs ...")
    snapshots = [pipeline.profile(p) for p in training]
    vmins = [float(pipeline.characterize(p, core=4).highest_vmin_mv)
             for p in training]
    governor = VoltageGovernor.train_from_observations(
        snapshots, vmins, core_offsets_mv=calibration.core_offsets_mv,
        margin_mv=15,
    )

    # -- scheduling: naive vs robust-first -------------------------------------
    workload = [get_benchmark(name) for name in FIGURE9_WORKLOAD]
    scheduler = SeverityAwareScheduler("TTT")
    print("\ntask-to-core placement for the Figure-9 workload:")
    for policy, assignment in scheduler.compare_policies(workload).items():
        print(f"  {policy:<13} chip Vmin {assignment.chip_vmin_mv} mV "
              f"-> {100 * assignment.saving_fraction:.1f} % saving")

    # -- online: the governor reacts to live snapshots -----------------------------
    print("\ngovernor decisions (robust-first placement, live snapshots):")
    assignment = scheduler.assign(workload, policy="robust_first")
    live = {
        core: pipeline.profile(get_benchmark(name))
        for name, core in assignment.placement.items()
    }
    decision = governor.decide(live)
    print(f"  plane voltage : {decision.voltage_mv} mV "
          f"(limited by core {decision.limiting_core})")

    # -- aggressive mode for SDC-tolerant applications ---------------------------------
    severity_samples = []
    for program in training[:6]:
        result = pipeline.characterize(program, core=4)
        snapshot = pipeline.profile(program)
        for voltage, severity in result.severity_by_voltage().items():
            severity_samples.append((snapshot, voltage, severity))
    severity_model = VoltageGovernor.fit_severity_model(
        [s for s, _v, _y in severity_samples],
        [v for _s, v, _y in severity_samples],
        [y for _s, _v, y in severity_samples],
    )
    aggressive = VoltageGovernor(
        governor.vmin_model, core_offsets_mv=calibration.core_offsets_mv,
        margin_mv=15, severity_model=severity_model,
    )
    tolerant = ApplicationClass.SDC_TOLERANT
    deep = aggressive.decide_aggressive(
        live, severity_tolerance=tolerant.severity_tolerance)
    print(f"  aggressive    : {deep.voltage_mv} mV for "
          f"severity <= {tolerant.severity_tolerance} applications"
          f"{' (deeper than conservative)' if deep.aggressive else ''}")

    # -- mitigation ladder -----------------------------------------------------------------
    print("\nmitigation per predicted severity (Section 4.4):")
    for severity in (0.0, 1.0, 4.0, 6.0, 12.0):
        exact = recommend_mitigation(severity).value
        tol = recommend_mitigation(severity, application=tolerant).value
        print(f"  severity {severity:>4.1f}: exact apps -> {exact:<20} "
              f"SDC-tolerant -> {tol}")

    checkpointing = CheckpointRollback(checkpoint_interval_s=120.0,
                                       checkpoint_cost_s=1.5)
    rate = 1e-4
    print(f"\ncheckpoint/rollback at failure rate {rate:g}/s: "
          f"overhead {100 * checkpointing.expected_overhead_fraction(rate):.2f} %, "
          f"optimal interval {checkpointing.optimal_interval_s(rate):.0f} s; "
          f"worthwhile for a 19.4 % saving: "
          f"{checkpointing.worthwhile(rate, 0.194)}")


if __name__ == "__main__":
    main()
