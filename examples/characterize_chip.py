#!/usr/bin/env python3
"""Chip characterization campaign: the Figures 3-5 workflow.

Characterizes a configurable slice of the (chip x benchmark x core)
grid, writes the framework's CSV outputs, and renders the Figure-3 bar
series and the Figure-5 severity heat-map as text.

Run:  python examples/characterize_chip.py [--full]

The default quick study covers one chip, three benchmarks and two
cores in a few seconds; ``--full`` runs the paper's ten-benchmark,
three-chip, eight-core grid (several minutes).
"""

import argparse
import tempfile

from repro import (
    PAPER_STUDY,
    QUICK_STUDY,
    CharacterizationFramework,
    MachineSpec,
    build_machine,
)
from repro.analysis.ascii_plots import bar_chart, heatmap
from repro.analysis.figures import figure5_severity_map
from repro.core.results import ResultStore
from repro.data.calibration import chip_calibration
from repro.workloads import get_benchmark


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the paper's full grid (slow)")
    parser.add_argument("--out", default=None,
                        help="directory for CSV outputs (default: temp)")
    args = parser.parse_args()

    study = PAPER_STUDY if args.full else QUICK_STUDY
    out_dir = args.out or tempfile.mkdtemp(prefix="repro-results-")
    store = ResultStore(out_dir)

    all_results = []
    fig3 = {}
    fig5_by_core = {}
    for chip in study.chips:
        machine = build_machine(MachineSpec(chip=chip, seed=study.seed))
        framework = CharacterizationFramework(machine, study.framework)
        robust_core = chip_calibration(chip).most_robust_core()
        for name in study.benchmarks:
            bench = get_benchmark(name)
            for core in study.cores:
                print(f"characterizing {chip}/{name}/core{core} ...")
                result = framework.characterize(bench, core)
                all_results.append(result)
                if core == robust_core or core == max(study.cores):
                    fig3[(chip, name)] = result.highest_vmin_mv
                if chip == study.chips[0] and name == study.benchmarks[0]:
                    fig5_by_core[core] = result
        store.write_all_raw_logs(framework.raw_logs)

    runs_csv = store.write_runs_csv(all_results)
    severity_csv = store.write_severity_csv(all_results)
    print(f"\nwrote {runs_csv}")
    print(f"wrote {severity_csv}")

    print("\nFigure-3-style series (highest safe Vmin, mV):")
    print(bar_chart({f"{c}/{b}": v for (c, b), v in fig3.items()},
                    unit="mV", baseline=850))

    first_bench = study.benchmarks[0]
    print(f"\nFigure-5-style severity map ({study.chips[0]} / {first_bench}):")
    matrix = figure5_severity_map(fig5_by_core)
    print(heatmap({v: {c: (s or 0.0) for c, s in row.items()}
                   for v, row in matrix.items()}))


if __name__ == "__main__":
    main()
