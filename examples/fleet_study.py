#!/usr/bin/env python3
"""Fleet-scale extension study.

The paper characterizes three parts; a data-centre operator deploys
thousands.  This example generates a fleet from the TTT corner
population and answers the operational questions the paper's approach
raises at scale:

1. how does the chip-level worst-case Vmin distribute across a fleet?
2. how much saving does per-chip voltage management recover compared
   with one conservative fleet-wide setting?
3. what does a measured per-core Vmin map of a *deployed* part --
   droop-afflicted, adaptively clocked, two years into its life --
   look like, characterized campaign-parallel on the
   :class:`~repro.parallel.ParallelCampaignEngine` from a JSON-round-
   tripped :class:`~repro.machines.MachineSpec`?
4. how do supply droop, adaptive clocking, temperature and aging move
   an individual part's usable margin?

Run:  python examples/fleet_study.py [--chips N] [--jobs N]
"""

import argparse

from repro.analysis.ascii_plots import bar_chart
from repro.core import CharacterizationFramework, FrameworkConfig
from repro.hardware import (
    AdaptiveClockingUnit,
    AgingModel,
    ChipGenerator,
    SupplyDroopModel,
    TemperatureSensitivity,
    fleet_vmin_distribution,
)
from repro.machines import MachineSpec, build_machine, spec_from_json, spec_to_json
from repro.parallel import ConsoleProgress, ParallelCampaignEngine
from repro.units import PMD_NOMINAL_MV
from repro.workloads import get_benchmark


def measured_vmin(**machine_kwargs) -> int:
    machine = build_machine(MachineSpec(chip="TTT", seed=5, **machine_kwargs))
    if machine.aging_model is not None:
        machine.age(20_000.0)
    if machine.temperature_sensitivity is not None:
        machine.slimpro.set_fan_setpoint_c(75.0)
    framework = CharacterizationFramework(
        machine, FrameworkConfig(start_mv=950, campaigns=3)
    )
    return framework.characterize(get_benchmark("bwaves"), core=0).highest_vmin_mv


def deployed_part_spec() -> MachineSpec:
    """A non-trivial blueprint: a part two years into deployment.

    Supply droop and adaptive clocking are active, BTI aging has
    ~17.5k full-activity hours accumulated -- all of it captured in a
    spec that round-trips through JSON (this is what a
    ``--machine spec.json`` file for the CLI contains).
    """
    spec = MachineSpec(
        chip="TTT",
        seed=5,
        droop_model=SupplyDroopModel(),
        adaptive_clock=AdaptiveClockingUnit(recovery_mv=15.0),
        aging_model=AgingModel(),
        stress_hours=17_500.0,
    )
    round_tripped = spec_from_json(spec_to_json(spec))
    assert round_tripped == spec  # the file form loses nothing
    return round_tripped


def per_core_vmin_map(jobs: int) -> dict:
    """Characterize bwaves on all eight cores, campaign-parallel.

    The engine rebuilds a machine per (core, campaign) task from the
    spec with a derived seed -- extension models and accumulated aging
    included -- so the map is identical for any ``jobs``.
    """
    engine = ParallelCampaignEngine(
        deployed_part_spec(),
        FrameworkConfig(start_mv=980, campaigns=3),
        jobs=jobs,
        progress=ConsoleProgress(label="per-core campaigns"),
    )
    report = engine.run([get_benchmark("bwaves")], list(range(8)))
    return {
        core: result.highest_vmin_mv
        for (_, core), result in sorted(report.results.items())
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chips", type=int, default=40)
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the characterization grid")
    args = parser.parse_args()

    # -- 1/2: fleet distribution ------------------------------------------
    fleet = ChipGenerator("TTT", lot_seed=1).fleet(args.chips)
    stats = fleet_vmin_distribution(fleet)
    print(f"fleet of {args.chips} TTT-population parts, worst-case chip "
          f"Vmin @2.4 GHz:")
    print(f"  mean {stats['mean_mv']:.1f} mV, std {stats['std_mv']:.1f} mV, "
          f"range [{stats['min_mv']:.0f}, {stats['max_mv']:.0f}] mV")
    print(f"  one fleet-wide setting ({stats['max_mv']:.0f} mV) wastes "
          f"{100 * stats['fleet_setting_penalty']:.1f} % power vs per-chip "
          f"settings\n")

    histogram = {}
    for chip in fleet:
        worst = max(chip.calibration.vmin_mv(core, 1.0) for core in range(8))
        key = f"{worst} mV"
        histogram[key] = histogram.get(key, 0) + 1
    print("chip-level Vmin histogram:")
    print(bar_chart(dict(sorted(histogram.items())), width=40, baseline=0))

    # -- 3: engine-measured per-core Vmin map of a deployed part -----------------
    print(f"\nbwaves per-core measured Vmin of a deployed part "
          f"(droop + adaptive clocking + 17.5kh aging; engine, "
          f"jobs={args.jobs}):")
    vmin_map = per_core_vmin_map(args.jobs)
    print(bar_chart({f"core {c}": v for c, v in vmin_map.items()},
                    width=40, baseline=min(vmin_map.values()) - 10))

    # -- 4: dynamic-margin knobs on one part -------------------------------------
    print("\nbwaves / core 0 measured Vmin under the dynamic-margin models:")
    rows = {
        "as characterized (43C, fresh)": measured_vmin(),
        "with supply droop": measured_vmin(droop_model=SupplyDroopModel()),
        "droop + adaptive clocking": measured_vmin(
            droop_model=SupplyDroopModel(),
            adaptive_clock=AdaptiveClockingUnit(recovery_mv=15.0)),
        "hot (75C fan setpoint)": measured_vmin(
            temperature_sensitivity=TemperatureSensitivity()),
        "aged 20k hours": measured_vmin(aging_model=AgingModel()),
    }
    for label, vmin in rows.items():
        saving = 1 - (vmin / PMD_NOMINAL_MV) ** 2
        print(f"  {label:<32} {vmin} mV  ({100 * saving:.1f} % saving left)")

    aging = AgingModel()
    guardband = PMD_NOMINAL_MV - rows["as characterized (43C, fresh)"]
    print(f"\naging projection: the {guardband} mV guardband takes "
          f"{aging.hours_until_exhausted(guardband):,.0f} full-activity "
          f"hours to exhaust (shift after 5 years: "
          f"{aging.shift_mv(5 * 8760):.1f} mV).")


if __name__ == "__main__":
    main()
