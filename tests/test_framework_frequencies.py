"""Characterization at non-default frequencies through the framework.

Section 2.2: the framework "determines the safe, unsafe and
non-operating voltage regions for each application for all
frequencies" -- these tests exercise the 1.2 GHz regime and an
intermediate skipping frequency end to end (the benchmark harness
holds the bigger sweeps).
"""

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.data.calibration import chip_calibration
from repro.effects import EffectType
from repro.machines import MachineSpec, build_machine
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def results_1200():
    machine = build_machine(MachineSpec(chip="TTT", seed=23))
    framework = CharacterizationFramework(
        machine, FrameworkConfig(start_mv=790, campaigns=5, freq_mhz=1200)
    )
    return framework.characterize(get_benchmark("leslie3d"), core=0)


class TestClockDivisionRegime:
    def test_vmin_program_independent_value(self, results_1200):
        assert abs(results_1200.highest_vmin_mv - 760) <= 5

    def test_only_crashes_below_vmin(self, results_1200):
        pooled = results_1200.pooled_counts()
        for effect in (EffectType.SDC, EffectType.CE, EffectType.UE,
                       EffectType.AC):
            assert all(counts[effect] == 0 for counts in pooled.values()), effect
        assert any(counts[EffectType.SC] > 0 for counts in pooled.values())

    def test_no_unsafe_region(self, results_1200):
        assert results_1200.pooled_regions().unsafe_width_mv == 0

    def test_records_carry_the_frequency(self, results_1200):
        assert all(
            record.setup.freq_mhz == 1200
            for record in results_1200.all_records()
        )


class TestClockSkippingRegime:
    def test_1800mhz_behaves_like_2400(self):
        """Frequencies above the division boundary inherit the 2.4 GHz
        Vmin behaviour (Section 3.2)."""
        bench = get_benchmark("mcf")
        machine = build_machine(MachineSpec(chip="TTT", seed=23))
        framework = CharacterizationFramework(
            machine, FrameworkConfig(start_mv=910, campaigns=3, freq_mhz=1800)
        )
        result = framework.characterize(bench, core=0)
        anchor = chip_calibration("TTT").vmin_mv(0, bench.stress, 2400)
        assert abs(result.highest_vmin_mv - anchor) <= 5

    def test_runtime_reflects_the_lower_frequency(self):
        machine = build_machine(MachineSpec(chip="TTT", seed=23))
        bench = get_benchmark("mcf")
        machine.clocks.set_pmd_frequency_mhz(0, 1800)
        slow = machine.run_program(bench, core=0)
        machine.clocks.set_pmd_frequency_mhz(0, 2400)
        fast = machine.run_program(bench, core=0)
        assert slow.runtime_s == pytest.approx(fast.runtime_s * 2400 / 1800)


class TestExplicitStopWithCrashes:
    def test_stop_mv_overrides_early_termination(self):
        """With an explicit floor the sweep records the full crash
        region instead of stopping after consecutive all-SC levels."""
        machine = build_machine(MachineSpec(chip="TTT", seed=23))
        framework = CharacterizationFramework(
            machine,
            FrameworkConfig(start_mv=890, stop_mv=855, campaigns=1),
        )
        result = framework.run_campaign(get_benchmark("mcf"), core=0)
        assert min(result.voltages()) == 855
        assert max(result.voltages()) == 890
