"""The 101-event PMU catalogue and its synthesis model."""

import numpy as np
import pytest

from repro.data.counters import (
    COUNTER_NAMES,
    NUM_COUNTERS,
    RFE_SELECTED_FEATURES,
    CounterCatalog,
)
from repro.errors import UnknownCounterError
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def catalog():
    return CounterCatalog(noise_sigma=0.0)


@pytest.fixture(scope="module")
def traits():
    return get_benchmark("gcc").traits.as_dict()


class TestCatalogueStructure:
    def test_exactly_101_events(self):
        assert NUM_COUNTERS == 101
        assert len(COUNTER_NAMES) == 101
        assert len(set(COUNTER_NAMES)) == 101

    def test_rfe_features_exist(self):
        assert len(RFE_SELECTED_FEATURES) == 5
        for name in RFE_SELECTED_FEATURES:
            assert name in COUNTER_NAMES

    def test_paper_categories_present(self, catalog):
        # Section 4.1: memory hierarchy, TLBs, prefetches, unaligned
        # accesses, pipeline, system.
        categories = catalog.categories()
        for expected in ("core", "branch", "l1d", "l2", "l3", "tlb",
                         "memory", "prefetch", "pipeline", "exception",
                         "system"):
            assert expected in categories, expected

    def test_descriptions_non_empty(self, catalog):
        for name in COUNTER_NAMES:
            assert catalog.description(name)

    def test_unknown_event_rejected(self, catalog):
        with pytest.raises(UnknownCounterError):
            catalog.category("NOT_AN_EVENT")


class TestSynthesis:
    def test_complete_snapshot(self, catalog, traits):
        snapshot = catalog.synthesize(traits)
        assert set(snapshot) == set(COUNTER_NAMES)
        assert all(value >= 0 for value in snapshot.values())

    def test_deterministic_without_noise(self, catalog, traits):
        assert catalog.synthesize(traits) == catalog.synthesize(traits)

    def test_internal_consistency(self, catalog, traits):
        snapshot = catalog.synthesize(traits)
        # Retired loads+stores = data memory accesses = L1D accesses.
        assert snapshot["MEM_ACCESS"] == pytest.approx(
            snapshot["LD_RETIRED"] + snapshot["ST_RETIRED"], rel=0.01)
        assert snapshot["L1D_CACHE"] == pytest.approx(
            snapshot["MEM_ACCESS"], rel=0.01)
        # Misses never exceed accesses, at any level.
        assert snapshot["L1D_CACHE_REFILL"] <= snapshot["L1D_CACHE"]
        assert snapshot["L2D_CACHE_REFILL"] <= snapshot["L2D_CACHE"]
        assert snapshot["L3D_CACHE_REFILL"] <= snapshot["L3D_CACHE"]
        # Mispredictions never exceed branches.
        assert snapshot["BR_MIS_PRED"] <= snapshot["BR_RETIRED"]
        # Cycles relate to instructions through the IPC.
        ipc = snapshot["INST_RETIRED"] / snapshot["CPU_CYCLES"]
        assert ipc == pytest.approx(traits["ipc"], rel=0.02)

    def test_l2_traffic_feeds_from_l1(self, catalog, traits):
        snapshot = catalog.synthesize(traits)
        upstream = (snapshot["L1D_CACHE_REFILL"] + snapshot["L1I_CACHE_REFILL"]
                    + snapshot["L1D_CACHE_PRF"])
        assert snapshot["L2D_CACHE"] == pytest.approx(upstream, rel=0.02)

    def test_noise_perturbs_but_preserves_scale(self, traits):
        noisy = CounterCatalog(noise_sigma=0.02)
        rng = np.random.default_rng(5)
        first = noisy.synthesize(traits, rng)
        second = noisy.synthesize(traits, rng)
        assert first != second
        for name in ("INST_RETIRED", "CPU_CYCLES", "L1D_CACHE"):
            assert first[name] == pytest.approx(second[name], rel=0.2)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            CounterCatalog(noise_sigma=-0.1)

    def test_vector_ordering(self, catalog, traits):
        snapshot = catalog.synthesize(traits)
        vector = catalog.vector(snapshot)
        assert vector.shape == (101,)
        assert vector[COUNTER_NAMES.index("INST_RETIRED")] == \
            snapshot["INST_RETIRED"]

    def test_vector_missing_event_rejected(self, catalog, traits):
        snapshot = dict(catalog.synthesize(traits))
        snapshot.pop("CPU_CYCLES")
        with pytest.raises(UnknownCounterError):
            catalog.vector(snapshot)


class TestWorkloadDifferentiation:
    def test_memory_bound_vs_compute_bound(self, catalog):
        mcf = catalog.synthesize(get_benchmark("mcf").traits.as_dict())
        leslie = catalog.synthesize(get_benchmark("leslie3d").traits.as_dict())
        def rate(snapshot, event):
            return snapshot[event] / snapshot["INST_RETIRED"]
        # mcf misses far more and stalls far more per instruction.
        assert rate(mcf, "L1D_CACHE_REFILL") > 3 * rate(leslie, "L1D_CACHE_REFILL")
        assert rate(mcf, "DISPATCH_STALL_CYCLES") > rate(leslie, "DISPATCH_STALL_CYCLES")
        # leslie3d is FP-heavy.
        assert rate(leslie, "VFP_SPEC") > 5 * rate(mcf, "VFP_SPEC")
