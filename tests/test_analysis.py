"""Analysis: variation stats, tables, figures, ASCII plots, claims."""

import pytest

from repro.analysis import (
    PAPER_CLAIMS,
    bar_chart,
    chip_to_chip_summary,
    check_claims,
    core_to_core_spread,
    figure3_vmin_series,
    figure4_region_grid,
    figure5_severity_map,
    figure7_prediction_series,
    figure9_series,
    heatmap,
    scatter,
    table1_prior_work,
    table2_parameters,
    table3_effects,
    table4_weights,
    workload_ordering_consistency,
)
from repro.analysis.figures import figure4_chip_averages
from repro.analysis.report import render_claims
from repro.analysis.tables import render_table
from repro.core.regions import Region
from repro.errors import ConfigurationError
from repro.workloads import figure_benchmarks


class TestVariation:
    def test_core_spread_matches_paper(self):
        summary = core_to_core_spread("TTT", figure_benchmarks())
        assert summary.most_robust_core in (4, 5)
        assert summary.most_sensitive_core in (0, 1)
        assert summary.max_core_spread_fraction == pytest.approx(0.036, abs=0.001)

    def test_pmd2_smallest_mean_offset_on_all_chips(self):
        for chip, summary in chip_to_chip_summary(figure_benchmarks()).items():
            assert min(summary.pmd_mean_offset_mv) == \
                summary.pmd_mean_offset_mv[2], chip

    def test_chip_mean_ordering(self):
        summaries = chip_to_chip_summary(figure_benchmarks())
        assert summaries["TFF"].mean_vmin_mv < summaries["TTT"].mean_vmin_mv
        assert summaries["TSS"].mean_vmin_mv > summaries["TTT"].mean_vmin_mv

    def test_workload_ordering_fully_consistent(self):
        # "the workload-to-workload variation remains the same across
        # the 3 chips"
        assert workload_ordering_consistency(figure_benchmarks()) == 1.0

    def test_too_few_benchmarks_rejected(self):
        with pytest.raises(ConfigurationError):
            workload_ordering_consistency(figure_benchmarks()[:1])


class TestTables:
    def test_table1_lists_this_work(self):
        headers, rows = table1_prior_work()
        assert headers[0] == "ISA"
        assert any("This work" in row for row in [r[-1] for r in rows])
        assert any("X-Gene 2" in r[1] for r in rows)

    def test_table2_matches_live_configuration(self):
        _headers, rows = table2_parameters()
        table = dict(rows)
        assert table["CPU"] == "8 cores"
        assert table["Core clock"] == "2.4 GHz"
        assert "32KB" in table["L1 Instr. cache"]
        assert "Parity" in table["L1 Data cache"]
        assert "256KB" in table["L2 cache"]
        assert "8MB" in table["L3 cache"]

    def test_table3_six_effects(self):
        _headers, rows = table3_effects()
        assert [row[0] for row in rows] == ["NO", "SDC", "CE", "UE", "AC", "SC"]

    def test_table4_weights(self):
        _headers, rows = table4_weights()
        assert dict(rows) == {"W_SC": "16", "W_AC": "8", "W_SDC": "4",
                              "W_UE": "2", "W_CE": "1", "W_NO": "0"}

    def test_render_table_alignment(self):
        text = render_table(["A", "Bee"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1


class TestFigures:
    def test_figure3_from_anchors(self):
        series = figure3_vmin_series()
        assert set(series) == {"TTT", "TFF", "TSS"}
        assert series["TTT"]["leslie3d"] == 880
        assert series["TSS"]["zeusmp"] == 900

    def test_figure3_measured_overrides(self, bwaves_characterization):
        series = figure3_vmin_series(
            measured={("TTT", "bwaves"): bwaves_characterization})
        # Core 0's measurement replaces the robust-core anchor.
        assert series["TTT"]["bwaves"] == \
            bwaves_characterization.highest_vmin_mv

    def test_figure4_grid_shape(self):
        columns = figure4_region_grid()
        assert len(columns) == 3 * 10 * 8
        column = columns[0]
        assert column.regions[930] is Region.SAFE
        assert column.regions[850] is Region.CRASH

    def test_figure4_chip_averages(self):
        columns = figure4_region_grid()
        averages = figure4_chip_averages(columns)
        assert averages["TFF"][0] < averages["TTT"][0] < averages["TSS"][0]
        for chip in averages:
            mean_vmin, mean_crash = averages[chip]
            assert mean_crash < mean_vmin

    def test_figure5_matrix(self, bwaves_characterization):
        matrix = figure5_severity_map({0: bwaves_characterization})
        voltages = sorted(matrix, reverse=True)
        assert voltages  # non-empty
        values = [matrix[v][0] for v in voltages if matrix[v][0] is not None]
        assert max(values) > 15.0
        assert all(0.0 <= value <= 16.0 for value in values)

    def test_figure7_series_sorted(self):
        from repro.prediction import PredictionReport
        report = PredictionReport(
            target="severity", chip="TTT", core=0,
            selected_features=("VOLTAGE_MV",), r2=0.9,
            rmse_model=2.8, rmse_naive=6.4, n_train=80, n_test=3,
            test_points=(("a@900", 4.0, 3.5), ("b@890", 1.0, 1.2),
                         ("c@880", 9.0, 8.1)),
        )
        series = figure7_prediction_series(report)
        assert [truth for _tag, truth, _pred in series] == [1.0, 4.0, 9.0]

    def test_figure9_series(self):
        points = figure9_series()
        assert [p.chip_voltage_mv for p in points] == \
            [980, 915, 900, 885, 875, 760]


class TestAsciiPlots:
    def test_bar_chart(self):
        text = bar_chart({"TTT": 885, "TFF": 885, "TSS": 900}, unit="mV")
        assert "TSS" in text and "900" in text
        assert text.count("|") == 6

    def test_heatmap(self):
        text = heatmap({905: {0: 4.0, 4: 0.0}, 900: {0: 16.0, 4: 2.0}})
        assert "core0" in text and "core4" in text
        assert "16.0" in text
        assert "." in text  # zero cell placeholder

    def test_scatter(self):
        points = [(0.0, 0.0), (1.0, 1.0), (0.5, 0.6)]
        text = scatter(points, width=20, height=5)
        assert text.count("o") >= 2

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})
        with pytest.raises(ConfigurationError):
            heatmap({})
        with pytest.raises(ConfigurationError):
            scatter([])


class TestClaims:
    def test_all_model_claims_pass(self):
        checks = check_claims()
        failing = [c.claim_id for c in checks if not c.passed]
        assert not failing, failing

    def test_claim_inventory_covers_headlines(self):
        assert "abstract.energy_saving_no_perf_loss" in PAPER_CLAIMS
        assert "fig9.step4_power_pct_figure_variant" in PAPER_CLAIMS
        assert len(PAPER_CLAIMS) >= 12

    def test_subset_selection(self):
        checks = check_claims(only=["s5.chip_wide_saving"])
        assert len(checks) == 1

    def test_render(self):
        text = render_claims(check_claims(only=["s5.chip_wide_saving"]))
        assert "OK" in text and "12.8" in text
