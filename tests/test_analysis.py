"""Analysis: variation stats, tables, figures, ASCII plots, claims."""

import textwrap

import pytest

from repro.analysis import (
    PAPER_CLAIMS,
    bar_chart,
    chip_to_chip_summary,
    check_claims,
    core_to_core_spread,
    figure3_vmin_series,
    figure4_region_grid,
    figure5_severity_map,
    figure7_prediction_series,
    figure9_series,
    heatmap,
    scatter,
    table1_prior_work,
    table2_parameters,
    table3_effects,
    table4_weights,
    workload_ordering_consistency,
)
from repro.analysis import lint_source
from repro.analysis.figures import figure4_chip_averages
from repro.analysis.lint import all_rules, get_rule, lint_paths
from repro.analysis.report import render_claims
from repro.analysis.tables import render_table
from repro.core.regions import Region
from repro.errors import ConfigurationError
from repro.workloads import figure_benchmarks


class TestVariation:
    def test_core_spread_matches_paper(self):
        summary = core_to_core_spread("TTT", figure_benchmarks())
        assert summary.most_robust_core in (4, 5)
        assert summary.most_sensitive_core in (0, 1)
        assert summary.max_core_spread_fraction == pytest.approx(0.036, abs=0.001)

    def test_pmd2_smallest_mean_offset_on_all_chips(self):
        for chip, summary in chip_to_chip_summary(figure_benchmarks()).items():
            assert min(summary.pmd_mean_offset_mv) == \
                summary.pmd_mean_offset_mv[2], chip

    def test_chip_mean_ordering(self):
        summaries = chip_to_chip_summary(figure_benchmarks())
        assert summaries["TFF"].mean_vmin_mv < summaries["TTT"].mean_vmin_mv
        assert summaries["TSS"].mean_vmin_mv > summaries["TTT"].mean_vmin_mv

    def test_workload_ordering_fully_consistent(self):
        # "the workload-to-workload variation remains the same across
        # the 3 chips"
        assert workload_ordering_consistency(figure_benchmarks()) == 1.0

    def test_too_few_benchmarks_rejected(self):
        with pytest.raises(ConfigurationError):
            workload_ordering_consistency(figure_benchmarks()[:1])


class TestTables:
    def test_table1_lists_this_work(self):
        headers, rows = table1_prior_work()
        assert headers[0] == "ISA"
        assert any("This work" in row for row in [r[-1] for r in rows])
        assert any("X-Gene 2" in r[1] for r in rows)

    def test_table2_matches_live_configuration(self):
        _headers, rows = table2_parameters()
        table = dict(rows)
        assert table["CPU"] == "8 cores"
        assert table["Core clock"] == "2.4 GHz"
        assert "32KB" in table["L1 Instr. cache"]
        assert "Parity" in table["L1 Data cache"]
        assert "256KB" in table["L2 cache"]
        assert "8MB" in table["L3 cache"]

    def test_table3_six_effects(self):
        _headers, rows = table3_effects()
        # reprolint: disable=RPR005 -- pins the rendered Table-3 row order
        assert [row[0] for row in rows] == ["NO", "SDC", "CE", "UE", "AC", "SC"]

    def test_table4_weights(self):
        _headers, rows = table4_weights()
        assert dict(rows) == {"W_SC": "16", "W_AC": "8", "W_SDC": "4",
                              "W_UE": "2", "W_CE": "1", "W_NO": "0"}

    def test_render_table_alignment(self):
        text = render_table(["A", "Bee"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1


class TestFigures:
    def test_figure3_from_anchors(self):
        series = figure3_vmin_series()
        assert set(series) == {"TTT", "TFF", "TSS"}
        assert series["TTT"]["leslie3d"] == 880
        assert series["TSS"]["zeusmp"] == 900

    def test_figure3_measured_overrides(self, bwaves_characterization):
        series = figure3_vmin_series(
            measured={("TTT", "bwaves"): bwaves_characterization})
        # Core 0's measurement replaces the robust-core anchor.
        assert series["TTT"]["bwaves"] == \
            bwaves_characterization.highest_vmin_mv

    def test_figure4_grid_shape(self):
        columns = figure4_region_grid()
        assert len(columns) == 3 * 10 * 8
        column = columns[0]
        assert column.regions[930] is Region.SAFE
        assert column.regions[850] is Region.CRASH

    def test_figure4_chip_averages(self):
        columns = figure4_region_grid()
        averages = figure4_chip_averages(columns)
        assert averages["TFF"][0] < averages["TTT"][0] < averages["TSS"][0]
        for chip in averages:
            mean_vmin, mean_crash = averages[chip]
            assert mean_crash < mean_vmin

    def test_figure5_matrix(self, bwaves_characterization):
        matrix = figure5_severity_map({0: bwaves_characterization})
        voltages = sorted(matrix, reverse=True)
        assert voltages  # non-empty
        values = [matrix[v][0] for v in voltages if matrix[v][0] is not None]
        assert max(values) > 15.0
        assert all(0.0 <= value <= 16.0 for value in values)

    def test_figure7_series_sorted(self):
        from repro.prediction import PredictionReport
        report = PredictionReport(
            target="severity", chip="TTT", core=0,
            selected_features=("VOLTAGE_MV",), r2=0.9,
            rmse_model=2.8, rmse_naive=6.4, n_train=80, n_test=3,
            test_points=(("a@900", 4.0, 3.5), ("b@890", 1.0, 1.2),
                         ("c@880", 9.0, 8.1)),
        )
        series = figure7_prediction_series(report)
        assert [truth for _tag, truth, _pred in series] == [1.0, 4.0, 9.0]

    def test_figure9_series(self):
        points = figure9_series()
        assert [p.chip_voltage_mv for p in points] == \
            [980, 915, 900, 885, 875, 760]


class TestAsciiPlots:
    def test_bar_chart(self):
        text = bar_chart({"TTT": 885, "TFF": 885, "TSS": 900}, unit="mV")
        assert "TSS" in text and "900" in text
        assert text.count("|") == 6

    def test_heatmap(self):
        text = heatmap({905: {0: 4.0, 4: 0.0}, 900: {0: 16.0, 4: 2.0}})
        assert "core0" in text and "core4" in text
        assert "16.0" in text
        assert "." in text  # zero cell placeholder

    def test_scatter(self):
        points = [(0.0, 0.0), (1.0, 1.0), (0.5, 0.6)]
        text = scatter(points, width=20, height=5)
        assert text.count("o") >= 2

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})
        with pytest.raises(ConfigurationError):
            heatmap({})
        with pytest.raises(ConfigurationError):
            scatter([])


class TestClaims:
    def test_all_model_claims_pass(self):
        checks = check_claims()
        failing = [c.claim_id for c in checks if not c.passed]
        assert not failing, failing

    def test_claim_inventory_covers_headlines(self):
        assert "abstract.energy_saving_no_perf_loss" in PAPER_CLAIMS
        assert "fig9.step4_power_pct_figure_variant" in PAPER_CLAIMS
        assert len(PAPER_CLAIMS) >= 12

    def test_subset_selection(self):
        checks = check_claims(only=["s5.chip_wide_saving"])
        assert len(checks) == 1

    def test_render(self):
        text = render_claims(check_claims(only=["s5.chip_wide_saving"]))
        assert "OK" in text and "12.8" in text


# ---------------------------------------------------------------------------
# reprolint -- the RPR001-RPR013 invariant checker
# ---------------------------------------------------------------------------

SIM = "src/repro/core/fixture.py"


def lint_rules(source, path=SIM):
    """Rule ids reprolint reports for a dedented source fixture."""
    return [d.rule for d in lint_source(textwrap.dedent(source), path=path)]


class TestRPR001UnseededRandomness:
    def test_global_numpy_rng_flagged(self):
        assert lint_rules("""
            import numpy as np

            def draw():
                return np.random.normal(0.0, 1.0)
        """) == ["RPR001"]

    def test_unseeded_default_rng_flagged(self):
        assert lint_rules("""
            from numpy.random import default_rng

            rng = default_rng()
        """) == ["RPR001"]

    def test_seeded_generator_clean(self):
        assert lint_rules("""
            import numpy as np

            def draw(seed):
                return np.random.default_rng(seed).normal(0.0, 1.0)
        """) == []

    def test_outside_repro_out_of_scope(self):
        assert lint_rules("""
            import random

            roll = random.random()
        """, path="tools/fixture.py") == []


class TestRPR002WallClockSource:
    def test_wall_clock_in_simulation_path_flagged(self):
        assert lint_rules("""
            import time

            def stamp():
                return time.time()
        """) == ["RPR002"]

    def test_entropy_source_flagged(self):
        assert lint_rules("""
            import uuid

            def run_id():
                return uuid.uuid4()
        """, path="src/repro/parallel/fixture.py") == ["RPR002"]

    def test_non_simulation_package_clean(self):
        assert lint_rules("""
            import time

            def stamp():
                return time.monotonic()
        """, path="src/repro/analysis/fixture.py") == []


class TestRPR003MachineProtocolBoundary:
    def test_concrete_import_outside_boundary_flagged(self):
        rules = lint_rules("""
            from repro.hardware.xgene2 import XGene2Machine
        """, path="src/repro/energy/fixture.py")
        assert "RPR003" in rules

    def test_name_binding_via_package_root_flagged(self):
        rules = lint_rules("""
            from repro.hardware import XGene2Machine

            machine = XGene2Machine("TTT")
        """, path="tests/fixture.py")
        assert rules == ["RPR003"]  # one finding per crossing: the import

    def test_machines_package_is_inside_boundary(self):
        assert lint_rules("""
            from repro.hardware.xgene2 import XGene2Machine
        """, path="src/repro/machines/fixture.py") == []

    def test_spec_layer_consumer_clean(self):
        assert lint_rules("""
            from repro.machines import MachineSpec, build_machine

            machine = build_machine(MachineSpec(chip="TTT", seed=1))
        """, path="examples/fixture.py") == []


class TestRPR004UnitSafety:
    def test_volt_scale_literal_in_mv_slot_flagged(self):
        assert lint_rules("vmin_mv = 0.98\n") == ["RPR004"]

    def test_manual_magnitude_conversion_flagged(self):
        assert lint_rules("""
            def to_volts(vmin_mv):
                return vmin_mv / 1000
        """) == ["RPR004"]

    def test_hardcoded_regulator_step_flagged(self):
        assert lint_rules("""
            def step_down(level_mv):
                return level_mv - 5
        """) == ["RPR004"]

    def test_mixed_unit_arithmetic_flagged(self):
        assert lint_rules("""
            def worst(limit_v, vmin_mv):
                return limit_v - vmin_mv
        """) == ["RPR004"]

    def test_integer_mv_and_named_step_clean(self):
        assert lint_rules("""
            from repro.units import VOLTAGE_STEP_MV

            vmin_mv = 980

            def step_down(level_mv):
                return level_mv - VOLTAGE_STEP_MV
        """) == []

    def test_mv_width_floats_are_ordinary(self):
        # widths/scales (no voltage-level stem) may be sub-volt floats
        assert lint_rules("scale_mv = 1.0\n") == []


class TestRPR005CanonicalEffectConstants:
    def test_weight_table_rehardcode_flagged(self):
        assert lint_rules("""
            WEIGHTS = {"SC": 16.0, "AC": 8.0, "SDC": 4.0,
                       "UE": 2.0, "CE": 1.0, "NO": 0.0}
        """) == ["RPR005"]

    def test_single_weight_constant_flagged(self):
        assert lint_rules("W_SDC = 4.0\n") == ["RPR005"]

    def test_vocabulary_rehardcode_flagged(self):
        assert lint_rules(
            'ORDER = ["NO", "SDC", "CE", "UE", "AC", "SC"]\n'
        ) == ["RPR005"]

    def test_run_count_tallies_clean(self):
        # effect -> observed-count dicts are not the weight table
        assert lint_rules('counts = {"SC": 2, "CE": 1, "SDC": 5}\n') == []

    def test_canonical_import_clean(self):
        assert lint_rules("""
            from repro.effects import SEVERITY_WEIGHTS, EffectType

            w = SEVERITY_WEIGHTS[EffectType.SC]
        """) == []


class TestRPR006ParallelSafety:
    def test_lambda_into_engine_flagged(self):
        assert lint_rules("""
            def run(engine, specs):
                return engine.submit(lambda: specs)
        """) == ["RPR006"]

    def test_closure_into_engine_flagged(self):
        assert lint_rules("""
            from repro.parallel import characterize_many

            def run(specs):
                def task(machine):
                    return machine

                return characterize_many(specs, task)
        """) == ["RPR006"]

    def test_global_mutation_in_repro_task_flagged(self):
        assert lint_rules("""
            COUNTER = 0

            def bump():
                global COUNTER
                COUNTER += 1
        """) == ["RPR006"]

    def test_module_level_task_clean(self):
        assert lint_rules("""
            from repro.parallel import characterize_many

            def task(machine):
                return machine

            def run(specs):
                return characterize_many(specs, task)
        """) == []

    def test_lambda_to_ordinary_call_clean(self):
        assert lint_rules("""
            def order(xs):
                return sorted(xs, key=lambda x: -x)
        """) == []


class TestRPR007SinglePersistencePath:
    def test_json_dump_of_run_records_flagged(self):
        assert lint_rules("""
            import json

            def save(records, handle):
                payload = [RunRecord.to_json_dict(r) for r in records]
                json.dump(payload, handle)
        """) == ["RPR007"]

    def test_csv_writer_of_run_rows_flagged(self):
        assert lint_rules("""
            import csv

            def dump(result, handle):
                writer = csv.writer(handle)
                for record in result.all_records():
                    writer.writerow(record.csv_row())
        """, path="src/repro/analysis/fixture.py") == ["RPR007"]

    def test_serializer_without_run_data_clean(self):
        assert lint_rules("""
            import csv

            def write(filename, header, rows):
                with open(filename, "w", newline="") as handle:
                    writer = csv.writer(handle)
                    writer.writerow(header)
                    writer.writerows(rows)
        """) == []

    def test_store_package_is_the_sanctioned_home(self):
        assert lint_rules("""
            import json

            def append(handle, campaign):
                handle.write(json.dumps(StoredCampaign.to_json_dict(campaign)))
        """, path="src/repro/store/fixture.py") == []

    def test_fleet_manifest_writer_outside_store_flagged(self):
        assert lint_rules("""
            import json

            def snapshot(fleet, handle):
                payload = FleetManifest.to_json_dict(fleet.manifest)
                json.dump(payload, handle)
        """) == ["RPR007"]

    def test_index_serialization_outside_store_flagged(self):
        assert lint_rules("""
            import json

            def answer(index):
                return json.dumps(VminIndex.to_json_dict(index))
        """, path="src/repro/analysis/fixture.py") == ["RPR007"]

    def test_watermark_rewrite_outside_store_flagged(self):
        assert lint_rules("""
            import json

            def rewrite(fleet, handle):
                manifest = fleet.refresh_watermarks()
                json.dump(manifest, handle)
        """) == ["RPR007"]

    def test_fleet_and_index_writers_sanctioned_in_store(self):
        assert lint_rules("""
            import json

            def write_manifest(manifest, handle):
                json.dump(FleetManifest.to_json_dict(manifest), handle)

            def serialize_index(index):
                return json.dumps(StoreIndexes.to_json_dict(index))
        """, path="src/repro/store/fixture.py") == []

    def test_index_reader_without_serializer_clean(self):
        assert lint_rules("""
            def answers(index):
                return [VminIndex.vmin_mv(index, b, c)
                        for b, c in VminIndex.cells(index)]
        """) == []

    def test_results_module_is_the_sanctioned_home(self):
        assert lint_rules("""
            import csv

            def write_runs(handle, records):
                writer = csv.writer(handle)
                for record in records:
                    writer.writerow(RunRecord.csv_row(record))
        """, path="src/repro/core/results.py") == []

    def test_run_data_without_serializer_clean(self):
        assert lint_rules("""
            def tally(result):
                return len(result.all_records())
        """) == []

    def test_outside_repro_out_of_scope(self):
        assert lint_rules("""
            import json

            def save(records, handle):
                json.dump([RunRecord.to_json_dict(r) for r in records], handle)
        """, path="tools/fixture.py") == []


class TestSuppressions:
    def test_trailing_justified_suppression_applies(self):
        src = "vmin_mv = 0.98  # reprolint: disable=RPR004 -- fixture\n"
        assert lint_rules(src) == []

    def test_standalone_comment_shields_next_line(self):
        assert lint_rules("""
            # reprolint: disable=RPR004 -- fixture
            vmin_mv = 0.98
        """) == []

    def test_unjustified_suppression_is_reported_not_applied(self):
        src = "vmin_mv = 0.98  # reprolint: disable=RPR004\n"
        rules = lint_rules(src)
        assert "RPR000" in rules and "RPR004" in rules

    def test_meta_rule_cannot_be_suppressed(self):
        src = "x = 1  # reprolint: disable=RPR000 -- nice try\n"
        assert lint_rules(src) == ["RPR000"]

    def test_unknown_rule_id_is_malformed(self):
        src = "x = 1  # reprolint: disable=BOGUS -- reason\n"
        assert lint_rules(src) == ["RPR000"]

    def test_suppressing_the_wrong_rule_hides_nothing(self):
        src = "vmin_mv = 0.98  # reprolint: disable=RPR001 -- wrong rule\n"
        assert lint_rules(src) == ["RPR004"]

    def test_syntax_error_is_a_meta_finding(self):
        assert lint_rules("def broken(:\n") == ["RPR000"]


class TestRPR008BarePrint:
    def test_print_in_library_module_flagged(self):
        assert lint_rules("""
            def report(result):
                print("vmin:", result)
        """) == ["RPR008"]

    def test_cli_module_allowed(self):
        assert lint_rules("""
            def main():
                print("hello")
        """, path="src/repro/cli.py") == []

    def test_lint_cli_module_allowed(self):
        assert lint_rules("""
            def render():
                print("findings")
        """, path="src/repro/analysis/lint/cli.py") == []

    def test_ascii_plots_allowed(self):
        assert lint_rules("""
            def draw():
                print("#" * 10)
        """, path="src/repro/analysis/ascii_plots.py") == []

    def test_console_progress_allowed(self):
        assert lint_rules("""
            def render():
                print("tasks: 1/2")
        """, path="src/repro/parallel/progress.py") == []

    def test_outside_repro_out_of_scope(self):
        assert lint_rules("""
            print("scripts may print")
        """, path="tools/fixture.py") == []

    def test_shadowed_print_method_not_flagged(self):
        assert lint_rules("""
            def render(doc):
                doc.print()
        """) == []


class TestRPR009CurveEvalInRunLoop:
    def test_curve_eval_in_run_loop_flagged(self):
        assert lint_rules("""
            def execute_runs(sampler, schedule, rng):
                for voltage_mv in schedule:
                    p = sampler.probability(voltage_mv)
                    if rng.random() < p:
                        yield voltage_mv
        """) == ["RPR009"]

    def test_table_method_in_while_loop_flagged(self):
        assert lint_rules("""
            def drain(stack, rng, levels):
                while levels:
                    rates = stack.poisson_rate_table(levels[:1])
                    levels = levels[1:]
                    rng.random()
                    yield rates
        """, path="src/repro/hardware/fixture.py") == ["RPR009"]

    def test_eval_hoisted_before_loop_clean(self):
        assert lint_rules("""
            def execute_runs(sampler, schedule, rng):
                table = sampler.probability_table(schedule)
                for i, voltage_mv in enumerate(schedule):
                    if rng.random() < table["sc"][i]:
                        yield voltage_mv
        """) == []

    def test_function_without_rng_is_setup_not_run_loop(self):
        # Per-campaign compilation legitimately loops over voltages.
        assert lint_rules("""
            def compile_table(sampler, voltages):
                return [sampler.effect_probabilities(v) for v in voltages]

            def compile_rows(stack, voltages):
                rows = []
                for v in voltages:
                    rows.append(stack.single_event_rate(v))
                return rows
        """) == []

    def test_analysis_package_out_of_scope(self):
        assert lint_rules("""
            def replot(curves, voltages, rng):
                for v in voltages:
                    yield curves.probability(v) + rng.random()
        """, path="src/repro/analysis/fixture.py") == []

    def test_unrelated_method_name_clean(self):
        assert lint_rules("""
            def execute(machine, schedule, rng):
                for voltage_mv in schedule:
                    machine.sample(voltage_mv, rng)
        """) == []


class TestRPR010SingleModelPath:
    def test_json_dump_of_model_artifact_flagged(self):
        assert lint_rules("""
            import json

            def save(artifact, handle):
                json.dump(ModelArtifact.to_json_dict(artifact), handle)
        """) == ["RPR010"]

    def test_pickle_of_fitted_estimator_flagged(self):
        assert lint_rules("""
            import pickle

            def stash(path, x, y):
                model = OrdinaryLeastSquares().fit(x, y)
                with open(path, "wb") as handle:
                    pickle.dump(model, handle)
        """, path="src/repro/prediction/fixture.py") == ["RPR010"]

    def test_json_dumps_of_coefficients_flagged(self):
        assert lint_rules("""
            import json

            def export(model):
                return json.dumps(model.coefficients_by_name())
        """, path="src/repro/analysis/fixture.py") == ["RPR010"]

    def test_models_module_is_the_sanctioned_home(self):
        assert lint_rules("""
            import json

            def serialize(artifact):
                return json.dumps(ModelArtifact.to_json_dict(artifact))
        """, path="src/repro/store/models.py") == []

    def test_serializer_without_model_state_clean(self):
        assert lint_rules("""
            import json

            def snapshot(metrics, handle):
                json.dump(metrics.to_json_dict(), handle)
        """) == []

    def test_model_state_without_serializer_clean(self):
        assert lint_rules("""
            def widest(artifact):
                return max(artifact.selected_features, key=len)
        """) == []

    def test_outside_repro_out_of_scope(self):
        assert lint_rules("""
            import pickle

            def stash(model, handle):
                pickle.dump(OrdinaryLeastSquares(), handle)
        """, path="tools/fixture.py") == []


class TestLintRegistry:
    def test_thirteen_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == ["RPR001", "RPR002", "RPR003", "RPR004",
                       "RPR005", "RPR006", "RPR007", "RPR008",
                       "RPR009", "RPR010", "RPR011", "RPR012",
                       "RPR013"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            get_rule("RPR999")

    def test_diagnostics_carry_location_and_render(self):
        (diag,) = lint_source("vmin_mv = 0.98\n", path="src/repro/x.py")
        assert (diag.path, diag.line) == ("src/repro/x.py", 1)
        assert "RPR004" in diag.render() and "unit-safety" in diag.render()

# ---------------------------------------------------------------------------
# reprolint v2 -- whole-program dataflow, cache, SARIF
# ---------------------------------------------------------------------------


def _write_tree(root, files):
    """Materialize a {relative path: dedented source} project tree."""
    for rel, src in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(src))
    return root


def _project_rules(report):
    return [d.rule for d in report.diagnostics]


class TestRPR011SeedProvenance:
    def test_direct_literal_seed_flagged(self):
        assert "RPR011" in lint_rules("""
            import numpy as np

            def make_rng():
                return np.random.default_rng(42)
        """)

    def test_literal_laundered_through_two_modules_flagged(self, tmp_path):
        _write_tree(tmp_path, {
            "src/repro/seedsrc.py": """
                def raw_seed():
                    return 1234
            """,
            "src/repro/seeduse.py": """
                import numpy as np

                from repro.seedsrc import raw_seed

                def launder():
                    return raw_seed()

                def build():
                    return np.random.default_rng(launder())
            """,
        })
        report = lint_paths([str(tmp_path / "src")])
        assert _project_rules(report) == ["RPR011"]
        (diag,) = report.diagnostics
        assert diag.path.endswith("seeduse.py")
        assert "literal" in diag.message

    def test_seedsequence_chain_is_clean(self, tmp_path):
        _write_tree(tmp_path, {
            "src/repro/seedsrc.py": """
                import numpy as np

                def good_seed(root):
                    return np.random.SeedSequence(root).generate_state(1)[0]
            """,
            "src/repro/seeduse.py": """
                import numpy as np

                from repro.seedsrc import good_seed

                def build(root):
                    return np.random.default_rng(good_seed(root))
            """,
        })
        assert lint_paths([str(tmp_path / "src")]).diagnostics == []

    def test_sha256_keyed_seed_is_clean(self):
        assert lint_rules("""
            import hashlib

            import numpy as np

            def build(key):
                digest = hashlib.sha256(key.encode()).digest()
                return np.random.default_rng(
                    int.from_bytes(digest[:8], "little"))
        """) == []

    def test_wallclock_seed_flagged(self):
        findings = lint_rules("""
            import time

            import numpy as np

            def sloppy():
                return np.random.default_rng(int(time.time_ns()))
        """)
        assert "RPR011" in findings

    def test_unknown_provenance_not_flagged(self):
        assert lint_rules("""
            import numpy as np

            def build(seed_from_caller):
                return np.random.default_rng(seed_from_caller)
        """) == []


class TestRPR012CrossModuleUnitFlow:
    def test_volt_named_value_into_mv_param_flagged(self, tmp_path):
        _write_tree(tmp_path, {
            "src/repro/sink.py": """
                def set_level(voltage_mv):
                    return voltage_mv
            """,
            "src/repro/source.py": """
                from repro.sink import set_level

                def run(supply_v):
                    return set_level(supply_v)
            """,
        })
        report = lint_paths([str(tmp_path / "src")])
        assert _project_rules(report) == ["RPR012"]
        (diag,) = report.diagnostics
        assert diag.path.endswith("source.py")
        assert "voltage_mv" in diag.message

    def test_volt_literal_into_level_named_mv_param_flagged(self, tmp_path):
        _write_tree(tmp_path, {
            "src/repro/sink.py": """
                def set_level(voltage_mv):
                    return voltage_mv
            """,
            "src/repro/source.py": """
                from repro.sink import set_level

                def run():
                    return set_level(0.98)
            """,
        })
        assert _project_rules(
            lint_paths([str(tmp_path / "src")])
        ) == ["RPR012"]

    def test_integer_mv_value_is_clean(self, tmp_path):
        _write_tree(tmp_path, {
            "src/repro/sink.py": """
                def set_level(voltage_mv):
                    return voltage_mv
            """,
            "src/repro/source.py": """
                from repro.sink import set_level

                def run(level_mv):
                    return set_level(level_mv)
            """,
        })
        assert lint_paths([str(tmp_path / "src")]).diagnostics == []

    def test_volt_literal_into_scale_param_is_clean(self, tmp_path):
        # Widths/scales are legitimately sub-volt: only *level*-named
        # mV parameters reject volt-scale literals (RPR004's refinement).
        _write_tree(tmp_path, {
            "src/repro/sink.py": """
                def curve(scale_mv):
                    return scale_mv
            """,
            "src/repro/source.py": """
                from repro.sink import curve

                def run():
                    return curve(1.0)
            """,
        })
        assert lint_paths([str(tmp_path / "src")]).diagnostics == []


class TestRPR013ParallelSharedState:
    WORKER_WRITE = {
        "src/repro/parallel/mytasks.py": """
            _CACHE = {}

            def _helper(key, value):
                _CACHE[key] = value

            def run_thing(key):
                _helper(key, 1)
                return key
        """,
    }

    def test_module_dict_write_via_helper_from_entry_flagged(self, tmp_path):
        _write_tree(tmp_path, self.WORKER_WRITE)
        report = lint_paths([str(tmp_path / "src")])
        assert _project_rules(report) == ["RPR013"]
        (diag,) = report.diagnostics
        assert "_CACHE" in diag.message
        assert "run_thing -> _helper" in diag.message

    def test_same_write_without_entry_point_is_clean(self, tmp_path):
        source = self.WORKER_WRITE[
            "src/repro/parallel/mytasks.py"
        ].replace("run_thing", "build_thing")
        _write_tree(
            tmp_path, {"src/repro/parallel/mytasks.py": source}
        )
        assert lint_paths([str(tmp_path / "src")]).diagnostics == []

    def test_submitted_function_is_an_entry_point(self, tmp_path):
        _write_tree(tmp_path, {
            "src/repro/parallel/mytasks.py": """
                _SEEN = set()

                def record(task):
                    _SEEN.add(task)

                def dispatch(executor, tasks):
                    return [executor.submit(record, t) for t in tasks]
            """,
        })
        report = lint_paths([str(tmp_path / "src")])
        assert _project_rules(report) == ["RPR013"]
        assert "_SEEN" in report.diagnostics[0].message

    def test_contextvar_global_is_exempt(self):
        assert lint_rules("""
            from contextvars import ContextVar

            _SESSION = ContextVar("session")

            def _helper(value):
                _SESSION.set(value)

            def run_thing(value):
                _helper(value)
        """, path="src/repro/parallel/fixture.py") == []

    def test_local_shadow_is_clean(self):
        assert lint_rules("""
            _CACHE = {}

            def run_thing(key):
                _CACHE = {}
                _CACHE[key] = 1
                return _CACHE
        """, path="src/repro/parallel/fixture.py") == []


class TestIncrementalCache:
    CHAIN = {
        "src/repro/base.py": """
            def width():
                return 5
        """,
        "src/repro/mid.py": """
            from repro.base import width

            def mid_width():
                return width()
        """,
        "src/repro/top.py": """
            from repro.mid import mid_width

            def top_width():
                return mid_width()
        """,
        "src/repro/leaf.py": """
            def unrelated():
                return 1
        """,
    }

    def test_warm_run_analyzes_zero_files(self, tmp_path):
        _write_tree(tmp_path, self.CHAIN)
        cache = str(tmp_path / "cache.json")
        cold = lint_paths([str(tmp_path / "src")], cache_path=cache)
        assert cold.files_analyzed == 4 and cold.files_cached == 0
        warm = lint_paths([str(tmp_path / "src")], cache_path=cache)
        assert warm.files_analyzed == 0 and warm.files_cached == 4

    def test_edit_reanalyzes_reverse_dependency_cone_only(self, tmp_path):
        _write_tree(tmp_path, self.CHAIN)
        cache = str(tmp_path / "cache.json")
        lint_paths([str(tmp_path / "src")], cache_path=cache)
        base = tmp_path / "src/repro/base.py"
        base.write_text(base.read_text() + "\n# touched\n")
        # base changed; mid imports base, top imports mid -> all three
        # re-analyze; leaf is untouched by the cone.
        cone_run = lint_paths([str(tmp_path / "src")], cache_path=cache)
        assert cone_run.files_analyzed == 3
        assert cone_run.files_cached == 1
        leaf = tmp_path / "src/repro/leaf.py"
        leaf.write_text(leaf.read_text() + "\n# touched\n")
        leaf_run = lint_paths([str(tmp_path / "src")], cache_path=cache)
        assert leaf_run.files_analyzed == 1
        assert leaf_run.files_cached == 3

    def test_cached_findings_match_fresh_ones(self, tmp_path):
        _write_tree(tmp_path, {
            "src/repro/dirty.py": """
                import numpy as np

                vmin_mv = 0.98

                def make_rng():
                    return np.random.default_rng(7)
            """,
        })
        cache = str(tmp_path / "cache.json")
        cold = lint_paths([str(tmp_path / "src")], cache_path=cache)
        warm = lint_paths([str(tmp_path / "src")], cache_path=cache)
        assert cold.diagnostics == warm.diagnostics
        assert warm.files_analyzed == 0
        assert {d.rule for d in warm.diagnostics} >= {"RPR004", "RPR011"}

    def test_select_bypasses_the_cache(self, tmp_path):
        _write_tree(tmp_path, self.CHAIN)
        cache = str(tmp_path / "cache.json")
        lint_paths([str(tmp_path / "src")], cache_path=cache)
        narrowed = lint_paths(
            [str(tmp_path / "src")], select=["RPR004"], cache_path=cache,
        )
        assert narrowed.files_cached == 0

    def test_cache_matches_across_path_spellings(self, tmp_path, monkeypatch):
        # A cache written under one spelling of a path (absolute) must
        # serve a run that spells it differently (relative), and the
        # suppression of an interprocedural finding must still register
        # as earned -- not stale -- on the cached run.
        _write_tree(tmp_path, {
            "src/repro/seedy.py": """
                import numpy as np

                def make():
                    # reprolint: disable=RPR011 -- fixture default
                    return np.random.default_rng(7)
            """,
        })
        cache = str(tmp_path / "cache.json")
        monkeypatch.chdir(tmp_path)
        cold = lint_paths([str(tmp_path / "src")], cache_path=cache)
        assert cold.diagnostics == []
        warm = lint_paths(["src"], cache_path=cache)
        assert warm.files_analyzed == 0 and warm.files_cached == 1
        assert warm.diagnostics == []

    def test_torn_cache_degrades_to_full_analysis(self, tmp_path):
        _write_tree(tmp_path, self.CHAIN)
        cache = tmp_path / "cache.json"
        lint_paths([str(tmp_path / "src")], cache_path=str(cache))
        cache.write_text("{ not json")
        rebuilt = lint_paths([str(tmp_path / "src")], cache_path=str(cache))
        assert rebuilt.files_analyzed == 4


class TestStaleSuppressions:
    def test_stale_suppression_reported_on_full_runs(self, tmp_path):
        _write_tree(tmp_path, {
            "src/repro/probe.py": (
                "x = 1  # reprolint: disable=RPR004 -- shields nothing\n"
            ),
        })
        report = lint_paths([str(tmp_path / "src")])
        (diag,) = report.diagnostics
        assert diag.rule == "RPR000" and diag.name == "stale-suppression"
        assert "RPR004" in diag.message

    def test_no_stale_check_escape_hatch(self, tmp_path):
        _write_tree(tmp_path, {
            "src/repro/probe.py": (
                "x = 1  # reprolint: disable=RPR004 -- shields nothing\n"
            ),
        })
        report = lint_paths([str(tmp_path / "src")], stale_check=False)
        assert report.diagnostics == []

    def test_earning_suppression_is_not_stale(self, tmp_path):
        _write_tree(tmp_path, {
            "src/repro/probe.py": (
                "vmin_mv = 0.98  # reprolint: disable=RPR004 -- fixture\n"
            ),
        })
        assert lint_paths([str(tmp_path / "src")]).diagnostics == []

    def test_partially_stale_rule_list_reports_the_dead_id(self, tmp_path):
        _write_tree(tmp_path, {
            "src/repro/probe.py": (
                "vmin_mv = 0.98"
                "  # reprolint: disable=RPR004,RPR001 -- fixture\n"
            ),
        })
        report = lint_paths([str(tmp_path / "src")])
        (diag,) = report.diagnostics
        assert diag.name == "stale-suppression" and "RPR001" in diag.message

    def test_lint_source_stale_check_opt_in(self):
        src = "x = 1  # reprolint: disable=RPR004 -- shields nothing\n"
        assert lint_source(src, path=SIM) == []
        findings = lint_source(src, path=SIM, stale_check=True)
        assert [d.name for d in findings] == ["stale-suppression"]


class TestSuppressionEdgeCases:
    def test_multiple_rule_ids_in_one_clause(self):
        src = (
            "import numpy as np\n"
            "vmin_mv = 0.98; rng = np.random.default_rng()"
            "  # reprolint: disable=RPR001,RPR004,RPR011 -- fixture\n"
        )
        assert lint_source(src, path=SIM) == []

    def test_suppression_on_a_continuation_line(self):
        src = (
            "vmin_mv = \\\n"
            "    0.98  # reprolint: disable=RPR004 -- fixture\n"
        )
        assert lint_source(src, path=SIM) == []

    def test_continuation_line_without_suppression_still_flags(self):
        src = "vmin_mv = \\\n    0.98\n"
        (diag,) = lint_source(src, path=SIM)
        assert diag.rule == "RPR004" and diag.line == 2

    def test_empty_justification_after_dashes_is_unjustified(self):
        for tail in ("--", "-- "):
            src = f"vmin_mv = 0.98  # reprolint: disable=RPR004 {tail}\n"
            findings = lint_source(src, path=SIM)
            assert sorted(d.name for d in findings) == [
                "unit-safety", "unjustified-suppression",
            ]


class TestSarifOutput:
    #: The load-bearing core of the SARIF 2.1.0 schema: the required
    #: properties GitHub code scanning relies on, condensed from the
    #: OASIS schema (fetching the full one needs the network).
    SCHEMA = {
        "type": "object",
        "required": ["version", "runs"],
        "properties": {
            "version": {"const": "2.1.0"},
            "runs": {
                "type": "array",
                "items": {
                    "type": "object",
                    "required": ["tool"],
                    "properties": {
                        "tool": {
                            "type": "object",
                            "required": ["driver"],
                            "properties": {
                                "driver": {
                                    "type": "object",
                                    "required": ["name"],
                                },
                            },
                        },
                        "results": {
                            "type": "array",
                            "items": {
                                "type": "object",
                                "required": ["message"],
                                "properties": {
                                    "ruleId": {"type": "string"},
                                    "message": {
                                        "type": "object",
                                        "required": ["text"],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    }

    def _document(self, tmp_path):
        from repro.analysis.lint import render_sarif

        _write_tree(tmp_path, {
            "src/repro/dirty.py": "vmin_mv = 0.98\n",
        })
        report = lint_paths([str(tmp_path / "src")])
        return render_sarif(report.diagnostics)

    def test_document_validates_against_schema_core(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(self._document(tmp_path), self.SCHEMA)

    def test_results_carry_rules_and_regions(self, tmp_path):
        doc = self._document(tmp_path)
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"RPR000", "RPR004", "RPR011", "RPR013"} <= rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "RPR004"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("dirty.py")
        assert location["region"]["startLine"] == 1
