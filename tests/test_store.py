"""The journaled campaign store: schema, crash-resume determinism, exports.

The acceptance scenario throughout: kill a journaled grid after *any*
prefix of its tasks, resume it, and get results -- and exported CSV
bytes -- identical to the uninterrupted run.
"""

import json

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.core.campaign import CharacterizationResult
from repro.core.results import ResultStore
from repro.core.runs import CharacterizationSetup, RunRecord
from repro.effects import EffectType
from repro.errors import CampaignError, ConfigurationError
from repro.machines import build_machine
from repro.parallel import (
    MachineSpec,
    ParallelCampaignEngine,
    ProgressReporter,
    derive_task_seed,
)
from repro.store import (
    CampaignManifest,
    CampaignStore,
    JOURNAL_NAME,
    MANIFEST_NAME,
    STORE_FORMAT,
    StoredCampaign,
)
from repro.workloads import get_benchmark

#: Same watchdog-exercising grid as test_parallel: the sweep starts
#: right below bwaves Vmin and descends into the crash region, so
#: resume equivalence covers the watchdog-recovery path too.
CFG = FrameworkConfig(start_mv=905, campaigns=2, runs_per_level=3)
SPEC = MachineSpec(chip="TTT", seed=2017)
CORES = [0, 4]
TOTAL_TASKS = 1 * len(CORES) * CFG.campaigns  # bwaves x {0,4} x 2


def engine(**kwargs):
    return ParallelCampaignEngine(SPEC, CFG, **kwargs)


def run_grid(store=None, resume=False, **kwargs):
    return engine(**kwargs).run(
        [get_benchmark("bwaves")], CORES, store=store, resume=resume)


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted, storeless serial run every test compares to."""
    return run_grid(jobs=1)


@pytest.fixture(scope="module")
def full_store(tmp_path_factory):
    """A completed journaled run plus its exported CSV baseline."""
    directory = tmp_path_factory.mktemp("complete-store")
    run_grid(store=directory, jobs=1)
    baseline = tmp_path_factory.mktemp("baseline-export")
    CampaignStore.open(directory).export_csv(baseline)
    return directory, baseline


def truncated_copy(full_store_dir, tmp_path, keep):
    """A store directory whose journal holds only the first ``keep`` lines,
    simulating a run killed after that many completed tasks."""
    target = tmp_path / "killed"
    target.mkdir()
    manifest = (full_store_dir / MANIFEST_NAME).read_text()
    (target / MANIFEST_NAME).write_text(manifest)
    lines = (full_store_dir / JOURNAL_NAME).read_text().splitlines(keepends=True)
    (target / JOURNAL_NAME).write_text("".join(lines[:keep]))
    return target


class TestManifest:
    def manifest(self):
        return CampaignManifest(
            spec=SPEC, config=CFG, workloads=("bwaves",), cores=tuple(CORES))

    def test_json_round_trip(self):
        manifest = self.manifest()
        data = manifest.to_json_dict()
        assert data["format"] == STORE_FORMAT
        assert data["spec_digest"] == SPEC.digest()
        assert CampaignManifest.from_json_dict(data) == manifest

    def test_unknown_format_rejected(self):
        data = self.manifest().to_json_dict()
        data["format"] = "repro-campaign/v999"
        with pytest.raises(CampaignError, match="format"):
            CampaignManifest.from_json_dict(data)

    def test_tampered_spec_digest_rejected(self):
        data = self.manifest().to_json_dict()
        data["spec_digest"] = "0" * 64
        with pytest.raises(CampaignError, match="digest"):
            CampaignManifest.from_json_dict(data)

    def test_open_digest_mismatch_names_both_digests_and_path(self, tmp_path):
        """A tampered on-disk manifest is rejected with a message naming
        the pinned digest, the recomputed digest and the offending file
        -- the debugging handles a fleet operator needs to find which
        shard was edited."""
        CampaignStore.create(tmp_path, SPEC, CFG, ["bwaves"], CORES)
        manifest_path = tmp_path / MANIFEST_NAME
        data = json.loads(manifest_path.read_text())
        data["spec_digest"] = "0" * 64
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(CampaignError) as excinfo:
            CampaignStore.open(tmp_path)
        message = str(excinfo.value)
        assert "0" * 64 in message
        assert SPEC.digest() in message
        assert str(manifest_path) in message

    def test_expected_keys_in_reference_serial_order(self):
        manifest = CampaignManifest(
            spec=SPEC, config=CFG, workloads=("bwaves", "mcf"), cores=(0, 4))
        keys = manifest.expected_keys()
        assert keys[:4] == [
            ("bwaves", 0, 1), ("bwaves", 0, 2),
            ("bwaves", 4, 1), ("bwaves", 4, 2),
        ]
        assert len(keys) == 2 * 2 * CFG.campaigns

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignManifest(
                spec=SPEC, config=CFG, workloads=(), cores=tuple(CORES))


class TestRunRecordCodecs:
    def record(self, **overrides):
        fields = dict(
            chip="TTT", benchmark="bwaves",
            setup=CharacterizationSetup(voltage_mv=905, freq_mhz=2400, core=4),
            campaign_index=2, run_index=3,
            effects=frozenset({EffectType.SDC, EffectType.CE}),
            exit_code=None, output_matches=None,
            edac_ce=7, edac_ue=1, watchdog_intervened=True,
            detail={"mismatched_lines": 12},
        )
        fields.update(overrides)
        return RunRecord(**fields)

    def test_json_round_trip_is_exact(self):
        record = self.record()
        rebuilt = RunRecord.from_json_dict(record.to_json_dict())
        assert rebuilt == record
        assert rebuilt.detail == {"mismatched_lines": 12}

    def test_json_survives_serialization(self):
        record = self.record(exit_code=139, output_matches=False)
        payload = json.dumps(record.to_json_dict(), sort_keys=True)
        assert RunRecord.from_json_dict(json.loads(payload)) == record

    def test_malformed_json_dict_rejected(self):
        with pytest.raises(CampaignError, match="malformed"):
            RunRecord.from_json_dict({"chip": "TTT"})

    def test_csv_row_round_trip(self):
        record = self.record(detail={})
        row = {key: str(value) for key, value in record.csv_row().items()}
        assert RunRecord.from_csv_row(row) == record

    def test_malformed_csv_row_rejected(self):
        with pytest.raises(CampaignError, match="malformed"):
            RunRecord.from_csv_row({"chip": "TTT", "core": "not-an-int"})


class TestStoredCampaign:
    def stored(self, reference):
        result = reference.results[("bwaves", 0)]
        campaign = result.campaigns[0]
        return StoredCampaign(
            benchmark="bwaves", core=0,
            campaign_index=campaign.campaign_index,
            seed=derive_task_seed(SPEC.seed, "bwaves", 0, 1),
            freq_mhz=campaign.freq_mhz, interventions=3,
            raw_log="=== RUN ...\n", records=campaign.records,
        )

    def test_json_round_trip(self, reference):
        stored = self.stored(reference)
        assert StoredCampaign.from_json_dict(stored.to_json_dict()) == stored

    def test_campaign_result_reconstruction(self, reference):
        stored = self.stored(reference)
        assert stored.campaign_result() == reference.results[
            ("bwaves", 0)].campaigns[0]

    def test_empty_records_rejected(self, reference):
        with pytest.raises(CampaignError):
            self.stored(reference).__class__(
                benchmark="bwaves", core=0, campaign_index=1, seed=1,
                freq_mhz=2400, interventions=0, raw_log="", records=())


class TestJournalIntegrity:
    def test_create_twice_rejected(self, tmp_path):
        CampaignStore.create(tmp_path, SPEC, CFG, ["bwaves"], CORES)
        with pytest.raises(CampaignError, match="already exists"):
            CampaignStore.create(tmp_path, SPEC, CFG, ["bwaves"], CORES)

    def test_open_missing_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign store"):
            CampaignStore.open(tmp_path / "nowhere")

    def test_corrupt_manifest_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(CampaignError, match="corrupt"):
            CampaignStore.open(tmp_path)

    def test_torn_trailing_line_tolerated(self, full_store, tmp_path):
        full_dir, _ = full_store
        target = truncated_copy(full_dir, tmp_path, keep=2)
        full_line = (full_dir / JOURNAL_NAME).read_text().splitlines()[2]
        with (target / JOURNAL_NAME).open("a") as handle:
            handle.write(full_line[: len(full_line) // 2])  # torn append
        store = CampaignStore.open(target)
        assert len(store.completed_keys()) == 2

    def test_torn_tail_truncated_before_next_append(
            self, reference, full_store, tmp_path):
        """A torn tail must not merge with the next appended record."""
        full_dir, _ = full_store
        target = truncated_copy(full_dir, tmp_path, keep=1)
        full_line = (full_dir / JOURNAL_NAME).read_text().splitlines()[1]
        with (target / JOURNAL_NAME).open("a") as handle:
            handle.write(full_line[: len(full_line) // 2])  # crash mid-append
        store = CampaignStore.open(target)
        campaign = reference.results[("bwaves", 0)].campaigns[1]
        store.append_campaign(campaign, "log\n", seed=1, interventions=0)
        lines = (target / JOURNAL_NAME).read_text().splitlines()
        assert len(lines) == 2
        for line in lines:  # the fragment is gone, every line parses
            json.loads(line)
        assert len(CampaignStore.open(target).completed_keys()) == 2

    def test_parseable_unterminated_tail_treated_as_torn(
            self, full_store, tmp_path):
        """A complete JSON line without its newline is still an
        interrupted append: it is dropped, not merged into."""
        full_dir, _ = full_store
        target = truncated_copy(full_dir, tmp_path, keep=2)
        journal = target / JOURNAL_NAME
        journal.write_text(journal.read_text()[:-1])  # strip final newline
        store = CampaignStore.open(target)
        assert len(store.completed_keys()) == 1

    def test_mid_file_corruption_rejected(self, full_store, tmp_path):
        full_dir, _ = full_store
        target = truncated_copy(full_dir, tmp_path, keep=TOTAL_TASKS)
        lines = (target / JOURNAL_NAME).read_text().splitlines(keepends=True)
        lines[1] = "{torn mid-file line}\n"
        (target / JOURNAL_NAME).write_text("".join(lines))
        with pytest.raises(CampaignError, match="corrupt journal line 2"):
            CampaignStore.open(target)

    def test_duplicate_append_rejected(self, reference, tmp_path):
        store = CampaignStore.create(tmp_path, SPEC, CFG, ["bwaves"], CORES)
        campaign = reference.results[("bwaves", 0)].campaigns[0]
        store.append_campaign(campaign, "log\n", seed=1, interventions=0)
        with pytest.raises(CampaignError, match="already journaled"):
            store.append_campaign(campaign, "log\n", seed=1, interventions=0)

    def test_out_of_grid_append_rejected(self, reference, tmp_path):
        store = CampaignStore.create(tmp_path, SPEC, CFG, ["bwaves"], [0])
        stray = reference.results[("bwaves", 4)].campaigns[0]
        with pytest.raises(CampaignError, match="not part of this store"):
            store.append_campaign(stray, "log\n", seed=1, interventions=0)

    def test_validate_run_rejects_different_seed_material(self, full_store):
        store = CampaignStore.open(full_store[0])
        with pytest.raises(CampaignError, match="spec"):
            store.validate_run(
                MachineSpec(chip="TTT", seed=1), CFG, ["bwaves"], CORES)

    def test_validate_run_rejects_different_grid(self, full_store):
        store = CampaignStore.open(full_store[0])
        with pytest.raises(CampaignError, match="core grid"):
            store.validate_run(SPEC, CFG, ["bwaves"], [0])


class TestResumeDeterminism:
    """Acceptance: kill after any prefix, resume, get identical bytes."""

    @pytest.mark.parametrize("kill_point", range(TOTAL_TASKS))
    def test_resume_bit_identical_after_any_kill_point(
            self, reference, full_store, tmp_path, kill_point):
        full_dir, baseline = full_store
        target = truncated_copy(full_dir, tmp_path, keep=kill_point)
        report = run_grid(store=target, resume=True, jobs=1)
        assert report.tasks_skipped == kill_point
        assert report.tasks_run == TOTAL_TASKS - kill_point
        assert report.results == reference.results
        assert report.raw_logs == reference.raw_logs
        assert report.interventions == reference.interventions > 0
        export = tmp_path / "export"
        CampaignStore.open(target).export_csv(export)
        for name in ("runs.csv", "severity.csv"):
            assert (export / name).read_bytes() == \
                (baseline / name).read_bytes()

    def test_torn_tail_then_resume_then_reopen(
            self, reference, full_store, tmp_path):
        """The reviewer scenario: crash mid-append leaves a torn tail,
        resume appends the remaining tasks, and the store must still
        open cleanly afterwards (no merged corrupt line)."""
        full_dir, baseline = full_store
        target = truncated_copy(full_dir, tmp_path, keep=1)
        lines = (full_dir / JOURNAL_NAME).read_text().splitlines()
        with (target / JOURNAL_NAME).open("a") as handle:
            handle.write(lines[1][: len(lines[1]) // 2])  # crash mid-append
        report = run_grid(store=target, resume=True, jobs=1)
        assert report.tasks_skipped == 1
        assert report.results == reference.results
        store = CampaignStore.open(target)  # would raise pre-truncation
        assert store.is_complete()
        export = tmp_path / "export"
        store.export_csv(export)
        for name in ("runs.csv", "severity.csv"):
            assert (export / name).read_bytes() == \
                (baseline / name).read_bytes()

    def test_resume_of_complete_store_replays_everything(
            self, reference, full_store, tmp_path):
        report = run_grid(store=full_store[0], resume=True, jobs=1)
        assert report.tasks_skipped == TOTAL_TASKS
        assert report.tasks_run == 0
        assert report.results == reference.results

    def test_resume_with_parallel_backend_matches(
            self, reference, full_store, tmp_path):
        target = truncated_copy(full_store[0], tmp_path, keep=1)
        report = run_grid(store=target, resume=True, jobs=2, backend="thread")
        assert report.results == reference.results
        assert report.raw_logs == reference.raw_logs

    def test_journaled_store_without_resume_rejected(self, full_store):
        with pytest.raises(CampaignError, match="resume"):
            run_grid(store=full_store[0], resume=False, jobs=1)

    def test_resume_without_store_rejected(self):
        with pytest.raises(ConfigurationError, match="store"):
            run_grid(store=None, resume=True, jobs=1)

    def test_foreign_seed_material_rejected_on_replay(
            self, full_store, tmp_path):
        target = truncated_copy(full_store[0], tmp_path, keep=2)
        lines = (target / JOURNAL_NAME).read_text().splitlines(keepends=True)
        data = json.loads(lines[0])
        data["seed"] += 1
        lines[0] = json.dumps(data, sort_keys=True) + "\n"
        (target / JOURNAL_NAME).write_text("".join(lines))
        with pytest.raises(CampaignError, match="seed"):
            run_grid(store=target, resume=True, jobs=1)

    def test_real_interruption_then_resume(self, reference, full_store,
                                           tmp_path):
        """Not a simulated prefix: actually kill a running grid mid-way
        (via its progress stream), then resume the survivor directory."""

        class KillSwitch(ProgressReporter):
            def __init__(self, after):
                self.after = after
                self.seen = 0

            def on_progress(self, event):
                self.seen += 1
                if self.seen >= self.after:
                    raise RuntimeError("power loss")

        target = tmp_path / "interrupted"
        with pytest.raises(RuntimeError, match="power loss"):
            engine(jobs=1, chunk_size=1, progress=KillSwitch(2)).run(
                [get_benchmark("bwaves")], CORES, store=target)
        survivor = CampaignStore.open(target)
        assert 0 < len(survivor.completed_keys()) < TOTAL_TASKS
        report = run_grid(store=target, resume=True, jobs=1)
        assert report.results == reference.results
        export = tmp_path / "export"
        CampaignStore.open(target).export_csv(export)
        for name in ("runs.csv", "severity.csv"):
            assert (export / name).read_bytes() == \
                (full_store[1] / name).read_bytes()


class TestStoreConsumers:
    def test_from_store_round_trips_severity_exactly(
            self, reference, full_store):
        result = CharacterizationResult.from_store(full_store[0], "bwaves", 0)
        original = reference.results[("bwaves", 0)]
        assert result.severity_by_voltage() == original.severity_by_voltage()
        assert result.highest_vmin_mv == original.highest_vmin_mv
        assert result.highest_crash_mv == original.highest_crash_mv

    def test_result_for_incomplete_cell_rejected(self, full_store, tmp_path):
        target = truncated_copy(full_store[0], tmp_path, keep=1)
        store = CampaignStore.open(target)
        with pytest.raises(CampaignError):
            store.result_for("bwaves", 4)

    def test_exported_runs_csv_reads_back_typed(self, full_store, tmp_path):
        CampaignStore.open(full_store[0]).export_csv(tmp_path)
        rows = ResultStore(tmp_path).read_runs_csv()
        assert rows and all(isinstance(row, RunRecord) for row in rows)
        assert {row.setup.core for row in rows} == set(CORES)

    def test_framework_characterize_many_journals_and_resumes(
            self, reference, tmp_path):
        machine = build_machine(SPEC)
        framework = CharacterizationFramework(machine, CFG)
        first = framework.characterize_many(
            [get_benchmark("bwaves")], CORES, jobs=1, store=tmp_path)
        assert (tmp_path / MANIFEST_NAME).exists()
        assert CampaignStore.open(tmp_path).is_complete()
        resumed = CharacterizationFramework(
            build_machine(SPEC), CFG).characterize_many(
            [get_benchmark("bwaves")], CORES, jobs=1,
            store=tmp_path, resume=True)
        assert first == resumed
        assert resumed[("bwaves", 0)].severity_by_voltage() == \
            reference.results[("bwaves", 0)].severity_by_voltage()


class TestKernelPathStoreEquivalence:
    """The batch kernel must journal byte-identical store contents.

    The acceptance scenario of this module rerun through
    ``use_kernel=True``: persistence happens downstream of campaign
    execution, so the kernel's bit-identical RunRecord contract must
    survive all the way into the journal bytes on disk.
    """

    def test_journal_bytes_identical_across_paths(self, tmp_path):
        journals = {}
        for use_kernel in (False, True):
            directory = tmp_path / ("kernel" if use_kernel else "scalar")
            directory.mkdir()
            run_grid(store=directory, jobs=1, use_kernel=use_kernel)
            journals[use_kernel] = (directory / JOURNAL_NAME).read_bytes()
        assert journals[False] == journals[True]

    def test_kernel_journal_resumes_on_scalar_path(self, tmp_path):
        # A journal written by the kernel path must be resumable by the
        # scalar path (and vice versa): the store records observables,
        # not which execution path produced them.
        run_grid(store=tmp_path, jobs=1, use_kernel=True)
        killed = truncated_copy(tmp_path, tmp_path, keep=2)
        resumed = run_grid(store=killed, resume=True, jobs=1,
                           use_kernel=False)
        full = run_grid(jobs=1, use_kernel=True)
        assert resumed.results == full.results
        assert (killed / JOURNAL_NAME).read_bytes() == \
            (tmp_path / JOURNAL_NAME).read_bytes()
