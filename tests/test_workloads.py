"""Workload models: suite, traits, stress identity, self-tests, generator."""

import pytest

from repro.errors import ConfigurationError, UnknownBenchmarkError
from repro.faults.models import FunctionalUnit
from repro.workloads import (
    SPEC2006_SUITE,
    SyntheticWorkloadGenerator,
    all_programs,
    figure_benchmarks,
    get_benchmark,
    get_program,
    reference_output,
    runtime_seconds,
)
from repro.workloads.benchmark import (
    WorkloadTraits,
    latent_stress_for,
    solve_traits_for_stress,
    stress_from_traits,
)
from repro.workloads.selftests import SELF_TESTS, cache_tests, pipeline_tests
from repro.workloads.spec2006 import EXCLUDED_BENCHMARKS


class TestSuiteShape:
    def test_26_benchmarks_40_programs(self):
        # Section 4.3.1: 26 benchmarks with all inputs = 40 programs.
        assert len(SPEC2006_SUITE) == 26
        assert len(all_programs()) == 40

    def test_three_excluded(self):
        assert len(EXCLUDED_BENCHMARKS) == 3
        for name in EXCLUDED_BENCHMARKS:
            with pytest.raises(UnknownBenchmarkError):
                get_benchmark(name)

    def test_figure_benchmarks(self):
        names = [b.name for b in figure_benchmarks()]
        assert names == ["bwaves", "cactusADM", "dealII", "gromacs",
                         "leslie3d", "mcf", "milc", "namd", "soplex",
                         "zeusmp"]

    def test_program_lookup(self):
        assert get_program("gcc/200").input_set == "200"
        assert get_program("bwaves").input_set == "ref"
        with pytest.raises(UnknownBenchmarkError):
            get_program("gcc/999")

    def test_unknown_benchmark(self):
        with pytest.raises(UnknownBenchmarkError):
            get_benchmark("doom")


class TestStressIdentity:
    def test_identity_holds_for_suite(self):
        from repro.workloads.benchmark import _fixed_contribution
        for bench in SPEC2006_SUITE.values():
            implied = stress_from_traits(bench.traits)
            # The traits can only express stress within the template's
            # feasible band; large latent offsets clip at its edges.
            fixed = _fixed_contribution(bench.traits)
            expressible = min(max(bench.visible_stress, fixed), fixed + 0.6)
            assert implied == pytest.approx(expressible, abs=0.03), bench.name

    def test_latent_deterministic(self):
        assert latent_stress_for("bwaves") == latent_stress_for("bwaves")
        assert latent_stress_for("bwaves") != latent_stress_for("mcf")

    def test_latent_bounded(self):
        for bench in SPEC2006_SUITE.values():
            assert -0.45 <= bench.latent_stress <= 0.45

    def test_solver_hits_target(self):
        base = WorkloadTraits()
        for target in (0.2, 0.4, 0.6):
            solved = solve_traits_for_stress(base, target)
            assert stress_from_traits(solved) == pytest.approx(target, abs=1e-6)

    def test_solver_rejects_unreachable_without_clamp(self):
        # A memory-light, branch-heavy template has a large fixed
        # contribution; stress 0 is unreachable.
        base = WorkloadTraits(load_ratio=0.10, branch_ratio=0.25,
                              btb_misp_rate=0.02)
        with pytest.raises(ConfigurationError):
            solve_traits_for_stress(base, 0.0)

    def test_solver_clamps_when_asked(self):
        base = WorkloadTraits(load_ratio=0.10, branch_ratio=0.25,
                              btb_misp_rate=0.02)
        solved = solve_traits_for_stress(base, 0.0, clamp=True)
        assert stress_from_traits(solved) >= 0.0

    def test_traits_validated(self):
        with pytest.raises(ConfigurationError):
            WorkloadTraits(ipc=-1.0)
        with pytest.raises(ConfigurationError):
            WorkloadTraits(load_ratio=1.5)


class TestPrograms:
    def test_input_sets_perturb_stress_slightly(self):
        ref = get_program("gcc")
        alt = get_program("gcc/166")
        assert ref.stress != alt.stress
        assert abs(ref.stress - alt.stress) <= 0.031

    def test_input_sets_perturb_traits_consistently(self):
        alt = get_program("gcc/166")
        implied = stress_from_traits(alt.traits)
        visible = min(1.0, max(0.0, alt.stress - alt.benchmark.latent_stress))
        assert implied == pytest.approx(visible, abs=0.06)

    def test_ref_program_traits_are_benchmark_traits(self):
        assert get_program("bwaves").traits == get_benchmark("bwaves").traits

    def test_unknown_input_rejected(self):
        from repro.workloads.benchmark import Program
        with pytest.raises(ConfigurationError):
            Program(benchmark=get_benchmark("bwaves"), input_set="train")


class TestUnitStress:
    def test_fp_benchmark_stresses_fpu(self):
        leslie = get_benchmark("leslie3d")
        assert leslie.unit_stress[FunctionalUnit.FPU] > \
            leslie.unit_stress[FunctionalUnit.ALU] * 0.5

    def test_memory_benchmark_stresses_lsu(self):
        mcf = get_benchmark("mcf")
        assert mcf.unit_stress[FunctionalUnit.LSU] > 0.8
        assert mcf.unit_stress[FunctionalUnit.FPU] < 0.2


class TestSelfTests:
    def test_five_self_tests(self):
        assert len(SELF_TESTS) == 5

    def test_pipeline_tests_are_high_stress(self):
        # Section 3.4: ALU/FPU tests expose SDCs at high voltages.
        for test in pipeline_tests():
            assert test.stress >= 0.9

    def test_cache_tests_are_low_stress(self):
        # Cache bit-cells "safely operate at higher voltages": the march
        # tests only fail far lower.
        for test in cache_tests():
            assert test.stress <= 0.1

    def test_cache_tests_stress_their_array(self):
        by_name = dict(SELF_TESTS)
        assert by_name["l1-march"].unit_stress[FunctionalUnit.L1_SRAM] == 1.0
        assert by_name["l2-march"].unit_stress[FunctionalUnit.L2_SRAM] == 1.0
        assert by_name["l3-march"].unit_stress[FunctionalUnit.L3_SRAM] == 1.0


class TestGenerator:
    def test_generated_workloads_internally_consistent(self):
        gen = SyntheticWorkloadGenerator(seed=3)
        for bench in gen.draw_many(100):
            implied = stress_from_traits(bench.traits)
            assert implied == pytest.approx(bench.stress, abs=1e-6)

    def test_pinned_stress(self):
        gen = SyntheticWorkloadGenerator(seed=3)
        for target in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert gen.draw(stress=target).stress == pytest.approx(target, abs=0.01)

    def test_reproducible(self):
        first = SyntheticWorkloadGenerator(seed=9).draw_many(5)
        second = SyntheticWorkloadGenerator(seed=9).draw_many(5)
        assert [b.traits for b in first] == [b.traits for b in second]

    def test_invalid_inputs_rejected(self):
        gen = SyntheticWorkloadGenerator()
        with pytest.raises(ConfigurationError):
            gen.draw(stress=1.5)
        with pytest.raises(ConfigurationError):
            gen.draw_many(-1)


class TestExecutionArithmetic:
    def test_runtime_formula(self):
        prog = get_program("bwaves")
        runtime = runtime_seconds(prog, 2400)
        expected = prog.traits.instructions / (prog.traits.ipc * 2400e6)
        assert runtime == pytest.approx(expected)

    def test_runtime_doubles_at_half_frequency(self):
        prog = get_program("mcf")
        assert runtime_seconds(prog, 1200) == pytest.approx(
            2 * runtime_seconds(prog, 2400))

    def test_reference_output_stable_and_distinct(self):
        assert reference_output(get_program("mcf")) == \
            reference_output(get_program("mcf"))
        assert reference_output(get_program("mcf")) != \
            reference_output(get_program("bwaves"))

    def test_corrupted_output_differs(self):
        from repro.workloads.execution import corrupted_output
        prog = get_program("mcf")
        assert corrupted_output(prog, 1) != reference_output(prog)
        assert corrupted_output(prog, 1) != corrupted_output(prog, 2)
