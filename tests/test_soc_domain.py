"""The PCP/SoC domain undervolting extension study."""

from collections import Counter

import pytest

from repro.data.calibration import CHIP_NAMES, chip_calibration
from repro.effects import EffectType
# reprolint: disable=RPR003 -- exercises the concrete machine's SoC domain
from repro.hardware import MachineState, XGene2Machine
from repro.units import SOC_NOMINAL_MV
from repro.workloads import get_benchmark


def sweep_soc(machine, voltage_mv, runs=30):
    bench = get_benchmark("gromacs")
    counts = Counter()
    for _ in range(runs):
        if machine.state is not MachineState.RUNNING:
            machine.press_reset()
        machine.slimpro.set_soc_voltage_mv(voltage_mv)
        outcome = machine.run_program(bench, core=0)
        for effect in outcome.effects:
            counts[effect] += 1
    return counts


class TestAnchors:
    def test_every_chip_has_a_soc_anchor(self):
        for chip in CHIP_NAMES:
            anchor = chip_calibration(chip).soc_vmin_mv
            assert 700 < anchor < SOC_NOMINAL_MV

    def test_corner_ordering_matches_core_domains(self):
        # Fast corner lowest, slow corner highest -- same silicon.
        assert chip_calibration("TFF").soc_vmin_mv < \
            chip_calibration("TTT").soc_vmin_mv < \
            chip_calibration("TSS").soc_vmin_mv


class TestBehaviour:
    @pytest.fixture()
    def machine(self):
        m = XGene2Machine("TTT", seed=4)
        m.power_on()
        return m

    def test_safe_at_and_above_soc_vmin(self, machine):
        anchor = machine.chip.calibration.soc_vmin_mv
        counts = sweep_soc(machine, anchor)
        assert counts[EffectType.NO] == sum(counts.values())

    def test_ce_band_below_soc_vmin(self, machine):
        anchor = machine.chip.calibration.soc_vmin_mv
        counts = sweep_soc(machine, anchor - 10, runs=60)
        assert counts[EffectType.CE] > 0
        assert counts[EffectType.SC] == 0

    def test_crash_region_below_the_ce_band(self, machine):
        anchor = machine.chip.calibration.soc_vmin_mv
        counts = sweep_soc(machine, anchor - 30, runs=20)
        assert counts[EffectType.SC] == 20

    def test_soc_ce_attributed_to_l3(self, machine):
        anchor = machine.chip.calibration.soc_vmin_mv
        machine.slimpro.set_soc_voltage_mv(anchor - 10)
        bench = get_benchmark("gromacs")
        for _ in range(60):
            if machine.state is not MachineState.RUNNING:
                machine.press_reset()
                machine.slimpro.set_soc_voltage_mv(anchor - 10)
            outcome = machine.run_program(bench, core=0)
            if EffectType.CE in outcome.effects:
                by_location = machine.edac.counters_by_location()
                assert by_location.get(("ce", "L3"), 0) > 0
                return
        pytest.fail("no SoC corrected error observed")

    def test_soc_crash_is_a_real_hang(self, machine):
        machine.slimpro.set_soc_voltage_mv(
            machine.chip.calibration.soc_vmin_mv - 40)
        outcome = machine.run_program(get_benchmark("gromacs"), core=0)
        assert outcome.effects == frozenset({EffectType.SC})
        assert outcome.detail.get("soc_domain") == 1
        assert machine.state is MachineState.HUNG

    def test_core_domain_unaffected_by_safe_soc_undervolt(self, machine):
        """Scaling the SoC domain to its Vmin leaves the cores' own
        characterization untouched -- the domains are independent."""
        machine.slimpro.set_soc_voltage_mv(
            machine.chip.calibration.soc_vmin_mv)
        outcome = machine.run_program(get_benchmark("bwaves"), core=0)
        assert outcome.effects == frozenset({EffectType.NO})

    def test_soc_undervolting_saves_power(self, machine):
        anchor = machine.chip.calibration.soc_vmin_mv
        nominal = machine.power_model.chip_power_w(980, [2400] * 4)
        scaled = machine.power_model.chip_power_w(
            980, [2400] * 4, soc_voltage_mv=anchor)
        assert scaled < nominal
        # ~6 W SoC budget scaled by (870/950)^2: ~0.9 W saved.
        assert nominal - scaled == pytest.approx(
            6.0 * (1 - (anchor / 950) ** 2), rel=0.05)
