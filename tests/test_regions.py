"""Safe/unsafe/crash region extraction (Section 3.1)."""

import pytest

from repro.core.regions import (
    OperatingRegions,
    Region,
    campaign_vmins,
    merge_counts,
    region_map,
    regions_from_counts,
)
# Imported under an alias: the original name matches pytest's test-
# function pattern and would be collected as a test.
from repro.core.regions import tested_voltages as voltages_of
from repro.effects import EffectType
from repro.errors import CampaignError


def counts(no=0, sdc=0, ce=0, ue=0, ac=0, sc=0):
    return {
        EffectType.NO: no, EffectType.SDC: sdc, EffectType.CE: ce,
        EffectType.UE: ue, EffectType.AC: ac, EffectType.SC: sc,
    }


@pytest.fixture()
def typical_sweep():
    """A bwaves-like sweep: clean, then SDCs, then crashes."""
    return {
        915: counts(no=10),
        910: counts(no=10),
        905: counts(no=8, sdc=2),
        900: counts(sdc=10),
        895: counts(sdc=8, ce=3),
        890: counts(sdc=5, ac=3, ce=4, no=2),
        885: counts(ac=4, sc=2, ce=4, no=4),
        880: counts(sc=10),
    }


class TestExtraction:
    def test_vmin_above_first_abnormal(self, typical_sweep):
        regions = regions_from_counts(typical_sweep)
        assert regions.vmin_mv == 910
        assert not regions.censored

    def test_crash_is_highest_sc_level(self, typical_sweep):
        assert regions_from_counts(typical_sweep).crash_mv == 885

    def test_classification(self, typical_sweep):
        regions = regions_from_counts(typical_sweep)
        assert regions.classify(915) is Region.SAFE
        assert regions.classify(910) is Region.SAFE
        assert regions.classify(905) is Region.UNSAFE
        assert regions.classify(890) is Region.UNSAFE
        assert regions.classify(885) is Region.CRASH
        assert regions.classify(880) is Region.CRASH

    def test_unsafe_width(self, typical_sweep):
        regions = regions_from_counts(typical_sweep)
        # 905, 900, 895, 890 are unsafe: four 5 mV steps.
        assert regions.unsafe_width_mv == 20

    def test_guardband(self, typical_sweep):
        assert regions_from_counts(typical_sweep).guardband_mv(980) == 70

    def test_clean_sweep_censored(self):
        regions = regions_from_counts({v: counts(no=10) for v in (910, 905, 900)})
        assert regions.censored
        assert regions.vmin_mv == 900  # only an upper bound

    def test_no_crash_observed(self):
        regions = regions_from_counts({
            910: counts(no=10), 905: counts(sdc=5, no=5),
        })
        assert regions.crash_mv is None
        assert regions.classify(905) is Region.UNSAFE

    def test_abnormal_at_top_rejected(self):
        with pytest.raises(CampaignError):
            regions_from_counts({910: counts(sdc=1), 905: counts(no=10)})

    def test_empty_rejected(self):
        with pytest.raises(CampaignError):
            regions_from_counts({})

    def test_non_monotone_handled_conservatively(self):
        # A clean level below an abnormal one does not lower the Vmin.
        regions = regions_from_counts({
            915: counts(no=10),
            910: counts(sdc=1, no=9),
            905: counts(no=10),  # lucky campaign
            900: counts(sdc=10),
        })
        assert regions.vmin_mv == 915

    def test_crash_only_sweep(self):
        # The 1.2 GHz regime: nothing but crashes below the safe Vmin.
        regions = regions_from_counts({
            765: counts(no=10),
            760: counts(no=10),
            755: counts(sc=3, no=7),
            750: counts(sc=10),
        })
        assert regions.vmin_mv == 760
        assert regions.crash_mv == 755
        assert regions.unsafe_width_mv == 0


class TestHelpers:
    def test_region_map(self, typical_sweep):
        regions = regions_from_counts(typical_sweep)
        mapping = region_map(regions, typical_sweep)
        assert mapping[915] is Region.SAFE
        assert mapping[880] is Region.CRASH

    def test_campaign_vmins(self):
        campaigns = [
            {910: counts(no=10), 905: counts(sdc=1, no=9)},
            {910: counts(no=10), 905: counts(no=10)},
        ]
        assert campaign_vmins(campaigns) == [910, 905]

    def test_merge_counts_pools(self):
        merged = merge_counts([
            {905: counts(no=10)},
            {905: counts(sdc=2, no=8)},
        ])
        assert merged[905][EffectType.NO] == 18
        assert merged[905][EffectType.SDC] == 2

    def test_tested_voltages_descending(self, typical_sweep):
        voltages = voltages_of(typical_sweep)
        assert voltages[0] == 915 and voltages[-1] == 880
        assert list(voltages) == sorted(voltages, reverse=True)

    def test_operating_regions_direct_construction(self):
        regions = OperatingRegions(
            vmin_mv=905, crash_mv=880, lowest_tested_mv=860,
            highest_tested_mv=930,
        )
        assert regions.classify(860) is Region.CRASH
        assert regions.unsafe_width_mv == 20
