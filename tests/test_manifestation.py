"""Component failures -> Table-3 effects."""

from collections import Counter

import numpy as np
import pytest

from repro.data.calibration import chip_calibration
from repro.effects import EffectType
from repro.errors import ConfigurationError
from repro.faults.manifestation import EffectSampler, ProtectionConfig
from repro.faults.models import FunctionalUnit, build_unit_models


@pytest.fixture(scope="module")
def ttt():
    return chip_calibration("TTT")


def make_sampler(ttt, core=0, stress=0.6, smoothness=1.0, **kwargs):
    models = build_unit_models(ttt, core=core, stress=stress,
                               smoothness=smoothness)
    return EffectSampler(models, **kwargs)


def effect_histogram(sampler, voltage, n=400, seed=1):
    rng = np.random.default_rng(seed)
    counts = Counter()
    for _ in range(n):
        for effect in sampler.sample(voltage, rng).effects:
            counts[effect] += 1
    return counts


class TestProtectionConfig:
    def test_defaults(self):
        config = ProtectionConfig()
        assert config.ecc == "secded" and config.coverage == 0.0

    def test_invalid_ecc_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtectionConfig(ecc="hamming128")

    def test_invalid_coverage_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtectionConfig(coverage=1.5)


class TestSampling(object):
    def test_safe_region_is_clean(self, ttt):
        sampler = make_sampler(ttt)
        counts = effect_histogram(sampler, 930, n=200)
        assert counts[EffectType.NO] == 200

    def test_sdc_appears_before_lone_ce(self, ttt):
        """The paper's headline X-Gene finding (Section 3.4)."""
        sampler = make_sampler(ttt)
        vmin = ttt.vmin_mv(0, 0.6)
        first_sdc = None
        first_ce = None
        for voltage in range(vmin, vmin - 40, -5):
            counts = effect_histogram(sampler, voltage, n=200)
            if first_sdc is None and counts[EffectType.SDC] > 0:
                first_sdc = voltage
            if first_ce is None and counts[EffectType.CE] > 0:
                first_ce = voltage
        assert first_sdc is not None and first_ce is not None
        assert first_sdc > first_ce

    def test_ce_first_under_sram_profile(self, ttt):
        """Itanium-like comparison system (Sections 3.4 / 4.4)."""
        models = build_unit_models(ttt, core=0, stress=0.6, smoothness=1.0,
                                   profile="sram")
        sampler = EffectSampler(models)
        vmin = ttt.vmin_mv(0, 0.6)
        first_sdc = None
        first_ce = None
        for voltage in range(vmin, vmin - 40, -5):
            counts = effect_histogram(sampler, voltage, n=200)
            if first_ce is None and counts[EffectType.CE] > 0:
                first_ce = voltage
            if first_sdc is None and counts[EffectType.SDC] > 0:
                first_sdc = voltage
        assert first_ce is not None
        assert first_sdc is None or first_ce > first_sdc

    def test_deep_undervolt_always_crashes(self, ttt):
        sampler = make_sampler(ttt)
        crash = ttt.crash_voltage_mv(0, 0.6, 1.0)
        counts = effect_histogram(sampler, crash - 15, n=100)
        assert counts[EffectType.SC] == 100

    def test_sc_runs_carry_nothing_else(self, ttt):
        sampler = make_sampler(ttt)
        rng = np.random.default_rng(3)
        crash = ttt.crash_voltage_mv(0, 0.6, 1.0)
        for _ in range(100):
            outcome = sampler.sample(crash - 10, rng)
            if EffectType.SC in outcome.effects:
                assert outcome.effects == frozenset({EffectType.SC})
                assert not outcome.completed

    def test_ac_runs_can_carry_edac_effects(self, ttt):
        sampler = make_sampler(ttt)
        rng = np.random.default_rng(4)
        crash = ttt.crash_voltage_mv(0, 0.6, 1.0)
        saw_ac_with_errors = False
        for _ in range(2000):
            outcome = sampler.sample(crash + 5, rng)
            if EffectType.AC in outcome.effects and (
                EffectType.CE in outcome.effects or EffectType.UE in outcome.effects
            ):
                saw_ac_with_errors = True
                break
        assert saw_ac_with_errors

    def test_effect_probabilities_sum_reasonably(self, ttt):
        sampler = make_sampler(ttt)
        vmin = ttt.vmin_mv(0, 0.6)
        probs = sampler.effect_probabilities(vmin - 15)
        assert 0.0 <= min(probs.values())
        assert probs[EffectType.SDC] > 0.5  # deep in the SDC band

    def test_missing_unit_rejected(self, ttt):
        models = build_unit_models(ttt, core=0, stress=0.5, smoothness=0.5)
        del models[FunctionalUnit.ALU]
        with pytest.raises(ConfigurationError):
            EffectSampler(models)


class TestSection6Protection:
    def test_coverage_converts_sdc_to_ce(self, ttt):
        stock = make_sampler(ttt)
        protected = make_sampler(
            ttt, protection=ProtectionConfig(coverage=0.8)
        )
        vmin = ttt.vmin_mv(0, 0.6)
        voltage = vmin - 15
        stock_counts = effect_histogram(stock, voltage)
        protected_counts = effect_histogram(protected, voltage)
        assert protected_counts[EffectType.SDC] < 0.5 * stock_counts[EffectType.SDC]
        assert protected_counts[EffectType.CE] > stock_counts[EffectType.CE]

    def test_dected_reduces_ue(self, ttt):
        stock = make_sampler(ttt)
        strong = make_sampler(ttt, protection=ProtectionConfig(ecc="dected"))
        crash = ttt.crash_voltage_mv(0, 0.6, 1.0)
        voltage = crash + 5  # deep enough for double-bit events
        stock_counts = effect_histogram(stock, voltage, n=800)
        strong_counts = effect_histogram(strong, voltage, n=800)
        assert strong_counts[EffectType.UE] < stock_counts[EffectType.UE]
