"""The three-phase characterization framework end to end."""

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.core.regions import Region
from repro.data.calibration import chip_calibration
from repro.effects import EffectType
from repro.errors import ConfigurationError
from repro.workloads import get_benchmark


@pytest.fixture()
def framework(machine):
    return CharacterizationFramework(
        machine, FrameworkConfig(start_mv=930, campaigns=3)
    )


class TestConfig:
    def test_paper_defaults(self):
        config = FrameworkConfig()
        assert config.runs_per_level == 10
        assert config.campaigns == 10
        assert config.freq_mhz == 2400

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(runs_per_level=0)
        with pytest.raises(ConfigurationError):
            FrameworkConfig(campaigns=0)
        with pytest.raises(ConfigurationError):
            FrameworkConfig(stop_after_crash_levels=0)


class TestSingleCampaign:
    def test_campaign_structure(self, framework):
        result = framework.run_campaign(get_benchmark("bwaves"), core=0)
        assert result.chip == "TTT"
        assert result.benchmark == "bwaves"
        assert result.core == 0
        voltages = result.voltages()
        assert voltages[0] == 930
        assert all(len(result.runs_at(v)) == 10 for v in voltages)

    def test_sweep_stops_after_crash_levels(self, framework):
        result = framework.run_campaign(get_benchmark("bwaves"), core=0)
        crash = result.crash_mv
        assert crash is not None
        # Sweep terminated within a few levels of full crash, far above
        # the 700 mV regulator floor.
        assert min(result.voltages()) > 700

    def test_machine_left_in_safe_state(self, framework, machine):
        framework.run_campaign(get_benchmark("mcf"), core=0)
        assert machine.is_responsive()
        assert machine.regulator.pmd_voltage_mv(0) == 980

    def test_reliable_cores_setup_applied(self, machine):
        # Sweep a safe-only range: no crash, no reboot, so the parked
        # configuration survives the campaign and can be inspected.
        framework = CharacterizationFramework(
            machine, FrameworkConfig(start_mv=930, stop_mv=925, campaigns=1)
        )
        framework.run_campaign(get_benchmark("mcf"), core=0)
        freqs = machine.clocks.frequencies()
        assert freqs[0] == 2400
        assert freqs[1] == freqs[2] == freqs[3] == 300

    def test_raw_logs_recorded(self, framework):
        framework.run_campaign(get_benchmark("mcf"), core=0, campaign_index=2)
        key = ("mcf", 0, 2400, 2)
        assert key in framework.raw_logs
        assert "=== RUN" in framework.raw_logs[key]

    def test_explicit_stop_voltage(self, machine):
        framework = CharacterizationFramework(
            machine, FrameworkConfig(start_mv=930, stop_mv=920, campaigns=1)
        )
        result = framework.run_campaign(get_benchmark("bwaves"), core=0)
        assert set(result.voltages()) == {930, 925, 920}

    def test_rejects_plain_strings(self, framework):
        with pytest.raises(ConfigurationError):
            framework.run_campaign("bwaves", core=0)


class TestCharacterization:
    def test_reproduces_anchor_vmin_and_crash(self, bwaves_characterization):
        cal = chip_calibration("TTT")
        bench = get_benchmark("bwaves")
        assert bwaves_characterization.highest_vmin_mv == \
            cal.vmin_mv(0, bench.stress)
        assert bwaves_characterization.highest_crash_mv == \
            cal.crash_voltage_mv(0, bench.stress, bench.smoothness)

    def test_mean_vmin_at_or_below_highest(self, bwaves_characterization):
        assert bwaves_characterization.mean_vmin_mv <= \
            bwaves_characterization.highest_vmin_mv

    def test_severity_monotone_trend(self, bwaves_characterization):
        severity = bwaves_characterization.severity_by_voltage()
        voltages = sorted(severity, reverse=True)
        values = [severity[v] for v in voltages]
        # Severity never decreases by more than sampling noise as the
        # voltage drops, and spans the whole 0..16 range.
        for earlier, later in zip(values, values[1:]):
            assert later >= earlier - 1.0
        assert values[0] == 0.0
        assert max(values) > 15.0

    def test_regions_nested_correctly(self, bwaves_characterization):
        regions = bwaves_characterization.pooled_regions()
        assert regions.classify(930) is Region.SAFE
        assert regions.crash_mv < regions.vmin_mv

    def test_sdc_before_lone_ce(self, bwaves_characterization):
        """The paper's Section-3.4 finding, measured end to end."""
        pooled = bwaves_characterization.pooled_counts()
        first_sdc = max(
            (v for v, c in pooled.items() if c[EffectType.SDC] > 0),
            default=None)
        first_ce = max(
            (v for v, c in pooled.items() if c[EffectType.CE] > 0),
            default=None)
        assert first_sdc is not None and first_ce is not None
        assert first_sdc > first_ce

    def test_section5_leslie3d_pair(self, leslie3d_characterizations):
        assert leslie3d_characterizations[4].highest_vmin_mv == 880
        assert leslie3d_characterizations[0].highest_vmin_mv == 915

    def test_watchdog_used_heavily(self, framework):
        framework.characterize(get_benchmark("mcf"), core=0)
        assert framework.watchdog.intervention_count > 10

    def test_abnormal_fraction_diagnostic(self, framework):
        framework.run_campaign(get_benchmark("mcf"), core=0)
        fraction = framework.abnormal_run_fraction()
        assert 0.0 < fraction < 1.0


class TestCharacterizeMany:
    def test_grid(self, machine):
        framework = CharacterizationFramework(
            machine, FrameworkConfig(start_mv=900, campaigns=1,
                                     runs_per_level=3)
        )
        grid = framework.characterize_many(
            [get_benchmark("mcf"), get_benchmark("gromacs")], cores=[0, 4]
        )
        assert set(grid) == {("mcf", 0), ("mcf", 4),
                             ("gromacs", 0), ("gromacs", 4)}
