"""The watchdog monitor: serial-side liveness and button recovery."""

import pytest

from repro.core.watchdog import WatchdogAction, WatchdogMonitor
# reprolint: disable=RPR003 -- drives the concrete machine through crash states
from repro.hardware import MachineState, XGene2Machine
from repro.workloads import get_benchmark


@pytest.fixture()
def hung_machine():
    """A machine crashed by deep undervolting."""
    machine = XGene2Machine("TTT", seed=5)
    machine.power_on()
    machine.slimpro.set_pmd_voltage_mv(850)
    machine.run_program(get_benchmark("bwaves"), core=0)
    assert machine.state is MachineState.HUNG
    return machine


class TestLiveness:
    def test_running_machine_is_alive(self, machine):
        watchdog = WatchdogMonitor(machine)
        assert watchdog.machine_alive()
        assert watchdog.ensure_alive() is WatchdogAction.NONE

    def test_hung_machine_detected(self, hung_machine):
        watchdog = WatchdogMonitor(hung_machine)
        assert not watchdog.machine_alive()

    def test_off_machine_not_alive(self):
        machine = XGene2Machine("TTT")
        watchdog = WatchdogMonitor(machine)
        assert not watchdog.machine_alive()


class TestRecovery:
    def test_reset_recovers_hang(self, hung_machine):
        watchdog = WatchdogMonitor(hung_machine)
        action = watchdog.ensure_alive()
        assert action is WatchdogAction.RESET
        assert hung_machine.state is MachineState.RUNNING
        assert watchdog.intervention_count == 1

    def test_power_cycle_recovers_off_machine(self):
        machine = XGene2Machine("TTT")
        watchdog = WatchdogMonitor(machine)
        action = watchdog.ensure_alive()
        assert action is WatchdogAction.POWER_CYCLE
        assert machine.state is MachineState.RUNNING

    def test_recovery_restores_nominal_voltage(self, hung_machine):
        watchdog = WatchdogMonitor(hung_machine)
        watchdog.ensure_alive()
        assert hung_machine.regulator.pmd_voltage_mv(0) == 980

    def test_interventions_logged_with_reason(self, hung_machine):
        watchdog = WatchdogMonitor(hung_machine)
        watchdog.ensure_alive()
        entry = watchdog.interventions[0]
        assert entry.action is WatchdogAction.RESET
        assert "reset" in entry.reason

    def test_repeated_crash_recover_cycles(self):
        """A mini-campaign worth of hang/recover cycles."""
        machine = XGene2Machine("TTT", seed=6)
        machine.power_on()
        watchdog = WatchdogMonitor(machine)
        crashes = 0
        for _ in range(20):
            machine.slimpro.set_pmd_voltage_mv(850)
            machine.run_program(get_benchmark("bwaves"), core=0)
            crashes += 1
            assert watchdog.ensure_alive() is not WatchdogAction.NONE
            assert machine.is_responsive()
        assert watchdog.intervention_count == crashes
