"""Location-resolved error analytics through the full log round-trip."""

import pytest

from repro.analysis.error_locations import location_profiles, onset_table
from repro.core import CharacterizationFramework, FrameworkConfig
from repro.core.parser import format_run_block, parse_log
from repro.core.runs import CharacterizationSetup, RunRecord
from repro.effects import EffectType
from repro.errors import CampaignError, ParseError
from repro.machines import MachineSpec, build_machine
from repro.workloads import get_benchmark


class TestLogRoundTrip:
    def test_locations_survive_format_and_parse(self):
        text = format_run_block(
            chip="TTT", benchmark="bwaves", core=0, voltage_mv=880,
            freq_mhz=2400, campaign_index=1, run_index=1, exit_code=0,
            output="a", expected_output="a", edac_ce=3, edac_ue=1,
            responsive=True,
            edac_locations={"ce_L2": 2, "ce_L3": 1, "ue_L2": 1},
        )
        run = parse_log(text)[0]
        assert run.edac_locations == {"ce_L2": 2, "ce_L3": 1, "ue_L2": 1}

    def test_absent_locations_parse_as_empty(self):
        text = format_run_block(
            chip="TTT", benchmark="mcf", core=0, voltage_mv=900,
            freq_mhz=2400, campaign_index=1, run_index=1, exit_code=0,
            output="a", expected_output="a", edac_ce=0, edac_ue=0,
            responsive=True,
        )
        assert parse_log(text)[0].edac_locations == {}

    def test_malformed_locations_rejected(self):
        text = format_run_block(
            chip="TTT", benchmark="mcf", core=0, voltage_mv=900,
            freq_mhz=2400, campaign_index=1, run_index=1, exit_code=0,
            output="a", expected_output="a", edac_ce=1, edac_ue=0,
            responsive=True, edac_locations={"ce_L2": 1},
        ).replace("ce_L2:1", "ce_L2:banana")
        with pytest.raises(ParseError):
            parse_log(text)


def _record(voltage, detail):
    return RunRecord(
        chip="TTT", benchmark="bwaves",
        setup=CharacterizationSetup(voltage_mv=voltage, freq_mhz=2400, core=0),
        campaign_index=1, run_index=1,
        effects=frozenset({EffectType.CE}), exit_code=0,
        output_matches=True, detail=detail,
    )


class TestProfiles:
    def test_aggregation(self):
        records = [
            _record(890, {"ce_L2": 2}),
            _record(885, {"ce_L2": 1, "ue_L2": 1}),
            _record(885, {"ce_L3": 3}),
        ]
        profiles = location_profiles(records)
        assert profiles["L2"].total_ce == 3
        assert profiles["L2"].total_ue == 1
        assert profiles["L2"].onset_voltage_mv == 890
        assert profiles["L3"].onset_voltage_mv == 885

    def test_onset_table_sorted(self):
        records = [
            _record(890, {"ce_L2": 1}),
            _record(870, {"ce_L1D": 1}),
        ]
        rows = onset_table(location_profiles(records))
        assert [row[0] for row in rows] == ["L2", "L1D"]

    def test_empty_rejected(self):
        with pytest.raises(CampaignError):
            location_profiles([])


class TestEndToEnd:
    def test_l2_reports_before_l1(self):
        """Through the full framework: the L2/L3 ECC arrays start
        correcting at higher voltages than the L1 parity arrays show
        anything (the fault model's SRAM depth ordering, observed via
        the parser's location extension)."""
        machine = build_machine(MachineSpec(chip="TTT", seed=12))
        framework = CharacterizationFramework(
            machine, FrameworkConfig(start_mv=920, campaigns=4,
                                     stop_after_crash_levels=3)
        )
        result = framework.characterize(get_benchmark("bwaves"), core=0)
        profiles = location_profiles(result.all_records())
        assert "L2" in profiles, sorted(profiles)
        l2_onset = profiles["L2"].onset_voltage_mv
        assert l2_onset is not None
        if "L1D" in profiles or "L1I" in profiles:
            l1_onset = max(
                profiles[name].onset_voltage_mv
                for name in ("L1D", "L1I") if name in profiles
            )
            assert l2_onset >= l1_onset
