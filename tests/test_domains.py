"""Power domains and the voltage regulator (Section 2.1)."""

import pytest

from repro.errors import ConfigurationError, VoltageRangeError
from repro.hardware.domains import (
    NUM_CORES,
    NUM_PMDS,
    PowerDomain,
    VoltageRegulator,
    cores_of_pmd,
    pmd_of_core,
)


class TestTopology:
    def test_eight_cores_in_four_pmds(self):
        assert NUM_CORES == 8 and NUM_PMDS == 4

    def test_core_to_pmd_mapping(self):
        assert [pmd_of_core(c) for c in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_pmd_to_cores_mapping(self):
        assert cores_of_pmd(2) == (4, 5)

    def test_bad_indices_rejected(self):
        with pytest.raises(ConfigurationError):
            pmd_of_core(8)
        with pytest.raises(ConfigurationError):
            cores_of_pmd(4)


class TestPowerDomain:
    def test_starts_at_nominal(self):
        domain = PowerDomain("PMD", 980)
        assert domain.voltage_mv == 980
        assert domain.undervolt_mv == 0

    def test_programming(self):
        domain = PowerDomain("PMD", 980)
        domain.set_voltage_mv(905)
        assert domain.voltage_mv == 905
        assert domain.undervolt_mv == 75

    def test_restore_nominal(self):
        domain = PowerDomain("PMD", 980)
        domain.set_voltage_mv(760)
        domain.restore_nominal()
        assert domain.voltage_mv == 980

    def test_non_scalable_domain_rejects_programming(self):
        standby = PowerDomain("Standby", 950, scalable=False)
        with pytest.raises(VoltageRangeError):
            standby.set_voltage_mv(900)

    def test_grid_enforced(self):
        domain = PowerDomain("PMD", 980)
        with pytest.raises(VoltageRangeError):
            domain.set_voltage_mv(902)


class TestSharedPlane:
    """Stock X-Gene 2: one plane feeds all four PMDs."""

    def test_one_voltage_for_all_pmds(self):
        regulator = VoltageRegulator()
        regulator.set_pmd_voltage_mv(905)
        assert [regulator.pmd_voltage_mv(p) for p in range(4)] == [905] * 4

    def test_core_voltage_follows_plane(self):
        regulator = VoltageRegulator()
        regulator.set_pmd_voltage_mv(890)
        assert all(regulator.core_voltage_mv(c) == 890 for c in range(8))

    def test_per_pmd_programming_impossible(self):
        # The design limitation Section 6 calls out.
        regulator = VoltageRegulator()
        with pytest.raises(VoltageRangeError):
            regulator.set_pmd_voltage_mv(905, pmd=2)

    def test_soc_domain_independent(self):
        regulator = VoltageRegulator()
        regulator.set_soc_voltage_mv(905)
        regulator.set_pmd_voltage_mv(890)
        assert regulator.soc.voltage_mv == 905
        assert regulator.pmd_voltage_mv(0) == 890

    def test_soc_nominal_is_950(self):
        regulator = VoltageRegulator()
        assert regulator.soc.nominal_mv == 950

    def test_restore_nominal_restores_everything(self):
        regulator = VoltageRegulator()
        regulator.set_pmd_voltage_mv(760)
        regulator.set_soc_voltage_mv(900)
        regulator.restore_nominal()
        assert regulator.pmd_voltage_mv(0) == 980
        assert regulator.soc.voltage_mv == 950

    def test_transactions_logged(self):
        regulator = VoltageRegulator()
        regulator.set_pmd_voltage_mv(905)
        regulator.set_soc_voltage_mv(945)
        assert ("PMD", 905) in regulator.transactions
        assert ("PCP/SoC", 945) in regulator.transactions

    def test_domains_view(self):
        domains = VoltageRegulator().domains()
        assert set(domains) == {"PMD", "PCP/SoC", "Standby"}


class TestPerPmdPlanes:
    """Section-6 finer-grained-voltage-domain variant."""

    def test_independent_programming(self):
        regulator = VoltageRegulator(per_pmd_domains=True)
        regulator.set_pmd_voltage_mv(905, pmd=0)
        regulator.set_pmd_voltage_mv(875, pmd=2)
        assert regulator.pmd_voltage_mv(0) == 905
        assert regulator.pmd_voltage_mv(1) == 980
        assert regulator.pmd_voltage_mv(2) == 875

    def test_broadcast_still_works(self):
        regulator = VoltageRegulator(per_pmd_domains=True)
        regulator.set_pmd_voltage_mv(890)
        assert [regulator.pmd_voltage_mv(p) for p in range(4)] == [890] * 4

    def test_four_distinct_domains(self):
        domains = VoltageRegulator(per_pmd_domains=True).domains()
        assert {"PMD0", "PMD1", "PMD2", "PMD3"} <= set(domains)

    def test_restore_nominal_all_planes(self):
        regulator = VoltageRegulator(per_pmd_domains=True)
        regulator.set_pmd_voltage_mv(905, pmd=1)
        regulator.restore_nominal()
        assert regulator.pmd_voltage_mv(1) == 980
