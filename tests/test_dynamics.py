"""Dynamic-margin extension models: droop, adaptive clocking,
temperature sensitivity, aging -- units and end-to-end."""

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.errors import ConfigurationError
# reprolint: disable=RPR003 -- exercises the concrete machine's dynamics models
from repro.hardware import (
    AdaptiveClockingUnit,
    AgingModel,
    SupplyDroopModel,
    TemperatureSensitivity,
    XGene2Machine,
)
from repro.workloads import get_benchmark


class TestSupplyDroop:
    def test_activity_scaling(self):
        droop = SupplyDroopModel()
        quiet = get_benchmark("mcf").traits         # low-IPC memory-bound
        busy = get_benchmark("leslie3d").traits     # high-IPC FP
        assert droop.droop_mv(busy) > droop.droop_mv(quiet)

    def test_frequency_scaling(self):
        droop = SupplyDroopModel()
        traits = get_benchmark("bwaves").traits
        assert droop.droop_mv(traits, 2400) > droop.droop_mv(traits, 300)

    def test_resonance_peak(self):
        droop = SupplyDroopModel()
        traits = get_benchmark("bwaves").traits
        # Per normalised frequency, the resonance band droops hardest.
        per_rel_1800 = droop.droop_mv(traits, 1800) / (1800 / 2400)
        per_rel_300 = droop.droop_mv(traits, 300) / (300 / 2400)
        assert per_rel_1800 > per_rel_300

    def test_floor_for_quiet_workloads(self):
        droop = SupplyDroopModel(max_droop_mv=20.0, floor_fraction=0.25)
        quiet = get_benchmark("mcf").traits
        assert droop.droop_mv(quiet, 2400) >= 20.0 * 0.25 * 0.9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupplyDroopModel(max_droop_mv=-1)
        with pytest.raises(ConfigurationError):
            SupplyDroopModel(floor_fraction=1.5)


class TestAdaptiveClocking:
    def test_no_deployment_above_onset(self):
        unit = AdaptiveClockingUnit()
        assert unit.deployment_duty(920, unaided_onset_mv=910) == 0.0
        assert unit.runtime_factor(920, 910) == 1.0

    def test_deployment_grows_below_onset(self):
        unit = AdaptiveClockingUnit(deployment_slope_per_mv=0.1)
        assert unit.deployment_duty(905, 910) == pytest.approx(0.5)
        assert unit.deployment_duty(880, 910) == 1.0

    def test_runtime_overhead_bounded(self):
        unit = AdaptiveClockingUnit(stretch_penalty=0.05)
        assert unit.runtime_factor(700, 910) == pytest.approx(1.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveClockingUnit(recovery_mv=-1)
        with pytest.raises(ConfigurationError):
            AdaptiveClockingUnit(stretch_penalty=2.0)


class TestTemperatureSensitivity:
    def test_hotter_needs_more_voltage(self):
        sens = TemperatureSensitivity(mv_per_kelvin=0.3)
        assert sens.shift_mv(73.0) == pytest.approx(9.0)

    def test_colder_does_not_relax_anchors(self):
        sens = TemperatureSensitivity()
        assert sens.shift_mv(20.0) == 0.0

    def test_reference_is_characterization_setpoint(self):
        assert TemperatureSensitivity().shift_mv(43.0) == 0.0


class TestAging:
    def test_power_law(self):
        aging = AgingModel(shift_mv_per_1000h=8.0, exponent=0.2)
        assert aging.shift_mv(1000.0) == pytest.approx(8.0)
        assert aging.shift_mv(0.0) == 0.0
        # Sub-linear: 10x the time is far less than 10x the shift.
        assert aging.shift_mv(10_000.0) < 3 * aging.shift_mv(1000.0)

    def test_guardband_exhaustion_inverse(self):
        aging = AgingModel(shift_mv_per_1000h=8.0, exponent=0.2)
        hours = aging.hours_until_exhausted(8.0)
        assert hours == pytest.approx(1000.0)
        assert aging.remaining_guardband_mv(8.0, hours) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AgingModel(shift_mv_per_1000h=-1)
        with pytest.raises(ConfigurationError):
            AgingModel(exponent=0.0)
        with pytest.raises(ConfigurationError):
            AgingModel().shift_mv(-1)


def _measured_vmin(**machine_kwargs):
    machine = XGene2Machine("TTT", seed=5, **machine_kwargs)
    machine.power_on()
    if machine.aging_model is not None:
        machine.age(20_000.0)
    framework = CharacterizationFramework(
        machine, FrameworkConfig(start_mv=950, campaigns=3)
    )
    return framework.characterize(get_benchmark("bwaves"), core=0)


class TestEndToEnd:
    """The extension models measured through the full framework."""

    def test_droop_raises_measured_vmin(self):
        base = _measured_vmin().highest_vmin_mv
        droopy = _measured_vmin(
            droop_model=SupplyDroopModel()).highest_vmin_mv
        assert droopy > base

    def test_adaptive_clocking_recovers_droop(self):
        droopy = _measured_vmin(
            droop_model=SupplyDroopModel()).highest_vmin_mv
        relieved = _measured_vmin(
            droop_model=SupplyDroopModel(),
            adaptive_clock=AdaptiveClockingUnit(recovery_mv=15.0),
        ).highest_vmin_mv
        assert relieved < droopy

    def test_adaptive_clocking_costs_runtime_when_deployed(self):
        machine = XGene2Machine(
            "TTT", seed=5, adaptive_clock=AdaptiveClockingUnit()
        )
        machine.power_on()
        bench = get_benchmark("bwaves")
        nominal = machine.run_program(bench, core=0).runtime_s
        machine.slimpro.set_pmd_voltage_mv(895)  # below the unaided onset
        stretched = machine.run_program(bench, core=0).runtime_s
        assert stretched > nominal

    def test_aging_erodes_guardband(self):
        fresh = _measured_vmin().highest_vmin_mv
        aged = _measured_vmin(aging_model=AgingModel()).highest_vmin_mv
        assert aged > fresh

    def test_hot_operation_raises_vmin(self):
        machine = XGene2Machine(
            "TTT", seed=5, temperature_sensitivity=TemperatureSensitivity()
        )
        machine.power_on()
        machine.slimpro.set_fan_setpoint_c(75.0)
        framework = CharacterizationFramework(
            machine, FrameworkConfig(start_mv=950, campaigns=3)
        )
        hot = framework.characterize(get_benchmark("bwaves"), core=0)
        assert hot.highest_vmin_mv > _measured_vmin().highest_vmin_mv

    def test_setpoint_temperature_does_not_shift(self):
        at_setpoint = _measured_vmin(
            temperature_sensitivity=TemperatureSensitivity()
        ).highest_vmin_mv
        assert at_setpoint == _measured_vmin().highest_vmin_mv

    def test_age_bookkeeping(self):
        machine = XGene2Machine("TTT")
        machine.age(100.0, activity=0.5)
        assert machine.stress_hours == 50.0
        with pytest.raises(ConfigurationError):
            machine.age(-1.0)
