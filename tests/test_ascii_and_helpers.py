"""Remaining helpers: region strips, run-RNG isolation, EDAC fallback."""

import pytest

from repro.analysis.ascii_plots import region_strip
from repro.core.regions import Region
from repro.effects import EffectType
from repro.machines import MachineSpec, build_machine
from repro.workloads import get_benchmark


class TestRegionStrip:
    def test_rendering(self):
        strip = region_strip({
            915: Region.SAFE, 910: Region.SAFE,
            905: Region.UNSAFE, 900: Region.CRASH,
        })
        lines = strip.splitlines()
        assert lines[0] == " 915 S"
        assert lines[2] == " 905 u"
        assert lines[3] == " 900 #"

    def test_custom_symbols(self):
        strip = region_strip({905: Region.CRASH}, symbols={"crash": "X"})
        assert strip.endswith("X")


class TestRunRngIsolation:
    def test_different_programs_draw_independently(self):
        """Two different programs at the same setup must not share
        fault realisations (the RNG keys on the program name)."""
        machine = build_machine(MachineSpec(chip="TTT", seed=44))
        machine.clocks.park_all_except([0])
        machine.slimpro.set_pmd_voltage_mv(895)
        bw_effects = []
        sp_effects = []
        for _ in range(15):
            if machine.state.value != "running":
                machine.press_reset()
                machine.clocks.park_all_except([0])
                machine.slimpro.set_pmd_voltage_mv(895)
            bw_effects.append(
                frozenset(machine.run_program(get_benchmark("bwaves"), 0).effects))
            if machine.state.value != "running":
                machine.press_reset()
                machine.clocks.park_all_except([0])
                machine.slimpro.set_pmd_voltage_mv(895)
            sp_effects.append(
                frozenset(machine.run_program(get_benchmark("soplex"), 0).effects))
        assert bw_effects != sp_effects

    def test_cores_draw_independently(self):
        machine = build_machine(MachineSpec(chip="TTT", seed=44))
        machine.slimpro.set_pmd_voltage_mv(885)
        first = machine.run_program(get_benchmark("bwaves"), 2)
        machine.press_reset()
        machine.slimpro.set_pmd_voltage_mv(885)
        second = machine.run_program(get_benchmark("bwaves"), 3)
        # Same PMD, same voltage: outcomes may coincide, but the RNG
        # streams are distinct -- the detail draws must not be forced
        # equal across many runs.
        assert first.core != second.core


class TestEdacFallbackAttribution:
    def test_analytic_path_reports_l2_by_default(self):
        """Without the cache models, CE/UE events are attributed to L2
        (the dominant reporter on the real machine)."""
        machine = build_machine(MachineSpec(chip="TTT", seed=9, use_cache_models=False))
        bench = get_benchmark("bwaves")
        machine.clocks.park_all_except([0])
        machine.slimpro.set_pmd_voltage_mv(880)
        for _ in range(80):
            if machine.state.value != "running":
                machine.press_reset()
                machine.clocks.park_all_except([0])
                machine.slimpro.set_pmd_voltage_mv(880)
            outcome = machine.run_program(bench, core=0)
            if EffectType.CE in outcome.effects:
                locations = machine.edac.counters_by_location()
                assert locations.get(("ce", "L2"), 0) > 0
                return
        pytest.fail("no CE observed on the analytic path")
