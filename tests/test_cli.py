"""The command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro as repro_package
from repro.cli import build_parser, main
from repro.hardware import SupplyDroopModel
from repro.machines import MachineSpec, save_machine_spec


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTables:
    def test_all_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table 1", "Table 2", "Table 3", "Table 4",
                       "X-Gene 2", "W_SC"):
            assert marker in out

    def test_single_table(self, capsys):
        assert main(["tables", "4"]) == 0
        out = capsys.readouterr().out
        assert "W_SC" in out and "Table 1" not in out


class TestClaims:
    def test_all_claims_pass(self, capsys):
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "13/13 claims reproduced" in out
        assert "FAIL" not in out


class TestCharacterize:
    def test_quick_campaign_with_csv(self, capsys, tmp_path):
        code = main([
            "characterize", "TTT", "mcf", "--campaigns", "2",
            "--start-mv", "910", "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "safe Vmin" in out
        assert (tmp_path / "runs.csv").exists()
        assert (tmp_path / "severity.csv").exists()

    def test_unknown_chip_rejected(self):
        with pytest.raises(SystemExit):
            main(["characterize", "XXX", "mcf"])

    def test_jobs_flag_uses_engine(self, capsys):
        code = main([
            "characterize", "TTT", "mcf", "--campaigns", "2",
            "--start-mv", "910", "--jobs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "safe Vmin" in out and "recoveries" in out

    def test_machine_spec_file(self, capsys, tmp_path):
        spec = MachineSpec(chip="TFF", seed=7,
                           droop_model=SupplyDroopModel())
        path = save_machine_spec(spec, tmp_path / "machine.json")
        code = main([
            "characterize", "mcf", "--machine", str(path),
            "--campaigns", "2", "--start-mv", "930", "--jobs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "on TFF" in out and "safe Vmin" in out

    def test_no_chip_and_no_machine_rejected(self, capsys):
        assert main(["characterize", "mcf"]) == 2
        assert "--machine" in capsys.readouterr().err

    def test_bad_machine_spec_rejected(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["characterize", "mcf", "--machine", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_seed_overrides_spec(self, capsys, tmp_path):
        path = save_machine_spec(MachineSpec(chip="TTT", seed=1),
                                 tmp_path / "machine.json")
        argv = ["characterize", "mcf", "--machine", str(path),
                "--campaigns", "1", "--start-mv", "910"]
        assert main(argv) == 0
        base = capsys.readouterr().out
        assert main(argv + ["--seed", "999"]) == 0
        reseeded = capsys.readouterr().out
        assert base != reseeded


class TestGrid:
    def test_parallel_grid_with_csv(self, capsys, tmp_path):
        code = main([
            "grid", "TTT", "--benchmarks", "mcf,bwaves", "--cores", "0,4",
            "--campaigns", "2", "--runs-per-level", "3",
            "--start-mv", "910", "--jobs", "2", "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend" in out
        assert "mcf" in out and "bwaves" in out
        assert (tmp_path / "runs.csv").exists()
        assert (tmp_path / "severity.csv").exists()

    def test_grid_results_independent_of_jobs(self, capsys, tmp_path):
        argv = ["grid", "TTT", "--benchmarks", "mcf", "--cores", "0",
                "--campaigns", "2", "--runs-per-level", "3",
                "--start-mv", "910"]
        assert main(argv + ["--jobs", "1", "--out", str(tmp_path / "a")]) == 0
        assert main(argv + ["--jobs", "3", "--out", str(tmp_path / "b")]) == 0
        capsys.readouterr()
        assert (tmp_path / "a" / "runs.csv").read_text() == \
            (tmp_path / "b" / "runs.csv").read_text()
        assert (tmp_path / "a" / "severity.csv").read_text() == \
            (tmp_path / "b" / "severity.csv").read_text()

    def test_grid_accepts_machine_spec(self, capsys, tmp_path):
        path = save_machine_spec(
            MachineSpec(chip="TSS", seed=5), tmp_path / "machine.json")
        code = main([
            "grid", "--machine", str(path), "--benchmarks", "mcf",
            "--cores", "0", "--campaigns", "2", "--runs-per-level", "3",
            "--start-mv", "910", "--jobs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "on TSS" in out and "backend" in out


class TestStoreWorkflow:
    GRID = ["--benchmarks", "bwaves", "--cores", "0,4", "--campaigns", "2",
            "--runs-per-level", "3", "--start-mv", "905"]

    def test_grid_store_kill_resume_byte_identical(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(["grid", "TTT", *self.GRID, "--jobs", "2",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        baseline_runs = (store / "runs.csv").read_bytes()
        baseline_severity = (store / "severity.csv").read_bytes()
        # simulate the kill: truncate the journal to one completed task
        # and drop every derived artifact
        journal = store / "journal.jsonl"
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:1]))
        (store / "runs.csv").unlink()
        (store / "severity.csv").unlink()
        assert main(["resume", str(store), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "resuming campaign store" in out
        assert "1/4 tasks journaled" in out
        assert (store / "runs.csv").read_bytes() == baseline_runs
        assert (store / "severity.csv").read_bytes() == baseline_severity

    def test_journaled_store_requires_resume(self, capsys, tmp_path):
        store = tmp_path / "store"
        argv = ["grid", "TTT", "--benchmarks", "mcf", "--cores", "0",
                "--campaigns", "2", "--runs-per-level", "3",
                "--start-mv", "910", "--store", str(store)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["report", "--store", str(store)]) == 0
        assert "Measured campaign store" in capsys.readouterr().out
        assert main(argv) == 2
        assert "resume" in capsys.readouterr().err

    def test_characterize_store_journals_run(self, capsys, tmp_path):
        store = tmp_path / "store"
        code = main(["characterize", "TTT", "mcf", "--campaigns", "2",
                     "--start-mv", "910", "--store", str(store)])
        assert code == 0
        assert "campaign store journaled" in capsys.readouterr().out
        assert (store / "manifest.json").exists()
        assert (store / "journal.jsonl").exists()
        assert (store / "severity.csv").exists()

    def test_resume_missing_store_is_usage_error(self, capsys, tmp_path):
        assert main(["resume", str(tmp_path / "nowhere")]) == 2
        assert "no campaign store" in capsys.readouterr().err


class TestTradeoffs:
    def test_default(self, capsys):
        assert main(["tradeoffs"]) == 0
        out = capsys.readouterr().out
        assert "915 mV" in out
        assert "19.4" in out and "38.8" in out

    def test_clock_tree_variant(self, capsys):
        assert main(["tradeoffs", "--clock-tree"]) == 0
        assert "37.6" in capsys.readouterr().out


class TestFleet:
    def test_statistics(self, capsys):
        assert main(["fleet", "--count", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "12 generated TTT-population parts" in out
        assert "fleet-wide setting wastes" in out


class TestFleetStore:
    @pytest.fixture(scope="class")
    def fleet_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cli-fleet") / "fleet"
        assert main(["fleet", "init", str(directory), "--machines", "2",
                     "--seed-base", "2017", "--benchmarks", "mcf",
                     "--cores", "0", "--campaigns", "2",
                     "--runs-per-level", "3", "--start-mv", "905"]) == 0
        assert main(["fleet", "run", str(directory)]) == 0
        return directory

    def test_init_refuses_existing(self, capsys, fleet_dir):
        assert main(["fleet", "init", str(fleet_dir)]) == 2
        assert "already exists" in capsys.readouterr().err

    def test_run_is_idempotent(self, capsys, fleet_dir):
        assert main(["fleet", "run", str(fleet_dir)]) == 0
        out = capsys.readouterr().out
        assert "+0 task(s) executed" in out
        assert "4/4 task(s) journaled" in out

    def test_fleet_status_serves_vmin_per_shard(self, capsys, fleet_dir):
        assert main(["fleet", "status", str(fleet_dir)]) == 0
        out = capsys.readouterr().out
        assert "(2 shards)" in out and "4/4 tasks" in out
        assert out.count("mcf c0: Vmin 890 mV, crash 880") == 2

    def test_plain_status_detects_fleet_store(self, capsys, fleet_dir):
        assert main(["status", str(fleet_dir)]) == 0
        assert "(2 shards)" in capsys.readouterr().out

    def test_query_human_readable(self, capsys, fleet_dir):
        assert main(["fleet", "query", str(fleet_dir),
                     "--benchmark", "mcf", "--core", "0"]) == 0
        out = capsys.readouterr().out
        assert out.count("mcf c0: Vmin 890 mV, crash 880 mV") == 2
        assert main(["fleet", "query", str(fleet_dir), "--core", "7"]) == 0
        assert "no completed cells match" in capsys.readouterr().out

    def test_query_json_byte_matches_reparse(self, capsys, fleet_dir):
        """The index-equals-reparse contract at the CLI surface: warm
        ``--json`` output equals the full-journal ``--reparse`` bytes."""
        assert main(["fleet", "query", str(fleet_dir), "--json"]) == 0
        warm = capsys.readouterr().out
        assert main(["fleet", "query", str(fleet_dir), "--json",
                     "--reparse"]) == 0
        cold = capsys.readouterr().out
        assert warm == cold
        assert warm.count("# shard ") == 2

    def test_compact_then_answers_unchanged(self, capsys, fleet_dir):
        assert main(["fleet", "query", str(fleet_dir), "--json"]) == 0
        before = capsys.readouterr().out
        assert main(["fleet", "compact", str(fleet_dir)]) == 0
        assert "compacted 2 shard(s)" in capsys.readouterr().out
        assert main(["fleet", "compact", str(fleet_dir)]) == 0
        assert "nothing to compact" in capsys.readouterr().out
        assert main(["fleet", "query", str(fleet_dir), "--json"]) == 0
        assert capsys.readouterr().out == before

    def test_missing_fleet_is_usage_error(self, capsys, tmp_path):
        assert main(["fleet", "status", str(tmp_path / "nowhere")]) == 2
        assert "error" in capsys.readouterr().err


class TestPredict:
    def test_reduced_study(self, capsys):
        assert main(["predict", "--programs", "8"]) == 0
        out = capsys.readouterr().out
        assert "vmin_mv on TTT core 0" in out
        assert "severity on TTT core 4" in out


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "## Claim checks" in out
        assert "## Figure 9 ladder" in out
        assert "FAIL" not in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--out", str(target)]) == 0
        text = target.read_text()
        assert "# repro reproduction report" in text
        assert "87.2" in text


class TestLint:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("from repro.units import VOLTAGE_STEP_MV\n")
        assert main(["lint", str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("vmin_mv = 0.98\n")
        assert main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "RPR004" in out and "dirty.py:1:" in out

    def test_unknown_path_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "no-such-dir")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", "--select", "RPR999", str(target)]) == 2
        assert "RPR999" in capsys.readouterr().err

    def test_bad_flag_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--format", "yaml"])
        assert excinfo.value.code == 2

    def test_select_filters_rules(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("vmin_mv = 0.98\n")
        assert main(["lint", "--select", "RPR001", str(dirty)]) == 0

    def test_json_format_schema(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("vmin_mv = 0.98\nW_SDC = 4.0\n")
        assert main(["lint", "--format", "json", str(dirty)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["summary"] == {"RPR004": 1, "RPR005": 1}
        finding = payload["findings"][0]
        assert set(finding) == {"path", "line", "col", "rule",
                               "name", "message"}
        assert finding["rule"] == "RPR004" and finding["line"] == 1

    def test_list_rules_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004",
                        "RPR005", "RPR006", "RPR007", "RPR008",
                        "RPR009", "RPR010", "RPR011", "RPR012",
                        "RPR013"):
            assert rule_id in out

    def test_stats_reports_phases_and_rule_counts(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("vmin_mv = 0.98\n")
        assert main(["lint", "--stats", "--no-cache", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "files analyzed: 1" in out
        assert "RPR004: 1" in out
        for phase in ("parse", "graph build", "dataflow"):
            assert phase in out

    def test_cache_makes_second_run_incremental(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("vmin_mv = 0.98\n")
        cache = str(tmp_path / "cache.json")
        argv = ["lint", "--stats", "--cache", cache, str(dirty)]
        assert main(argv) == 1
        assert "files analyzed: 1" in capsys.readouterr().out
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "files analyzed: 0" in out and "files cached: 1" in out

    def test_sarif_output_file(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("vmin_mv = 0.98\n")
        sarif = tmp_path / "out.sarif"
        assert main(["lint", "--no-cache", "--sarif", str(sarif),
                     str(dirty)]) == 1
        capsys.readouterr()
        doc = json.loads(sarif.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "RPR004"

class TestTelemetryFlags:
    GRID = ["grid", "TTT", "--benchmarks", "mcf", "--cores", "0",
            "--campaigns", "2", "--runs-per-level", "3", "--start-mv", "910"]

    def test_grid_writes_traces_and_metrics(self, capsys, tmp_path):
        trace_dir = tmp_path / "trace"
        metrics = tmp_path / "metrics.prom"
        assert main([*self.GRID, "--store", str(tmp_path / "store"),
                     "--trace", str(trace_dir),
                     "--metrics", str(metrics)]) == 0
        err = capsys.readouterr().err
        assert "metrics exported" in err
        names = sorted(p.name for p in trace_dir.glob("trace-*.jsonl"))
        assert names == ["trace-mcf_c0_k1.jsonl", "trace-mcf_c0_k2.jsonl",
                         "trace-session.jsonl"]
        text = metrics.read_text()
        assert "# TYPE repro_engine_tasks_completed_total counter" in text
        assert "repro_engine_tasks_completed_total 2" in text

    def test_metrics_json_snapshot(self, capsys, tmp_path):
        metrics = tmp_path / "metrics.json"
        assert main(["characterize", "TTT", "mcf", "--campaigns", "2",
                     "--start-mv", "910", "--metrics", str(metrics)]) == 0
        capsys.readouterr()
        payload = json.loads(metrics.read_text())
        assert payload["format"] == "repro-metrics/v1"
        assert any(m["name"] == "repro_effects_total"
                   for m in payload["metrics"])

    def test_telemetry_does_not_change_output(self, capsys, tmp_path):
        assert main(self.GRID) == 0
        plain = capsys.readouterr().out
        assert main([*self.GRID, "--trace", str(tmp_path / "t"),
                     "--metrics", str(tmp_path / "m.prom")]) == 0
        assert capsys.readouterr().out == plain


class TestStatus:
    def test_status_reports_complete_store(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(["grid", "TTT", "--benchmarks", "mcf", "--cores", "0",
                     "--campaigns", "2", "--runs-per-level", "3",
                     "--start-mv", "910", "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["status", str(store)]) == 0
        out = capsys.readouterr().out
        assert "2/2 tasks" in out and "complete" in out
        assert "mcf c0" in out and "effect classes" in out

    def test_status_partial_store_with_metrics_eta(self, capsys, tmp_path):
        store = tmp_path / "store"
        metrics = tmp_path / "metrics.json"
        assert main(["grid", "TTT", "--benchmarks", "mcf", "--cores", "0",
                     "--campaigns", "2", "--runs-per-level", "3",
                     "--start-mv", "910", "--store", str(store),
                     "--metrics", str(metrics)]) == 0
        journal = store / "journal.jsonl"
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text(lines[0])
        capsys.readouterr()
        assert main(["status", str(store), "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "1/2 tasks" in out and "eta" in out

    def test_status_missing_store_is_usage_error(self, capsys, tmp_path):
        assert main(["status", str(tmp_path / "nowhere")]) == 2
        assert "error" in capsys.readouterr().err

    def test_status_empty_journal_with_sampleless_metrics_is_na(
            self, capsys, tmp_path):
        """Regression: a just-initialized store plus a metrics snapshot
        whose task-seconds histogram has no samples yet must render the
        ETA as "n/a", not raise on the empty histogram."""
        from repro.core import FrameworkConfig
        from repro.machines import MachineSpec as Spec
        from repro.store import CampaignStore

        store = tmp_path / "store"
        CampaignStore.create(
            store, Spec(chip="TTT", seed=2017),
            FrameworkConfig(start_mv=910, campaigns=2, runs_per_level=3),
            ["mcf"], [0])
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps({
            "format": "repro-metrics/v1",
            "metrics": [{
                "name": "repro_engine_task_seconds",
                "samples": [{"count": 0}],
            }],
        }))
        assert main(["status", str(store), "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "0/2 tasks" in out
        assert "eta: n/a (no completed-task samples yet)" in out


class TestModuleEntryPoint:
    def test_module_entry_point_matches(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("vmin_mv = 0.98\n")
        src_dir = Path(repro_package.__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get(
            "PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(dirty)],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 1
        assert "RPR004" in proc.stdout
