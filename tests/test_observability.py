"""The observability plane: trace analytics, the ``repro-tsdb/v1``
snapshot journal, health rules and ``repro dash``.

Tentpole contracts asserted end to end:

* the tsdb sampler never perturbs the run -- journal and CSV bytes
  match a telemetry-off run, including killed-and-resumed;
* a warm :class:`TsdbCursor` serializes byte-equal to a from-scratch
  re-parse at *every* kill point of the journal file;
* ``repro analyze`` is deterministic (same dir -> same bytes) and its
  phase attribution sums to the total session span time;
* Prometheus label values round-trip through escaping, and every
  exported ``M_*`` metric is cataloged and documented.
"""

import json
import math
import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.parallel import MachineSpec, ParallelCampaignEngine
from repro.core import FrameworkConfig
from repro.store import CampaignStore, FleetStore, JOURNAL_NAME
from repro.telemetry import (
    DEFAULT_BUCKETS,
    FSYNC_BUCKETS,
    METRIC_CATALOG,
    M_EFFECTS,
    M_INTERVENTIONS,
    M_JOURNAL_FSYNC_SECONDS,
    M_TASK_SECONDS,
    M_TASKS_COMPLETED,
    M_THROUGHPUT,
    M_TSDB_SNAPSHOTS,
    MetricsRegistry,
    MetricSpec,
    PARENT_SPAN_ID_BASE,
    PHASES,
    Dashboard,
    HealthRule,
    SpanRecord,
    TSDB_FORMAT,
    TSDB_NAME,
    TraceWriter,
    Tracer,
    TsdbCursor,
    TsdbSampler,
    TsdbWriter,
    analyze_trace_dir,
    default_health_rules,
    evaluate_rules,
    health_report,
    load_spans,
    overall_status,
    render_analysis,
    render_dash,
    render_health,
    serialize_health,
    telemetry_session,
)
from repro.telemetry.metrics import (
    _escape_help,
    _escape_label_value,
    _unescape_label_value,
)
from repro.workloads import get_benchmark

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Same watchdog-exercising sweep as test_telemetry: starts right below
#: bwaves Vmin so the journals cover recovery and drift signals too.
CFG = FrameworkConfig(start_mv=905, campaigns=2, runs_per_level=3)
SPEC = MachineSpec(chip="TTT", seed=2017)
CORES = [0]
TOTAL_TASKS = 1 * len(CORES) * CFG.campaigns

#: Serial sampling cadence: one snapshot after replay, one per chunk
#: (chunk_size = max(1, tasks//(jobs*4)) = 1 -> 2 chunks), one final.
EXPECTED_SNAPSHOTS = 1 + TOTAL_TASKS + 1


def run_grid(store=None, resume=False, **kwargs):
    engine = ParallelCampaignEngine(SPEC, CFG, **kwargs)
    return engine.run([get_benchmark("bwaves")], CORES,
                      store=store, resume=resume)


def observed_run(store, trace_dir=None, **kwargs):
    """A traced + metered + tsdb-sampled run (the full ``--tsdb`` path)."""
    reg = MetricsRegistry()
    tracer = None
    if trace_dir is not None:
        tracer = Tracer(TraceWriter(trace_dir), first_id=PARENT_SPAN_ID_BASE)
    with telemetry_session(tracer=tracer, metrics=reg, tsdb=TsdbSampler()):
        report = run_grid(store=store, **kwargs)
    return report, reg


@pytest.fixture(scope="module")
def baseline_store(tmp_path_factory):
    """The telemetry-off reference store + exported CSVs."""
    directory = tmp_path_factory.mktemp("baseline-store")
    run_grid(store=directory, jobs=1)
    CampaignStore.open(directory).export_csv()
    return directory


@pytest.fixture(scope="module")
def observed(tmp_path_factory):
    """One fully-observed run: store + trace dir + tsdb journal + CSVs."""
    root = tmp_path_factory.mktemp("observed")
    observed_run(root / "store", root / "trace", jobs=1)
    CampaignStore.open(root / "store").export_csv()
    return root


# ---------------------------------------------------------------------------
# satellite: label-value escaping in the Prometheus exposition
# ---------------------------------------------------------------------------

#: Escape-aware sample grammar: label values are any run of escaped
#: characters or literals that are neither '"' nor '\'.
_ESCAPED_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"((?:\\.|[^\"\\])*)\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:\\.|[^\"\\])*\")*\})?"
    r" (NaN|[+-]?Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"
)

NASTY_VALUES = [
    'back\\slash',
    'quo"te',
    'new\nline',
    'all\\of"the\nabove\\n',
    '\\',
    '"',
    '\n',
    'trailing\\',
]


class TestLabelEscaping:
    @pytest.mark.parametrize("value", NASTY_VALUES)
    def test_escape_round_trips(self, value):
        assert _unescape_label_value(_escape_label_value(value)) == value

    def test_escape_is_injective_on_the_nasty_set(self):
        escaped = {_escape_label_value(v) for v in NASTY_VALUES}
        assert len(escaped) == len(NASTY_VALUES)

    @pytest.mark.parametrize("value", NASTY_VALUES)
    def test_exposition_stays_line_oriented(self, value):
        reg = MetricsRegistry()
        reg.counter(M_EFFECTS, effect=value).inc()
        text = reg.render_prometheus()
        assert text.endswith("\n")
        sample_lines = [
            line for line in text.splitlines()
            if not line.startswith("#")
        ]
        assert len(sample_lines) == 1  # a raw newline would split it
        match = _ESCAPED_SAMPLE_RE.match(sample_lines[0])
        assert match, f"unparseable sample line: {sample_lines[0]!r}"
        assert _unescape_label_value(match.group(2)) == value

    def test_grammar_rejects_unescaped_quote(self):
        # The grammar itself must not accept what escaping prevents.
        assert not _ESCAPED_SAMPLE_RE.match('m{l="a"b"} 1')

    def test_help_escapes_backslash_and_newline_only(self):
        assert _escape_help('a\\b\nc"d') == 'a\\\\b\\nc"d'


# ---------------------------------------------------------------------------
# satellite: torn-trailing-line tolerance in load_spans
# ---------------------------------------------------------------------------

def _span_line(span_id, name="task", trace_id="bwaves:c0:k1",
               start=0.0, end=1.0, parent=None, **attrs):
    record = SpanRecord(
        trace_id=trace_id, name=name, span_id=span_id, parent_id=parent,
        start_s=start, end_s=end, attributes=tuple(attrs.items()),
    )
    return json.dumps(record.to_json_dict(), sort_keys=True) + "\n"


class TestLoadSpansTornTail:
    def _write(self, path, body):
        path.write_bytes(body.encode("utf-8")
                         if isinstance(body, str) else body)
        return path

    def test_strict_raises_on_torn_tail(self, tmp_path):
        path = self._write(tmp_path / "t.jsonl",
                           _span_line(1) + '{"format": "repro-span/v1", "tr')
        with pytest.raises(ValueError):
            load_spans(path)

    def test_non_strict_drops_torn_tail(self, tmp_path):
        path = self._write(tmp_path / "t.jsonl",
                           _span_line(1) + _span_line(2)
                           + '{"format": "repro-span/v1", "tr')
        records = load_spans(path, strict=False)
        assert [r.span_id for r in records] == [1, 2]

    def test_non_strict_drops_unterminated_parseable_tail(self, tmp_path):
        # A last line that parses but lacks its newline is still a stub:
        # the writer was killed between write() and the final flush.
        path = self._write(tmp_path / "t.jsonl",
                           _span_line(1) + _span_line(2).rstrip("\n"))
        records = load_spans(path, strict=False)
        assert [r.span_id for r in records] == [1]

    @pytest.mark.parametrize("strict", [True, False])
    def test_mid_file_corruption_always_raises(self, tmp_path, strict):
        path = self._write(tmp_path / "t.jsonl",
                           _span_line(1) + "garbage\n" + _span_line(2))
        with pytest.raises(ValueError, match="corrupt trace line 2"):
            load_spans(path, strict=strict)

    def test_every_kill_point_loads_non_strict(self, tmp_path):
        """Truncate the file at every byte: non-strict never raises and
        recovers exactly the fully-terminated prefix lines."""
        lines = [_span_line(i, start=float(i), end=float(i) + 1.0)
                 for i in (1, 2, 3)]
        data = "".join(lines).encode("utf-8")
        path = tmp_path / "t.jsonl"
        offsets = [0]
        for line in lines:
            offsets.append(offsets[-1] + len(line.encode("utf-8")))
        for cut in range(len(data) + 1):
            path.write_bytes(data[:cut])
            records = load_spans(path, strict=False)
            expected = sum(1 for off in offsets[1:] if cut >= off)
            assert len(records) == expected, f"kill point at byte {cut}"


# ---------------------------------------------------------------------------
# satellite: per-metric histogram bucket overrides
# ---------------------------------------------------------------------------

class TestBucketOverrides:
    def test_fsync_histogram_gets_catalog_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram(M_JOURNAL_FSYNC_SECONDS)
        assert hist.buckets == FSYNC_BUCKETS
        # The point of the override: sub-millisecond resolution.
        assert min(FSYNC_BUCKETS) < 0.001
        assert sum(1 for b in FSYNC_BUCKETS if b < 0.001) >= 3

    def test_explicit_buckets_beat_the_catalog(self):
        reg = MetricsRegistry()
        hist = reg.histogram(M_JOURNAL_FSYNC_SECONDS, buckets=(1.0, 2.0))
        assert hist.buckets == (1.0, 2.0)

    def test_uncataloged_metric_falls_back_to_defaults(self):
        reg = MetricsRegistry()
        assert reg.histogram("repro_adhoc_seconds").buckets == DEFAULT_BUCKETS

    def test_cataloged_histogram_without_override_uses_defaults(self):
        reg = MetricsRegistry()
        assert reg.histogram(M_TASK_SECONDS).buckets == DEFAULT_BUCKETS

    def test_catalog_rejects_buckets_on_non_histograms(self):
        spec = MetricSpec(kind="counter", help="x", buckets=(1.0,))
        assert spec.buckets == (1.0,)  # the spec itself is inert ...
        # ... the catalog validation loop is what rejects it: every
        # committed entry with buckets must be a histogram.
        for name, entry in METRIC_CATALOG.items():
            if entry.buckets is not None:
                assert entry.kind == "histogram", name


# ---------------------------------------------------------------------------
# satellite: catalog + docs drift guard
# ---------------------------------------------------------------------------

class TestCatalogDriftGuard:
    def _exported_metric_names(self):
        import repro.telemetry as telemetry

        return {
            getattr(telemetry, attr)
            for attr in dir(telemetry)
            if attr.startswith("M_")
        }

    def test_every_exported_metric_is_cataloged(self):
        exported = self._exported_metric_names()
        missing = exported - set(METRIC_CATALOG)
        assert not missing, f"exported M_* without catalog entry: {missing}"

    def test_catalog_has_no_orphan_entries(self):
        orphans = set(METRIC_CATALOG) - self._exported_metric_names()
        assert not orphans, f"cataloged but not exported as M_*: {orphans}"

    def test_every_cataloged_metric_is_documented(self):
        docs = (REPO_ROOT / "docs" / "observability.md").read_text()
        undocumented = [n for n in METRIC_CATALOG if n not in docs]
        assert not undocumented, (
            f"metrics missing from docs/observability.md: {undocumented}"
        )


# ---------------------------------------------------------------------------
# tentpole: tsdb writer durability
# ---------------------------------------------------------------------------

def _tiny_registry(tasks=1.0):
    reg = MetricsRegistry()
    reg.counter(M_TASKS_COMPLETED).inc(tasks)
    reg.histogram(M_TASK_SECONDS).observe(0.5)
    return reg


class TestTsdbWriter:
    def test_appends_are_self_describing(self, tmp_path):
        reg = _tiny_registry()
        writer = TsdbWriter(tmp_path / TSDB_NAME)
        assert writer.append(reg, 1.0) == 1
        assert writer.append(reg, 2.0) == 2
        for line in (tmp_path / TSDB_NAME).read_text().splitlines():
            data = json.loads(line)
            assert data["format"] == TSDB_FORMAT
            snap_counter = [m for m in data["metrics"]
                           if m["name"] == M_TSDB_SNAPSHOTS]
            assert len(snap_counter) == 1
            # Snapshot N reports N: the counter bumps before sampling.
            assert snap_counter[0]["samples"][0]["value"] == data["seq"]

    def test_reopen_resumes_sequence(self, tmp_path):
        reg = _tiny_registry()
        TsdbWriter(tmp_path / TSDB_NAME).append(reg, 1.0)
        assert TsdbWriter(tmp_path / TSDB_NAME).append(reg, 2.0) == 2

    def test_torn_tail_healed_on_next_append(self, tmp_path):
        reg = _tiny_registry()
        path = tmp_path / TSDB_NAME
        writer = TsdbWriter(path)
        writer.append(reg, 1.0)
        writer.append(reg, 2.0)
        with path.open("ab") as handle:
            handle.write(b'{"format": "repro-tsdb/v1", "seq": 3, "t_')
        healed = TsdbWriter(path)
        assert healed.append(reg, 3.0) == 3
        seqs = [json.loads(line)["seq"]
                for line in path.read_text().splitlines()]
        assert seqs == [1, 2, 3]

    def test_mid_file_corruption_rejected(self, tmp_path):
        reg = _tiny_registry()
        path = tmp_path / TSDB_NAME
        TsdbWriter(path).append(reg, 1.0)
        with path.open("ab") as handle:
            handle.write(b"garbage\n")
        TsdbWriter(path).append(reg, 2.0)  # garbage was the tail: healed
        body = path.read_bytes()
        first_end = body.index(b"\n") + 1
        path.write_bytes(body[:first_end] + b"garbage\n" + body[first_end:])
        with pytest.raises(ValueError, match="corrupt tsdb line"):
            TsdbWriter(path)

    def test_foreign_journal_rejected(self, tmp_path):
        path = tmp_path / TSDB_NAME
        path.write_text('{"format": "not-a-tsdb", "seq": 1}\n')
        with pytest.raises(ValueError, match="not a repro-tsdb/v1"):
            TsdbWriter(path)

    def test_sampler_lands_one_journal_per_directory(self, tmp_path):
        sampler = TsdbSampler(clock=lambda: 1.0)
        reg = _tiny_registry()
        for name in ("a", "b"):
            (tmp_path / name).mkdir()
            sampler.sample(reg, tmp_path / name)
        assert (tmp_path / "a" / TSDB_NAME).exists()
        assert (tmp_path / "b" / TSDB_NAME).exists()
        shard = json.loads((tmp_path / "b" / TSDB_NAME).read_text())["shard"]
        assert shard == "b"


# ---------------------------------------------------------------------------
# tentpole: warm cursor == re-parse at every kill point
# ---------------------------------------------------------------------------

class TestTsdbCursor:
    def _journal_bytes(self, tmp_path, snapshots=3, torn_tail=True):
        path = tmp_path / TSDB_NAME
        writer = TsdbWriter(path)
        reg = _tiny_registry()
        for i in range(snapshots):
            reg.counter(M_TASKS_COMPLETED).inc()
            writer.append(reg, float(i + 1))
        data = path.read_bytes()
        if torn_tail:
            data += b'{"format": "repro-tsdb/v1", "seq": 99, "t_'
        return data

    def test_warm_equals_reparse_at_every_kill_point(self, tmp_path):
        """The acceptance criterion, byte for byte: a cursor advanced
        incrementally over every prefix of the journal serializes
        identically to a from-scratch re-parse of that prefix."""
        data = self._journal_bytes(tmp_path)
        path = tmp_path / "grow" / TSDB_NAME
        path.parent.mkdir()
        warm = TsdbCursor()
        for cut in range(len(data) + 1):
            path.write_bytes(data[:cut])
            warm.advance(path)
            assert warm.serialize() == TsdbCursor.from_reparse(path).serialize(), (
                f"warm cursor diverged from re-parse at kill point {cut}"
            )

    def test_advance_is_idempotent(self, tmp_path):
        data = self._journal_bytes(tmp_path, torn_tail=False)
        path = tmp_path / "j" / TSDB_NAME
        path.parent.mkdir()
        path.write_bytes(data)
        cursor = TsdbCursor()
        assert cursor.advance(path) == 3
        assert cursor.advance(path) == 0
        assert cursor.snapshots == 3 and cursor.last_seq == 3

    def test_missing_file_is_not_an_error(self, tmp_path):
        cursor = TsdbCursor()
        assert cursor.advance(tmp_path / "absent.jsonl") == 0
        assert cursor.snapshots == 0

    def test_shrunk_file_rejected(self, tmp_path):
        data = self._journal_bytes(tmp_path, torn_tail=False)
        path = tmp_path / "j" / TSDB_NAME
        path.parent.mkdir()
        path.write_bytes(data)
        cursor = TsdbCursor.from_reparse(path)
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="shrank"):
            cursor.advance(path)

    def test_non_monotonic_seq_rejected(self, tmp_path):
        data = self._journal_bytes(tmp_path, torn_tail=False)
        lines = data.splitlines(keepends=True)
        path = tmp_path / "bad.jsonl"
        path.write_bytes(lines[1] + lines[0])
        with pytest.raises(ValueError, match="not monotonic"):
            TsdbCursor.from_reparse(path)

    def test_queries_over_folded_series(self, tmp_path):
        data = self._journal_bytes(tmp_path, torn_tail=False)
        path = tmp_path / "q.jsonl"
        path.write_bytes(data)
        cursor = TsdbCursor.from_reparse(path)
        # _journal_bytes starts at 1 task and increments per snapshot.
        assert cursor.last_total(M_TASKS_COMPLETED) == 4.0
        assert cursor.last_total("repro_never_reported") is None
        assert cursor.mean(M_TASK_SECONDS) == pytest.approx(0.5)
        quantile = cursor.quantile(M_TASK_SECONDS, 0.99)
        assert quantile is not None and quantile >= 0.5
        totals = cursor.histogram_totals(M_TASK_SECONDS)
        assert totals is not None and totals[1] == 1
        assert math.isinf(totals[2][-1][0])


# ---------------------------------------------------------------------------
# tentpole: the sampler never perturbs the run
# ---------------------------------------------------------------------------

class TestSamplerNeutrality:
    def test_store_bytes_match_telemetry_off(self, observed, baseline_store):
        store = observed / "store"
        assert (store / TSDB_NAME).exists()
        for name in (JOURNAL_NAME, "runs.csv", "severity.csv"):
            assert (store / name).read_bytes() == \
                (baseline_store / name).read_bytes()

    def test_killed_and_resumed_with_sampler_matches(self, tmp_path,
                                                     baseline_store):
        store = tmp_path / "store"
        observed_run(store, jobs=1)
        lines = (store / JOURNAL_NAME).read_text().splitlines(keepends=True)
        (store / JOURNAL_NAME).write_text(lines[0])
        report, _reg = observed_run(store, jobs=1, resume=True)
        assert report.tasks_skipped == 1
        CampaignStore.open(store).export_csv()
        for name in (JOURNAL_NAME, "runs.csv", "severity.csv"):
            assert (store / name).read_bytes() == \
                (baseline_store / name).read_bytes()
        # The tsdb journal survived both sessions with monotonic seqs.
        cursor = TsdbCursor.from_reparse(store / TSDB_NAME)
        assert cursor.snapshots == cursor.last_seq

    def test_serial_sampling_cadence(self, observed):
        cursor = TsdbCursor.from_reparse(observed / "store" / TSDB_NAME)
        assert cursor.snapshots == EXPECTED_SNAPSHOTS
        assert cursor.last_total(M_TSDB_SNAPSHOTS) == EXPECTED_SNAPSHOTS
        # The final snapshot lands after finish(): throughput is there.
        throughput = cursor.last_total(M_THROUGHPUT)
        assert throughput is not None and throughput > 0
        assert cursor.last_total(M_TASKS_COMPLETED) == TOTAL_TASKS

    def test_no_sampler_no_journal(self, baseline_store):
        assert not (baseline_store / TSDB_NAME).exists()


# ---------------------------------------------------------------------------
# tentpole: trace analytics
# ---------------------------------------------------------------------------

class TestAnalytics:
    def test_same_directory_same_bytes(self, observed):
        first = analyze_trace_dir(observed / "trace").serialize()
        second = analyze_trace_dir(observed / "trace").serialize()
        assert first == second

    def test_phase_attribution_sums_to_session_time(self, observed):
        analysis = analyze_trace_dir(observed / "trace")
        total = analysis.total_session_s
        assert total > 0
        attributed = sum(s for _phase, s in analysis.phase_seconds)
        assert attributed == pytest.approx(total, abs=1e-9)
        assert tuple(p for p, _s in analysis.phase_seconds) == PHASES

    def test_real_phases_observed(self, observed):
        analysis = analyze_trace_dir(observed / "trace")
        phases = dict(analysis.phase_seconds)
        assert phases["voltage_step"] > 0
        assert phases["journal_append"] > 0
        assert analysis.backend == "serial" and analysis.jobs == 1
        assert len(analysis.tasks) == TOTAL_TASKS
        assert 0 < analysis.utilization <= 1.0

    def test_critical_path_walks_down_from_task(self, observed):
        analysis = analyze_trace_dir(observed / "trace")
        for task in analysis.tasks:
            path = task.critical_path
            assert path and path[0].name == "task"
            assert [step.depth for step in path] == list(range(len(path)))
            for step in path:
                assert 0 <= step.self_s <= step.duration_s + 1e-12

    def test_straggler_detection(self, tmp_path):
        # Three synthetic tasks: 1 s, 1 s and 10 s -> median 1 s, the
        # slow one crosses the 1.5x threshold.
        writer = TraceWriter(tmp_path)
        durations = {"a:c0:k1": 1.0, "b:c0:k1": 1.0, "c:c0:k1": 10.0}
        span_id = 1
        for trace_id, duration in sorted(durations.items()):
            writer(SpanRecord(
                trace_id=trace_id, name="task", span_id=span_id,
                parent_id=None, start_s=0.0, end_s=duration,
                attributes=(("benchmark", trace_id.split(":")[0]),
                            ("core", 0), ("campaign", 1)),
            ))
            span_id += 1
        analysis = analyze_trace_dir(tmp_path)
        assert analysis.stragglers == ("c:c0:k1",)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no trace"):
            analyze_trace_dir(tmp_path)

    def test_render_is_deterministic_and_complete(self, observed):
        analysis = analyze_trace_dir(observed / "trace")
        text = render_analysis(analysis)
        assert text == render_analysis(analysis)
        assert "phase attribution:" in text
        for phase in PHASES:
            assert phase in text
        assert "critical path of slowest task" in text


# ---------------------------------------------------------------------------
# tentpole: health rules
# ---------------------------------------------------------------------------

def _cursor_with(tmp_path, build):
    """A cursor folded from one registry snapshot shaped by ``build``."""
    reg = MetricsRegistry()
    build(reg)
    path = tmp_path / TSDB_NAME
    TsdbWriter(path).append(reg, 1.0)
    return TsdbCursor.from_reparse(path)


class TestHealthRules:
    def test_rule_validation(self):
        with pytest.raises(ValueError, match="stat"):
            HealthRule(name="r", metric="m", stat="p50", bound=1.0)
        with pytest.raises(ValueError, match="op"):
            HealthRule(name="r", metric="m", stat="last", bound=1.0, op="<")
        with pytest.raises(ValueError, match="per_metric"):
            HealthRule(name="r", metric="m", stat="per", bound=1.0)
        with pytest.raises(ValueError, match="per_metric"):
            HealthRule(name="r", metric="m", stat="last", bound=1.0,
                       per_metric="n")

    def test_ok_fail_skip(self, tmp_path):
        cursor = _cursor_with(
            tmp_path, lambda reg: reg.counter(M_INTERVENTIONS).inc(4))
        rules = (
            HealthRule(name="ok", metric=M_INTERVENTIONS, stat="last",
                       bound=5.0),
            HealthRule(name="fail", metric=M_INTERVENTIONS, stat="last",
                       bound=3.0),
            HealthRule(name="floor-fail", metric=M_INTERVENTIONS,
                       stat="last", bound=10.0, op=">="),
            HealthRule(name="skip", metric="repro_absent", stat="last",
                       bound=1.0),
        )
        verdicts = evaluate_rules(cursor, rules)
        assert [v.status for v in verdicts] == ["ok", "fail", "fail", "skip"]
        assert verdicts[0].observed == 4.0
        assert verdicts[3].observed is None
        assert overall_status(verdicts) == "fail"

    def test_per_stat_ratio(self, tmp_path):
        def build(reg):
            reg.counter(M_INTERVENTIONS).inc(6)
            reg.counter(M_TASKS_COMPLETED).inc(3)

        cursor = _cursor_with(tmp_path, build)
        rule = HealthRule(name="rate", metric=M_INTERVENTIONS, stat="per",
                          per_metric=M_TASKS_COMPLETED, bound=2.0)
        (verdict,) = evaluate_rules(cursor, (rule,))
        assert verdict.status == "ok"
        assert verdict.observed == pytest.approx(2.0)

    def test_per_stat_skips_on_zero_denominator(self, tmp_path):
        cursor = _cursor_with(
            tmp_path, lambda reg: reg.counter(M_INTERVENTIONS).inc(6))
        rule = HealthRule(name="rate", metric=M_INTERVENTIONS, stat="per",
                          per_metric=M_TASKS_COMPLETED, bound=2.0)
        (verdict,) = evaluate_rules(cursor, (rule,))
        assert verdict.status == "skip"

    def test_overall_status_precedence(self):
        from repro.telemetry import HealthVerdict

        ok = HealthVerdict(rule="a", status="ok", bound=1.0, op="<=")
        skip = HealthVerdict(rule="b", status="skip", bound=1.0, op="<=")
        fail = HealthVerdict(rule="c", status="fail", bound=1.0, op="<=")
        assert overall_status(()) == "skip"
        assert overall_status((skip,)) == "skip"
        assert overall_status((skip, ok)) == "ok"
        assert overall_status((skip, ok, fail)) == "fail"

    def test_default_rules_gate_throughput_on_baseline(self):
        names = [r.name for r in default_health_rules()]
        assert names == ["watchdog-rate", "fsync-p99", "model-drift"]
        with_floor = default_health_rules({"campaign_min_s": 0.002})
        assert [r.name for r in with_floor][-1] == "throughput-floor"
        floor = with_floor[-1]
        assert floor.op == ">="
        assert floor.bound == pytest.approx(1.0 / (0.002 * 1000.0))
        committed = REPO_ROOT / "benchmarks" / "framework_baseline.json"
        assert len(default_health_rules(committed)) == 4

    def test_report_and_serialization_are_canonical(self, tmp_path):
        cursor = _cursor_with(
            tmp_path, lambda reg: reg.counter(M_INTERVENTIONS).inc())
        verdicts = evaluate_rules(cursor, default_health_rules())
        report = health_report(verdicts, source="s")
        assert report["format"] == "repro-health/v1"
        assert report["status"] == overall_status(verdicts)
        body = serialize_health(verdicts, source="s")
        assert body.endswith("\n")
        assert json.loads(body) == report
        text = render_health(verdicts)
        assert text.startswith("health: ")
        for verdict in verdicts:
            assert verdict.rule in text


# ---------------------------------------------------------------------------
# tentpole: the dashboard
# ---------------------------------------------------------------------------

class TestDashboard:
    def test_campaign_dash_over_observed_store(self, observed):
        dash = Dashboard(observed / "store")
        snapshot = dash.refresh()
        assert snapshot.kind == "campaign"
        assert snapshot.complete
        assert snapshot.tasks_completed == TOTAL_TASKS
        assert snapshot.snapshots == EXPECTED_SNAPSHOTS
        assert snapshot.journals == 1
        assert snapshot.throughput is not None
        assert snapshot.rows == (("bwaves c0", CFG.campaigns, CFG.campaigns),)
        assert snapshot.health in ("ok", "fail", "skip")

    def test_refresh_reuses_warm_cursors(self, observed):
        dash = Dashboard(observed / "store")
        first = dash.refresh()
        (cursor,) = dash._cursors.values()
        consumed = cursor.consumed_bytes
        second = dash.refresh()
        assert cursor.consumed_bytes == consumed  # nothing re-parsed
        assert second.snapshots == first.snapshots

    def test_dash_without_tsdb_still_reports_progress(self, baseline_store):
        snapshot = Dashboard(baseline_store).refresh()
        assert snapshot.complete and snapshot.snapshots == 0
        assert snapshot.eta_s is None
        assert all(v.status == "skip" for v in snapshot.verdicts)
        text = render_dash(snapshot)
        assert "no snapshots yet" in text

    def test_fleet_dash(self, tmp_path):
        fleet_dir = tmp_path / "fleet"
        FleetStore.create(fleet_dir, [SPEC], CFG, ["bwaves"], CORES)
        observed_run(fleet_dir, jobs=1)
        fleet = FleetStore.open(fleet_dir)
        (entry,) = fleet.manifest.shards
        assert fleet.tsdb_path(entry).exists()
        snapshot = Dashboard(fleet_dir).refresh()
        assert snapshot.kind == "fleet"
        assert snapshot.complete
        assert snapshot.journals == 1
        assert snapshot.rows == ((entry.name, TOTAL_TASKS, TOTAL_TASKS),)
        text = render_dash(snapshot)
        assert "[fleet store (1 shards)]" in text
        assert "shards:" in text

    def test_render_dash_layout(self, observed):
        snapshot = Dashboard(
            observed / "store",
            baseline=REPO_ROOT / "benchmarks" / "framework_baseline.json",
        ).refresh()
        text = render_dash(snapshot)
        assert text.startswith("repro dash -- ")
        assert "progress: [" in text and ", complete" in text
        assert "tsdb:" in text and "grid cells:" in text
        assert "health:" in text and "throughput-floor" in text


# ---------------------------------------------------------------------------
# CLI: repro analyze / repro dash / --tsdb
# ---------------------------------------------------------------------------

class TestCli:
    def test_analyze_json_is_deterministic(self, observed, capsys):
        assert main(["analyze", str(observed / "trace"), "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["analyze", str(observed / "trace"), "--json"]) == 0
        assert capsys.readouterr().out == first
        assert json.loads(first)["format"] == "repro-analysis/v1"

    def test_analyze_renders_report(self, observed, capsys):
        assert main(["analyze", str(observed / "trace")]) == 0
        assert "phase attribution:" in capsys.readouterr().out

    def test_analyze_empty_dir_fails(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 2
        assert "no trace" in capsys.readouterr().err

    def test_dash_once(self, observed, capsys):
        assert main(["dash", str(observed / "store"), "--once"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro dash -- ")
        assert "health:" in out

    def test_dash_writes_health_report(self, observed, tmp_path, capsys):
        target = tmp_path / "health.json"
        assert main(["dash", str(observed / "store"), "--once",
                     "--health-out", str(target)]) == 0
        capsys.readouterr()
        report = json.loads(target.read_text())
        assert report["format"] == "repro-health/v1"
        assert report["source"] == str(observed / "store")

    def test_dash_missing_baseline_fails(self, observed, tmp_path, capsys):
        assert main(["dash", str(observed / "store"), "--once",
                     "--baseline", str(tmp_path / "absent.json")]) == 2
        capsys.readouterr()

    def test_dash_missing_store_fails(self, tmp_path, capsys):
        assert main(["dash", str(tmp_path / "absent"), "--once"]) == 2
        capsys.readouterr()

    def test_grid_tsdb_flag_lands_journal(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main([
            "grid", "TTT", "--benchmarks", "bwaves", "--cores", "0",
            "--campaigns", "1", "--runs-per-level", "3",
            "--start-mv", "905", "--jobs", "1",
            "--store", str(store), "--tsdb",
        ]) == 0
        capsys.readouterr()
        cursor = TsdbCursor.from_reparse(store / TSDB_NAME)
        assert cursor.snapshots >= 2  # post-replay + chunks + final
        assert cursor.last_total(M_TSDB_SNAPSHOTS) == cursor.snapshots
