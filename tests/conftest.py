"""Shared fixtures.

Heavy objects (characterization results, prediction pipelines) are
session-scoped: the simulator is deterministic, so sharing them across
tests loses nothing and keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.machines import MachineSpec, build_machine
from repro.workloads import get_benchmark


@pytest.fixture()
def machine():
    """A powered-on TTT machine with a fixed seed."""
    m = build_machine(MachineSpec(chip="TTT", seed=2017))
    return m


@pytest.fixture()
def rng():
    return np.random.default_rng(123)


@pytest.fixture(scope="session")
def bwaves_characterization():
    """bwaves on TTT core 0: 10 campaigns, the paper's configuration."""
    m = build_machine(MachineSpec(chip="TTT", seed=42))
    framework = CharacterizationFramework(
        m, FrameworkConfig(start_mv=930, campaigns=10)
    )
    return framework.characterize(get_benchmark("bwaves"), core=0)


@pytest.fixture(scope="session")
def leslie3d_characterizations():
    """leslie3d on TTT cores 0 and 4 (the Section-5 example pair)."""
    m = build_machine(MachineSpec(chip="TTT", seed=8))
    framework = CharacterizationFramework(
        m, FrameworkConfig(start_mv=930, campaigns=10)
    )
    bench = get_benchmark("leslie3d")
    return {
        core: framework.characterize(bench, core) for core in (0, 4)
    }
