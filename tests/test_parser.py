"""Log round-trip: format -> parse -> classify."""

import pytest

from repro.core.parser import ParsedRun, format_run_block, parse_log
from repro.effects import EffectType
from repro.errors import ParseError


def block(**overrides):
    defaults = dict(
        chip="TTT", benchmark="bwaves", core=0, voltage_mv=905,
        freq_mhz=2400, campaign_index=1, run_index=3, exit_code=0,
        output="aaa", expected_output="aaa", edac_ce=0, edac_ue=0,
        responsive=True, watchdog_action="none",
    )
    defaults.update(overrides)
    return format_run_block(**defaults)


class TestRoundTrip:
    def test_normal_run(self):
        runs = parse_log(block())
        assert len(runs) == 1
        run = runs[0]
        assert run.effects == frozenset({EffectType.NO})
        assert run.chip == "TTT"
        assert run.voltage_mv == 905
        assert run.campaign_index == 1 and run.run_index == 3
        assert run.output_matches is True

    def test_sdc_run(self):
        runs = parse_log(block(output="bbb"))
        assert runs[0].effects == frozenset({EffectType.SDC})
        assert runs[0].output_matches is False

    def test_app_crash_run(self):
        runs = parse_log(block(exit_code=139, output=None))
        assert runs[0].effects == frozenset({EffectType.AC})
        assert runs[0].exit_code == 139
        assert runs[0].output_matches is None

    def test_system_crash_truncates_block(self):
        text = block(responsive=False, exit_code=None, output=None,
                     watchdog_action="reset")
        assert "exit_code" not in text
        assert "edac" not in text
        runs = parse_log(text)
        assert runs[0].effects == frozenset({EffectType.SC})
        assert runs[0].watchdog_action == "reset"

    def test_edac_effects(self):
        runs = parse_log(block(edac_ce=2, edac_ue=1))
        assert runs[0].effects == frozenset({EffectType.CE, EffectType.UE})
        assert runs[0].edac_ce == 2 and runs[0].edac_ue == 1

    def test_multi_block_log(self):
        text = block(run_index=1) + block(run_index=2, output="bad") + \
            block(run_index=3, responsive=False, exit_code=None, output=None)
        runs = parse_log(text)
        assert [r.run_index for r in runs] == [1, 2, 3]
        assert runs[1].effects == frozenset({EffectType.SDC})
        assert runs[2].effects == frozenset({EffectType.SC})

    def test_program_names_with_inputs(self):
        runs = parse_log(block(benchmark="gcc/200"))
        assert runs[0].benchmark == "gcc/200"


class TestRobustness:
    def test_empty_log(self):
        assert parse_log("") == []

    def test_garbage_before_header_rejected(self):
        with pytest.raises(ParseError):
            parse_log("random noise\n" + block())

    def test_malformed_header_rejected(self):
        with pytest.raises(ParseError):
            parse_log("=== RUN gibberish ===\nstatus=completed\n")

    def test_missing_status_rejected(self):
        text = block().replace("status=completed\n", "")
        with pytest.raises(ParseError):
            parse_log(text)

    def test_blank_lines_between_blocks_tolerated(self):
        text = block(run_index=1) + "\n\n" + block(run_index=2)
        assert len(parse_log(text)) == 2
