"""Fleet generation: additional chips from the corner populations."""

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.errors import ConfigurationError
from repro.hardware import ChipGenerator, fleet_vmin_distribution
from repro.machines import MachineSpec, build_machine
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def fleet():
    return ChipGenerator("TTT", lot_seed=1).fleet(25)


class TestGeneration:
    def test_deterministic_identity(self):
        first = ChipGenerator("TTT", lot_seed=1).calibration(7)
        second = ChipGenerator("TTT", lot_seed=1).calibration(7)
        assert first == second

    def test_distinct_parts(self, fleet):
        names = {chip.name for chip in fleet}
        assert len(names) == len(fleet)
        offsets = {chip.calibration.core_offsets_mv for chip in fleet}
        assert len(offsets) > 1

    def test_lot_seed_changes_population(self):
        lot_a = ChipGenerator("TTT", lot_seed=1).calibration(0)
        lot_b = ChipGenerator("TTT", lot_seed=2).calibration(0)
        assert lot_a != lot_b

    def test_structural_invariants(self, fleet):
        for chip in fleet:
            cal = chip.calibration
            # 5 mV grid everywhere.
            assert cal.base_vmin_2400_mv % 5 == 0
            assert all(offset % 5 == 0 for offset in cal.core_offsets_mv)
            # The most robust core lives on PMD 2, as fused.
            assert cal.most_robust_core() in (4, 5)
            assert min(cal.core_offsets_mv) == 0
            assert cal.stress_span_mv >= 10

    def test_population_centred_on_characterized_part(self, fleet):
        from repro.data.calibration import chip_calibration
        anchor = chip_calibration("TTT")
        mean_base = sum(c.calibration.base_vmin_2400_mv for c in fleet) / len(fleet)
        assert abs(mean_base - anchor.base_vmin_2400_mv) < 10

    def test_corner_personality_inherited(self):
        tss_part = ChipGenerator("TSS", lot_seed=0).chip(0)
        assert tss_part.corner.name == "TSS"
        assert 0.5 < tss_part.calibration.leakage_rel < 0.85

    def test_invalid_inputs_rejected(self):
        generator = ChipGenerator("TTT")
        with pytest.raises(ConfigurationError):
            generator.calibration(-1)
        with pytest.raises(ConfigurationError):
            generator.fleet(-1)
        with pytest.raises(ConfigurationError):
            ChipGenerator("XYZ")


class TestFleetStatistics:
    def test_distribution_shape(self, fleet):
        stats = fleet_vmin_distribution(fleet)
        assert stats["chips"] == 25
        assert stats["min_mv"] <= stats["mean_mv"] <= stats["max_mv"]
        assert stats["std_mv"] > 0

    def test_fleet_setting_penalty_positive(self, fleet):
        stats = fleet_vmin_distribution(fleet)
        assert stats["fleet_setting_penalty"] > 0

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            fleet_vmin_distribution([])


class TestGeneratedChipsRunEverything:
    def test_framework_runs_on_generated_part(self, fleet):
        chip = fleet[3]
        machine = build_machine(MachineSpec(chip=chip, seed=9))
        framework = CharacterizationFramework(
            machine, FrameworkConfig(start_mv=950, campaigns=2)
        )
        bench = get_benchmark("bwaves")
        result = framework.characterize(bench, core=0)
        anchor = chip.calibration.vmin_mv(0, bench.stress)
        assert abs(result.highest_vmin_mv - anchor) <= 10
