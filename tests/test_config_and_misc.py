"""Study configuration, PMU unit behaviour, and package surface."""

import pytest

import repro
from repro.config import PAPER_STUDY, QUICK_STUDY, StudyConfig
from repro.errors import ConfigurationError, MachineStateError, UnknownCounterError
from repro.hardware.pmu import PerformanceMonitoringUnit
from repro.workloads import get_benchmark


class TestStudyConfig:
    def test_paper_study_is_the_full_grid(self):
        assert PAPER_STUDY.chips == ("TTT", "TFF", "TSS")
        assert len(PAPER_STUDY.benchmarks) == 10
        assert PAPER_STUDY.cores == tuple(range(8))
        assert PAPER_STUDY.framework.campaigns == 10
        assert 2400 in PAPER_STUDY.frequencies_mhz
        assert 1200 in PAPER_STUDY.frequencies_mhz

    def test_quick_study_is_a_strict_subset(self):
        assert set(QUICK_STUDY.chips) <= set(PAPER_STUDY.chips)
        assert set(QUICK_STUDY.benchmarks) <= set(PAPER_STUDY.benchmarks)
        assert QUICK_STUDY.framework.campaigns < PAPER_STUDY.framework.campaigns

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StudyConfig(chips=("XXX",))
        with pytest.raises(ConfigurationError):
            StudyConfig(benchmarks=())
        with pytest.raises(ConfigurationError):
            StudyConfig(cores=(0, 9))


class TestPmuUnit:
    def test_start_record_stop_cycle(self):
        pmu = PerformanceMonitoringUnit(core=3)
        traits = get_benchmark("mcf").traits.as_dict()
        pmu.start()
        assert pmu.is_counting
        pmu.record_run(traits)
        snapshot = pmu.stop()
        assert len(snapshot) == 101
        assert not pmu.is_counting
        assert pmu.read("INST_RETIRED") == snapshot["INST_RETIRED"]

    def test_double_start_rejected(self):
        pmu = PerformanceMonitoringUnit(core=0)
        pmu.start()
        with pytest.raises(MachineStateError):
            pmu.start()

    def test_record_without_start_rejected(self):
        pmu = PerformanceMonitoringUnit(core=0)
        with pytest.raises(MachineStateError):
            pmu.record_run(get_benchmark("mcf").traits.as_dict())

    def test_stop_without_start_rejected(self):
        with pytest.raises(MachineStateError):
            PerformanceMonitoringUnit(core=0).stop()

    def test_read_before_any_snapshot_rejected(self):
        with pytest.raises(MachineStateError):
            PerformanceMonitoringUnit(core=0).read("CPU_CYCLES")

    def test_unknown_event_rejected(self):
        pmu = PerformanceMonitoringUnit(core=0)
        pmu.start()
        pmu.record_run(get_benchmark("mcf").traits.as_dict())
        pmu.stop()
        with pytest.raises(UnknownCounterError):
            pmu.read("NOT_AN_EVENT")

    def test_reset_clears_history(self):
        pmu = PerformanceMonitoringUnit(core=0)
        pmu.start()
        pmu.record_run(get_benchmark("mcf").traits.as_dict())
        pmu.stop()
        pmu.reset()
        assert pmu.history() == []
        with pytest.raises(MachineStateError):
            pmu.read("CPU_CYCLES")

    def test_stop_with_no_recorded_run_yields_zeros(self):
        pmu = PerformanceMonitoringUnit(core=0)
        pmu.start()
        snapshot = pmu.stop()
        assert all(value == 0.0 for value in snapshot.values())


class TestPackageSurface:
    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_quickstart_docstring_is_runnable(self):
        """The __init__ docstring's example must not rot."""
        from repro import CharacterizationFramework, MachineSpec, build_machine
        from repro.workloads import get_benchmark as gb
        machine = build_machine(MachineSpec(chip="TTT", seed=2017))
        framework = CharacterizationFramework(
            machine, repro.FrameworkConfig(start_mv=915, campaigns=1)
        )
        result = framework.characterize(gb("bwaves"), core=0)
        assert result.highest_vmin_mv > 0
        assert isinstance(result.severity_by_voltage(), dict)
