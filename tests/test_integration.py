"""Cross-module integration: the paper's full workflows end to end."""

import pytest

from repro import (
    CharacterizationFramework,
    FrameworkConfig,
    PredictionPipeline,
    SeverityAwareScheduler,
    MachineSpec,
    build_machine,
)
from repro.core.results import ResultStore
from repro.data.calibration import chip_calibration
from repro.effects import EffectType
from repro.faults.manifestation import ProtectionConfig
from repro.scheduling import VoltageGovernor
from repro.workloads import get_benchmark
from repro.workloads.selftests import cache_tests, pipeline_tests


class TestSelfTestStory:
    """Section 3.4: why the X-Gene shows SDCs first."""

    @pytest.fixture(scope="class")
    def results(self):
        machine = build_machine(MachineSpec(chip="TTT", seed=31))
        framework = CharacterizationFramework(
            machine, FrameworkConfig(campaigns=2, runs_per_level=5)
        )
        out = {}
        for test in pipeline_tests() + cache_tests():
            out[test.name] = framework.characterize(test, core=0)
        return out

    def test_pipeline_tests_fail_at_much_higher_voltages(self, results):
        pipeline_vmin = min(
            results[t.name].highest_vmin_mv for t in pipeline_tests()
        )
        cache_vmin = max(
            results[t.name].highest_vmin_mv for t in cache_tests()
        )
        # "the cache tests crash in much lower voltages than the ALU and
        # FPU tests [show SDCs]"
        assert pipeline_vmin - cache_vmin >= 15

    def test_pipeline_tests_show_sdcs(self, results):
        for test in pipeline_tests():
            pooled = results[test.name].pooled_counts()
            assert any(c[EffectType.SDC] > 0 for c in pooled.values()), test.name


class TestFullStudyPipeline:
    """Characterize -> profile -> predict -> govern -> schedule."""

    @pytest.fixture(scope="class")
    def stack(self):
        machine = build_machine(MachineSpec(chip="TTT", seed=2017))
        pipeline = PredictionPipeline(
            machine, characterization=FrameworkConfig(campaigns=2)
        )
        from repro.workloads import all_programs
        programs = [p for p in all_programs() if p.input_set == "ref"][:10]
        return machine, pipeline, programs

    def test_characterization_feeds_prediction(self, stack):
        _machine, pipeline, programs = stack
        report = pipeline.severity_study(programs, core=0, max_samples=50)
        assert report.rmse_model < report.rmse_naive

    def test_prediction_feeds_governor(self, stack):
        machine, pipeline, programs = stack
        cal = chip_calibration("TTT")
        snapshots = [pipeline.profile(p) for p in programs]
        vmins = [
            float(pipeline.characterize(p, 4).highest_vmin_mv)
            for p in programs
        ]
        governor = VoltageGovernor.train_from_observations(
            snapshots, vmins, core_offsets_mv=cal.core_offsets_mv,
            margin_mv=15,
        )
        decision = governor.decide({4: snapshots[0]})
        assert 760 <= decision.voltage_mv <= 980

    def test_scheduler_uses_measured_oracle(self, stack):
        machine, pipeline, programs = stack
        measured = {}
        for program in programs[:4]:
            for core in (0, 4):
                measured[(program.name, core)] = \
                    pipeline.characterize(program, core).highest_vmin_mv
        def oracle(core, bench):
            return measured.get((bench.name, core),
                                chip_calibration("TTT").vmin_mv(core, bench.stress))
        scheduler = SeverityAwareScheduler("TTT", vmin_oracle=oracle)
        benches = [p.benchmark for p in programs[:2]]
        assignment = scheduler.assign(benches, policy="robust_first",
                                      cores=[0, 4])
        assert assignment.chip_vmin_mv in set(measured.values())


class TestCsvExportPipeline:
    def test_full_flow_to_disk(self, tmp_path, bwaves_characterization):
        store = ResultStore(tmp_path)
        runs_path = store.write_runs_csv([bwaves_characterization])
        severity_path = store.write_severity_csv([bwaves_characterization])
        assert runs_path.exists() and severity_path.exists()
        rows = store.read_runs_csv()
        assert len(rows) == len(bwaves_characterization.all_records())
        severity = store.read_severity_csv()
        in_memory = bwaves_characterization.severity_by_voltage()
        for (chip, bench, core, freq, voltage), value in severity.items():
            assert value == pytest.approx(in_memory[voltage], abs=1e-3)


class TestDeterminism:
    def test_identical_campaigns_bit_identical(self):
        def run():
            machine = build_machine(MachineSpec(chip="TTT", seed=77))
            framework = CharacterizationFramework(
                machine, FrameworkConfig(start_mv=920, campaigns=2)
            )
            framework.run_campaign(get_benchmark("bwaves"), core=0)
            return framework.raw_logs[("bwaves", 0, 2400, 1)]
        assert run() == run()

    def test_chips_differ(self):
        def vmin(chip):
            machine = build_machine(MachineSpec(chip=chip, seed=77))
            framework = CharacterizationFramework(
                machine, FrameworkConfig(start_mv=930, campaigns=3)
            )
            return framework.characterize(
                get_benchmark("zeusmp"), core=4).highest_vmin_mv
        assert vmin("TSS") > vmin("TTT")


class TestSection6Ablations:
    def test_stronger_protection_shrinks_sdc_band(self):
        """Section 6: stronger ECC + wider coverage turns SDC behaviour
        into corrected-error behaviour, measured through the full
        framework."""
        def sdc_and_ce(protection):
            machine = build_machine(MachineSpec(chip="TTT", seed=13, protection=protection))
            framework = CharacterizationFramework(
                machine, FrameworkConfig(start_mv=920, campaigns=3)
            )
            result = framework.characterize(get_benchmark("bwaves"), core=0)
            pooled = result.pooled_counts()
            sdc = sum(c[EffectType.SDC] for c in pooled.values())
            ce = sum(c[EffectType.CE] for c in pooled.values())
            return sdc, ce
        stock_sdc, stock_ce = sdc_and_ce(ProtectionConfig())
        strong_sdc, strong_ce = sdc_and_ce(
            ProtectionConfig(ecc="dected", coverage=0.7))
        assert strong_sdc < 0.6 * stock_sdc
        assert strong_ce > stock_ce

    def test_itanium_profile_has_ce_first(self):
        """The cross-architecture comparison of Sections 3.4/4.4."""
        machine = build_machine(MachineSpec(chip="TTT", seed=13, failure_profile="sram"))
        framework = CharacterizationFramework(
            machine, FrameworkConfig(start_mv=920, campaigns=3)
        )
        result = framework.characterize(get_benchmark("bwaves"), core=0)
        pooled = result.pooled_counts()
        first_ce = max((v for v, c in pooled.items() if c[EffectType.CE] > 0),
                       default=None)
        first_sdc = max((v for v, c in pooled.items() if c[EffectType.SDC] > 0),
                        default=None)
        assert first_ce is not None
        assert first_sdc is None or first_ce > first_sdc

    def test_per_pmd_domains_machine_variant(self):
        machine = build_machine(MachineSpec(chip="TTT", per_pmd_domains=True))
        machine.slimpro.set_pmd_voltage_mv(905, pmd=2)
        assert machine.regulator.pmd_voltage_mv(2) == 905
        assert machine.regulator.pmd_voltage_mv(0) == 980


class TestFinerDomainsEndToEnd:
    def test_per_pmd_undervolting_isolates_failures(self):
        """Section-6 finer domains, exercised through real execution:
        undervolting only PMD 0 crashes its cores while PMD 2 keeps
        running the same benchmark safely at nominal."""
        machine = build_machine(MachineSpec(chip="TTT", seed=17, per_pmd_domains=True))
        bench = get_benchmark("bwaves")
        machine.slimpro.set_pmd_voltage_mv(855, pmd=0)  # deep crash region
        crashed = machine.run_program(bench, core=0)
        assert EffectType.SC in crashed.effects
        machine.press_reset()
        machine.slimpro.set_pmd_voltage_mv(855, pmd=0)
        clean = machine.run_program(bench, core=4)  # PMD 2 at nominal
        assert clean.effects == frozenset({EffectType.NO})

    def test_per_pmd_planes_allow_mixed_undervolting(self):
        """Each PMD runs at its own Vmin simultaneously: the robust PMD
        goes deeper than the sensitive one, both stay correct."""
        from repro.data.calibration import chip_calibration
        cal = chip_calibration("TTT")
        bench = get_benchmark("leslie3d")
        machine = build_machine(MachineSpec(chip="TTT", seed=17, per_pmd_domains=True))
        machine.slimpro.set_pmd_voltage_mv(cal.vmin_mv(0, bench.stress), pmd=0)
        machine.slimpro.set_pmd_voltage_mv(cal.vmin_mv(4, bench.stress), pmd=2)
        sensitive = machine.run_program(bench, core=0)
        robust = machine.run_program(bench, core=4)
        assert sensitive.effects == frozenset({EffectType.NO})
        assert robust.effects == frozenset({EffectType.NO})
        assert robust.voltage_mv < sensitive.voltage_mv
