"""Clock skipping/division and per-PMD frequencies (Section 3.2)."""

import pytest

from repro.errors import ConfigurationError, FrequencyRangeError
from repro.hardware.clocking import (
    ClockController,
    ClockMechanism,
    mechanism_for,
    timing_equivalent_mhz,
)


class TestMechanism:
    def test_full_rate_is_direct(self):
        assert mechanism_for(2400) is ClockMechanism.DIRECT

    def test_half_rate_is_division(self):
        assert mechanism_for(1200) is ClockMechanism.DIVISION

    def test_other_ratios_are_skipping(self):
        for freq in (300, 600, 900, 1500, 1800, 2100):
            assert mechanism_for(freq) is ClockMechanism.SKIPPING, freq

    def test_invalid_frequency_rejected(self):
        with pytest.raises(FrequencyRangeError):
            mechanism_for(1000)


class TestTimingEquivalence:
    def test_above_boundary_behaves_like_max(self):
        # "clock frequencies greater than 1.2 GHz have similar behavior
        # as in 2.4 GHz"
        for freq in (1500, 1800, 2100, 2400):
            assert timing_equivalent_mhz(freq) == 2400

    def test_at_or_below_boundary_behaves_like_half(self):
        for freq in (300, 600, 900, 1200):
            assert timing_equivalent_mhz(freq) == 1200


class TestClockController:
    def test_boots_at_full_rate(self):
        clocks = ClockController()
        assert clocks.frequencies() == [2400] * 4

    def test_per_pmd_programming(self):
        clocks = ClockController()
        clocks.set_pmd_frequency_mhz(1, 1200)
        assert clocks.frequencies() == [2400, 1200, 2400, 2400]

    def test_core_frequency_follows_pmd(self):
        clocks = ClockController()
        clocks.set_pmd_frequency_mhz(3, 900)
        assert clocks.core_frequency_mhz(6) == 900
        assert clocks.core_frequency_mhz(7) == 900
        assert clocks.core_frequency_mhz(0) == 2400

    def test_park_all_except(self):
        """The reliable-cores setup of Section 2.2.1."""
        clocks = ClockController()
        clocks.park_all_except([0])
        assert clocks.frequencies() == [2400, 300, 300, 300]

    def test_park_keeps_shared_pmd_fast(self):
        clocks = ClockController()
        clocks.park_all_except([4, 5])
        assert clocks.frequencies() == [300, 300, 2400, 300]

    def test_restore_all(self):
        clocks = ClockController()
        clocks.park_all_except([0])
        clocks.restore_all(1200)
        assert clocks.frequencies() == [1200] * 4

    def test_mechanism_view(self):
        clocks = ClockController()
        clocks.set_pmd_frequency_mhz(0, 1200)
        clocks.set_pmd_frequency_mhz(1, 1800)
        assert clocks.mechanism(0) is ClockMechanism.DIVISION
        assert clocks.mechanism(1) is ClockMechanism.SKIPPING
        assert clocks.mechanism(2) is ClockMechanism.DIRECT

    def test_bad_pmd_rejected(self):
        with pytest.raises(ConfigurationError):
            ClockController().set_pmd_frequency_mhz(4, 1200)

    def test_bad_frequency_rejected(self):
        with pytest.raises(FrequencyRangeError):
            ClockController().set_pmd_frequency_mhz(0, 1250)
