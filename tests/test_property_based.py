"""Property-based tests (hypothesis) on the core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import regions_from_counts
from repro.core.severity import DEFAULT_WEIGHTS, SeverityWeights, severity_value
from repro.effects import EffectType, normalize_effects
from repro.faults.ecc import DecodeStatus, DectedCode, SecdedCode, flip_bits
from repro.faults.models import FailureCurve
from repro.prediction.metrics import r2_score, rmse
from repro.units import validate_voltage_mv, voltage_sweep
from repro.workloads.benchmark import (
    WorkloadTraits,
    solve_traits_for_stress,
    stress_from_traits,
)

# Module-level codecs: construction (table generation) is the slow part.
_SECDED = SecdedCode()
_DECTED = DectedCode()

words = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestEccProperties:
    @given(words)
    @settings(max_examples=60)
    def test_secded_roundtrip(self, word):
        result = _SECDED.decode(_SECDED.encode(word))
        assert result.status is DecodeStatus.CLEAN and result.data == word

    @given(words, st.integers(min_value=0, max_value=71))
    @settings(max_examples=60)
    def test_secded_corrects_any_single(self, word, pos):
        result = _SECDED.decode(flip_bits(_SECDED.encode(word), [pos]))
        assert result.status is DecodeStatus.CORRECTED and result.data == word

    @given(words, st.integers(min_value=0, max_value=78),
           st.integers(min_value=0, max_value=78))
    @settings(max_examples=60)
    def test_dected_corrects_any_double(self, word, pos1, pos2):
        corrupted = flip_bits(_DECTED.encode(word), [pos1, pos2])
        result = _DECTED.decode(corrupted)
        if pos1 == pos2:
            assert result.status is DecodeStatus.CLEAN
        else:
            assert result.status is DecodeStatus.CORRECTED
        assert result.data == word

    @given(words, st.data())
    @settings(max_examples=60)
    def test_dected_detects_any_triple(self, word, data):
        positions = data.draw(
            st.lists(st.integers(min_value=0, max_value=78),
                     min_size=3, max_size=3, unique=True))
        corrupted = flip_bits(_DECTED.encode(word), positions)
        result = _DECTED.decode(corrupted)
        assert result.status is DecodeStatus.DETECTED_UNCORRECTABLE


class TestSeverityProperties:
    effect_counts = st.fixed_dictionaries({
        effect: st.integers(min_value=0, max_value=10) for effect in EffectType
    })

    @given(effect_counts)
    @settings(max_examples=100)
    def test_bounded_by_weight_sum(self, counts):
        severity = severity_value(counts, 10)
        weights = DEFAULT_WEIGHTS
        upper = weights.sc + weights.ac + weights.sdc + weights.ue + weights.ce
        assert 0.0 <= severity <= upper

    @given(effect_counts, st.integers(min_value=0, max_value=10))
    @settings(max_examples=100)
    def test_monotone_in_counts(self, counts, extra):
        severity = severity_value(counts, 20)
        bumped = dict(counts)
        bumped[EffectType.SDC] = min(20, bumped[EffectType.SDC] + extra)
        assert severity_value(bumped, 20) >= severity

    @given(effect_counts)
    @settings(max_examples=100)
    def test_linear_in_weights(self, counts):
        """Doubling all weights doubles the severity."""
        base = severity_value(counts, 10)
        doubled = severity_value(
            counts, 10,
            SeverityWeights(sc=32, ac=16, sdc=8, ue=4, ce=2))
        assert doubled == base * 2

    @given(st.lists(
        st.sampled_from(list(EffectType)), min_size=0, max_size=5))
    @settings(max_examples=100)
    def test_normalize_effects_invariants(self, effects):
        normalized = normalize_effects(effects)
        assert normalized  # never empty
        if len(normalized) > 1:
            assert EffectType.NO not in normalized


class TestRegionProperties:
    @st.composite
    def sweeps(draw):
        """Random monotone-ish sweeps with a clean top level."""
        n_levels = draw(st.integers(min_value=2, max_value=12))
        voltages = [980 - 5 * i for i in range(n_levels)]
        counts = {voltages[0]: {e: 0 for e in EffectType}}
        counts[voltages[0]][EffectType.NO] = 10
        for voltage in voltages[1:]:
            level = {e: 0 for e in EffectType}
            level[EffectType.NO] = draw(st.integers(0, 10))
            level[EffectType.SDC] = draw(st.integers(0, 10))
            level[EffectType.SC] = draw(st.integers(0, 10))
            counts[voltage] = level
        return counts

    @given(sweeps())
    @settings(max_examples=100)
    def test_region_nesting(self, counts):
        regions = regions_from_counts(counts)
        voltages = sorted(counts, reverse=True)
        # Regions appear in order safe -> unsafe -> crash as V drops.
        seen = []
        for voltage in voltages:
            region = regions.classify(voltage).value
            if not seen or seen[-1] != region:
                seen.append(region)
        allowed = ["safe", "unsafe", "crash"]
        assert seen == [r for r in allowed if r in seen]

    @given(sweeps())
    @settings(max_examples=100)
    def test_vmin_level_and_above_clean_of_observations(self, counts):
        regions = regions_from_counts(counts)
        for voltage, level in counts.items():
            if voltage >= regions.vmin_mv:
                abnormal = sum(
                    n for effect, n in level.items()
                    if effect is not EffectType.NO
                )
                assert abnormal == 0


class TestMetricProperties:
    vectors = st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2, max_size=30)

    @given(vectors)
    @settings(max_examples=100)
    def test_rmse_zero_iff_equal(self, y):
        assert rmse(y, y) == 0.0

    @given(vectors, st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=100)
    def test_rmse_shift_invariance(self, y, shift):
        shifted_truth = [v + shift for v in y]
        shifted_pred = [v + shift for v in y]
        assert rmse(shifted_truth, shifted_pred) == 0.0

    @given(vectors)
    @settings(max_examples=100)
    def test_r2_never_exceeds_one(self, y):
        rng = random.Random(0)
        predictions = [v + rng.uniform(-1, 1) for v in y]
        assert r2_score(y, predictions) <= 1.0


class TestVoltageGridProperties:
    @given(st.integers(min_value=0, max_value=56),
           st.integers(min_value=0, max_value=56))
    @settings(max_examples=100)
    def test_sweep_on_grid_and_descending(self, a, b):
        start = 980 - 5 * min(a, b)
        stop = 980 - 5 * max(a, b)
        sweep = voltage_sweep(start, stop)
        assert sweep[0] == start and sweep[-1] == stop
        assert all(validate_voltage_mv(v) == v for v in sweep)
        assert all(x - y == 5 for x, y in zip(sweep, sweep[1:]))


class TestFailureCurveProperties:
    @given(st.floats(min_value=750, max_value=950),
           st.floats(min_value=0.5, max_value=5.0),
           st.floats(min_value=700, max_value=1000),
           st.floats(min_value=0, max_value=50))
    @settings(max_examples=100)
    def test_monotone_and_bounded(self, midpoint, scale, voltage, delta):
        curve = FailureCurve(midpoint_mv=midpoint, scale_mv=scale)
        high = curve.probability(voltage + delta)
        low = curve.probability(voltage)
        assert 0.0 <= high <= 1.0
        assert high <= low


class TestStressIdentityProperties:
    # The default template's fixed contribution is ~0.173, so exact
    # solutions exist for stress in [0.173, 0.773].
    @given(st.floats(min_value=0.18, max_value=0.77))
    @settings(max_examples=100)
    def test_solver_exact_within_default_template(self, stress):
        traits = solve_traits_for_stress(WorkloadTraits(), stress)
        assert abs(stress_from_traits(traits) - stress) < 1e-9

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100)
    def test_clamped_solver_never_raises(self, stress):
        traits = solve_traits_for_stress(WorkloadTraits(), stress, clamp=True)
        assert 0.0 <= stress_from_traits(traits) <= 1.0
