"""The Figure-6 prediction pipeline on a reduced but real study.

The paper-scale studies (40 programs, three cases) run in the benchmark
harness; here a 12-program subset exercises every phase and asserts the
paper's *qualitative* results:

* severity prediction beats the naive baseline clearly;
* Vmin prediction does not beat it by much (the Section-4.3.1 negative
  result);
* the samples carry the voltage feature, forced through RFE.
"""

import pytest

from repro.core.framework import FrameworkConfig
from repro.machines import MachineSpec, build_machine
from repro.prediction import PredictionPipeline
from repro.prediction.features import VOLTAGE_FEATURE, FeatureAssembler
from repro.workloads import all_programs


@pytest.fixture(scope="module")
def pipeline():
    machine = build_machine(MachineSpec(chip="TTT", seed=2017))
    return PredictionPipeline(
        machine,
        characterization=FrameworkConfig(campaigns=2, stop_after_crash_levels=4),
    )


@pytest.fixture(scope="module")
def programs():
    # A stress-diverse subset keeps the test fast.
    return [p for p in all_programs() if p.input_set == "ref"][:12]


class TestProfiling:
    def test_profile_cached(self, pipeline, programs):
        first = pipeline.profile(programs[0])
        second = pipeline.profile(programs[0])
        assert first is second
        assert len(first) == 101


class TestSeverityStudy:
    def test_beats_naive_clearly(self, pipeline, programs):
        report = pipeline.severity_study(programs, core=0, max_samples=60)
        assert report.rmse_model < report.rmse_naive * 0.75
        assert report.r2 > 0.5
        assert report.n_train + report.n_test <= 60

    def test_voltage_feature_forced(self, pipeline, programs):
        report = pipeline.severity_study(programs, core=0, max_samples=60)
        assert VOLTAGE_FEATURE in report.selected_features
        assert len(report.selected_features) == 6  # 5 events + voltage

    def test_test_points_for_figures(self, pipeline, programs):
        report = pipeline.severity_study(programs, core=0, max_samples=60)
        assert report.test_points
        for tag, truth, _pred in report.test_points:
            assert "@" in tag
            assert 0.0 <= truth <= 16.0


class TestVminStudy:
    def test_rmse_small_but_naive_competitive(self, pipeline, programs):
        report = pipeline.vmin_study(programs, core=0)
        # RMSE in the "few regulator steps" range the paper reports...
        assert report.rmse_model < 12.0
        # ...but the improvement over naive is far below the severity
        # study's (the Section-4.3.1 negative result).
        assert report.improvement_over_naive < 1.9

    def test_five_counter_features(self, pipeline, programs):
        report = pipeline.vmin_study(programs, core=0)
        assert len(report.selected_features) == 5
        assert VOLTAGE_FEATURE not in report.selected_features

    def test_report_summary_readable(self, pipeline, programs):
        report = pipeline.vmin_study(programs, core=0)
        text = report.summary()
        assert "vmin_mv" in text and "TTT" in text and "R^2" in text


class TestAssembler:
    def test_per_kilo_instruction_normalisation(self, pipeline, programs):
        snapshot = pipeline.profile(programs[0])
        assembler = FeatureAssembler()
        ds = assembler.counters_dataset([snapshot], [900.0])
        inst_col = ds.feature_names.index("INST_RETIRED")
        assert ds.x[0, inst_col] == pytest.approx(1000.0)

    def test_counters_voltage_layout(self, pipeline, programs):
        snapshot = pipeline.profile(programs[0])
        ds = FeatureAssembler().counters_voltage_dataset(
            [(snapshot, 905, 3.5)])
        assert ds.feature_names[-1] == VOLTAGE_FEATURE
        assert ds.x[0, -1] == 905.0
        assert ds.y[0] == 3.5
