"""Property-based tests for the extension models and the generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.dynamics import (
    AdaptiveClockingUnit,
    AgingModel,
    SupplyDroopModel,
    TemperatureSensitivity,
)
from repro.hardware.variation import ChipGenerator
from repro.workloads.benchmark import WorkloadTraits, solve_traits_for_stress
from repro.workloads.generator import SyntheticWorkloadGenerator


class TestDroopProperties:
    @given(st.floats(min_value=0.3, max_value=2.4),
           st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=60)
    def test_droop_bounded_by_max(self, ipc, fp_ratio):
        droop = SupplyDroopModel(max_droop_mv=20.0)
        traits = solve_traits_for_stress(
            WorkloadTraits(ipc=ipc, fp_ratio=fp_ratio), 0.4)
        for freq in (300, 1200, 1800, 2400):
            value = droop.droop_mv(traits, freq)
            # Resonance gain can push past max_droop at its peak, but
            # never past max * gain.
            assert 0.0 <= value <= 20.0 * droop.resonance_gain

    @given(st.floats(min_value=0.3, max_value=2.4))
    @settings(max_examples=60)
    def test_droop_monotone_in_fp_intensity(self, ipc):
        droop = SupplyDroopModel()
        low = solve_traits_for_stress(WorkloadTraits(ipc=ipc, fp_ratio=0.0), 0.4)
        high = solve_traits_for_stress(WorkloadTraits(ipc=ipc, fp_ratio=0.5), 0.4)
        assert droop.droop_mv(high) >= droop.droop_mv(low)


class TestAdaptiveClockProperties:
    @given(st.floats(min_value=700, max_value=980),
           st.floats(min_value=700, max_value=980))
    @settings(max_examples=100)
    def test_duty_in_unit_interval(self, voltage, onset):
        unit = AdaptiveClockingUnit()
        duty = unit.deployment_duty(voltage, onset)
        assert 0.0 <= duty <= 1.0
        factor = unit.runtime_factor(voltage, onset)
        assert 1.0 <= factor <= 1.0 + unit.stretch_penalty


class TestAgingProperties:
    @given(st.floats(min_value=0, max_value=1e6),
           st.floats(min_value=0, max_value=1e6))
    @settings(max_examples=100)
    def test_shift_monotone_in_time(self, a, b):
        aging = AgingModel()
        early, late = sorted((a, b))
        assert aging.shift_mv(early) <= aging.shift_mv(late)

    @given(st.floats(min_value=1.0, max_value=200.0))
    @settings(max_examples=60)
    def test_exhaustion_inverse_of_shift(self, guardband):
        aging = AgingModel()
        hours = aging.hours_until_exhausted(guardband)
        assert aging.shift_mv(hours) <= guardband * 1.0001


class TestTemperatureProperties:
    @given(st.floats(min_value=-20, max_value=120),
           st.floats(min_value=-20, max_value=120))
    @settings(max_examples=100)
    def test_shift_monotone_and_floored(self, a, b):
        sens = TemperatureSensitivity()
        cool, hot = sorted((a, b))
        assert 0.0 <= sens.shift_mv(cool) <= sens.shift_mv(hot)


class TestVariationProperties:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=40)
    def test_generated_chips_structurally_valid(self, serial):
        # ChipCalibration's own __post_init__ enforces the PMD-2
        # invariant; constructing without raising is the property.
        calibration = ChipGenerator("TFF", lot_seed=3).calibration(serial)
        assert calibration.base_vmin_2400_mv % 5 == 0
        assert min(calibration.core_offsets_mv) == 0
        assert max(calibration.core_offsets_mv) <= 60

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=30)
    def test_generation_deterministic(self, serial):
        first = ChipGenerator("TSS", lot_seed=9).calibration(serial)
        second = ChipGenerator("TSS", lot_seed=9).calibration(serial)
        assert first == second


class TestGeneratorProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40)
    def test_any_seed_yields_valid_workloads(self, seed):
        bench = SyntheticWorkloadGenerator(seed=seed).draw()
        assert 0.0 <= bench.stress <= 1.0
        assert 0.0 <= bench.smoothness <= 1.0
        assert bench.traits.instructions > 0
