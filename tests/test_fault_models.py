"""Voltage-to-failure curves and their anchor placement."""

import pytest

from repro.data.calibration import chip_calibration
from repro.errors import ConfigurationError
from repro.faults.models import (
    SRAM_UNITS,
    TIMING_UNITS,
    FailureCurve,
    FunctionalUnit,
    build_unit_models,
)


class TestFailureCurve:
    def test_monotone_decreasing_in_voltage(self):
        curve = FailureCurve(midpoint_mv=900, scale_mv=2.0)
        probs = [curve.probability(v) for v in range(940, 860, -5)]
        assert all(b >= a for a, b in zip(probs, probs[1:]))

    def test_midpoint_is_half_ceiling(self):
        curve = FailureCurve(midpoint_mv=900, scale_mv=2.0, ceiling=0.8)
        assert curve.probability(900) == pytest.approx(0.4)

    def test_extremes_clamped(self):
        curve = FailureCurve(midpoint_mv=900, scale_mv=1.0)
        assert curve.probability(2000) == 0.0
        assert curve.probability(100) == 1.0

    def test_anchored_is_negligible_at_anchor(self):
        curve = FailureCurve.anchored(905, scale_mv=1.0)
        assert curve.probability(905) < 5e-4
        assert curve.probability(900) > 0.04

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureCurve(midpoint_mv=900, scale_mv=0.0)

    def test_invalid_ceiling_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureCurve(midpoint_mv=900, scale_mv=1.0, ceiling=1.5)


@pytest.fixture(scope="module")
def ttt():
    return chip_calibration("TTT")


class TestUnitModelPlacement:
    def test_all_units_present(self, ttt):
        models = build_unit_models(ttt, core=0, stress=0.6, smoothness=1.0)
        assert set(models) == set(FunctionalUnit)

    def test_timing_profile_ordering(self, ttt):
        """X-Gene signature: datapath timing wakes before SRAM, SRAM
        before control, clock/uncore defines the crash point."""
        models = build_unit_models(ttt, core=0, stress=0.6, smoothness=1.0)
        def midpoint(unit):
            return models[unit].curve.midpoint_mv
        assert midpoint(FunctionalUnit.FPU) > midpoint(FunctionalUnit.L2_SRAM)
        assert midpoint(FunctionalUnit.L2_SRAM) > midpoint(FunctionalUnit.CONTROL)
        assert midpoint(FunctionalUnit.CONTROL) > midpoint(FunctionalUnit.CLOCK_UNCORE)

    def test_sram_profile_ordering(self, ttt):
        """Itanium-like signature: SRAM first, timing much later."""
        models = build_unit_models(
            ttt, core=0, stress=0.6, smoothness=1.0, profile="sram"
        )
        def midpoint(unit):
            return models[unit].curve.midpoint_mv
        assert midpoint(FunctionalUnit.L2_SRAM) > midpoint(FunctionalUnit.FPU)
        assert midpoint(FunctionalUnit.L1_SRAM) > midpoint(FunctionalUnit.ALU)

    def test_unknown_profile_rejected(self, ttt):
        with pytest.raises(ConfigurationError):
            build_unit_models(ttt, 0, 0.5, 0.5, profile="quantum")

    def test_first_unit_anchored_at_vmin(self, ttt):
        models = build_unit_models(ttt, core=0, stress=0.6, smoothness=1.0)
        vmin = ttt.vmin_mv(0, 0.6)
        fpu = models[FunctionalUnit.FPU]
        assert fpu.probability(vmin) < 5e-4
        assert fpu.probability(vmin - 5) > 0.04

    def test_clock_anchored_at_crash(self, ttt):
        models = build_unit_models(ttt, core=0, stress=0.6, smoothness=1.0)
        crash = ttt.crash_voltage_mv(0, 0.6, 1.0)
        clock = models[FunctionalUnit.CLOCK_UNCORE]
        assert clock.probability(crash + 5) < 5e-4
        assert clock.probability(crash) > 0.04
        assert clock.probability(crash - 10) > 0.99

    def test_datapath_stress_normalised(self, ttt):
        models = build_unit_models(
            ttt, core=0, stress=0.6, smoothness=1.0,
            unit_stress={FunctionalUnit.ALU: 0.4, FunctionalUnit.FPU: 0.2},
        )
        # The dominant datapath unit is always fully stressed so the
        # Vmin edge stays at the anchor.
        assert models[FunctionalUnit.ALU].stress == pytest.approx(1.0)
        assert models[FunctionalUnit.FPU].stress == pytest.approx(0.5)

    def test_alu_dominant_workload_swaps_first_unit(self, ttt):
        models = build_unit_models(
            ttt, core=0, stress=0.6, smoothness=1.0,
            unit_stress={FunctionalUnit.ALU: 1.0, FunctionalUnit.FPU: 0.1},
        )
        assert models[FunctionalUnit.ALU].curve.midpoint_mv > \
            models[FunctionalUnit.FPU].curve.midpoint_mv

    def test_clock_division_regime_disables_everything_but_crash(self, ttt):
        """Section 3.2: at 1.2 GHz nothing but crashes below Vmin."""
        models = build_unit_models(ttt, core=0, stress=0.6, smoothness=1.0,
                                   freq_mhz=1200)
        for unit in list(TIMING_UNITS) + list(SRAM_UNITS):
            assert models[unit].probability(700) == 0.0
        clock = models[FunctionalUnit.CLOCK_UNCORE]
        assert clock.probability(ttt.vmin_1200_mv) < 5e-4
        assert clock.probability(ttt.vmin_1200_mv - 10) > 0.5

    def test_core_offsets_shift_curves(self, ttt):
        robust = build_unit_models(ttt, core=4, stress=0.6, smoothness=1.0)
        sensitive = build_unit_models(ttt, core=0, stress=0.6, smoothness=1.0)
        shift = ttt.core_offsets_mv[0] - ttt.core_offsets_mv[4]
        assert sensitive[FunctionalUnit.FPU].curve.midpoint_mv - \
            robust[FunctionalUnit.FPU].curve.midpoint_mv == pytest.approx(shift)
