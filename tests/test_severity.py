"""The severity function (Section 3.4.1, Table 4)."""

import pytest

from repro.core.severity import (
    DEFAULT_WEIGHTS,
    SeverityWeights,
    severity_of_runs,
    severity_table,
    severity_value,
)
from repro.effects import EffectType
from repro.errors import ConfigurationError


class TestWeights:
    def test_table4_defaults(self):
        w = DEFAULT_WEIGHTS
        assert (w.sc, w.ac, w.sdc, w.ue, w.ce) == (16, 8, 4, 2, 1)

    def test_no_weighs_zero(self):
        assert DEFAULT_WEIGHTS.weight(EffectType.NO) == 0.0

    def test_maximum_is_all_crash(self):
        assert DEFAULT_WEIGHTS.maximum == 16.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            SeverityWeights(sc=-1)

    def test_custom_weights_usable(self):
        # "different weight values can be also used" (Section 3.4.1).
        w = SeverityWeights(sc=100, ac=10, sdc=50, ue=2, ce=1)
        counts = {EffectType.SDC: 1}
        assert severity_value(counts, 1, w) == 50.0


class TestSeverityValue:
    def test_paper_formula(self):
        # 2 SDC + 1 CE + 1 SC out of 10 runs:
        # 4*2/10 + 1*1/10 + 16*1/10 = 2.5
        counts = {EffectType.SDC: 2, EffectType.CE: 1, EffectType.SC: 1}
        assert severity_value(counts, 10) == pytest.approx(2.5)

    def test_all_clean_is_zero(self):
        assert severity_value({EffectType.NO: 10}, 10) == 0.0

    def test_all_crash_is_sixteen(self):
        assert severity_value({EffectType.SC: 10}, 10) == 16.0

    def test_count_exceeding_runs_rejected(self):
        with pytest.raises(ConfigurationError):
            severity_value({EffectType.CE: 11}, 10)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            severity_value({EffectType.CE: -1}, 10)

    def test_zero_runs_rejected(self):
        with pytest.raises(ConfigurationError):
            severity_value({}, 0)

    def test_event_multiplicity_ignored(self):
        # "the actual number of uncorrected errors during each run is
        # not taken into consideration": counts are runs, so a single
        # run with many UEs has the same severity as one with one UE.
        assert severity_value({EffectType.UE: 1}, 1) == 2.0


class TestSeverityOfRuns:
    def test_multi_effect_runs(self):
        runs = [
            frozenset({EffectType.SDC, EffectType.CE}),
            frozenset({EffectType.NO}),
        ]
        # (4*1 + 1*1) / 2
        assert severity_of_runs(runs) == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            severity_of_runs([])

    def test_monotone_in_effect_escalation(self):
        base = severity_of_runs([frozenset({EffectType.CE})])
        worse = severity_of_runs([frozenset({EffectType.UE})])
        worst = severity_of_runs([frozenset({EffectType.SC})])
        assert base < worse < worst


class TestSeverityTable:
    def test_per_voltage_mapping(self):
        table = severity_table({
            905: [frozenset({EffectType.NO})] * 10,
            900: [frozenset({EffectType.SDC})] * 4 + [frozenset({EffectType.NO})] * 6,
        })
        assert table[905] == 0.0
        assert table[900] == pytest.approx(1.6)

    def test_severity_bounded_by_max_weight(self):
        table = severity_table({
            860: [frozenset({EffectType.SC})] * 10,
        })
        assert table[860] <= DEFAULT_WEIGHTS.maximum


class TestDeepestVoltageWithin:
    def test_exact_tolerance_zero_returns_safe_vmin(self):
        from repro.core.severity import deepest_voltage_within
        table = {910: 0.0, 905: 0.0, 900: 0.16, 895: 4.0, 890: 16.0}
        assert deepest_voltage_within(table, 0.0) == 905

    def test_sdc_tolerant_apps_go_deeper(self):
        from repro.core.severity import deepest_voltage_within
        table = {910: 0.0, 905: 0.0, 900: 0.16, 895: 4.0, 890: 16.0}
        assert deepest_voltage_within(table, 4.0) == 895

    def test_contiguity_enforced(self):
        from repro.core.severity import deepest_voltage_within
        # A quiet level below a violating one is unusable.
        table = {910: 0.0, 905: 6.0, 900: 0.0}
        assert deepest_voltage_within(table, 1.0) == 910

    def test_nothing_satisfies(self):
        from repro.core.severity import deepest_voltage_within
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            deepest_voltage_within({905: 8.0}, 1.0)

    def test_validation(self):
        from repro.core.severity import deepest_voltage_within
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            deepest_voltage_within({}, 0.0)
        with pytest.raises(ConfigurationError):
            deepest_voltage_within({905: 0.0}, -1.0)

    def test_on_a_real_characterization(self, bwaves_characterization):
        from repro.core.severity import deepest_voltage_within
        table = bwaves_characterization.severity_by_voltage()
        safe = deepest_voltage_within(table, 0.0)
        tolerant = deepest_voltage_within(table, 4.0)
        assert safe == bwaves_characterization.highest_vmin_mv
        assert tolerant < safe
