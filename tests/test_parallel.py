"""The parallel characterization engine: determinism, fallbacks, caching."""

import io
import warnings

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.core.campaign import CampaignResult, CharacterizationResult
from repro.core.runs import CharacterizationSetup, RunRecord
from repro.effects import EffectType
from repro.errors import ConfigurationError
# reprolint: disable=RPR003 -- MachineSpec.from_machine round-trip tests
from repro.hardware import (
    AdaptiveClockingUnit,
    AgingModel,
    SupplyDroopModel,
    XGene2Machine,
)
from repro.parallel import (
    MachineSpec,
    ParallelCampaignEngine,
    ConsoleProgress,
    ProgressReporter,
    ProgressTracker,
    derive_task_seed,
)
from repro.parallel import engine as engine_mod
from repro.workloads import get_benchmark

#: Small but watchdog-exercising configuration: the sweep starts right
#: below bwaves/mcf Vmin and descends into the crash region.
CFG = FrameworkConfig(start_mv=905, campaigns=2, runs_per_level=3)
SPEC = MachineSpec(chip="TTT", seed=2017)


def grid_engine(**kwargs):
    return ParallelCampaignEngine(SPEC, CFG, **kwargs)


def run_grid(**kwargs):
    return grid_engine(**kwargs).run([get_benchmark("bwaves")], [0, 4])


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_task_seed(2017, "bwaves", 0, 1) == \
            derive_task_seed(2017, "bwaves", 0, 1)

    def test_distinct_across_coordinates(self):
        seeds = {
            derive_task_seed(seed, bench, core, campaign)
            for seed in (1, 2017)
            for bench in ("bwaves", "mcf")
            for core in (0, 4)
            for campaign in (1, 2, 3)
        }
        assert len(seeds) == 2 * 2 * 2 * 3

    def test_positive_63_bit(self):
        seed = derive_task_seed(2017, "bwaves", 7, 10)
        assert 0 <= seed < 2 ** 63


class TestMachineSpec:
    def test_from_machine_round_trip(self):
        machine = XGene2Machine("TFF", seed=42)
        spec = MachineSpec.from_machine(machine)
        assert spec.chip == "TFF" and spec.seed == 42
        rebuilt = spec.build()
        assert rebuilt.chip.name == "TFF"
        assert rebuilt.is_responsive()  # build() powers on

    def test_build_with_override_seed(self):
        machine = MachineSpec(chip="TTT", seed=1).build(seed=99)
        assert machine.seed == 99

    def test_captures_extension_models(self):
        machine = XGene2Machine("TTT", droop_model=SupplyDroopModel())
        spec = MachineSpec.from_machine(machine)
        assert spec.droop_model == SupplyDroopModel()
        rebuilt = spec.build()
        assert rebuilt.droop_model == SupplyDroopModel()
        assert rebuilt.to_spec() == spec

    def test_rejects_unregistered_third_party_models(self):
        class ExoticDroop(SupplyDroopModel):
            pass

        machine = XGene2Machine("TTT", droop_model=ExoticDroop())
        with pytest.raises(ConfigurationError, match="register_component"):
            MachineSpec.from_machine(machine)


class TestEngineEquivalence:
    def test_parallel_bit_identical_to_serial(self):
        serial = run_grid(jobs=1)
        parallel = run_grid(jobs=4, backend="process")
        assert serial.backend == "serial" and parallel.backend == "process"
        assert serial.results == parallel.results
        assert serial.raw_logs == parallel.raw_logs
        for key in serial.results:
            assert serial.results[key].severity_by_voltage() == \
                parallel.results[key].severity_by_voltage()
            assert serial.results[key].highest_vmin_mv == \
                parallel.results[key].highest_vmin_mv
            assert serial.results[key].highest_crash_mv == \
                parallel.results[key].highest_crash_mv
        # The sweep descends into the crash region, so the equivalence
        # covers the worker-side watchdog-recovery path.
        assert serial.interventions == parallel.interventions > 0

    def test_thread_backend_matches(self):
        assert run_grid(jobs=1).results == \
            run_grid(jobs=2, backend="thread").results

    def test_chunking_does_not_change_results(self):
        reference = run_grid(jobs=1)
        chunked = run_grid(jobs=2, backend="thread", chunk_size=1)
        assert reference.results == chunked.results

    def test_campaign_order_restored(self):
        report = run_grid(jobs=2, backend="thread")
        for result in report.results.values():
            indices = [c.campaign_index for c in result.campaigns]
            assert indices == sorted(indices)


class TestRetryPolicy:
    def test_lost_chunk_retried_in_process(self, monkeypatch):
        real = engine_mod.run_campaign_chunk
        failures = {"left": 1}

        def flaky(spec, config, tasks, collect_spans=False, use_kernel=True):
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("simulated worker crash")
            return real(spec, config, tasks, collect_spans, use_kernel)

        monkeypatch.setattr(engine_mod, "run_campaign_chunk", flaky)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = grid_engine(jobs=2, backend="thread").run(
                [get_benchmark("bwaves")], [0, 4]
            )
        monkeypatch.undo()
        assert report.chunks_retried == 1
        assert report.results == run_grid(jobs=1).results


class TestEngineValidation:
    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_engine(jobs=1).run([], [])

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_engine(jobs=0)

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_engine(backend="gpu")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_engine(chunk_size=0)


class TestFrameworkWiring:
    def _framework(self):
        machine = XGene2Machine("TTT", seed=2017)
        machine.power_on()
        return CharacterizationFramework(machine, CFG)

    def test_characterize_many_jobs_equivalence(self):
        serial = self._framework().characterize_many(
            [get_benchmark("bwaves")], [0, 4], jobs=1)
        parallel = self._framework().characterize_many(
            [get_benchmark("bwaves")], [0, 4], jobs=4)
        assert serial == parallel

    def test_raw_logs_and_report_populated(self):
        framework = self._framework()
        framework.characterize_many([get_benchmark("bwaves")], [0], jobs=2)
        assert len(framework.raw_logs) == CFG.campaigns
        assert framework.last_engine_report is not None
        assert framework.last_engine_report.tasks_run == CFG.campaigns
        assert framework.last_engine_report.interventions > 0

    def test_abnormal_fraction_served_from_cache(self, monkeypatch):
        framework = self._framework()
        framework.characterize_many([get_benchmark("bwaves")], [0], jobs=1)
        first = framework.abnormal_run_fraction()
        assert 0.0 < first <= 1.0

        from repro.core import framework as framework_mod

        def exploding_parse(text):
            raise AssertionError("raw log was re-parsed")

        monkeypatch.setattr(framework_mod, "parse_log", exploding_parse)
        assert framework.abnormal_run_fraction() == first

    def test_abnormal_fraction_invalidates_on_log_change(self):
        framework = self._framework()
        framework.characterize_many([get_benchmark("bwaves")], [0], jobs=1)
        key = next(iter(framework.raw_logs))
        framework.raw_logs[key] = framework.raw_logs[key] * 2
        doubled = framework.abnormal_run_fraction()
        assert 0.0 < doubled <= 1.0

    def _extension_framework(self, config=CFG):
        machine = XGene2Machine(
            "TTT", seed=2017,
            droop_model=SupplyDroopModel(),
            aging_model=AgingModel(),
            adaptive_clock=AdaptiveClockingUnit(),
        )
        machine.age(2000.0)
        machine.power_on()
        return CharacterizationFramework(machine, config)

    def test_extension_machine_parallel_matches_serial(self):
        # The acceptance scenario: droop + aging + adaptive clocking,
        # jobs=4 bit-identical to jobs=1 (results AND raw logs).
        serial = self._extension_framework()
        serial_results = serial.characterize_many(
            [get_benchmark("bwaves")], [0, 4], jobs=1)
        parallel = self._extension_framework()
        parallel_results = parallel.characterize_many(
            [get_benchmark("bwaves")], [0, 4], jobs=4)
        assert serial_results == parallel_results
        assert serial.raw_logs == parallel.raw_logs
        assert parallel.last_engine_report.backend != "serial"

    def test_extension_models_shift_the_characterization(self):
        # The rebuilt machines must actually carry the models: an aged,
        # droop-afflicted machine characterizes differently from a
        # nominal one.  The sweep starts at 930 mV because the shifted
        # Vmin climbs above the default 905 mV test start.
        cfg = FrameworkConfig(start_mv=930, campaigns=2, runs_per_level=3)
        machine = XGene2Machine("TTT", seed=2017)
        machine.power_on()
        nominal = CharacterizationFramework(machine, cfg).characterize_many(
            [get_benchmark("bwaves")], [0], jobs=2)
        shifted = self._extension_framework(cfg).characterize_many(
            [get_benchmark("bwaves")], [0], jobs=2)
        assert shifted[("bwaves", 0)].highest_vmin_mv > \
            nominal[("bwaves", 0)].highest_vmin_mv


class TestProgress:
    def test_tracker_events(self):
        events = []

        class Recorder(ProgressReporter):
            def on_progress(self, event):
                events.append(event)

        tracker = ProgressTracker(4, Recorder())
        tracker.advance(1)
        tracker.advance(3)
        assert [e.completed for e in events] == [1, 4]
        assert all(e.total == 4 for e in events)
        assert events[0].eta_s is not None and events[0].eta_s >= 0.0
        assert events[-1].fraction == 1.0 and events[-1].eta_s == 0.0

    def test_engine_reports_progress(self):
        events = []

        class Recorder(ProgressReporter):
            def on_progress(self, event):
                events.append(event)

        engine = ParallelCampaignEngine(SPEC, CFG, jobs=1, progress=Recorder())
        engine.run([get_benchmark("bwaves")], [0])
        assert events[-1].completed == events[-1].total == CFG.campaigns

    def test_console_progress_renders(self):
        stream = io.StringIO()
        reporter = ConsoleProgress(stream=stream, label="tasks")
        tracker = ProgressTracker(2, reporter)
        tracker.advance(2)
        tracker.finish()
        text = stream.getvalue()
        assert "tasks: 2/2" in text and "100.0 %" in text
        assert text.endswith("\n")


def _record(voltage, effects, campaign=1, run=1):
    return RunRecord(
        chip="TTT", benchmark="bwaves",
        setup=CharacterizationSetup(voltage_mv=voltage, freq_mhz=2400, core=0),
        campaign_index=campaign, run_index=run,
        effects=frozenset(effects), exit_code=0, output_matches=True,
    )


class TestAggregationCaching:
    def _campaign(self):
        records = tuple(
            _record(v, {EffectType.SDC} if v < 910 else {EffectType.NO}, run=r)
            for v in (915, 910, 905) for r in range(1, 4)
        )
        return CampaignResult(chip="TTT", benchmark="bwaves", core=0,
                              freq_mhz=2400, campaign_index=1, records=records)

    def test_severity_is_single_pass(self, monkeypatch):
        campaign = self._campaign()

        def forbidden(self, voltage_mv):
            raise AssertionError("severity_by_voltage rescanned records")

        monkeypatch.setattr(CampaignResult, "runs_at", forbidden)
        severity = campaign.severity_by_voltage()
        assert severity[905] == pytest.approx(4.0 * 3 / 3)

    def test_counts_copy_is_isolated(self):
        campaign = self._campaign()
        mutated = campaign.counts_by_voltage()
        mutated[905][EffectType.SDC] = 999
        assert campaign.counts_by_voltage()[905][EffectType.SDC] == 3

    def test_run_counts_by_voltage(self):
        campaign = self._campaign()
        assert campaign.run_counts_by_voltage() == {915: 3, 910: 3, 905: 3}

    def test_characterization_severity_uses_pooled_cache(self):
        campaign = self._campaign()
        result = CharacterizationResult(campaigns=(campaign,))
        assert result.severity_by_voltage() == campaign.severity_by_voltage()
        # cached views are per-instance and never leak between objects
        assert result.pooled_counts() == campaign.counts_by_voltage()
