"""Calibration anchors: every number the paper publishes."""

import pytest

from repro.data.calibration import (
    CHIP_NAMES,
    ChipCalibration,
    chip_calibration,
    crash_voltage_mv,
    round5,
    unsafe_width_mv,
    vmin_mv,
)
from repro.errors import ConfigurationError
from repro.workloads import figure_benchmarks, get_benchmark


class TestLookup:
    def test_three_chips(self):
        assert CHIP_NAMES == ("TTT", "TFF", "TSS")
        for chip in CHIP_NAMES:
            assert chip_calibration(chip).name == chip

    def test_unknown_chip_rejected(self):
        with pytest.raises(ConfigurationError):
            chip_calibration("TXX")

    def test_round5(self):
        assert round5(873) == 875
        assert round5(871) == 870
        assert round5(880) == 880


class TestFigure3Anchors:
    """Most-robust-core Vmin at 2.4 GHz (Figure 3)."""

    EXPECTED = {
        "TTT": {"bwaves": 875, "cactusADM": 870, "dealII": 865,
                "gromacs": 860, "leslie3d": 880, "mcf": 860, "milc": 870,
                "namd": 865, "soplex": 875, "zeusmp": 885},
        "TFF": {"bwaves": 880, "cactusADM": 875, "dealII": 875,
                "gromacs": 870, "leslie3d": 880, "mcf": 870, "milc": 875,
                "namd": 875, "soplex": 880, "zeusmp": 885},
        "TSS": {"bwaves": 890, "cactusADM": 880, "dealII": 875,
                "gromacs": 870, "leslie3d": 895, "mcf": 870, "milc": 880,
                "namd": 875, "soplex": 890, "zeusmp": 900},
    }

    @pytest.mark.parametrize("chip", CHIP_NAMES)
    def test_series(self, chip):
        calibration = chip_calibration(chip)
        for bench in figure_benchmarks():
            assert calibration.robust_vmin_2400_mv(bench.stress) == \
                self.EXPECTED[chip][bench.name], bench.name

    def test_published_ranges(self):
        # "the Vmin varies from 885mV to 860mV for TTT, from 885mV to
        # 870mV for TFF and from 900mV to 870mV for TSS"
        ranges = {"TTT": (860, 885), "TFF": (870, 885), "TSS": (870, 900)}
        for chip, (low, high) in ranges.items():
            values = list(self.EXPECTED[chip].values())
            assert min(values) == low and max(values) == high


class TestSection5Anchors:
    def test_leslie3d_pmd_pair(self):
        leslie = get_benchmark("leslie3d")
        cal = chip_calibration("TTT")
        assert cal.vmin_mv(4, leslie.stress) == 880  # robust PMD
        assert cal.vmin_mv(0, leslie.stress) == 915  # sensitive PMD

    def test_core0_unsafe_band_matches_prose(self):
        # Section 4.3.1: core 0's unsafe region spans 910 down to 885.
        bwaves = get_benchmark("bwaves")
        cal = chip_calibration("TTT")
        vmin = cal.vmin_mv(0, bwaves.stress)
        crash = cal.crash_voltage_mv(0, bwaves.stress, bwaves.smoothness)
        assert vmin == 910
        assert crash == 875


class TestCoreToCoreStructure:
    @pytest.mark.parametrize("chip", CHIP_NAMES)
    def test_pmd2_most_robust(self, chip):
        cal = chip_calibration(chip)
        assert cal.most_robust_core() in (4, 5)

    @pytest.mark.parametrize("chip", CHIP_NAMES)
    def test_pmd0_most_sensitive(self, chip):
        cal = chip_calibration(chip)
        assert cal.most_sensitive_core() in (0, 1)

    def test_max_spread_is_3_6_percent(self):
        # "up to 3.6% more voltage reduction compared to the most
        # sensitive cores"
        cal = chip_calibration("TTT")
        spread = max(cal.core_offsets_mv) - min(cal.core_offsets_mv)
        assert spread / 980 == pytest.approx(0.036, abs=0.001)

    def test_chip_average_ordering(self):
        # TFF averages below TTT; TSS significantly above (Section 3.3).
        def mean_vmin(chip):
            cal = chip_calibration(chip)
            return sum(
                cal.vmin_mv(core, bench.stress)
                for core in range(8)
                for bench in figure_benchmarks()
            ) / (8 * 10)
        assert mean_vmin("TFF") < mean_vmin("TTT") < mean_vmin("TSS")


class TestFrequencyRegimes:
    def test_1200_is_program_independent(self):
        cal = chip_calibration("TTT")
        values = {
            cal.vmin_mv(core, bench.stress, 1200)
            for core in range(8)
            for bench in figure_benchmarks()
        }
        assert values == {760}

    def test_1200_has_no_unsafe_region(self):
        assert unsafe_width_mv("TTT", 1.0, 1200) == 5

    def test_intermediate_frequencies_inherit_regimes(self):
        # Section 3.2: >1.2 GHz behaves like 2.4 GHz; <=1.2 GHz like
        # 1.2 GHz (clock skipping vs division).
        bench = get_benchmark("leslie3d")
        assert vmin_mv("TTT", 0, bench.stress, 1500) == \
            vmin_mv("TTT", 0, bench.stress, 2400)
        assert vmin_mv("TTT", 0, bench.stress, 600) == \
            vmin_mv("TTT", 0, bench.stress, 1200)

    def test_chip_1200_ordering(self):
        assert chip_calibration("TFF").vmin_1200_mv < \
            chip_calibration("TTT").vmin_1200_mv < \
            chip_calibration("TSS").vmin_1200_mv


class TestUnsafeWidth:
    def test_bwaves_widest(self):
        widths = {
            bench.name: unsafe_width_mv("TTT", bench.smoothness)
            for bench in figure_benchmarks()
        }
        assert widths["bwaves"] == max(widths.values()) == 35

    def test_crash_below_vmin(self):
        for bench in figure_benchmarks():
            for core in (0, 4, 7):
                vmin = vmin_mv("TTT", core, bench.stress)
                crash = crash_voltage_mv("TTT", core, bench.stress, bench.smoothness)
                assert crash < vmin

    def test_guardband_positive_everywhere(self):
        for chip in CHIP_NAMES:
            cal = chip_calibration(chip)
            for core in range(8):
                assert cal.guardband_mv(core, 1.0) > 0


class TestValidation:
    def test_core_range_checked(self):
        with pytest.raises(ConfigurationError):
            vmin_mv("TTT", 8, 0.5)

    def test_stress_range_checked(self):
        with pytest.raises(ConfigurationError):
            vmin_mv("TTT", 0, 1.5)

    def test_calibration_rejects_wrong_core_count(self):
        with pytest.raises(ConfigurationError):
            ChipCalibration(
                name="X", corner_description="", base_vmin_2400_mv=860,
                stress_span_mv=25, core_offsets_mv=(0,) * 4,
                vmin_1200_mv=760, leakage_rel=1.0,
            )

    def test_calibration_requires_pmd2_robust(self):
        with pytest.raises(ConfigurationError):
            ChipCalibration(
                name="X", corner_description="", base_vmin_2400_mv=860,
                stress_span_mv=25, core_offsets_mv=(0, 5, 10, 10, 20, 20, 5, 5),
                vmin_1200_mv=760, leakage_rel=1.0,
            )
