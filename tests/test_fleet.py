"""The fleet store: sharding, watermarks, compaction, warm indexes.

The acceptance contracts under test:

* a fleet of N machines journals bit-identically to N independent
  single-machine ``CampaignStore`` runs, including kill-and-resume;
* every warm index answer is byte-identical to a recompute through a
  full journal re-parse, at every kill point and under interleaved
  multi-process shard appends;
* compaction permutes journal line bytes into grid order and changes
  no answer.
"""

import dataclasses
import json
import multiprocessing

import pytest

from repro.core import FrameworkConfig
from repro.errors import CampaignError, StoreError
from repro.machines import MachineSpec
from repro.parallel import ParallelCampaignEngine, run_fleet
from repro.prediction import FleetStreamingTrainer, StreamingTrainer
from repro.prediction.dataset import vmin_dataset_from_store
from repro.store import (
    FLEET_FORMAT,
    FLEET_MANIFEST_NAME,
    CampaignStore,
    FleetManifest,
    FleetStore,
    JOURNAL_NAME,
    ShardEntry,
    StoreIndexes,
    reparse_serialization,
)
from repro.workloads import get_benchmark

#: The same fast watchdog-exercising cell as test_store: mcf core 0
#: starting just under Vmin descends into the crash region quickly.
CFG = FrameworkConfig(start_mv=905, campaigns=2, runs_per_level=3)
SEEDS = (2017, 2018, 2019)
SPECS = [MachineSpec(chip="TTT", seed=seed) for seed in SEEDS]
WORKLOADS = ["mcf"]
CORES = [0]
SHARD_TASKS = len(WORKLOADS) * len(CORES) * CFG.campaigns


def make_fleet(directory):
    return FleetStore.create(directory, SPECS, CFG, WORKLOADS, CORES)


def run_shard_standalone(spec, directory):
    """One machine's grid into a plain single-machine store."""
    engine = ParallelCampaignEngine(spec, CFG)
    engine.run([get_benchmark("mcf")], CORES, store=directory)
    return directory


@pytest.fixture(scope="module")
def complete_fleet(tmp_path_factory):
    """A fully characterized three-machine fleet."""
    directory = tmp_path_factory.mktemp("fleet")
    make_fleet(directory)
    run_fleet(directory)
    return directory


@pytest.fixture(scope="module")
def standalone_journals(tmp_path_factory):
    """Per-seed journal bytes from independent single-machine runs."""
    journals = {}
    for spec in SPECS:
        directory = tmp_path_factory.mktemp(f"solo-{spec.seed}")
        run_shard_standalone(spec, directory)
        journals[spec.seed] = (directory / JOURNAL_NAME).read_bytes()
    return journals


class TestFleetManifest:
    def manifest(self):
        return FleetManifest(
            config=CFG,
            workloads=tuple(WORKLOADS),
            cores=tuple(CORES),
            shards=tuple(
                ShardEntry(
                    name=f"m{i:02d}-{spec.digest()[:8]}",
                    spec_digest=spec.digest(),
                    path=f"shards/m{i:02d}-{spec.digest()[:8]}",
                    watermark=0,
                    total=SHARD_TASKS,
                )
                for i, spec in enumerate(SPECS)
            ),
        )

    def test_json_round_trip(self):
        manifest = self.manifest()
        data = manifest.to_json_dict()
        assert data["format"] == FLEET_FORMAT
        assert FleetManifest.from_json_dict(data) == manifest

    def test_unknown_format_rejected(self):
        data = self.manifest().to_json_dict()
        data["format"] = "repro-fleet/v999"
        with pytest.raises(StoreError, match="format"):
            FleetManifest.from_json_dict(data)

    def test_duplicate_shard_digests_rejected(self):
        manifest = self.manifest()
        with pytest.raises(StoreError, match="distinct"):
            dataclasses.replace(
                manifest, shards=(manifest.shards[0], manifest.shards[0])
            )

    def test_unknown_routing_digest_names_known_shards(self):
        manifest = self.manifest()
        with pytest.raises(StoreError, match=manifest.shards[0].name):
            manifest.entry_for("f" * 64)

    def test_task_totals(self):
        manifest = self.manifest()
        assert manifest.tasks_total() == len(SPECS) * SHARD_TASKS
        assert manifest.tasks_done() == 0


class TestFleetLifecycle:
    def test_create_layout(self, tmp_path):
        fleet = make_fleet(tmp_path)
        assert (tmp_path / FLEET_MANIFEST_NAME).exists()
        for entry, spec in zip(fleet.manifest.shards, SPECS):
            assert entry.spec_digest == spec.digest()
            assert entry.name.endswith(spec.digest()[:8])
            assert (tmp_path / entry.path / "manifest.json").exists()
            assert entry.total == SHARD_TASKS and entry.watermark == 0

    def test_create_refuses_existing(self, tmp_path):
        make_fleet(tmp_path)
        with pytest.raises(StoreError, match="already exists"):
            make_fleet(tmp_path)

    def test_create_refuses_duplicate_specs(self, tmp_path):
        with pytest.raises(StoreError, match="duplicates digest"):
            FleetStore.create(
                tmp_path, [SPECS[0], SPECS[0]], CFG, WORKLOADS, CORES
            )

    def test_open_missing_fleet(self, tmp_path):
        with pytest.raises(StoreError, match="no fleet store"):
            FleetStore.open(tmp_path / "nowhere")

    def test_shards_are_standalone_stores(self, tmp_path):
        fleet = make_fleet(tmp_path)
        for entry, store in fleet.shards():
            assert isinstance(store, CampaignStore)
            assert store.manifest.spec.digest() == entry.spec_digest

    def test_shard_routing_by_spec(self, tmp_path):
        fleet = make_fleet(tmp_path)
        store = fleet.shard_for(SPECS[1])
        assert store.manifest.spec == SPECS[1]

    def test_swapped_shard_names_both_digests_and_path(self, tmp_path):
        """A shard directory swapped underneath the fleet is caught, and
        the error names the expected digest, the actual digest and the
        offending shard path -- enough to fix the swap by hand."""
        fleet = make_fleet(tmp_path)
        first, second = fleet.manifest.shards[:2]
        path_a = tmp_path / first.path
        path_b = tmp_path / second.path
        swap = tmp_path / "swap"
        path_a.rename(swap)
        path_b.rename(path_a)
        swap.rename(path_b)
        reopened = FleetStore.open(tmp_path)
        with pytest.raises(StoreError) as excinfo:
            reopened.shard(reopened.manifest.shards[0])
        message = str(excinfo.value)
        assert first.spec_digest in message
        assert second.spec_digest in message
        assert str(tmp_path / first.path) in message


class TestFleetEquivalence:
    def test_shards_byte_identical_to_standalone_runs(
            self, complete_fleet, standalone_journals):
        fleet = FleetStore.open(complete_fleet)
        for entry, spec in zip(fleet.manifest.shards, SPECS):
            shard_journal = (complete_fleet / entry.path / JOURNAL_NAME)
            assert shard_journal.read_bytes() == standalone_journals[spec.seed]

    def test_watermarks_converge_to_totals(self, complete_fleet):
        fleet = FleetStore.open(complete_fleet)
        manifest = fleet.refresh_watermarks()
        assert all(e.watermark == e.total for e in manifest.shards)
        assert fleet.is_complete()
        on_disk = json.loads((complete_fleet / FLEET_MANIFEST_NAME).read_text())
        assert FleetManifest.from_json_dict(on_disk) == manifest

    def test_killed_shard_resumes_bit_identically(
            self, complete_fleet, standalone_journals, tmp_path):
        """Kill one shard after its first task; the fleet resume ends
        byte-identical to the uninterrupted run, and only replays the
        untouched shards."""
        fleet_dir = tmp_path / "fleet"
        fleet_dir.mkdir()
        (fleet_dir / FLEET_MANIFEST_NAME).write_text(
            (complete_fleet / FLEET_MANIFEST_NAME).read_text())
        source = FleetStore.open(complete_fleet)
        for entry in source.manifest.shards:
            shard_dir = fleet_dir / entry.path
            shard_dir.mkdir(parents=True)
            for name in ("manifest.json", JOURNAL_NAME):
                (shard_dir / name).write_bytes(
                    (complete_fleet / entry.path / name).read_bytes())
        victim = source.manifest.shards[1]
        journal = fleet_dir / victim.path / JOURNAL_NAME
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text(lines[0])

        report = run_fleet(fleet_dir)
        assert report.tasks_run == SHARD_TASKS - 1
        assert report.tasks_skipped == len(SPECS) * SHARD_TASKS - report.tasks_run
        for entry, spec in zip(report.manifest.shards, SPECS):
            resumed = (fleet_dir / entry.path / JOURNAL_NAME).read_bytes()
            assert resumed == standalone_journals[spec.seed]

    def test_run_fleet_is_idempotent(self, complete_fleet):
        report = run_fleet(complete_fleet)
        assert report.tasks_run == 0
        assert report.tasks_skipped == len(SPECS) * SHARD_TASKS

    def test_run_fleet_shard_subset_validated(self, complete_fleet):
        with pytest.raises(StoreError, match="unknown fleet shards"):
            run_fleet(complete_fleet, shards=["m99-deadbeef"])

    def test_engine_routes_through_fleet_directory(self, tmp_path,
                                                   standalone_journals):
        """``--store FLEET_DIR`` on a plain engine run lands the tasks
        in the right shard through the fleet manifest."""
        fleet = make_fleet(tmp_path)
        spec = SPECS[2]
        engine = ParallelCampaignEngine(spec, CFG)
        engine.run([get_benchmark("mcf")], CORES, store=tmp_path)
        entry = fleet.manifest.entry_for(spec.digest())
        journal = (tmp_path / entry.path / JOURNAL_NAME).read_bytes()
        assert journal == standalone_journals[spec.seed]


class TestIndexEqualsReparse:
    def test_fleetwide_warm_equals_reparse_bytes(self, complete_fleet):
        indexes = FleetStore.open(complete_fleet).indexes()
        warm = indexes.serialize()
        assert warm == indexes.serialize_reparse()
        assert warm.count("# shard ") == len(SPECS)

    def test_every_kill_point_matches_reparse(self, complete_fleet, tmp_path):
        """Property-style: truncate one shard journal to every possible
        prefix; the warm bundle answers stay byte-identical to the
        classic re-parse read path at each kill point."""
        fleet = FleetStore.open(complete_fleet)
        entry = fleet.manifest.shards[0]
        manifest_bytes = (
            complete_fleet / entry.path / "manifest.json").read_bytes()
        lines = (complete_fleet / entry.path / JOURNAL_NAME).read_text(
            ).splitlines(keepends=True)
        for keep in range(len(lines) + 1):
            shard_dir = tmp_path / f"kill-{keep}"
            shard_dir.mkdir()
            (shard_dir / "manifest.json").write_bytes(manifest_bytes)
            (shard_dir / JOURNAL_NAME).write_text("".join(lines[:keep]))
            store = CampaignStore.open(shard_dir)
            warm = StoreIndexes(store).serialize()
            assert warm == reparse_serialization(
                CampaignStore.open(shard_dir))

    def test_incremental_appends_match_bulk_rebuild(self, complete_fleet,
                                                    tmp_path):
        """An index bundle attached before any append sees each record
        through the subscription path and still matches a cold rebuild."""
        source = FleetStore.open(complete_fleet)
        entry, complete_store = source.shards()[0]
        shard_dir = tmp_path / "incremental"
        store = CampaignStore.create(
            shard_dir, complete_store.manifest.spec, CFG, WORKLOADS, CORES)
        live = StoreIndexes(store)
        for stored in complete_store.campaigns():
            store.append_campaign(
                stored.campaign_result(),
                raw_log=stored.raw_log,
                seed=stored.seed,
                interventions=stored.interventions,
            )
        assert live.records_indexed() == SHARD_TASKS
        assert live.serialize() == StoreIndexes.from_reparse(
            CampaignStore.open(shard_dir)).serialize()

    def test_feature_index_matches_dataset_assembler(self, complete_fleet):
        fleet = FleetStore.open(complete_fleet)
        entry, store = fleet.shards()[0]
        bundle = fleet.indexes().bundle(entry)
        classic = vmin_dataset_from_store(store, 0)
        indexed = bundle.features.dataset(0)
        assert indexed.feature_names == classic.feature_names
        assert indexed.tags == classic.tags
        assert (indexed.x == classic.x).all()
        assert (indexed.y == classic.y).all()

    def test_vmin_index_answers(self, complete_fleet):
        bundle = FleetStore.open(complete_fleet).indexes().bundles()[0][1]
        assert bundle.vmin.cells() == [("mcf", 0)]
        assert bundle.vmin.vmin_mv("mcf", 0) == 890
        assert bundle.vmin.crash_mv("mcf", 0) == 880
        with pytest.raises(StoreError, match="no completed cell"):
            bundle.vmin.vmin_mv("mcf", 7)

    def test_severity_index_matches_result(self, complete_fleet):
        fleet = FleetStore.open(complete_fleet)
        entry, store = fleet.shards()[0]
        bundle = fleet.indexes().bundle(entry)
        expected = store.results()[("mcf", 0)].severity_by_voltage(
            store.manifest.weights)
        assert bundle.severity.severity_by_voltage("mcf", 0) == expected


def _append_shard_worker(fleet_dir, seed):
    """Child-process body: characterize one shard of a shared fleet."""
    from repro.machines import MachineSpec
    from repro.parallel import ParallelCampaignEngine
    from repro.store import FleetStore
    from repro.workloads import get_benchmark

    fleet = FleetStore.open(fleet_dir)
    spec = MachineSpec(chip="TTT", seed=seed)
    engine = ParallelCampaignEngine(spec, CFG)
    engine.run([get_benchmark("mcf")], CORES, store=fleet.shard_for(spec))
    fleet.refresh_watermarks()


class TestConcurrentShardAppends:
    def test_interleaved_multiprocess_appends(self, tmp_path):
        """One process per shard, all appending concurrently: no
        cross-shard lock contention, every process's concurrent
        ``refresh_watermarks`` converges on the journal facts, and the
        warm indexes still byte-match a re-parse."""
        make_fleet(tmp_path)
        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(
                target=_append_shard_worker, args=(str(tmp_path), seed))
            for seed in SEEDS
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=300)
        assert all(worker.exitcode == 0 for worker in workers)

        fleet = FleetStore.open(tmp_path)
        # The manifest on disk came from whichever refresher wrote last,
        # but every writer derived it from the same journals.
        assert fleet.manifest.tasks_done() == len(SEEDS) * SHARD_TASKS
        manifest = fleet.refresh_watermarks()
        assert all(e.watermark == e.total for e in manifest.shards)
        indexes = fleet.indexes()
        assert indexes.serialize() == indexes.serialize_reparse()


class TestCompaction:
    @pytest.fixture()
    def fleet_copy(self, complete_fleet, tmp_path):
        target = tmp_path / "fleet"
        target.mkdir()
        (target / FLEET_MANIFEST_NAME).write_bytes(
            (complete_fleet / FLEET_MANIFEST_NAME).read_bytes())
        for entry in FleetStore.open(complete_fleet).manifest.shards:
            shard_dir = target / entry.path
            shard_dir.mkdir(parents=True)
            for name in ("manifest.json", JOURNAL_NAME):
                (shard_dir / name).write_bytes(
                    (complete_fleet / entry.path / name).read_bytes())
        return target

    def test_compaction_is_a_grid_order_permutation_of_line_bytes(
            self, fleet_copy):
        fleet = FleetStore.open(fleet_copy)
        entry = fleet.manifest.shards[0]
        journal = fleet_copy / entry.path / JOURNAL_NAME
        before = journal.read_text().splitlines(keepends=True)
        answers_before = fleet.indexes().serialize()

        compacted = fleet.compact()
        assert compacted == [e.name for e in fleet.manifest.shards]
        after = journal.read_text().splitlines(keepends=True)
        assert sorted(after) == sorted(before)

        store = CampaignStore.open(fleet_copy / entry.path)
        assert [c.key for c in store.campaigns()] == store.expected_keys()
        assert fleet.indexes().serialize() == answers_before
        assert all(e.compacted for e in fleet.manifest.shards)

    def test_compaction_is_idempotent(self, fleet_copy):
        fleet = FleetStore.open(fleet_copy)
        assert len(fleet.compact()) == len(SPECS)
        assert fleet.compact() == []

    def test_partial_shard_is_left_alone(self, fleet_copy):
        fleet = FleetStore.open(fleet_copy)
        victim = fleet.manifest.shards[0]
        journal = fleet_copy / victim.path / JOURNAL_NAME
        partial_lines = journal.read_text().splitlines(keepends=True)
        journal.write_text(partial_lines[0])

        compacted = FleetStore.open(fleet_copy).compact()
        assert victim.name not in compacted
        assert len(compacted) == len(SPECS) - 1
        assert journal.read_text() == partial_lines[0]

    def test_live_model_cursor_blocks_compaction(self, tmp_path):
        """A shard needs at least two grid cells for a cursor to land
        mid-journal, so this test builds its own two-workload fleet."""
        fleet = FleetStore.create(
            tmp_path, SPECS[:1], CFG, ["mcf", "bwaves"], CORES)
        run_fleet(tmp_path)
        entry, store = fleet.shards()[0]
        total = len(store.expected_keys())
        trainer = StreamingTrainer(store, core=0, target="vmin")
        trainer.consume(stop=CFG.campaigns)
        store.model_store().save(trainer.fit())
        assert 0 < trainer.journal_offset < total

        with pytest.raises(StoreError, match="live journal cursor"):
            FleetStore.open(tmp_path).compact()
        forced = FleetStore.open(tmp_path).compact(force=True)
        assert entry.name in forced


class TestFleetModels:
    def test_fleet_digest_pins_population(self, complete_fleet, tmp_path):
        fleet = FleetStore.open(complete_fleet)
        digest = fleet.fleet_digest()
        assert digest.startswith("fleet:") and len(digest) == 6 + 16
        smaller = FleetStore.create(
            tmp_path, SPECS[:2], CFG, WORKLOADS, CORES)
        assert smaller.fleet_digest() != digest

    def test_fleet_trainer_spans_every_shard(self, complete_fleet):
        trainer = FleetStreamingTrainer(complete_fleet, core=0)
        trainer.consume()
        artifact = trainer.fit()
        fleet = FleetStore.open(complete_fleet)
        assert artifact.spec_digest == fleet.fleet_digest()
        assert artifact.n_samples == sum(
            len(vmin_dataset_from_store(store, 0))
            for _, store in fleet.shards()
        )
        assert trainer.cursors == {
            entry.name: SHARD_TASKS for entry in fleet.manifest.shards
        }

    def test_fleet_trainer_kill_and_resume_equivalence(
            self, complete_fleet, tmp_path):
        """Train on a one-shard-deep fleet, save, characterize the rest,
        resume: the final artifact matches one uninterrupted fleet-wide
        training run over identical data."""
        fleet_dir = tmp_path / "fleet"
        make_fleet(fleet_dir)
        first_name = FleetStore.open(fleet_dir).manifest.shards[0].name
        run_fleet(fleet_dir, shards=[first_name])

        partial = FleetStreamingTrainer(fleet_dir, core=0)
        assert partial.consume() == 1
        models = FleetStore.open(fleet_dir).model_store()
        saved = models.save(partial.fit())
        assert 0 < saved.journal_offset < len(SPECS) * SHARD_TASKS

        run_fleet(fleet_dir)
        resumed = FleetStreamingTrainer.resume(
            FleetStore.open(fleet_dir), models.load("vmin", 0))
        resumed.consume()
        final = resumed.fit()

        reference = FleetStreamingTrainer(complete_fleet, core=0)
        reference.consume()
        ref_artifact = reference.fit()
        assert final.train_digest == ref_artifact.train_digest
        assert final.n_samples == ref_artifact.n_samples
        assert final.coefficients == ref_artifact.coefficients

    def test_fleet_trainer_rejects_changed_population(
            self, complete_fleet, tmp_path):
        trainer = FleetStreamingTrainer(complete_fleet, core=0)
        trainer.consume()
        artifact = trainer.fit()
        other = FleetStore.create(tmp_path, SPECS[:2], CFG, WORKLOADS, CORES)
        from repro.errors import PredictionError

        with pytest.raises(PredictionError, match="population"):
            FleetStreamingTrainer.resume(other, artifact)


class TestFleetDerived:
    def test_fleet_status_serves_warm_vmin(self, complete_fleet):
        from repro import telemetry

        status = telemetry.fleet_status(complete_fleet)
        assert status.complete
        rendered = telemetry.render_fleet_status(status)
        assert f"({len(SPECS)} shards)" in rendered
        assert rendered.count("mcf c0: Vmin 890 mV, crash 880") == len(SPECS)

    def test_fleet_report_covers_every_shard(self, complete_fleet):
        from repro.analysis.report import fleet_report

        fleet = FleetStore.open(complete_fleet)
        text = fleet_report(fleet)
        assert "## Fleet campaign store" in text
        for entry in fleet.manifest.shards:
            assert f"### Shard {entry.name}" in text

    def test_fleet_export_matches_standalone_export(
            self, complete_fleet, tmp_path, standalone_journals):
        fleet = FleetStore.open(complete_fleet)
        exports = fleet.export_csv(tmp_path / "fleet-out")

        solo_dir = tmp_path / "solo"
        run_shard_standalone(SPECS[0], solo_dir)
        solo_exports = CampaignStore.open(solo_dir).export_csv(
            tmp_path / "solo-out")

        entry = fleet.manifest.shards[0]
        assert set(exports[entry.name]) == set(solo_exports)
        for key, path in solo_exports.items():
            assert exports[entry.name][key].read_bytes() == path.read_bytes()
