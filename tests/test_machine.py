"""The X-Gene 2 machine: states, execution, crash semantics, PMU."""

import pytest

from repro.effects import EffectType
from repro.errors import ConfigurationError, MachineStateError
# reprolint: disable=RPR003 -- exercises the concrete machine model itself
from repro.hardware import MachineState, XGene2Chip, XGene2Machine
from repro.hardware.serial_console import BOOT_BANNER
from repro.units import PMD_NOMINAL_MV
from repro.workloads import get_benchmark, get_program


class TestLifecycle:
    def test_starts_off(self):
        machine = XGene2Machine("TTT")
        assert machine.state is MachineState.OFF
        assert not machine.is_responsive()

    def test_power_on_boots(self, machine):
        assert machine.state is MachineState.RUNNING
        assert BOOT_BANNER in machine.console.all_lines()[0]
        assert machine.is_responsive()

    def test_double_power_on_rejected(self, machine):
        with pytest.raises(MachineStateError):
            machine.power_on()

    def test_reset_while_off_rejected(self):
        machine = XGene2Machine("TTT")
        with pytest.raises(MachineStateError):
            machine.press_reset()

    def test_power_off_from_running(self, machine):
        machine.power_off()
        assert machine.state is MachineState.OFF

    def test_boot_restores_firmware_defaults(self, machine):
        machine.slimpro.set_pmd_voltage_mv(760)
        machine.clocks.set_pmd_frequency_mhz(0, 1200)
        machine.edac.report("ce", "L2")
        machine.press_reset()
        assert machine.regulator.pmd_voltage_mv(0) == PMD_NOMINAL_MV
        assert machine.clocks.frequencies() == [2400] * 4
        assert len(machine.edac) == 0

    def test_chip_identity(self):
        chip = XGene2Chip.part("TFF")
        assert chip.name == "TFF"
        assert chip.serial == "XG2-TFF-0001"
        assert chip.corner.name == "TFF"


class TestRunProgram:
    def test_nominal_run_is_clean(self, machine):
        outcome = machine.run_program(get_benchmark("bwaves"), core=0)
        assert outcome.effects == frozenset({EffectType.NO})
        assert outcome.completed
        assert outcome.output_matches
        assert outcome.voltage_mv == PMD_NOMINAL_MV
        assert outcome.freq_mhz == 2400

    def test_program_and_benchmark_accepted(self, machine):
        prog = get_program("gcc/200")
        outcome = machine.run_program(prog, core=2)
        assert outcome.program == "gcc/200"

    def test_invalid_core_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            machine.run_program(get_benchmark("mcf"), core=9)

    def test_non_workload_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            machine.run_program("bwaves", core=0)

    def test_run_while_off_rejected(self):
        machine = XGene2Machine("TTT")
        with pytest.raises(MachineStateError):
            machine.run_program(get_benchmark("mcf"), core=0)

    def test_runtime_scales_with_frequency(self, machine):
        bench = get_benchmark("mcf")
        fast = machine.run_program(bench, core=0)
        machine.clocks.set_pmd_frequency_mhz(0, 1200)
        slow = machine.run_program(bench, core=0)
        assert slow.runtime_s == pytest.approx(2 * fast.runtime_s)

    def test_sdc_produces_distinct_output(self, machine):
        bench = get_benchmark("bwaves")
        machine.clocks.park_all_except([0])
        machine.slimpro.set_pmd_voltage_mv(895)  # deep in the SDC band
        for _ in range(20):
            outcome = machine.run_program(bench, core=0)
            if EffectType.SDC in outcome.effects:
                assert outcome.completed
                assert not outcome.output_matches
                break
        else:
            pytest.fail("no SDC observed in the SDC band")

    def test_system_crash_hangs_the_machine(self, machine):
        bench = get_benchmark("bwaves")
        machine.slimpro.set_pmd_voltage_mv(855)  # deep in the crash region
        outcome = machine.run_program(bench, core=0)
        assert outcome.effects == frozenset({EffectType.SC})
        assert machine.state is MachineState.HUNG
        assert not machine.is_responsive()
        with pytest.raises(MachineStateError):
            machine.run_program(bench, core=0)

    def test_reset_recovers_hung_machine(self, machine):
        machine.slimpro.set_pmd_voltage_mv(855)
        machine.run_program(get_benchmark("bwaves"), core=0)
        assert machine.state is MachineState.HUNG
        machine.press_reset()
        assert machine.state is MachineState.RUNNING
        outcome = machine.run_program(get_benchmark("bwaves"), core=0)
        assert outcome.effects == frozenset({EffectType.NO})

    def test_edac_records_appear_for_ce(self, machine):
        bench = get_benchmark("bwaves")
        machine.clocks.park_all_except([0])
        machine.slimpro.set_pmd_voltage_mv(880)
        found = False
        for _ in range(60):
            if machine.state is not MachineState.RUNNING:
                machine.press_reset()
                machine.clocks.park_all_except([0])
                machine.slimpro.set_pmd_voltage_mv(880)
            outcome = machine.run_program(bench, core=0)
            if EffectType.CE in outcome.effects:
                assert outcome.edac_ce > 0
                found = True
                break
        assert found, "no corrected error observed in the unsafe region"

    def test_determinism_same_seed(self):
        def run_sequence(seed):
            machine = XGene2Machine("TTT", seed=seed)
            machine.power_on()
            machine.slimpro.set_pmd_voltage_mv(885)
            effects = []
            for _ in range(10):
                if machine.state is not MachineState.RUNNING:
                    machine.press_reset()
                    machine.slimpro.set_pmd_voltage_mv(885)
                outcome = machine.run_program(get_benchmark("bwaves"), core=0)
                effects.append(sorted(e.value for e in outcome.effects))
            return effects
        assert run_sequence(11) == run_sequence(11)
        assert run_sequence(11) != run_sequence(12)


class TestProfiling:
    def test_full_snapshot(self, machine):
        snapshot = machine.profile_program(get_benchmark("gcc"), core=0)
        assert len(snapshot) == 101
        assert snapshot["INST_RETIRED"] > 0

    def test_profiling_requires_nominal_voltage(self, machine):
        machine.slimpro.set_pmd_voltage_mv(905)
        with pytest.raises(MachineStateError):
            machine.profile_program(get_benchmark("gcc"), core=0)

    def test_pmu_history_kept(self, machine):
        machine.profile_program(get_benchmark("gcc"), core=1)
        machine.profile_program(get_benchmark("mcf"), core=1)
        assert len(machine.pmus[1].history()) == 2
