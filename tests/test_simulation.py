"""Closed-loop energy-efficiency simulation."""

import pytest

from repro.energy.tradeoffs import FIGURE9_WORKLOAD
from repro.errors import ConfigurationError
from repro.scheduling import EnergyEfficiencySimulation
from repro.units import PMD_NOMINAL_MV
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def simulation():
    workload = [get_benchmark(name) for name in FIGURE9_WORKLOAD]
    return EnergyEfficiencySimulation(workload, seed=7)


class TestSetup:
    def test_placement_robust_first(self, simulation):
        # robust-first placement gives a chip Vmin below the naive 910.
        assert simulation.assignment.chip_vmin_mv == 895

    def test_policy_voltages(self, simulation):
        assert simulation.policy_voltage_mv("nominal") == PMD_NOMINAL_MV
        assert simulation.policy_voltage_mv("static_vmin", margin_mv=10) == 905
        assert simulation.policy_voltage_mv("oracle") == 895

    def test_unknown_policy_rejected(self, simulation):
        with pytest.raises(ConfigurationError):
            simulation.policy_voltage_mv("yolo")

    def test_empty_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyEfficiencySimulation([])

    def test_oversubscription_rejected(self):
        workload = [get_benchmark(n) for n in FIGURE9_WORKLOAD]
        with pytest.raises(ConfigurationError):
            EnergyEfficiencySimulation(workload + workload)


class TestPolicies:
    @pytest.fixture(scope="class")
    def reports(self, simulation):
        return simulation.compare_policies(repeats=2)

    def test_nominal_saves_nothing(self, reports):
        assert reports["nominal"].saving_fraction == pytest.approx(0.0, abs=1e-9)
        assert reports["nominal"].correct

    def test_static_vmin_saves_without_violations(self, reports):
        report = reports["static_vmin"]
        assert report.saving_fraction > 0.08
        assert report.correct
        assert report.crash_recoveries == 0

    def test_oracle_upper_bounds_static(self, reports):
        assert reports["oracle"].saving_fraction >= \
            reports["static_vmin"].saving_fraction

    def test_energy_accounting_consistent(self, reports):
        # Baseline metering equals the nominal policy's metered energy.
        nominal = reports["nominal"]
        assert nominal.energy_j == pytest.approx(nominal.baseline_energy_j,
                                                 rel=1e-6)


class TestMarginSweep:
    @pytest.fixture(scope="class")
    def sweep(self, simulation):
        margins = [20, 10, 0, -10, -25]
        return dict(zip(margins, simulation.margin_sweep(margins, repeats=2)))

    def test_positive_margins_are_clean(self, sweep):
        for margin in (20, 10, 0):
            assert sweep[margin].correct, margin
            assert sweep[margin].crash_recoveries == 0

    def test_savings_grow_as_margin_shrinks_while_clean(self, sweep):
        assert sweep[0].saving_fraction > sweep[10].saving_fraction > \
            sweep[20].saving_fraction > 0

    def test_below_vmin_violations_appear(self, sweep):
        below = sweep[-10]
        assert below.sdc_runs > 0 or below.crash_recoveries > 0

    def test_deep_undervolt_destroys_the_saving(self, sweep):
        deep = sweep[-25]
        assert deep.crash_recoveries > 0
        # Crash re-execution burns more than undervolting saves.
        assert deep.saving_fraction < sweep[0].saving_fraction

    def test_repeats_validated(self, simulation):
        with pytest.raises(ConfigurationError):
            simulation.run_policy("nominal", repeats=0)
