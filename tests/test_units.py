"""Unit helpers: voltage/frequency grids and sweeps."""

import pytest

from repro.errors import FrequencyRangeError, VoltageRangeError
from repro.units import (
    FREQ_MAX_MHZ,
    PMD_NOMINAL_MV,
    SOC_NOMINAL_MV,
    effective_frequency_mhz,
    snap_down_mv,
    validate_frequency_mhz,
    validate_voltage_mv,
    voltage_sweep,
)


class TestValidateVoltage:
    def test_nominal_is_valid(self):
        assert validate_voltage_mv(PMD_NOMINAL_MV) == 980

    def test_grid_steps_are_valid(self):
        for v in (975, 905, 760, 700):
            assert validate_voltage_mv(v) == v

    def test_above_nominal_rejected(self):
        with pytest.raises(VoltageRangeError):
            validate_voltage_mv(985)

    def test_below_floor_rejected(self):
        with pytest.raises(VoltageRangeError):
            validate_voltage_mv(695)

    def test_off_grid_rejected(self):
        with pytest.raises(VoltageRangeError):
            validate_voltage_mv(977)

    def test_non_integer_rejected(self):
        with pytest.raises(VoltageRangeError):
            validate_voltage_mv(902.5)

    def test_soc_grid_anchored_at_soc_nominal(self):
        assert validate_voltage_mv(945, nominal_mv=SOC_NOMINAL_MV) == 945
        with pytest.raises(VoltageRangeError):
            validate_voltage_mv(948, nominal_mv=SOC_NOMINAL_MV)


class TestValidateFrequency:
    def test_extremes(self):
        assert validate_frequency_mhz(300) == 300
        assert validate_frequency_mhz(2400) == 2400

    def test_off_step_rejected(self):
        with pytest.raises(FrequencyRangeError):
            validate_frequency_mhz(1000)

    def test_out_of_range_rejected(self):
        with pytest.raises(FrequencyRangeError):
            validate_frequency_mhz(2700)
        with pytest.raises(FrequencyRangeError):
            validate_frequency_mhz(0)


class TestSnapDown:
    def test_exact_value_unchanged(self):
        assert snap_down_mv(905) == 905

    def test_snaps_upward_for_safety(self):
        # 903 must become 905, not 900: programming below a computed
        # safe bound would be unsafe.
        assert snap_down_mv(903.2) == 905

    def test_nominal_cap(self):
        assert snap_down_mv(979.9) == 980


class TestVoltageSweep:
    def test_descending_inclusive(self):
        sweep = voltage_sweep(915, 900)
        assert sweep == [915, 910, 905, 900]

    def test_single_point(self):
        assert voltage_sweep(905, 905) == [905]

    def test_ascending_rejected(self):
        with pytest.raises(VoltageRangeError):
            voltage_sweep(900, 915)

    def test_full_sweep_length(self):
        sweep = voltage_sweep(PMD_NOMINAL_MV, 700)
        assert len(sweep) == (980 - 700) // 5 + 1
        assert sweep[0] == 980 and sweep[-1] == 700


class TestEffectiveFrequency:
    def test_identity_within_input_clock(self):
        assert effective_frequency_mhz(1800) == 1800.0

    def test_capped_by_input_clock(self):
        assert effective_frequency_mhz(2400, input_clock_mhz=1200) == 1200.0

    def test_validates(self):
        with pytest.raises(FrequencyRangeError):
            effective_frequency_mhz(1000)

    def test_max(self):
        assert effective_frequency_mhz(FREQ_MAX_MHZ) == 2400.0
