"""SLIMpro, PMpro, sensors, EDAC and the serial console."""

import pytest

from repro.errors import ConfigurationError, MachineStateError
from repro.hardware.clocking import ClockController
from repro.hardware.domains import VoltageRegulator
from repro.hardware.edac import EdacDriver
from repro.hardware.pmpro import AcpiState, PmPro
from repro.hardware.sensors import FanController, TemperatureSensor
from repro.hardware.serial_console import BOOT_BANNER, SerialConsole
from repro.hardware.slimpro import SlimPro


def make_slimpro():
    regulator = VoltageRegulator()
    fan = FanController(TemperatureSensor(), 43.0)
    edac = EdacDriver()
    return SlimPro(regulator, fan, edac), regulator, edac


class TestSlimPro:
    def test_voltage_regulation_path(self):
        slimpro, regulator, _ = make_slimpro()
        slimpro.set_pmd_voltage_mv(905)
        assert regulator.pmd_voltage_mv(0) == 905
        assert slimpro.get_pmd_voltage_mv() == 905
        assert ("set_voltage", "PMD=905mV") in slimpro.i2c_log

    def test_soc_regulation(self):
        slimpro, regulator, _ = make_slimpro()
        slimpro.set_soc_voltage_mv(920)
        assert slimpro.get_soc_voltage_mv() == 920

    def test_restore_nominal(self):
        slimpro, regulator, _ = make_slimpro()
        slimpro.set_pmd_voltage_mv(760)
        slimpro.restore_nominal_voltages()
        assert regulator.pmd_voltage_mv(0) == 980

    def test_temperature_read_regulates_fan(self):
        slimpro, _, _ = make_slimpro()
        slimpro.update_power_estimate(30.0)
        temp = slimpro.read_temperature_c()
        assert temp == pytest.approx(43.0, abs=0.5)

    def test_error_counter_access(self):
        slimpro, _, edac = make_slimpro()
        edac.report("ce", "L2", core=3)
        edac.report("ue", "L3")
        counters = slimpro.read_error_counters()
        assert counters == {"ce_count": 1, "ue_count": 1}
        assert any(op == "read_edac" for op, _ in slimpro.i2c_log)


class TestEdacDriver:
    def test_counters_accumulate(self):
        edac = EdacDriver()
        edac.report("ce", "L2", core=0, count=3)
        edac.report("ue", "DRAM")
        assert edac.counters() == {"ce_count": 3, "ue_count": 1}
        assert len(edac) == 4

    def test_location_breakdown(self):
        edac = EdacDriver()
        edac.report("ce", "L2", core=0)
        edac.report("ce", "L3")
        by_location = edac.counters_by_location()
        assert by_location[("ce", "L2")] == 1
        assert by_location[("ce", "L3")] == 1

    def test_poll_new_is_incremental(self):
        edac = EdacDriver()
        edac.report("ce", "L2")
        first = edac.poll_new()
        assert len(first) == 1
        assert edac.poll_new() == []
        edac.report("ue", "L2")
        second = edac.poll_new()
        assert len(second) == 1 and second[0].kind == "ue"

    def test_clear_wipes_everything(self):
        edac = EdacDriver()
        edac.report("ce", "L2")
        edac.clear()
        assert edac.counters() == {"ce_count": 0, "ue_count": 0}
        assert edac.poll_new() == []

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            EdacDriver().report("fatal", "L2")


class TestThermal:
    def test_sensor_monotone_in_power(self):
        sensor = TemperatureSensor()
        assert sensor.temperature_c(30, 0.5) > sensor.temperature_c(10, 0.5)

    def test_fan_cools(self):
        sensor = TemperatureSensor()
        assert sensor.temperature_c(30, 1.0) < sensor.temperature_c(30, 0.0)

    def test_fan_controller_holds_43c(self):
        fan = FanController(TemperatureSensor(), 43.0)
        for power in (15.0, 25.0, 35.0):
            assert fan.regulate(power) == pytest.approx(43.0, abs=0.5), power
            assert fan.holds_setpoint(power)

    def test_setpoint_unreachable_flagged(self):
        fan = FanController(TemperatureSensor(), 43.0)
        # At near-zero power the die cannot warm up to 43 C.
        assert not fan.holds_setpoint(1.0)

    def test_bad_setpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            FanController(TemperatureSensor(ambient_c=25.0), 20.0)


class TestPmPro:
    def test_acpi_transitions(self):
        pmpro = PmPro(ClockController())
        assert pmpro.acpi_state is AcpiState.S5
        pmpro.power_up()
        assert pmpro.acpi_state is AcpiState.S0
        pmpro.suspend()
        assert pmpro.acpi_state is AcpiState.S3
        pmpro.power_down()
        assert pmpro.acpi_state is AcpiState.S5

    def test_double_power_up_rejected(self):
        pmpro = PmPro(ClockController())
        pmpro.power_up()
        with pytest.raises(MachineStateError):
            pmpro.power_up()

    def test_thermal_trip_powers_down(self):
        pmpro = PmPro(ClockController())
        pmpro.power_up()
        assert pmpro.check_thermal(96.0)
        assert pmpro.acpi_state is AcpiState.S5
        assert ("thermal_trip", "96.0C") in pmpro.events

    def test_no_trip_below_limit(self):
        pmpro = PmPro(ClockController())
        pmpro.power_up()
        assert not pmpro.check_thermal(60.0)
        assert pmpro.acpi_state is AcpiState.S0

    def test_throttle_caps_frequencies(self):
        clocks = ClockController()
        pmpro = PmPro(clocks)
        pmpro.set_throttle_cap_mhz(1200)
        assert all(f <= 1200 for f in clocks.frequencies())
        assert pmpro.effective_cap_mhz() == 1200
        pmpro.set_throttle_cap_mhz(None)
        assert pmpro.effective_cap_mhz() == 2400


class TestSerialConsole:
    def test_line_streaming(self):
        console = SerialConsole()
        console.write_line(BOOT_BANNER)
        console.write_line("login:")
        assert console.read_new_lines() == [BOOT_BANNER, "login:"]
        assert console.read_new_lines() == []
        console.write_line("$")
        assert console.read_new_lines() == ["$"]

    def test_heartbeat_liveness(self):
        console = SerialConsole()
        assert not console.is_alive(now_tick=0, timeout_ticks=10)
        console.heartbeat(5)
        assert console.is_alive(now_tick=10, timeout_ticks=10)
        assert not console.is_alive(now_tick=16, timeout_ticks=10)

    def test_clear_resets_everything(self):
        console = SerialConsole()
        console.write_line("x")
        console.heartbeat(1)
        console.clear()
        assert console.all_lines() == []
        assert console.last_heartbeat_tick() is None
