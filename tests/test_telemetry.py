"""``repro.telemetry``: tracer, metrics, logger, status -- and the
determinism-neutrality contract.

The load-bearing property: telemetry observes, never perturbs.  A
traced+metered run must journal byte-identical stores and export
byte-identical CSVs to a telemetry-off run, for any backend and job
count, including kill-and-resume -- asserted end to end below.
"""

import json
import re

import pytest

from repro.effects import EFFECT_ORDER, EffectType
from repro.parallel import MachineSpec, ParallelCampaignEngine
from repro.parallel.progress import ProgressEvent, ProgressReporter, ProgressTracker
from repro.core import FrameworkConfig
from repro.store import CampaignStore, JOURNAL_NAME, MANIFEST_NAME
from repro.telemetry import (
    M_EFFECTS,
    M_GRID_TASKS,
    M_JOURNAL_APPENDS,
    M_TASK_SECONDS,
    M_TASKS_COMPLETED,
    M_THROUGHPUT,
    METRIC_CATALOG,
    METRICS_FORMAT,
    MetricsRegistry,
    PARENT_SPAN_ID_BASE,
    SESSION_TRACE_ID,
    SPAN_FORMAT,
    SpanRecord,
    TraceWriter,
    Tracer,
    campaign_status,
    clock,
    current_session,
    emit_spans,
    event,
    get_logger,
    inc_counter,
    load_spans,
    observe,
    render_status,
    set_gauge,
    shielded,
    span,
    task_trace_id,
    telemetry_session,
    validate_span,
)
from repro.workloads import get_benchmark

#: Same watchdog-exercising sweep as test_store: starts right below
#: bwaves Vmin, so traces cover the recovery path too.
CFG = FrameworkConfig(start_mv=905, campaigns=2, runs_per_level=3)
SPEC = MachineSpec(chip="TTT", seed=2017)
CORES = [0]
TOTAL_TASKS = 1 * len(CORES) * CFG.campaigns


def fake_clock(start=0.0, step=1.0):
    """Deterministic clock: start, start+step, start+2*step, ..."""
    state = {"now": start - step}

    def tick():
        state["now"] += step
        return state["now"]

    return tick


def run_grid(store=None, resume=False, **kwargs):
    engine = ParallelCampaignEngine(SPEC, CFG, **kwargs)
    return engine.run([get_benchmark("bwaves")], CORES,
                      store=store, resume=resume)


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

#: Promtool-style exposition grammar: every non-comment line is
#: ``name{labels} value`` with a float/int/±Inf/NaN value.
_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* \S.*$")
_TYPE_RE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (NaN|[+-]?Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"
)


def assert_valid_exposition(text):
    assert text.endswith("\n")
    for line in text.splitlines():
        assert (
            _HELP_RE.match(line)
            or _TYPE_RE.match(line)
            or _SAMPLE_RE.match(line)
        ), f"malformed exposition line: {line!r}"


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        reg.counter("x_total").inc(2.5)
        assert reg.counter("x_total").value == 3.5
        reg.gauge("g").set(7)
        assert reg.gauge("g").value == 7.0
        hist = reg.histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)
        assert hist.count == 3 and hist.sum == 55.5
        assert hist.cumulative() == [(1.0, 1), (10.0, 2), (float("inf"), 3)]
        assert hist.mean == pytest.approx(18.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x_total").inc(-1)

    def test_labels_key_separate_children(self):
        reg = MetricsRegistry()
        reg.counter(M_EFFECTS, effect="SDC").inc()
        reg.counter(M_EFFECTS, effect="NO").inc(4)
        assert reg.counter(M_EFFECTS, effect="SDC").value == 1
        assert reg.counter(M_EFFECTS, effect="NO").value == 4

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_catalog_kind_enforced(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter(M_GRID_TASKS)  # cataloged as a gauge

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_total", **{"bad-label": "v"})

    def test_snapshot_is_json_round_trippable(self):
        reg = MetricsRegistry()
        reg.counter(M_JOURNAL_APPENDS).inc(2)
        reg.histogram(M_TASK_SECONDS).observe(0.25)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["format"] == METRICS_FORMAT
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name[M_JOURNAL_APPENDS]["samples"][0]["value"] == 2
        hist = by_name[M_TASK_SECONDS]["samples"][0]
        assert hist["count"] == 1 and hist["buckets"][-1] == ["+Inf", 1]

    def test_prometheus_exposition_parses(self):
        reg = MetricsRegistry()
        reg.counter(M_EFFECTS, effect="SDC").inc()
        reg.gauge(M_GRID_TASKS).set(12)
        reg.histogram(M_TASK_SECONDS).observe(0.002)
        assert_valid_exposition(reg.render_prometheus())

    def test_help_and_type_come_from_catalog(self):
        reg = MetricsRegistry()
        reg.counter(M_JOURNAL_APPENDS)
        text = reg.render_prometheus()
        spec = METRIC_CATALOG[M_JOURNAL_APPENDS]
        assert f"# TYPE {M_JOURNAL_APPENDS} {spec.kind}" in text
        assert f"# HELP {M_JOURNAL_APPENDS} {spec.help}" in text

    def test_write_dispatches_on_extension(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        prom = reg.write(tmp_path / "m.prom")
        snap = reg.write(tmp_path / "m.json")
        assert prom.read_text().startswith("# HELP")
        assert json.loads(snap.read_text())["format"] == METRICS_FORMAT


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------

class TestTracer:
    def test_nesting_and_parent_ids(self):
        spans = []
        tracer = Tracer(spans.append, clock=fake_clock())
        with tracer.span("task", trace_id="t1", benchmark="mcf"):
            with tracer.span("voltage_step", voltage_mv=910):
                pass
            tracer.event("journal.append", core=0)
        child, evt, root = spans
        assert root.name == "task" and root.parent_id is None
        assert child.parent_id == root.span_id
        assert evt.parent_id == root.span_id
        assert evt.start_s == evt.end_s  # zero-duration point event
        assert child.trace_id == evt.trace_id == root.trace_id == "t1"
        assert root.start_s < child.start_s < child.end_s < root.end_s

    def test_error_status(self):
        spans = []
        tracer = Tracer(spans.append, clock=fake_clock())
        with pytest.raises(RuntimeError):
            with tracer.span("task"):
                raise RuntimeError("boom")
        assert spans[0].status == "error"

    def test_session_trace_id_default(self):
        spans = []
        Tracer(spans.append, clock=fake_clock()).event("engine.replay")
        assert spans[0].trace_id == SESSION_TRACE_ID

    def test_first_id_offsets_span_ids(self):
        spans = []
        tracer = Tracer(spans.append, clock=fake_clock(),
                        first_id=PARENT_SPAN_ID_BASE)
        tracer.event("journal.append")
        assert spans[0].span_id == PARENT_SPAN_ID_BASE

    def test_records_round_trip_and_validate(self):
        spans = []
        tracer = Tracer(spans.append, clock=fake_clock())
        with tracer.span("task", trace_id="t", flag=True, note=None):
            pass
        data = spans[0].to_json_dict()
        assert data["format"] == SPAN_FORMAT
        assert validate_span(data) == []
        assert SpanRecord.from_json_dict(json.loads(json.dumps(data))) == spans[0]

    def test_validate_span_rejects_bad_records(self):
        spans = []
        Tracer(spans.append, clock=fake_clock()).event("x")
        good = spans[0].to_json_dict()
        missing = dict(good)
        del missing["trace_id"]
        assert any("trace_id" in p for p in validate_span(missing))
        wrong_type = dict(good, span_id="one")
        assert any("span_id" in p for p in validate_span(wrong_type))
        unknown = dict(good, extra=1)
        assert any("unknown" in p for p in validate_span(unknown))
        bad_status = dict(good, status="maybe")
        assert any("status" in p for p in validate_span(bad_status))
        bad_format = dict(good, format="repro-span/v0")
        assert any("format" in p for p in validate_span(bad_format))

    def test_trace_writer_one_file_per_trace(self, tmp_path):
        writer = TraceWriter(tmp_path)
        tracer = Tracer(writer, clock=fake_clock())
        tracer.event("a", trace_id=task_trace_id("mcf", 0, 1))
        tracer.event("b", trace_id=task_trace_id("mcf", 0, 2))
        tracer.event("c", trace_id=task_trace_id("mcf", 0, 1))
        one = writer.path_for(task_trace_id("mcf", 0, 1))
        two = writer.path_for(task_trace_id("mcf", 0, 2))
        assert one.name == "trace-mcf_c0_k1.jsonl"
        assert [s.name for s in load_spans(one)] == ["a", "c"]
        assert [s.name for s in load_spans(two)] == ["b"]


# ---------------------------------------------------------------------------
# ambient context + structured logger
# ---------------------------------------------------------------------------

class TestAmbientContext:
    def test_everything_noops_without_session(self):
        assert current_session() is None
        with span("task"):
            event("x")
            inc_counter("x_total")
            set_gauge("g", 1)
            observe("h", 0.1)
            emit_spans([])
        assert clock() == 0.0

    def test_session_routes_to_tracer_and_metrics(self):
        spans, reg = [], MetricsRegistry()
        with telemetry_session(tracer=Tracer(spans.append), metrics=reg):
            with span("task", trace_id="t"):
                event("inner")
            inc_counter("x_total", amount=2)
            set_gauge("g", 3)
            observe("h", 0.5)
        assert [s.name for s in spans] == ["inner", "task"]
        assert spans[0].parent_id == spans[1].span_id
        assert reg.counter("x_total").value == 2
        assert reg.gauge("g").value == 3
        assert reg.histogram("h").count == 1

    def test_shielded_suppresses_ambient_session(self):
        spans, reg = [], MetricsRegistry()
        with telemetry_session(tracer=Tracer(spans.append), metrics=reg):
            with shielded():
                event("hidden")
                inc_counter("x_total")
            event("visible")
        assert [s.name for s in spans] == ["visible"]
        assert reg.counter("x_total").value == 0

    def test_emit_spans_forwards_worker_records(self):
        spans = []
        worker_records = []
        worker = Tracer(worker_records.append, clock=fake_clock())
        with worker.span("task", trace_id="t"):
            pass
        with telemetry_session(tracer=Tracer(spans.append)):
            emit_spans(worker_records)
        assert spans == worker_records


class TestStructuredLogger:
    def test_silent_without_session(self):
        get_logger("repro.test").warning("nobody listening", n=1)

    def test_counts_and_events_with_session(self):
        spans, reg = [], MetricsRegistry()
        log = get_logger("repro.test")
        with telemetry_session(tracer=Tracer(spans.append), metrics=reg):
            log.debug("d", n=1)
            log.error("e")
        assert [s.name for s in spans] == ["log.debug", "log.error"]
        attrs = dict(spans[0].attributes)
        assert attrs["logger"] == "repro.test" and attrs["message"] == "d"
        assert reg.counter("repro_log_messages_total", level="debug").value == 1
        assert reg.counter("repro_log_messages_total", level="error").value == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            get_logger("repro.test").log("fatal", "nope")

    def test_logger_cache_returns_same_instance(self):
        assert get_logger("repro.same") is get_logger("repro.same")


# ---------------------------------------------------------------------------
# progress tracker on the metrics registry
# ---------------------------------------------------------------------------

class Recorder(ProgressReporter):
    def __init__(self):
        self.events = []

    def on_progress(self, event_: ProgressEvent) -> None:
        self.events.append(event_)

    def on_finish(self, event_: ProgressEvent) -> None:
        self.events.append(event_)


class TestProgressTrackerMetrics:
    def test_counts_and_eta_come_from_registry(self):
        reg = MetricsRegistry()
        tracker = ProgressTracker(4, Recorder(), registry=reg,
                                  clock=fake_clock(step=2.0))
        e1 = tracker.advance(1)   # 2 s for 1 task
        assert reg.counter(M_TASKS_COMPLETED).value == 1
        assert reg.gauge(M_GRID_TASKS).value == 4
        assert reg.histogram(M_TASK_SECONDS).count == 1
        assert e1.completed == tracker.completed == 1
        assert e1.eta_s == pytest.approx(2.0 * 3)  # mean 2 s x 3 left
        tracker.advance(3)
        done = tracker.finish()
        assert done.completed == 4 and done.eta_s == 0.0
        assert reg.gauge(M_THROUGHPUT).value == pytest.approx(
            done.completed / done.elapsed_s
        )

    def test_uses_ambient_session_registry(self):
        reg = MetricsRegistry()
        with telemetry_session(metrics=reg, clock=fake_clock()):
            tracker = ProgressTracker(2)
            tracker.advance(2)
            tracker.finish()
        assert reg.counter(M_TASKS_COMPLETED).value == 2

    def test_baselines_pre_existing_counts(self):
        reg = MetricsRegistry()
        reg.counter(M_TASKS_COMPLETED).inc(10)       # an earlier run
        reg.histogram(M_TASK_SECONDS).observe(100.0)
        tracker = ProgressTracker(2, registry=reg, clock=fake_clock())
        assert tracker.completed == 0
        e = tracker.advance(1)
        assert e.completed == 1
        assert e.eta_s == pytest.approx(1.0)  # this run's mean, not 100 s


# ---------------------------------------------------------------------------
# determinism neutrality (tentpole acceptance)
# ---------------------------------------------------------------------------

def traced_run(store, trace_dir, **kwargs):
    reg = MetricsRegistry()
    with telemetry_session(tracer=Tracer(TraceWriter(trace_dir),
                                         first_id=PARENT_SPAN_ID_BASE),
                           metrics=reg):
        report = run_grid(store=store, **kwargs)
    return report, reg


@pytest.fixture(scope="module")
def untraced_store(tmp_path_factory):
    """The telemetry-off baseline store + exported CSVs."""
    directory = tmp_path_factory.mktemp("untraced-store")
    run_grid(store=directory, jobs=1)
    CampaignStore.open(directory).export_csv()
    return directory


class TestDeterminismNeutrality:
    @pytest.mark.parametrize("jobs,backend", [(1, "serial"), (2, "thread")])
    @pytest.mark.parametrize("traced", [False, True])
    def test_store_bytes_invariant(self, tmp_path, untraced_store,
                                   jobs, backend, traced):
        store = tmp_path / "store"
        if traced:
            traced_run(store, tmp_path / "trace", jobs=jobs, backend=backend)
        else:
            run_grid(store=store, jobs=jobs, backend=backend)
        CampaignStore.open(store).export_csv()
        for name in ("runs.csv", "severity.csv"):
            assert (store / name).read_bytes() == \
                (untraced_store / name).read_bytes()
        # The journal appends in completion order, which the pool does
        # not fix across runs -- serial order is the reference; parallel
        # must journal the same lines, whatever order they drained in.
        ours = (store / JOURNAL_NAME).read_bytes().splitlines(keepends=True)
        reference = (untraced_store / JOURNAL_NAME).read_bytes() \
            .splitlines(keepends=True)
        if jobs == 1:
            assert ours == reference
        else:
            assert sorted(ours) == sorted(reference)

    def test_traces_validate_against_schema(self, tmp_path):
        _report, _reg = traced_run(tmp_path / "store", tmp_path / "trace",
                                   jobs=2, backend="thread")
        trace_files = sorted((tmp_path / "trace").glob("trace-*.jsonl"))
        # One file per task trace plus the session trace.
        assert len(trace_files) == TOTAL_TASKS + 1
        for path in trace_files:
            for line in path.read_text().splitlines():
                assert validate_span(json.loads(line)) == []

    def test_task_traces_carry_the_span_tree(self, tmp_path):
        traced_run(tmp_path / "store", tmp_path / "trace", jobs=1)
        path = tmp_path / "trace" / f"trace-bwaves_c0_k1.jsonl"
        names = {s.name for s in load_spans(path)}
        assert {"task", "voltage_step", "parse", "journal.append"} <= names
        # The sweep descends into the crash region -> recoveries traced.
        assert "watchdog.recovery" in names
        # Parent-side events never collide with worker-recorded ids.
        ids = [s.span_id for s in load_spans(path)]
        assert len(ids) == len(set(ids))

    def test_parent_metrics_match_journal(self, tmp_path):
        _report, reg = traced_run(tmp_path / "store", tmp_path / "trace",
                                  jobs=2, backend="thread")
        journaled = CampaignStore.open(tmp_path / "store").campaigns()
        effects = {effect: 0 for effect in EffectType}
        for stored in journaled:
            for record in stored.records:
                for effect in record.effects:
                    effects[effect] += 1
        for effect, count in effects.items():
            if count:
                assert reg.counter(M_EFFECTS,
                                   effect=effect.value).value == count
        assert reg.counter(M_TASKS_COMPLETED).value == TOTAL_TASKS
        assert reg.counter(M_JOURNAL_APPENDS).value == TOTAL_TASKS

    def test_killed_and_resumed_traced_grid_matches_untraced(
            self, tmp_path, untraced_store):
        """The ISSUE acceptance scenario, end to end."""
        store = tmp_path / "store"
        traced_run(store, tmp_path / "trace1", jobs=1)
        # Kill: keep only the first journal line.
        lines = (store / JOURNAL_NAME).read_text().splitlines(keepends=True)
        (store / JOURNAL_NAME).write_text(lines[0])
        # Resume, traced again.
        report, _reg = traced_run(store, tmp_path / "trace2",
                                  jobs=1, resume=True)
        assert report.tasks_skipped == 1
        CampaignStore.open(store).export_csv()
        for name in (JOURNAL_NAME, "runs.csv", "severity.csv"):
            assert (store / name).read_bytes() == \
                (untraced_store / name).read_bytes()


# ---------------------------------------------------------------------------
# campaign status
# ---------------------------------------------------------------------------

class TestCampaignStatus:
    def test_tallies_match_journal(self, untraced_store):
        status = campaign_status(untraced_store)
        assert status.tasks_total == TOTAL_TASKS
        assert status.tasks_completed == TOTAL_TASKS
        assert status.complete and status.fraction == 1.0
        journaled = CampaignStore.open(untraced_store).campaigns()
        expected = {effect.value: 0 for effect in EFFECT_ORDER}
        interventions = 0
        for stored in journaled:
            interventions += stored.interventions
            for record in stored.records:
                for effect in record.effects:
                    expected[effect.value] += 1
        assert dict(status.effect_tallies) == expected
        assert status.interventions == interventions
        assert [e for e, _c in status.effect_tallies] == \
            [effect.value for effect in EFFECT_ORDER]
        assert status.cells == (("bwaves", 0, CFG.campaigns),)

    def test_partial_store_reports_remaining(self, untraced_store, tmp_path):
        target = tmp_path / "killed"
        target.mkdir()
        (target / MANIFEST_NAME).write_text(
            (untraced_store / MANIFEST_NAME).read_text())
        lines = (untraced_store / JOURNAL_NAME).read_text() \
            .splitlines(keepends=True)
        (target / JOURNAL_NAME).write_text(lines[0])
        status = campaign_status(target)
        assert status.tasks_completed == 1
        assert status.tasks_remaining == TOTAL_TASKS - 1
        assert not status.complete
        assert status.eta_s is None  # no metrics snapshot given

    def test_eta_from_metrics_snapshot(self, untraced_store, tmp_path):
        target = tmp_path / "killed"
        target.mkdir()
        (target / MANIFEST_NAME).write_text(
            (untraced_store / MANIFEST_NAME).read_text())
        lines = (untraced_store / JOURNAL_NAME).read_text() \
            .splitlines(keepends=True)
        (target / JOURNAL_NAME).write_text(lines[0])
        reg = MetricsRegistry()
        reg.histogram(M_TASK_SECONDS).observe(2.0)
        reg.histogram(M_TASK_SECONDS).observe(4.0)
        snapshot = reg.write(tmp_path / "metrics.json")
        status = campaign_status(target, metrics_path=snapshot)
        assert status.mean_task_seconds == pytest.approx(3.0)
        assert status.eta_s == pytest.approx(3.0 * (TOTAL_TASKS - 1))

    def test_non_snapshot_metrics_file_rejected(self, untraced_store, tmp_path):
        bogus = tmp_path / "metrics.json"
        bogus.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            campaign_status(untraced_store, metrics_path=bogus)

    def test_render_status_is_human_readable(self, untraced_store):
        text = render_status(campaign_status(untraced_store))
        assert f"{TOTAL_TASKS}/{TOTAL_TASKS} tasks" in text
        assert "complete" in text
        assert "effect classes" in text
        assert "bwaves c0" in text
