"""The ECC codecs: parity, SECDED(72,64), DEC-TED BCH(79,64)."""

import random

import pytest

from repro.errors import EccError
from repro.faults.ecc import (
    DecodeStatus,
    DectedCode,
    EvenParityCode,
    SecdedCode,
    flip_bits,
)


@pytest.fixture(scope="module")
def words():
    rng = random.Random(1234)
    return [rng.getrandbits(64) for _ in range(50)] + [0, (1 << 64) - 1, 1]


class TestFlipBits:
    def test_single_flip(self):
        assert flip_bits(0b1000, [3]) == 0
        assert flip_bits(0, [0, 2]) == 0b101

    def test_double_flip_same_position_cancels(self):
        assert flip_bits(0xDEAD, [5, 5]) == 0xDEAD

    def test_negative_position_rejected(self):
        with pytest.raises(EccError):
            flip_bits(1, [-1])


class TestEvenParity:
    def test_roundtrip(self, words):
        codec = EvenParityCode()
        for word in words:
            result = codec.decode(codec.encode(word))
            assert result.status is DecodeStatus.CLEAN
            assert result.data == word

    def test_single_flip_detected(self, words):
        codec = EvenParityCode()
        for word in words[:10]:
            codeword = codec.encode(word)
            for pos in (0, 17, 63, 64):
                result = codec.decode(flip_bits(codeword, [pos]))
                assert result.status is DecodeStatus.DETECTED_UNCORRECTABLE

    def test_double_flip_undetected(self):
        # Parity's fundamental limit: even flip counts pass silently.
        codec = EvenParityCode()
        codeword = codec.encode(0x1234)
        result = codec.decode(flip_bits(codeword, [3, 40]))
        assert result.status is DecodeStatus.CLEAN
        assert result.data != 0x1234  # silent corruption

    def test_oversized_codeword_rejected(self):
        with pytest.raises(EccError):
            EvenParityCode().decode(1 << 65)


class TestSecded:
    def test_roundtrip(self, words):
        codec = SecdedCode()
        for word in words:
            result = codec.decode(codec.encode(word))
            assert result.status is DecodeStatus.CLEAN
            assert result.data == word

    def test_every_single_bit_error_corrected(self):
        codec = SecdedCode()
        word = 0xA5A5_5A5A_0F0F_F0F0
        codeword = codec.encode(word)
        for pos in range(72):
            result = codec.decode(flip_bits(codeword, [pos]))
            assert result.status is DecodeStatus.CORRECTED, pos
            assert result.data == word, pos

    def test_double_bit_errors_detected(self, words):
        codec = SecdedCode()
        rng = random.Random(99)
        for word in words[:20]:
            codeword = codec.encode(word)
            positions = rng.sample(range(72), 2)
            result = codec.decode(flip_bits(codeword, positions))
            assert result.status is DecodeStatus.DETECTED_UNCORRECTABLE

    def test_corrected_positions_reported(self):
        codec = SecdedCode()
        codeword = codec.encode(7)
        result = codec.decode(flip_bits(codeword, [9]))
        assert result.corrected_positions == (9,)
        assert result.ok

    def test_uncorrectable_flagged_not_ok(self):
        codec = SecdedCode()
        result = codec.decode(flip_bits(codec.encode(7), [3, 9]))
        assert not result.ok

    def test_data_word_width_enforced(self):
        with pytest.raises(EccError):
            SecdedCode().encode(1 << 64)
        with pytest.raises(EccError):
            SecdedCode().encode(-1)


class TestDected:
    @pytest.fixture(scope="class")
    def codec(self):
        return DectedCode()

    def test_roundtrip(self, codec, words):
        for word in words:
            result = codec.decode(codec.encode(word))
            assert result.status is DecodeStatus.CLEAN
            assert result.data == word

    def test_every_single_bit_error_corrected(self, codec):
        word = 0x0123_4567_89AB_CDEF
        codeword = codec.encode(word)
        for pos in range(79):
            result = codec.decode(flip_bits(codeword, [pos]))
            assert result.status is DecodeStatus.CORRECTED, pos
            assert result.data == word, pos

    def test_random_double_bit_errors_corrected(self, codec, words):
        rng = random.Random(7)
        for word in words:
            codeword = codec.encode(word)
            positions = rng.sample(range(79), 2)
            result = codec.decode(flip_bits(codeword, positions))
            assert result.status is DecodeStatus.CORRECTED, positions
            assert result.data == word, positions

    def test_adjacent_double_bit_errors_corrected(self, codec):
        # Adjacent pairs are the physically common double-bit pattern.
        word = 0xFEED_FACE_CAFE_BEEF
        codeword = codec.encode(word)
        for pos in range(78):
            result = codec.decode(flip_bits(codeword, [pos, pos + 1]))
            assert result.status is DecodeStatus.CORRECTED, pos
            assert result.data == word, pos

    def test_triple_bit_errors_detected(self, codec, words):
        rng = random.Random(21)
        for word in words[:30]:
            codeword = codec.encode(word)
            positions = rng.sample(range(79), 3)
            result = codec.decode(flip_bits(codeword, positions))
            assert result.status is DecodeStatus.DETECTED_UNCORRECTABLE, positions

    def test_parity_bit_plus_data_bit_corrected(self, codec):
        # The even-weight corner case: one BCH-part flip plus the
        # overall parity bit.
        word = 0x1111_2222_3333_4444
        codeword = codec.encode(word)
        result = codec.decode(flip_bits(codeword, [10, 78]))
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == word

    def test_stronger_than_secded(self, codec):
        # The Section-6 claim in codec form: a double-bit pattern that
        # SECDED can only detect, DEC-TED corrects.
        secded = SecdedCode()
        word = 0xDEAD_BEEF_DEAD_BEEF
        sec_result = secded.decode(flip_bits(secded.encode(word), [4, 33]))
        dec_result = codec.decode(flip_bits(codec.encode(word), [4, 33]))
        assert sec_result.status is DecodeStatus.DETECTED_UNCORRECTABLE
        assert dec_result.status is DecodeStatus.CORRECTED
        assert dec_result.data == word
