"""Alpha-power timing model and the chip power model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.corners import ProcessCorner, corner_for_chip
from repro.hardware.power import PowerModel
from repro.hardware.timing import AlphaPowerTimingModel


@pytest.fixture(scope="module")
def ttt_timing():
    return AlphaPowerTimingModel.for_corner(corner_for_chip("TTT"))


@pytest.fixture(scope="module")
def ttt_power():
    return PowerModel(corner=corner_for_chip("TTT"))


class TestCorners:
    def test_three_corners(self):
        for chip in ("TTT", "TFF", "TSS"):
            assert corner_for_chip(chip).name == chip

    def test_corner_personalities(self):
        ttt, tff, tss = (corner_for_chip(c) for c in ("TTT", "TFF", "TSS"))
        assert tff.leakage_rel > ttt.leakage_rel > tss.leakage_rel
        assert tff.threshold_mv < ttt.threshold_mv < tss.threshold_mv
        assert tff.silicon_fmax_mhz > ttt.silicon_fmax_mhz

    def test_unknown_corner_rejected(self):
        with pytest.raises(ConfigurationError):
            corner_for_chip("FFF")

    def test_invalid_corner_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessCorner("X", leakage_rel=-1, threshold_mv=550,
                          silicon_fmax_mhz=2400)


class TestAlphaPowerTiming:
    def test_delay_normalised_at_nominal(self, ttt_timing):
        assert ttt_timing.relative_delay(980) == pytest.approx(1.0)

    def test_delay_grows_as_voltage_drops(self, ttt_timing):
        assert ttt_timing.relative_delay(760) > ttt_timing.relative_delay(900)

    def test_below_threshold_is_infinite(self, ttt_timing):
        assert ttt_timing.relative_delay(500) == float("inf")
        assert ttt_timing.max_frequency_mhz(500) == 0.0

    def test_predicts_the_papers_760mv_1p2ghz_point(self, ttt_timing):
        """The alpha-power law independently lands the paper's pairing:
        fmax(760 mV) comes out at ~1.2 GHz."""
        fmax = ttt_timing.max_frequency_mhz(760)
        assert fmax == pytest.approx(1270, abs=120)

    def test_min_voltage_inverse_of_fmax(self, ttt_timing):
        for freq in (1200, 1800, 2400):
            voltage = ttt_timing.min_voltage_mv(freq)
            assert ttt_timing.max_frequency_mhz(voltage) == pytest.approx(
                freq, rel=1e-3)

    def test_unreachable_frequency_rejected(self, ttt_timing):
        with pytest.raises(ConfigurationError):
            ttt_timing.min_voltage_mv(10_000)

    def test_slack_sign(self, ttt_timing):
        assert ttt_timing.timing_slack(980, 2400) > 0
        assert ttt_timing.timing_slack(760, 2400) < 0
        assert ttt_timing.timing_slack(760, 1200) > 0


class TestPowerModel:
    def test_nominal_is_unity(self, ttt_power):
        assert ttt_power.pmd_power_rel(980, [2400] * 4) == pytest.approx(1.0)

    def test_paper_percentages(self, ttt_power):
        assert ttt_power.pmd_power_rel(915, [2400] * 4) == pytest.approx(0.872, abs=0.001)
        assert ttt_power.pmd_power_rel(900, [2400, 1200, 2400, 2400]) == \
            pytest.approx(0.738, abs=0.001)
        assert ttt_power.pmd_power_rel(885, [1200, 1200, 2400, 2400]) == \
            pytest.approx(0.612, abs=0.001)
        assert ttt_power.pmd_power_rel(760, [1200] * 4) == pytest.approx(0.301, abs=0.001)

    def test_clock_tree_fraction_reproduces_figure9_variant(self):
        model = PowerModel(corner=corner_for_chip("TTT"), clock_tree_fraction=0.25)
        assert model.pmd_power_rel(760, [1200] * 4) == pytest.approx(0.376, abs=0.001)

    def test_wrong_pmd_count_rejected(self, ttt_power):
        with pytest.raises(ConfigurationError):
            ttt_power.pmd_power_rel(980, [2400] * 3)

    def test_leakage_scales_with_corner(self):
        tff = PowerModel(corner=corner_for_chip("TFF"))
        tss = PowerModel(corner=corner_for_chip("TSS"))
        assert tff.leakage_w(980, 43.0) > tss.leakage_w(980, 43.0)

    def test_leakage_grows_with_temperature(self, ttt_power):
        assert ttt_power.leakage_w(980, 80.0) > ttt_power.leakage_w(980, 43.0)

    def test_chip_power_within_tdp_budget(self, ttt_power):
        watts = ttt_power.chip_power_w(980, [2400] * 4, temp_c=43.0)
        assert 30.0 <= watts <= 36.0  # Table 2: max TDP 35 W

    def test_undervolting_reduces_watts(self, ttt_power):
        nominal = ttt_power.chip_power_w(980, [2400] * 4)
        scaled = ttt_power.chip_power_w(885, [2400] * 4)
        assert scaled < nominal

    def test_energy_is_power_times_time(self, ttt_power):
        watts = ttt_power.chip_power_w(980, [2400] * 4)
        assert ttt_power.energy_j(10.0, 980, [2400] * 4) == pytest.approx(10 * watts)

    def test_activity_scaling(self, ttt_power):
        busy = ttt_power.chip_power_w(980, [2400] * 4, activity=1.0)
        idle = ttt_power.chip_power_w(980, [2400] * 4, activity=0.1)
        assert idle < busy

    def test_invalid_inputs_rejected(self, ttt_power):
        with pytest.raises(ConfigurationError):
            ttt_power.chip_power_w(980, [2400] * 4, activity=1.5)
        with pytest.raises(ConfigurationError):
            ttt_power.energy_j(-1.0, 980, [2400] * 4)
        with pytest.raises(ConfigurationError):
            PowerModel(corner=corner_for_chip("TTT"), clock_tree_fraction=1.0)
