"""The Table-3 effect vocabulary and run classification."""

import pytest

from repro.core.effects import classify_run, effect_counts
from repro.effects import (
    EFFECT_DESCRIPTIONS,
    EFFECT_ORDER,
    EffectType,
    normalize_effects,
)


class TestEffectType:
    def test_all_six_classes_exist(self):
        # reprolint: disable=RPR005 -- pins the Table-3 vocabulary independently
        assert {e.value for e in EffectType} == {"NO", "SDC", "CE", "UE", "AC", "SC"}

    def test_abnormality(self):
        assert not EffectType.NO.is_abnormal
        for effect in (EffectType.SDC, EffectType.CE, EffectType.UE,
                       EffectType.AC, EffectType.SC):
            assert effect.is_abnormal

    def test_order_most_severe_first(self):
        assert EFFECT_ORDER[0] is EffectType.SC
        assert EFFECT_ORDER[-1] is EffectType.NO

    def test_descriptions_cover_all(self):
        assert set(EFFECT_DESCRIPTIONS) == set(EffectType)


class TestNormalizeEffects:
    def test_empty_means_normal(self):
        assert normalize_effects([]) == frozenset({EffectType.NO})

    def test_no_alone_preserved(self):
        assert normalize_effects([EffectType.NO]) == frozenset({EffectType.NO})

    def test_no_dropped_when_abnormal_present(self):
        result = normalize_effects([EffectType.NO, EffectType.CE])
        assert result == frozenset({EffectType.CE})

    def test_multiple_effects_kept(self):
        result = normalize_effects([EffectType.SDC, EffectType.CE])
        assert result == frozenset({EffectType.SDC, EffectType.CE})


class TestClassifyRun:
    def test_normal_run(self):
        effects = classify_run(True, 0, "abc", "abc")
        assert effects == frozenset({EffectType.NO})

    def test_system_crash_from_unresponsive(self):
        effects = classify_run(False, None, None, "abc")
        assert effects == frozenset({EffectType.SC})

    def test_system_crash_from_missing_exit(self):
        effects = classify_run(True, None, None, "abc")
        assert effects == frozenset({EffectType.SC})

    def test_application_crash(self):
        effects = classify_run(True, 139, None, "abc")
        assert effects == frozenset({EffectType.AC})

    def test_sdc_on_output_mismatch(self):
        effects = classify_run(True, 0, "wrong", "abc")
        assert effects == frozenset({EffectType.SDC})

    def test_ac_suppresses_sdc_check(self):
        # A crashed process produced no comparable output.
        effects = classify_run(True, 1, "partial", "abc")
        assert EffectType.AC in effects
        assert EffectType.SDC not in effects

    def test_edac_counts_accompany_crash(self):
        effects = classify_run(True, 139, None, "abc", edac_ce=2, edac_ue=1)
        assert effects == frozenset({EffectType.AC, EffectType.CE, EffectType.UE})

    def test_ce_alone(self):
        effects = classify_run(True, 0, "abc", "abc", edac_ce=3)
        assert effects == frozenset({EffectType.CE})

    def test_sdc_with_ce(self):
        # Section 3.4.1: "in a run both SDC and CE can be observed".
        effects = classify_run(True, 0, "bad", "abc", edac_ce=1)
        assert effects == frozenset({EffectType.SDC, EffectType.CE})


class TestEffectCounts:
    def test_counts_runs_not_events(self):
        runs = [
            frozenset({EffectType.SDC, EffectType.CE}),
            frozenset({EffectType.SDC}),
            frozenset({EffectType.NO}),
        ]
        counts = effect_counts(runs)
        assert counts[EffectType.SDC] == 2
        assert counts[EffectType.CE] == 1
        assert counts[EffectType.NO] == 1
        assert counts[EffectType.SC] == 0

    def test_empty_input(self):
        counts = effect_counts([])
        assert all(v == 0 for v in counts.values())
