"""The declarative machine layer: protocol, registry, spec round-trips."""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults.injection import FaultInjector, Injection
from repro.faults.models import FunctionalUnit
# reprolint: disable=RPR003 -- spec codec tests capture the concrete machine
from repro.hardware import (
    AdaptiveClockingUnit,
    AgingModel,
    RollbackUnit,
    SupplyDroopModel,
    TemperatureSensitivity,
    XGene2Chip,
    XGene2Machine,
)
from repro.machines import (
    Machine,
    MachineSpec,
    as_machine_spec,
    build_machine,
    clone_component,
    component_from_spec,
    component_to_spec,
    load_machine_spec,
    machine_to_spec,
    register_component,
    registered_components,
    save_machine_spec,
    spec_from_json,
    spec_to_json,
    unregister_component,
)

# -- hypothesis strategies, one per registered component kind --------------

finite = dict(allow_nan=False, allow_infinity=False)

droop_models = st.builds(
    SupplyDroopModel,
    max_droop_mv=st.floats(0.0, 40.0, **finite),
    floor_fraction=st.floats(0.0, 1.0, **finite),
    resonance_gain=st.floats(1.0, 2.0, **finite),
    resonance_mhz=st.integers(300, 2400),
)
adaptive_clocks = st.builds(
    AdaptiveClockingUnit,
    recovery_mv=st.floats(0.0, 30.0, **finite),
    stretch_penalty=st.floats(0.0, 1.0, **finite),
    deployment_slope_per_mv=st.floats(0.01, 1.0, **finite),
)
temperature_models = st.builds(
    TemperatureSensitivity,
    mv_per_kelvin=st.floats(0.0, 2.0, **finite),
    reference_c=st.floats(30.0, 60.0, **finite),
)
aging_models = st.builds(
    AgingModel,
    shift_mv_per_1000h=st.floats(0.0, 20.0, **finite),
    exponent=st.floats(0.05, 1.0, **finite),
)
rollback_units = st.builds(
    RollbackUnit,
    detection_coverage=st.floats(0.0, 1.0, **finite),
    rollback_penalty=st.floats(0.0, 0.5, **finite),
)
injections = st.builds(
    Injection,
    unit=st.sampled_from(list(FunctionalUnit)),
    bit_positions=st.lists(
        st.integers(0, 63), min_size=1, max_size=4).map(tuple),
    run_index=st.none() | st.integers(1, 50),
)
fault_injectors = st.lists(injections, max_size=5).map(FaultInjector)

COMPONENT_STRATEGIES = {
    "supply_droop": droop_models,
    "adaptive_clocking": adaptive_clocks,
    "temperature_sensitivity": temperature_models,
    "aging": aging_models,
    "rollback": rollback_units,
    "fault_injector": fault_injectors,
}

machine_specs = st.builds(
    MachineSpec,
    chip=st.sampled_from(["TTT", "TFF", "TSS"]),
    seed=st.integers(0, 2**31 - 1),
    droop_model=st.none() | droop_models,
    adaptive_clock=st.none() | adaptive_clocks,
    temperature_sensitivity=st.none() | temperature_models,
    aging_model=st.none() | aging_models,
    rollback_unit=st.none() | rollback_units,
    injector=st.none() | fault_injectors,
    stress_hours=st.floats(0.0, 50000.0, **finite),
    fan_setpoint_c=st.none() | st.floats(44.0, 80.0, **finite),
)


def test_every_registered_component_has_a_strategy():
    # Guards the "for every registered component model" promise of the
    # property tests below: registering a new built-in without adding a
    # strategy here fails loudly.
    assert {c.kind for c in registered_components()} == \
        set(COMPONENT_STRATEGIES)


@pytest.mark.parametrize("kind", sorted(COMPONENT_STRATEGIES))
def test_component_spec_round_trip_is_identity(kind):
    @settings(max_examples=50, deadline=None)
    @given(model=COMPONENT_STRATEGIES[kind])
    def check(model):
        payload = component_to_spec(model)
        assert payload["kind"] == kind
        assert component_from_spec(payload) == model
        assert clone_component(model) == model

    check()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=machine_specs)
def test_spec_build_to_spec_is_identity(spec):
    machine = spec.build(power_on=False)
    assert machine.to_spec() == spec


@settings(max_examples=50, deadline=None)
@given(spec=machine_specs)
def test_spec_json_round_trip_is_identity(spec):
    assert spec_from_json(spec_to_json(spec)) == spec


# -- protocol ---------------------------------------------------------------

class TestProtocol:
    def test_xgene2_machine_conforms(self):
        assert isinstance(XGene2Machine("TTT"), Machine)

    def test_non_machines_do_not_conform(self):
        assert not isinstance(object(), Machine)


# -- registry ---------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class _ThirdPartyDroop(SupplyDroopModel):
    """A model the library has never seen."""


class TestRegistry:
    def test_builtin_kinds_present(self):
        kinds = {c.kind for c in registered_components()}
        assert {"supply_droop", "aging", "adaptive_clocking",
                "rollback", "temperature_sensitivity",
                "fault_injector"} <= kinds

    def test_unregistered_subclass_is_a_different_model(self):
        machine = XGene2Machine("TTT", droop_model=_ThirdPartyDroop())
        with pytest.raises(ConfigurationError, match="register_component"):
            machine_to_spec(machine)

    def test_third_party_registration_round_trips(self):
        register_component("third_party_droop", _ThirdPartyDroop,
                           slot="droop_model")
        try:
            machine = XGene2Machine(
                "TTT", droop_model=_ThirdPartyDroop(max_droop_mv=7.0))
            spec = machine_to_spec(machine)
            rebuilt = spec.build(power_on=False)
            assert isinstance(rebuilt.droop_model, _ThirdPartyDroop)
            assert rebuilt.droop_model.max_droop_mv == 7.0
            assert spec_from_json(spec_to_json(spec)) == spec
        finally:
            unregister_component("third_party_droop")

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_component("supply_droop", _ThirdPartyDroop,
                               slot="droop_model")

    def test_duplicate_class_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_component("droop_again", SupplyDroopModel,
                               slot="droop_model")

    def test_bad_slot_rejected(self):
        with pytest.raises(ConfigurationError, match="slot"):
            register_component("bad_slot", _ThirdPartyDroop, slot="sidecar")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown component kind"):
            component_from_spec({"kind": "warp_core", "params": {}})

    def test_unregister_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            unregister_component("never_registered")

    def test_cloned_injector_state_is_independent(self):
        injector = FaultInjector([Injection(FunctionalUnit.ALU)])
        clone = clone_component(injector)
        assert clone == injector
        taken = injector.take(FunctionalUnit.ALU)
        assert taken is not None
        assert len(injector) == 0 and len(clone) == 1


# -- spec -------------------------------------------------------------------

class TestMachineSpecCapture:
    def test_wrong_slot_rejected(self):
        with pytest.raises(ConfigurationError, match="slot"):
            MachineSpec(droop_model=AgingModel())

    def test_negative_stress_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(stress_hours=-1.0)

    def test_lifetime_state_round_trips(self):
        machine = XGene2Machine("TTT", seed=3, aging_model=AgingModel())
        machine.age(1234.0)
        machine.slimpro.set_fan_setpoint_c(60.0)
        spec = machine.to_spec()
        assert spec.stress_hours == 1234.0
        assert spec.fan_setpoint_c == 60.0
        rebuilt = spec.build(power_on=False)
        assert rebuilt.stress_hours == machine.stress_hours
        assert rebuilt.fan.setpoint_c == machine.fan.setpoint_c

    def test_characterization_fan_setpoint_is_default(self):
        spec = machine_to_spec(XGene2Machine("TTT"))
        assert spec.fan_setpoint_c is None

    def test_canonical_part_chip_captured_by_name(self):
        spec = machine_to_spec(XGene2Machine(XGene2Chip.part("TSS")))
        assert spec.chip == "TSS"

    def test_fleet_chip_captured_whole(self):
        chip = dataclasses.replace(XGene2Chip.part("TTT"),
                                   serial="XG2-FLEET-0042")
        spec = machine_to_spec(XGene2Machine(chip))
        assert isinstance(spec.chip, XGene2Chip)
        assert spec.chip.serial == "XG2-FLEET-0042"
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_unsupported_format_rejected(self):
        with pytest.raises(ConfigurationError, match="format"):
            MachineSpec.from_json_dict({"format": "repro-machine-spec/v99"})

    def test_build_power_state(self):
        assert MachineSpec().build().is_responsive()
        assert not MachineSpec().build(power_on=False).is_responsive()


# -- builder ----------------------------------------------------------------

class TestBuilder:
    def test_as_machine_spec_variants(self):
        assert as_machine_spec("TFF").chip == "TFF"
        chip = XGene2Chip.part("TSS")
        assert as_machine_spec(chip).chip is chip
        spec = MachineSpec(seed=5)
        assert as_machine_spec(spec) is spec
        assert as_machine_spec(XGene2Machine("TTT", seed=8)).seed == 8

    def test_as_machine_spec_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            as_machine_spec(42)

    def test_build_machine_powers_on_by_default(self):
        assert build_machine("TTT").is_responsive()

    def test_spec_file_round_trip(self, tmp_path):
        spec = MachineSpec(
            chip="TFF", seed=11,
            droop_model=SupplyDroopModel(max_droop_mv=9.0),
            injector=FaultInjector(
                [Injection(FunctionalUnit.L2_SRAM, (3, 5), run_index=2)]),
            stress_hours=100.0,
        )
        path = save_machine_spec(spec, tmp_path / "machine.json")
        assert load_machine_spec(path) == spec

    def test_missing_spec_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_machine_spec(tmp_path / "nope.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_machine_spec(path)

    def test_non_object_json_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            spec_from_json("[1, 2, 3]")
