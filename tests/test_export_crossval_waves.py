"""Figure exporter, cross-validation/transfer, and wave scheduling."""

import csv

import numpy as np
import pytest

from repro.analysis.export import FigureExporter
from repro.data.calibration import chip_calibration
from repro.errors import ConfigurationError, DatasetError
from repro.prediction import RegressionDataset
from repro.prediction.crossval import (
    cross_core_transfer,
    kfold_cross_validate,
)
from repro.scheduling import SeverityAwareScheduler
from repro.workloads import SPEC2006_SUITE, figure_benchmarks


def read_csv(path):
    with path.open(newline="") as handle:
        return list(csv.DictReader(handle))


class TestFigureExporter:
    def test_model_figures(self, tmp_path):
        exporter = FigureExporter(tmp_path)
        paths = exporter.export_model_figures()
        assert set(paths) == {"figure3", "figure4", "figure9"}
        fig3 = read_csv(paths["figure3"])
        assert len(fig3) == 30
        leslie = next(r for r in fig3
                      if r["chip"] == "TTT" and r["benchmark"] == "leslie3d")
        assert leslie["vmin_mv"] == "880"
        fig4 = read_csv(paths["figure4"])
        assert len(fig4) == 240
        fig9 = read_csv(paths["figure9"])
        assert fig9[1]["power_pct"] == "87.2"

    def test_figure5_export(self, tmp_path, bwaves_characterization):
        exporter = FigureExporter(tmp_path)
        path = exporter.figure5({0: bwaves_characterization})
        rows = read_csv(path)
        assert rows
        assert {r["core"] for r in rows} == {"0"}
        assert max(float(r["severity"]) for r in rows) == 16.0

    def test_figure7_export(self, tmp_path):
        from repro.prediction import PredictionReport
        report = PredictionReport(
            target="severity", chip="TTT", core=0,
            selected_features=("VOLTAGE_MV",), r2=0.9, rmse_model=2.8,
            rmse_naive=6.4, n_train=80, n_test=2,
            test_points=(("a@900", 4.0, 3.5), ("b@880", 9.0, 8.4)),
        )
        path = FigureExporter(tmp_path).figure7(report)
        rows = read_csv(path)
        assert [r["sample"] for r in rows] == ["a@900", "b@880"]

    def test_empty_figure9_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FigureExporter(tmp_path).figure9([])


def _linear_dataset(n=60, noise=0.1, seed=0, offset=0.0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = 3.0 * x[:, 0] - 2.0 * x[:, 1] + offset + rng.normal(0, noise, n)
    return RegressionDataset(x=x, y=y, feature_names=("a", "b", "c", "d"))


class TestKfold:
    def test_low_noise_gives_tight_folds(self):
        report = kfold_cross_validate(_linear_dataset(noise=0.05), k=5)
        assert report.k == 5
        assert len(report.fold_rmse) == 5
        assert report.mean_rmse < 0.15
        assert report.mean_r2 > 0.95
        assert report.r2_range[0] > 0.8

    def test_noise_widens_the_folds(self):
        quiet = kfold_cross_validate(_linear_dataset(noise=0.05), k=5)
        loud = kfold_cross_validate(_linear_dataset(noise=2.0), k=5)
        assert loud.mean_rmse > quiet.mean_rmse
        assert loud.mean_r2 < quiet.mean_r2

    def test_validation(self):
        with pytest.raises(DatasetError):
            kfold_cross_validate(_linear_dataset(), k=1)
        with pytest.raises(DatasetError):
            kfold_cross_validate(_linear_dataset(n=3), k=5)


class TestCrossCoreTransfer:
    def test_pure_offset_transfers_cleanly(self):
        source = _linear_dataset(seed=1)
        target = _linear_dataset(seed=2, offset=35.0)
        report = cross_core_transfer(source, target, 4, 0, offset_mv=35.0)
        assert report.rmse_transferred < 0.5
        assert abs(report.transfer_penalty) < 0.5

    def test_wrong_offset_shows_up(self):
        source = _linear_dataset(seed=1)
        target = _linear_dataset(seed=2, offset=35.0)
        report = cross_core_transfer(source, target, 4, 0, offset_mv=0.0)
        assert report.rmse_transferred > 30.0

    def test_feature_space_mismatch_rejected(self):
        source = _linear_dataset()
        bad = RegressionDataset(
            x=source.x, y=source.y, feature_names=("w", "x", "y", "z"))
        with pytest.raises(DatasetError):
            cross_core_transfer(source, bad, 0, 4, 0.0)


class TestWaveScheduling:
    def test_waves_cover_all_tasks_once(self):
        scheduler = SeverityAwareScheduler("TTT")
        tasks = list(SPEC2006_SUITE.values())[:20]
        waves = scheduler.assign_waves(tasks, cores=[0, 2, 4, 6])
        assert len(waves) == 5
        placed = [name for wave in waves for name in wave.placement]
        assert sorted(placed) == sorted(b.name for b in tasks)

    def test_robust_first_waves_get_easier(self):
        scheduler = SeverityAwareScheduler("TTT")
        tasks = figure_benchmarks()  # 10 tasks over 4 cores = 3 waves
        waves = scheduler.assign_waves(tasks, cores=[0, 2, 4, 6])
        vmins = [wave.chip_vmin_mv for wave in waves]
        assert vmins == sorted(vmins, reverse=True)
        # The deepest wave runs measurably below the first.
        assert vmins[-1] < vmins[0]

    def test_single_wave_equals_assign(self):
        scheduler = SeverityAwareScheduler("TTT")
        tasks = figure_benchmarks()[:4]
        waves = scheduler.assign_waves(tasks, cores=[0, 2, 4, 6])
        direct = scheduler.assign(tasks, cores=[0, 2, 4, 6])
        assert len(waves) == 1
        assert waves[0].chip_vmin_mv == direct.chip_vmin_mv

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SeverityAwareScheduler("TTT").assign_waves([])
