"""Energy model, Figure-9 ladder, headline savings, ablations."""

import pytest

from repro.energy import (
    FIGURE9_PLACEMENT,
    FIGURE9_WORKLOAD,
    energy_saving_fraction,
    figure9_ladder,
    finer_domains_ablation,
    headline_savings,
    ladder_from_vmins,
    relative_performance,
    relative_power,
)
from repro.energy.model import guardband_saving_fraction
from repro.energy.tradeoffs import figure9_vmins
from repro.errors import ConfigurationError


class TestRelativeModel:
    def test_nominal_unity(self):
        assert relative_power(980) == pytest.approx(1.0)
        assert relative_performance([2400] * 4) == 1.0

    def test_quadratic_voltage_scaling(self):
        assert relative_power(885) == pytest.approx((885 / 980) ** 2)

    def test_performance_steps(self):
        # Figure 9's x-axis steps under equal task weights.
        assert relative_performance([1200, 2400, 2400, 2400]) == 0.875
        assert relative_performance([1200, 1200, 2400, 2400]) == 0.75
        assert relative_performance([1200] * 4) == 0.5

    def test_guardband_savings(self):
        assert guardband_saving_fraction(880) == pytest.approx(0.194, abs=0.0005)
        assert guardband_saving_fraction(915) == pytest.approx(0.128, abs=0.0005)

    def test_energy_saving_wrapper(self):
        assert energy_saving_fraction(915) == pytest.approx(0.128, abs=0.0005)

    def test_empty_freqs_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_performance([])


class TestFigure9:
    def test_exact_paper_points(self):
        ladder = figure9_ladder()
        table = [(p.chip_voltage_mv, round(p.performance_rel, 3),
                  round(p.power_rel, 3)) for p in ladder]
        assert table == [
            (980, 1.0, 1.0),
            (915, 1.0, 0.872),
            (900, 0.875, 0.738),
            (885, 0.75, 0.612),
            (875, 0.625, 0.498),
            (760, 0.5, 0.301),
        ]

    def test_figure_variant_760_point(self):
        ladder = figure9_ladder(clock_tree_fraction=0.25)
        assert ladder[-1].power_rel == pytest.approx(0.376, abs=0.001)

    def test_ladder_monotone(self):
        ladder = figure9_ladder()
        powers = [p.power_rel for p in ladder]
        perfs = [p.performance_rel for p in ladder]
        assert powers == sorted(powers, reverse=True)
        assert perfs == sorted(perfs, reverse=True)

    def test_placement_covers_all_cores(self):
        assert sorted(FIGURE9_PLACEMENT.values()) == list(range(8))
        assert set(FIGURE9_PLACEMENT) == set(FIGURE9_WORKLOAD)

    def test_vmins_from_placement(self):
        vmins = figure9_vmins()
        assert vmins[0] == 915   # leslie3d on the most sensitive core
        assert max(vmins.values()) == 915

    def test_custom_vmins_ladder(self):
        ladder = ladder_from_vmins({0: 915, 2: 890, 4: 870, 6: 900},
                                   include_nominal=False)
        assert ladder[0].chip_voltage_mv == 915
        # Slowing PMD0 (the weakest) relaxes the plane to PMD3's 900.
        assert ladder[1].chip_voltage_mv == 900

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            ladder_from_vmins({})
        with pytest.raises(ConfigurationError):
            ladder_from_vmins({9: 900})
        with pytest.raises(ConfigurationError):
            figure9_vmins(placement={"leslie3d": 0})


class TestHeadlines:
    def test_abstract_numbers(self):
        savings = headline_savings().as_percent()
        assert savings["robust_core_full_speed_pct"] == 19.4
        assert savings["chip_wide_full_speed_pct"] == 12.8
        assert savings["two_pmds_slowed_pct"] == 38.8
        assert savings["all_slowed_power_pct"] == 69.9
        assert savings["all_slowed_performance_loss_pct"] == 50.0


class TestFinerDomainsAblation:
    def test_per_pmd_planes_save_more(self):
        ablation = finer_domains_ablation()
        assert ablation.per_pmd_power_rel < ablation.shared_plane_power_rel
        assert 0.0 < ablation.extra_saving_fraction < 0.2

    def test_uniform_vmins_yield_no_gain(self):
        ablation = finer_domains_ablation(
            vmin_by_core={core: 900 for core in range(8)}
        )
        assert ablation.extra_saving_fraction == pytest.approx(0.0, abs=1e-9)

    def test_empty_constraints_rejected(self):
        with pytest.raises(ConfigurationError):
            finer_domains_ablation(vmin_by_core={})
