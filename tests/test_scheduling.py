"""Scheduler, governor, DVFS baseline and mitigation ladder."""

import pytest

from repro.data.calibration import chip_calibration
from repro.energy.tradeoffs import FIGURE9_WORKLOAD
from repro.errors import ConfigurationError, PredictionError
from repro.scheduling import (
    ApplicationClass,
    CheckpointRollback,
    DvfsPolicy,
    DVFS_OPP_TABLE,
    Mitigation,
    SeverityAwareScheduler,
    VoltageGovernor,
    recommend_mitigation,
)
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def workload():
    return [get_benchmark(name) for name in FIGURE9_WORKLOAD]


class TestScheduler:
    def test_robust_first_beats_naive(self, workload):
        scheduler = SeverityAwareScheduler("TTT")
        comparison = scheduler.compare_policies(workload)
        assert comparison["robust_first"].chip_vmin_mv < \
            comparison["naive"].chip_vmin_mv
        assert comparison["robust_first"].saving_fraction > \
            comparison["naive"].saving_fraction

    def test_robust_first_places_demanding_on_robust(self, workload):
        scheduler = SeverityAwareScheduler("TTT")
        assignment = scheduler.assign(workload, policy="robust_first")
        cal = chip_calibration("TTT")
        # leslie3d (most demanding) lands on the most robust core.
        assert assignment.placement["leslie3d"] == cal.most_robust_core()

    def test_chip_vmin_is_worst_pair(self, workload):
        scheduler = SeverityAwareScheduler("TTT")
        assignment = scheduler.assign(workload, policy="naive")
        assert assignment.chip_vmin_mv == max(assignment.vmin_by_core.values())

    def test_best_assignment_is_optimal_for_additive_oracle(self, workload):
        import itertools
        scheduler = SeverityAwareScheduler("TTT")
        best = scheduler.best_assignment(workload[:4], cores=[0, 2, 4, 6])
        # Exhaustive check on the small instance.
        cal = chip_calibration("TTT")
        optimum = min(
            max(cal.vmin_mv(core, bench.stress)
                for bench, core in zip(workload[:4], perm))
            for perm in itertools.permutations([0, 2, 4, 6])
        )
        assert best.chip_vmin_mv == optimum

    def test_too_many_tasks_rejected(self, workload):
        scheduler = SeverityAwareScheduler("TTT")
        with pytest.raises(ConfigurationError):
            scheduler.assign(workload * 2)

    def test_unknown_policy_rejected(self, workload):
        with pytest.raises(ConfigurationError):
            SeverityAwareScheduler("TTT").assign(workload, policy="random")

    def test_slowdown_plan_matches_figure9(self, workload):
        from repro.energy.tradeoffs import FIGURE9_PLACEMENT, figure9_vmins
        scheduler = SeverityAwareScheduler("TTT")
        from repro.scheduling.scheduler import Assignment
        assignment = Assignment(
            placement=FIGURE9_PLACEMENT,
            chip_vmin_mv=915,
            vmin_by_core=figure9_vmins(),
            policy="paper",
        )
        voltage, slowed = scheduler.slowdown_plan(assignment, max_perf_loss=0.25)
        assert voltage == 885
        assert set(slowed) == {0, 3}

    def test_slowdown_plan_zero_budget(self, workload):
        scheduler = SeverityAwareScheduler("TTT")
        assignment = scheduler.assign(workload, policy="naive")
        voltage, slowed = scheduler.slowdown_plan(assignment, max_perf_loss=0.0)
        assert slowed == []
        assert voltage == assignment.chip_vmin_mv


class TestGovernor:
    @pytest.fixture(scope="class")
    def trained(self):
        """Governor trained on (snapshot, Vmin) observations from the
        calibration oracle."""
        from repro.data.counters import CounterCatalog
        from repro.workloads import SPEC2006_SUITE
        catalog = CounterCatalog(noise_sigma=0.0)
        cal = chip_calibration("TTT")
        snapshots, vmins = [], []
        for bench in SPEC2006_SUITE.values():
            snapshots.append(catalog.synthesize(bench.traits.as_dict()))
            vmins.append(cal.vmin_mv(4, bench.stress))
        return VoltageGovernor.train_from_observations(
            snapshots, vmins, core_offsets_mv=cal.core_offsets_mv,
            margin_mv=10,
        ), catalog, cal

    def test_decision_shape(self, trained):
        governor, catalog, cal = trained
        snapshot = catalog.synthesize(get_benchmark("leslie3d").traits.as_dict())
        decision = governor.decide({0: snapshot, 4: snapshot})
        assert decision.limiting_core == 0  # most sensitive core pins it
        assert 700 <= decision.voltage_mv <= 980
        assert decision.voltage_mv % 5 == 0

    def test_decision_above_true_vmin_with_margin(self, trained):
        """The governor must never program below any task's true Vmin.

        The Vmin model is trained on counter-visible stress only, so
        its error includes the latent component; the margin must cover
        it for the benchmarks it was trained on."""
        governor, catalog, cal = trained
        violations = 0
        from repro.workloads import SPEC2006_SUITE
        for bench in SPEC2006_SUITE.values():
            snapshot = catalog.synthesize(bench.traits.as_dict())
            decision = governor.decide({4: snapshot})
            true_vmin = cal.vmin_mv(4, bench.stress)
            if decision.voltage_mv < true_vmin:
                violations += 1
        # The latent component makes a few benchmarks unpredictable --
        # this is the paper's case for severity-based margins -- but the
        # bulk must be safely covered.
        assert violations <= 3

    def test_aggressive_needs_severity_model(self, trained):
        governor, catalog, _ = trained
        snapshot = catalog.synthesize(get_benchmark("mcf").traits.as_dict())
        with pytest.raises(PredictionError):
            governor.decide_aggressive({0: snapshot}, severity_tolerance=4.0)

    def test_aggressive_goes_deeper_for_tolerant_apps(self, trained):
        governor, catalog, cal = trained
        # Synthetic severity model: severity rises 0.2 per mV below a
        # 900 mV knee (trained from generated observations).
        snaps, volts, sevs = [], [], []
        for bench in ("mcf", "bwaves", "leslie3d"):
            snapshot = catalog.synthesize(get_benchmark(bench).traits.as_dict())
            for voltage in range(980, 850, -5):
                snaps.append(snapshot)
                volts.append(voltage)
                sevs.append(max(0.0, (900 - voltage) * 0.2))
        severity_model = VoltageGovernor.fit_severity_model(snaps, volts, sevs)
        aggressive_governor = VoltageGovernor(
            governor.vmin_model,
            core_offsets_mv=cal.core_offsets_mv,
            margin_mv=10,
            severity_model=severity_model,
        )
        snapshot = catalog.synthesize(get_benchmark("mcf").traits.as_dict())
        conservative = aggressive_governor.decide({4: snapshot})
        aggressive = aggressive_governor.decide_aggressive(
            {4: snapshot}, severity_tolerance=4.0)
        assert aggressive.voltage_mv <= conservative.voltage_mv

    def test_empty_snapshot_rejected(self, trained):
        governor, _, _ = trained
        with pytest.raises(ConfigurationError):
            governor.decide({})


class TestDvfs:
    def test_opp_table_monotone(self):
        voltages = [p.voltage_mv for p in DVFS_OPP_TABLE]
        freqs = [p.freq_mhz for p in DVFS_OPP_TABLE]
        assert freqs == sorted(freqs)
        assert voltages == sorted(voltages)
        assert DVFS_OPP_TABLE[-1].voltage_mv == 980

    def test_point_for_utilisation(self):
        policy = DvfsPolicy()
        assert policy.point_for_utilisation(1.0).freq_mhz == 2400
        assert policy.point_for_utilisation(0.5).freq_mhz == 1200
        assert policy.point_for_utilisation(0.0).freq_mhz == 300

    def test_harvesting_beats_baseline_at_full_speed(self):
        policy = DvfsPolicy()
        advantage = policy.undervolting_advantage(2400, harvested_vmin_mv=915)
        assert advantage == pytest.approx(0.128, abs=0.001)

    def test_harvesting_beats_baseline_at_1200(self):
        policy = DvfsPolicy()
        baseline_voltage = policy.point_for_frequency(1200).voltage_mv
        assert baseline_voltage > 760  # guardband retained by the vendor
        assert policy.undervolting_advantage(1200, harvested_vmin_mv=760) > 0

    def test_unknown_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            DvfsPolicy().point_for_frequency(1250)


class TestMitigation:
    def test_ladder(self):
        assert recommend_mitigation(0.0) is Mitigation.NONE
        assert recommend_mitigation(1.0) is Mitigation.ECC_PROXY
        assert recommend_mitigation(5.0) is Mitigation.CHECKPOINT_ROLLBACK
        assert recommend_mitigation(9.0) is Mitigation.AVOID
        assert recommend_mitigation(16.0) is Mitigation.AVOID

    def test_silent_sdcs_avoided(self):
        # severity=4 alone means undetectable corruption.
        assert recommend_mitigation(4.0, detectable=False) is Mitigation.AVOID

    def test_tolerant_applications(self):
        tolerant = ApplicationClass.SDC_TOLERANT
        assert recommend_mitigation(4.0, application=tolerant) is Mitigation.TOLERATE
        assert recommend_mitigation(6.0, application=tolerant) is \
            Mitigation.CHECKPOINT_ROLLBACK
        assert tolerant.severity_tolerance == 4.0
        assert ApplicationClass.EXACT.severity_tolerance == 0.0

    def test_negative_severity_rejected(self):
        with pytest.raises(ConfigurationError):
            recommend_mitigation(-1.0)

    def test_checkpoint_overhead_model(self):
        ckpt = CheckpointRollback(checkpoint_interval_s=100.0,
                                  checkpoint_cost_s=1.0)
        # cost/interval + rate*interval/2 = 0.01 + 0.05
        assert ckpt.expected_overhead_fraction(0.001) == pytest.approx(0.06)

    def test_optimal_interval_youngs_formula(self):
        ckpt = CheckpointRollback(checkpoint_interval_s=100.0,
                                  checkpoint_cost_s=2.0)
        assert ckpt.optimal_interval_s(0.001) == pytest.approx((4000.0) ** 0.5)

    def test_worthwhile_tradeoff(self):
        ckpt = CheckpointRollback(checkpoint_interval_s=100.0,
                                  checkpoint_cost_s=1.0)
        assert ckpt.worthwhile(failure_rate_per_s=0.0001, saving_fraction=0.19)
        assert not ckpt.worthwhile(failure_rate_per_s=0.01, saving_fraction=0.19)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            CheckpointRollback(checkpoint_interval_s=0, checkpoint_cost_s=1)
        ckpt = CheckpointRollback(checkpoint_interval_s=10, checkpoint_cost_s=1)
        with pytest.raises(ConfigurationError):
            ckpt.expected_overhead_fraction(-1)
        with pytest.raises(ConfigurationError):
            ckpt.worthwhile(0.001, 1.5)
