"""The streaming prediction pipeline (PR 7).

Covers the three layers of the streaming refactor -- the
recursive-least-squares estimator, the journal dataset cursors, and the
versioned ``repro-model/v1`` artifacts -- plus the acceptance
equivalences: chunked replay with a kill-and-resume selects the same
RFE features and predicts within pinned tolerance of a from-scratch
batch fit on the completed store.
"""

import dataclasses
import json
import shutil

import numpy as np
import pytest

from repro import telemetry
from repro.cli import main
from repro.core.framework import FrameworkConfig
from repro.errors import CampaignError, DatasetError, PredictionError
from repro.machines import MachineSpec
from repro.parallel import ParallelCampaignEngine
from repro.prediction import (
    RFE_RIDGE_ALPHA,
    OnlineLeastSquares,
    OrdinaryLeastSquares,
    RecursiveFeatureElimination,
    RegressionDataset,
    StreamingTrainer,
    batch_fit,
    fit_severity_model_from_store,
    fit_vmin_model_from_store,
    iter_journal_datasets,
    kfold_cross_validate,
    severity_dataset_from_store,
    vmin_dataset_from_store,
)
from repro.store import CampaignStore, ModelStore
from repro.store.models import train_set_digest
from repro.telemetry import MetricsRegistry
from repro.workloads import get_benchmark

#: Pinned tolerance of the online-vs-batch equivalence on
#: well-conditioned designs (documented in docs/methodology.md section 10).
EQUIV_RTOL = 1e-9
#: Pinned tolerance of streaming-vs-batch predictions on real store
#: data (rank-deficient intermediates; ridge-damped RFE ranking).
STORE_RTOL = 1e-5

CFG = FrameworkConfig(
    start_mv=930, campaigns=2, runs_per_level=3, stop_after_crash_levels=3
)
SPEC = MachineSpec(chip="TTT", seed=2017)
CORES = (0, 4)
BENCHES = (
    "bwaves", "mcf", "namd", "gcc", "soplex", "zeusmp", "milc", "gromacs",
)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("streaming") / "store"
    engine = ParallelCampaignEngine(SPEC, CFG)
    engine.run(
        [get_benchmark(b) for b in BENCHES], list(CORES), store=str(directory)
    )
    return directory


@pytest.fixture(scope="module")
def store(store_dir):
    return CampaignStore.open(store_dir)


def _synthetic(n=60, k=12, seed=5, noise=0.1):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, k)) * rng.uniform(0.5, 3.0, size=k)
    x = x + rng.uniform(-2.0, 2.0, size=k)
    beta = rng.normal(size=k)
    y = x @ beta + rng.normal(scale=noise, size=n)
    names = tuple(f"f{i:02d}" for i in range(k))
    return x, y, names


class TestOnlineLeastSquares:
    @pytest.mark.parametrize("chunk", [1, 7, 60])
    def test_chunked_matches_batch_ols(self, chunk):
        x, y, names = _synthetic()
        online = OnlineLeastSquares(names)
        for start in range(0, len(y), chunk):
            online.partial_fit(x[start:start + chunk], y[start:start + chunk])
        batch = OrdinaryLeastSquares().fit(x, y, feature_names=names)
        assert np.allclose(online.coef, batch.coef, rtol=EQUIV_RTOL)
        assert np.isclose(online.intercept, batch.intercept, rtol=EQUIV_RTOL)
        assert np.allclose(
            online.predict(x), batch.predict(x), rtol=EQUIV_RTOL
        )

    def test_prefix_matches_batch_on_same_prefix(self):
        x, y, names = _synthetic()
        online = OnlineLeastSquares(names)
        online.partial_fit(x[:40], y[:40])
        batch = OrdinaryLeastSquares().fit(x[:40], y[:40])
        assert np.allclose(
            online.predict(x[40:]), batch.predict(x[40:]), rtol=EQUIV_RTOL
        )

    def test_constant_column_matches_batch(self):
        x, y, names = _synthetic(k=6)
        x[:, 2] = 4.25
        online = OnlineLeastSquares(names).partial_fit(x, y)
        batch = OrdinaryLeastSquares().fit(x, y)
        assert online.constant_features() == ("f02",)
        assert np.allclose(
            online.predict(x), batch.predict(x), rtol=EQUIV_RTOL
        )

    def test_state_roundtrip_is_bitwise(self):
        x, y, names = _synthetic(k=5)
        x[:, 0] = 1000.0  # exercise the constant-column lo/hi path
        online = OnlineLeastSquares(names).partial_fit(x, y)
        wire = json.loads(json.dumps(online.to_json_dict()))
        restored = OnlineLeastSquares.from_json_dict(wire)
        assert restored.n_samples == online.n_samples
        assert np.array_equal(restored.predict(x), online.predict(x))
        assert restored.constant_features() == online.constant_features()

    def test_roundtrip_before_any_sample(self):
        fresh = OnlineLeastSquares(("a", "b"))
        restored = OnlineLeastSquares.from_json_dict(fresh.to_json_dict())
        assert restored.n_samples == 0
        with pytest.raises(PredictionError):
            restored.predict(np.zeros((1, 2)))

    def test_malformed_state_rejected(self):
        good = OnlineLeastSquares(("a", "b")).to_json_dict()
        missing = {k: v for k, v in good.items() if k != "sxx"}
        with pytest.raises(PredictionError):
            OnlineLeastSquares.from_json_dict(missing)
        bad_shape = dict(good)
        bad_shape["sxy"] = [0.0, 0.0, 0.0]
        with pytest.raises(PredictionError):
            OnlineLeastSquares.from_json_dict(bad_shape)

    def test_subset_slices_the_moments(self):
        x, y, names = _synthetic(k=6)
        online = OnlineLeastSquares(names).partial_fit(x, y)
        view = online.subset([0, 3, 5])
        batch = OrdinaryLeastSquares().fit(x[:, [0, 3, 5]], y)
        assert view.feature_names == ("f00", "f03", "f05")
        assert np.allclose(
            view.predict(x[:, [0, 3, 5]]), batch.predict(x[:, [0, 3, 5]]),
            rtol=EQUIV_RTOL,
        )

    def test_subset_validates_columns(self):
        online = OnlineLeastSquares(("a", "b"))
        with pytest.raises(DatasetError):
            online.subset([])
        with pytest.raises(DatasetError):
            online.subset([2])

    def test_partial_fit_validates_width(self):
        online = OnlineLeastSquares(("a", "b"))
        with pytest.raises(DatasetError):
            online.partial_fit(np.zeros((3, 4)), np.zeros(3))

    def test_moment_metrics_match_direct_computation(self):
        x, y, names = _synthetic(k=4)
        online = OnlineLeastSquares(names).partial_fit(x, y)
        residuals = y - online.predict(x)
        assert np.isclose(
            online.residual_rmse(),
            float(np.sqrt(np.mean(residuals**2))),
            rtol=1e-8, atol=1e-10,
        )
        assert np.isclose(online.target_mean(), float(np.mean(y)))
        assert np.isclose(online.target_rmse(), float(np.std(y)))

    def test_ridge_matches_batch_ridge(self):
        x, y, names = _synthetic(k=8)
        online = OnlineLeastSquares(names).partial_fit(x, y)
        batch = OrdinaryLeastSquares(ridge_alpha=RFE_RIDGE_ALPHA).fit(x, y)
        assert np.allclose(
            online.ridge_standardized_coef(RFE_RIDGE_ALPHA),
            batch.standardized_coef,
            rtol=1e-6,
        )

    def test_ridge_alpha_must_be_positive(self):
        x, y, names = _synthetic(k=3)
        online = OnlineLeastSquares(names).partial_fit(x, y)
        with pytest.raises(PredictionError):
            online.ridge_standardized_coef(0.0)
        with pytest.raises(PredictionError):
            OrdinaryLeastSquares(ridge_alpha=-1.0)


class TestRfeOnline:
    def test_online_selection_matches_batch(self):
        x, y, names = _synthetic(k=12)
        rfe = RecursiveFeatureElimination(n_features=3, step=2)
        batch = rfe.fit(x, y, names)
        online_model = OnlineLeastSquares(names).partial_fit(x, y)
        online = rfe.fit_online(online_model)
        assert online.selected == batch.selected
        assert online.ranking == batch.ranking

    def test_rank_deficient_selection_matches_batch(self):
        # Fewer samples than features: the regime real PMU grids are in.
        # The ridge-damped ranking keeps both elimination paths aligned
        # where plain min-norm OLS would be solver-dependent.
        x, y, names = _synthetic(n=8, k=30, noise=0.5)
        rfe = RecursiveFeatureElimination(n_features=5, step=8)
        batch = rfe.fit(x, y, names)
        online = rfe.fit_online(OnlineLeastSquares(names).partial_fit(x, y))
        assert online.selected == batch.selected
        assert online.ranking == batch.ranking

    def test_too_few_columns_is_typed_error(self):
        x, y, names = _synthetic(k=4)
        rfe = RecursiveFeatureElimination(n_features=5)
        with pytest.raises(PredictionError):
            rfe.fit(x, y, names)
        with pytest.raises(PredictionError):
            rfe.fit_online(OnlineLeastSquares(names).partial_fit(x, y))

    def test_constant_column_is_typed_error(self):
        x, y, names = _synthetic(k=6)
        x[:, 1] = 7.0
        rfe = RecursiveFeatureElimination(n_features=2)
        with pytest.raises(DatasetError, match="zero-variance"):
            rfe.fit(x, y, names)
        with pytest.raises(DatasetError, match="zero-variance"):
            rfe.fit_online(OnlineLeastSquares(names).partial_fit(x, y))

    def test_unfitted_online_model_rejected(self):
        rfe = RecursiveFeatureElimination(n_features=2)
        with pytest.raises(PredictionError):
            rfe.fit_online(OnlineLeastSquares(("a", "b", "c")))


class TestCrossvalEdges:
    def test_fold_count_exceeding_samples_is_typed_error(self):
        x, y, names = _synthetic(n=4, k=2)
        dataset = RegressionDataset(x=x, y=y, feature_names=names)
        with pytest.raises(DatasetError, match="cannot form"):
            kfold_cross_validate(dataset, k=10)
        with pytest.raises(DatasetError, match="at least 2"):
            kfold_cross_validate(dataset, k=1)

    def test_constant_column_is_typed_error(self):
        x, y, names = _synthetic(n=20, k=4)
        x[:, 3] = -1.5
        dataset = RegressionDataset(x=x, y=y, feature_names=names)
        with pytest.raises(DatasetError, match="zero-variance"):
            kfold_cross_validate(dataset, k=4)
        cleaned, dropped = dataset.drop_constant_features()
        assert dropped == ("f03",)
        report = kfold_cross_validate(cleaned, k=4)
        assert len(report.fold_rmse) == 4


class TestStoreDatasets:
    def test_vmin_rows_follow_manifest_grid_order(self, store):
        dataset = vmin_dataset_from_store(store, core=0)
        assert dataset.tags == store.manifest.workloads == BENCHES

    def test_severity_unshuffled_rows_follow_grid_order(self, store):
        dataset = severity_dataset_from_store(store, core=0, max_samples=None)
        programs = [tag.split("@")[0] for tag in dataset.tags]
        # Per-program blocks appear in manifest order.
        block_order = [p for i, p in enumerate(programs)
                       if i == 0 or programs[i - 1] != p]
        assert block_order == [b for b in BENCHES if b in set(programs)]

    def test_out_of_grid_order_journal_yields_identical_rows(
        self, store, store_dir, tmp_path
    ):
        # Rebuild the store with its journal reversed -- the most
        # out-of-grid-order append history possible -- and require the
        # datasets to come out row-for-row identical.
        shuffled = tmp_path / "shuffled"
        shuffled.mkdir()
        shutil.copy(store_dir / "manifest.json", shuffled / "manifest.json")
        lines = (store_dir / "journal.jsonl").read_text().splitlines()
        (shuffled / "journal.jsonl").write_text(
            "\n".join(reversed(lines)) + "\n"
        )
        reordered = CampaignStore.open(shuffled)
        for core in CORES:
            a = vmin_dataset_from_store(store, core)
            b = vmin_dataset_from_store(reordered, core)
            assert a.tags == b.tags
            assert np.array_equal(a.x, b.x) and np.array_equal(a.y, b.y)
            a = severity_dataset_from_store(store, core, max_samples=None)
            b = severity_dataset_from_store(reordered, core, max_samples=None)
            assert a.tags == b.tags
            assert np.array_equal(a.x, b.x) and np.array_equal(a.y, b.y)

    def test_cursor_offsets_are_monotone_and_resumable(self, store):
        batches = list(iter_journal_datasets(store, core=0))
        assert {b.benchmark for b in batches} == set(BENCHES)
        offsets = [b.offset for b in batches]
        assert offsets == sorted(offsets)
        for cut in [0] + offsets:
            rest = list(iter_journal_datasets(store, core=0, start=cut))
            expected = [b.benchmark for b in batches if b.offset > cut]
            assert [b.benchmark for b in rest] == expected

    def test_stop_bounds_the_walk(self, store):
        total = len(store.campaigns())
        partial = list(iter_journal_datasets(store, core=0, stop=total // 2))
        everything = list(iter_journal_datasets(store, core=0))
        assert 0 < len(partial) < len(everything)

    def test_cursor_validates_inputs(self, store):
        with pytest.raises(DatasetError):
            list(iter_journal_datasets(store, core=0, start=10_000))
        with pytest.raises(DatasetError):
            list(iter_journal_datasets(store, core=0, target="entropy"))


class TestStreamingEquivalence:
    @pytest.mark.parametrize("target", ["vmin", "severity"])
    def test_streaming_matches_from_scratch_batch_fit(self, store, target):
        trainer = StreamingTrainer(store, core=0, target=target)
        trainer.consume()
        artifact = trainer.fit()
        if target == "vmin":
            batch = fit_vmin_model_from_store(store, 0)
            dataset = vmin_dataset_from_store(store, 0)
        else:
            batch = fit_severity_model_from_store(store, 0)
            dataset = severity_dataset_from_store(store, 0, max_samples=None)
        assert artifact.selected_features == batch.selected_features
        assert artifact.n_samples == batch.n_samples == len(dataset)
        assert np.allclose(
            artifact.predict_dataset(dataset),
            batch.predict(dataset),
            rtol=STORE_RTOL,
        )

    def test_chunked_replay_with_kill_and_resume(self, store, tmp_path):
        # One-shot reference.
        reference = StreamingTrainer(store, core=0, target="vmin")
        reference.consume()
        ref_artifact = reference.fit()

        # Chunked replay, killed at an arbitrary mid-journal offset.
        first = StreamingTrainer(store, core=0, target="vmin")
        first.consume(stop=7)
        assert 0 < first.journal_offset < len(store.campaigns())
        models = ModelStore(tmp_path)
        saved = models.save(first.fit())
        del first  # the "kill"

        resumed = StreamingTrainer.resume(store, models.load("vmin", 0))
        assert resumed.journal_offset == saved.journal_offset
        resumed.consume()
        final = resumed.fit()

        assert final.selected_features == ref_artifact.selected_features
        assert final.train_digest == ref_artifact.train_digest
        assert final.journal_offset == ref_artifact.journal_offset
        dataset = vmin_dataset_from_store(store, 0)
        assert np.allclose(
            final.predict_dataset(dataset),
            ref_artifact.predict_dataset(dataset),
            rtol=1e-12,
        )

    def test_resume_rejects_foreign_spec(self, store, tmp_path):
        trainer = StreamingTrainer(store, core=0, target="vmin")
        trainer.consume(stop=5)
        artifact = dataclasses.replace(
            trainer.fit(), spec_digest="0" * 64
        )
        with pytest.raises(PredictionError, match="different machine spec"):
            StreamingTrainer.resume(store, artifact)

    def test_resume_rejects_unusable_state(self, store):
        trainer = StreamingTrainer(store, core=0, target="vmin")
        trainer.consume(stop=5)
        artifact = trainer.fit()
        broken = dataclasses.replace(
            artifact,
            trainer_state={k: v for k, v in artifact.trainer_state.items()
                           if k != "estimator"},
        )
        with pytest.raises(PredictionError, match="trainer state"):
            StreamingTrainer.resume(store, broken)

    def test_shallow_journal_checkpoints_without_serving(self, store):
        trainer = StreamingTrainer(store, core=0, target="vmin")
        trainer.consume(stop=2)
        artifact = trainer.fit()
        assert trainer.n_samples < 2
        assert not artifact.is_servable
        with pytest.raises(CampaignError, match="no selected features"):
            artifact.predict_row({})
        # The checkpoint still resumes and catches up to the reference.
        resumed = StreamingTrainer.resume(store, artifact)
        resumed.consume()
        assert resumed.fit().is_servable

    def test_unknown_target_rejected(self, store):
        with pytest.raises(PredictionError):
            StreamingTrainer(store, core=0, target="entropy")

    def test_batch_fit_matches_pipeline_shapes(self, store):
        dataset = vmin_dataset_from_store(store, 0)
        fitted = batch_fit(dataset, target="vmin", core=0)
        assert len(fitted.selected_features) == 5
        assert fitted.rmse_train <= fitted.rmse_naive


class TestModelStore:
    def test_artifact_roundtrip_is_byte_identical(self, store, tmp_path):
        trainer = StreamingTrainer(store, core=0, target="vmin")
        trainer.consume()
        models = ModelStore(tmp_path)
        saved = models.save(trainer.fit())
        path = models.path_for("vmin", 0, saved.version)
        loaded = models.load("vmin", 0, saved.version)
        assert loaded.serialize().encode("utf-8") == path.read_bytes()
        assert loaded == saved

    def test_versions_are_monotonic(self, store, tmp_path):
        trainer = StreamingTrainer(store, core=0, target="vmin")
        trainer.consume(stop=6)
        models = ModelStore(tmp_path)
        v1 = models.save(trainer.fit())
        trainer.consume()
        v2 = models.save(trainer.fit())
        assert (v1.version, v2.version) == (1, 2)
        assert models.versions("vmin", 0) == [1, 2]
        assert models.load("vmin", 0).version == 2
        assert [(a.target, a.core, a.version)
                for a in models.latest_artifacts()] == [("vmin", 0, 2)]

    def test_missing_artifact_is_typed_error(self, tmp_path):
        models = ModelStore(tmp_path)
        with pytest.raises(CampaignError, match="no model artifacts"):
            models.load("vmin", 0)

    def test_format_tag_is_checked(self, store, tmp_path):
        trainer = StreamingTrainer(store, core=0, target="vmin")
        trainer.consume(stop=6)
        models = ModelStore(tmp_path)
        saved = models.save(trainer.fit())
        path = models.path_for("vmin", 0, saved.version)
        data = json.loads(path.read_text())
        data["format"] = "repro-model/v0"
        path.write_text(json.dumps(data))
        with pytest.raises(CampaignError, match="unsupported model-artifact"):
            models.load("vmin", 0)

    def test_mislabeled_file_is_rejected(self, store, tmp_path):
        trainer = StreamingTrainer(store, core=0, target="vmin")
        trainer.consume(stop=6)
        models = ModelStore(tmp_path)
        saved = models.save(trainer.fit())
        shutil.copy(
            models.path_for("vmin", 0, saved.version),
            models.models_path / "vmin-core0-v9.json",
        )
        with pytest.raises(CampaignError, match="mislabeled"):
            models.load("vmin", 0, version=9)

    def test_spec_digest_guard(self, store, tmp_path):
        trainer = StreamingTrainer(store, core=0, target="vmin")
        trainer.consume(stop=6)
        guarded = ModelStore(tmp_path, expected_spec_digest="f" * 64)
        with pytest.raises(CampaignError, match="does not match"):
            guarded.save(trainer.fit())

    def test_store_binds_model_store_to_its_spec(self, store):
        models = store.model_store()
        assert models.expected_spec_digest == store.manifest.spec.digest()
        assert models.models_path == store.directory / "models"

    def test_predict_row_requires_all_features(self, store):
        trainer = StreamingTrainer(store, core=0, target="vmin")
        trainer.consume()
        artifact = trainer.fit()
        with pytest.raises(CampaignError, match="missing features"):
            artifact.predict_row({artifact.selected_features[0]: 1.0})

    def test_train_set_digest_is_order_independent(self):
        pairs = [("a", 1.5), ("b", -2.0), ("c", 0.25)]
        assert train_set_digest(pairs) == train_set_digest(reversed(pairs))
        assert train_set_digest(pairs) != train_set_digest(pairs[:2])


class TestDriftTelemetry:
    def test_prequential_gauges_published(self, store):
        registry = MetricsRegistry()
        with telemetry.telemetry_session(metrics=registry):
            trainer = StreamingTrainer(store, core=0, target="vmin")
            trainer.consume()
        names = {family.name for family in registry.families()}
        assert telemetry.M_MODEL_RMSE in names
        assert telemetry.M_MODEL_DRIFT in names
        assert trainer.prequential_rmse is not None
        assert trainer.drift_ratio is not None

    def test_model_statuses_report_the_latest_artifacts(
        self, store_dir, tmp_path
    ):
        work = tmp_path / "store"
        shutil.copytree(store_dir, work)
        store = CampaignStore.open(work)
        trainer = StreamingTrainer(store, core=4, target="vmin")
        trainer.consume()
        store.model_store().save(trainer.fit())
        statuses = telemetry.model_statuses(work)
        assert len(statuses) == 1
        status = statuses[0]
        assert (status.target, status.core, status.version) == ("vmin", 4, 1)
        assert status.journal_offset == trainer.journal_offset
        assert status.servable
        assert status.drift is not None
        rendered = telemetry.render_model_status(statuses)
        assert "vmin c4: v1" in rendered and "drift" in rendered

    def test_render_without_models_hints_at_train(self):
        rendered = telemetry.render_model_status(())
        assert "repro train" in rendered


class TestCliStreaming:
    @pytest.fixture()
    def work_store(self, store_dir, tmp_path):
        work = tmp_path / "store"
        shutil.copytree(store_dir, work)
        return work

    def test_train_status_predict_loop(self, work_store, capsys):
        assert main(["train", str(work_store), "--core", "0"]) == 0
        out = capsys.readouterr().out
        assert "vmin c0: v1 saved" in out
        assert "severity c0: v1 saved" in out

        assert main(["status", str(work_store), "--models"]) == 0
        out = capsys.readouterr().out
        assert "model artifacts:" in out
        assert "vmin c0: v1 @offset" in out

        assert main(["predict", "--model", str(work_store)]) == 0
        out = capsys.readouterr().out
        assert "vmin model v1" in out
        assert "predicted" in out and "journaled" in out

    def test_train_resumes_from_saved_artifact(self, work_store, capsys):
        assert main(["train", str(work_store), "--target", "vmin"]) == 0
        capsys.readouterr()
        assert main(["train", str(work_store), "--target", "vmin"]) == 0
        out = capsys.readouterr().out
        assert "resuming from v1" in out
        assert "no new journal records" in out

    def test_train_follow_exits_when_store_complete(self, work_store, capsys):
        assert main([
            "train", str(work_store), "--target", "vmin", "--follow",
        ]) == 0
        out = capsys.readouterr().out
        assert "store complete; follow mode done" in out

    def test_train_rejects_core_off_grid(self, work_store, capsys):
        assert main(["train", str(work_store), "--core", "3"]) == 2
        assert "not in the store grid" in capsys.readouterr().err

    def test_predict_model_without_artifacts_is_an_error(
        self, work_store, capsys
    ):
        assert main(["predict", "--model", str(work_store)]) == 2
        assert "repro train" in capsys.readouterr().err

    def test_cli_predictions_match_the_artifact(self, work_store, capsys):
        assert main(["train", str(work_store), "--target", "vmin"]) == 0
        capsys.readouterr()
        store = CampaignStore.open(work_store)
        artifact = store.model_store().load("vmin", 0)
        dataset = vmin_dataset_from_store(store, 0)
        expected = dict(zip(dataset.tags, artifact.predict_dataset(dataset)))
        assert main(["predict", "--model", str(work_store), "--core", "0"]) == 0
        out = capsys.readouterr().out
        for name, value in expected.items():
            assert f"{name:<14} {value:>6.1f} mV" in out
