"""Prediction building blocks: metrics, OLS, RFE, naive, datasets."""

import numpy as np
import pytest

from repro.errors import DatasetError, PredictionError
from repro.prediction import (
    NaiveMeanPredictor,
    OrdinaryLeastSquares,
    RecursiveFeatureElimination,
    RegressionDataset,
    r2_score,
    rmse,
    train_test_split,
)


class TestMetrics:
    def test_perfect_prediction(self):
        y = [1.0, 2.0, 3.0]
        assert rmse(y, y) == 0.0
        assert r2_score(y, y) == 1.0

    def test_rmse_definition(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx((12.5) ** 0.5)

    def test_r2_of_mean_prediction_is_zero(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_r2_can_be_negative(self):
        assert r2_score([1.0, 2.0, 3.0], [3.0, 3.0, 3.0]) < 0.0

    def test_constant_target_degenerate_cases(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [3.0, 3.0]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PredictionError):
            rmse([1.0], [1.0, 2.0])
        with pytest.raises(PredictionError):
            r2_score([], [])


class TestOrdinaryLeastSquares:
    def test_recovers_exact_linear_relation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        y = 2.0 + 3.0 * x[:, 0] - 1.5 * x[:, 1] + 0.0 * x[:, 2]
        model = OrdinaryLeastSquares().fit(x, y, feature_names=["a", "b", "c"])
        coef = model.coefficients_by_name()
        assert coef["a"] == pytest.approx(3.0, abs=1e-9)
        assert coef["b"] == pytest.approx(-1.5, abs=1e-9)
        assert coef["c"] == pytest.approx(0.0, abs=1e-9)
        assert model.intercept == pytest.approx(2.0, abs=1e-9)
        assert rmse(y, model.predict(x)) < 1e-9

    def test_predict_single_row(self):
        x = np.array([[1.0], [2.0], [3.0]])
        model = OrdinaryLeastSquares().fit(x, np.array([2.0, 4.0, 6.0]))
        assert model.predict([4.0])[0] == pytest.approx(8.0)

    def test_constant_feature_harmless(self):
        x = np.column_stack([np.ones(50), np.arange(50.0)])
        y = 5.0 + 2.0 * x[:, 1]
        model = OrdinaryLeastSquares().fit(x, y)
        assert rmse(y, model.predict(x)) < 1e-8

    def test_collinear_features_handled(self):
        # lstsq must survive rank deficiency (duplicated counters).
        rng = np.random.default_rng(1)
        base = rng.normal(size=(100, 1))
        x = np.hstack([base, base, base * 2])
        y = base[:, 0] * 4.0
        model = OrdinaryLeastSquares().fit(x, y)
        assert rmse(y, model.predict(x)) < 1e-8

    def test_unfitted_use_rejected(self):
        model = OrdinaryLeastSquares()
        with pytest.raises(PredictionError):
            model.predict([[1.0]])
        with pytest.raises(PredictionError):
            _ = model.coef

    def test_shape_validation(self):
        with pytest.raises(DatasetError):
            OrdinaryLeastSquares().fit(np.zeros((3, 2)), np.zeros(4))
        model = OrdinaryLeastSquares().fit(np.zeros((3, 2)) + np.arange(2),
                                           np.zeros(3))
        with pytest.raises(DatasetError):
            model.predict(np.zeros((1, 3)))

    def test_standardized_coef_comparable(self):
        # A feature measured in huge units must not dominate the
        # standardised weights when its real influence is small.
        rng = np.random.default_rng(2)
        small_units = rng.normal(size=200)
        big_units = rng.normal(size=200) * 1e9
        y = 10.0 * small_units + 1e-12 * big_units
        x = np.column_stack([small_units, big_units])
        model = OrdinaryLeastSquares().fit(x, y)
        weights = np.abs(model.standardized_coef)
        assert weights[0] > 100 * weights[1]


class TestRfe:
    def test_selects_informative_features(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(300, 20))
        y = 5 * x[:, 2] - 4 * x[:, 7] + 3 * x[:, 11] + rng.normal(0, 0.01, 300)
        names = [f"f{i}" for i in range(20)]
        result = RecursiveFeatureElimination(n_features=3).fit(x, y, names)
        assert set(result.selected) == {"f2", "f7", "f11"}

    def test_selected_ranked_one(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(100, 6))
        y = x[:, 0] + x[:, 1]
        result = RecursiveFeatureElimination(n_features=2).fit(
            x, y, [f"f{i}" for i in range(6)])
        for idx in result.support:
            assert result.ranking[idx] == 1
        assert max(result.ranking) > 1

    def test_large_step_same_selection(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(300, 30))
        y = 10 * x[:, 4] - 8 * x[:, 9]
        names = [f"f{i}" for i in range(30)]
        fine = RecursiveFeatureElimination(n_features=2, step=1).fit(x, y, names)
        coarse = RecursiveFeatureElimination(n_features=2, step=7).fit(x, y, names)
        assert set(fine.selected) == set(coarse.selected) == {"f4", "f9"}

    def test_invalid_configuration_rejected(self):
        with pytest.raises(PredictionError):
            RecursiveFeatureElimination(n_features=0)
        with pytest.raises(PredictionError):
            RecursiveFeatureElimination(n_features=5).fit(
                np.zeros((10, 3)), np.zeros(10), ["a", "b", "c"])


class TestNaive:
    def test_predicts_training_mean(self):
        naive = NaiveMeanPredictor().fit(np.zeros((3, 2)), [1.0, 2.0, 6.0])
        assert naive.mean == pytest.approx(3.0)
        assert list(naive.predict(np.zeros((4, 2)))) == [3.0] * 4

    def test_unfitted_rejected(self):
        with pytest.raises(PredictionError):
            NaiveMeanPredictor().predict(np.zeros((1, 1)))


class TestDataset:
    @pytest.fixture()
    def dataset(self):
        rng = np.random.default_rng(6)
        return RegressionDataset(
            x=rng.normal(size=(50, 4)),
            y=rng.normal(size=50),
            feature_names=("a", "b", "c", "d"),
            tags=tuple(f"s{i}" for i in range(50)),
        )

    def test_shape_validation(self):
        with pytest.raises(DatasetError):
            RegressionDataset(x=np.zeros((3, 2)), y=np.zeros(4),
                              feature_names=("a", "b"))
        with pytest.raises(DatasetError):
            RegressionDataset(x=np.zeros((3, 2)), y=np.zeros(3),
                              feature_names=("a",))

    def test_split_80_20(self, dataset):
        train, test = train_test_split(dataset, test_fraction=0.2, seed=0)
        assert len(train) == 40 and len(test) == 10
        assert set(train.tags).isdisjoint(test.tags)
        assert set(train.tags) | set(test.tags) == set(dataset.tags)

    def test_split_deterministic(self, dataset):
        first = train_test_split(dataset, seed=1)[1].tags
        second = train_test_split(dataset, seed=1)[1].tags
        assert first == second
        assert train_test_split(dataset, seed=2)[1].tags != first

    def test_feature_selection(self, dataset):
        sub = dataset.select_features(["c", "a"])
        assert sub.feature_names == ("c", "a")
        assert np.allclose(sub.x[:, 1], dataset.x[:, 0])
        with pytest.raises(DatasetError):
            dataset.select_features(["z"])

    def test_invalid_fraction_rejected(self, dataset):
        with pytest.raises(DatasetError):
            train_test_split(dataset, test_fraction=1.5)
