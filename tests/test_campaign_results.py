"""Campaign aggregates and the CSV result store."""

import pytest

from repro.core.campaign import CampaignResult, CharacterizationResult
from repro.core.results import ResultStore
from repro.core.runs import CharacterizationSetup, RunRecord
from repro.effects import EffectType
from repro.errors import CampaignError, ConfigurationError


def record(voltage, effects, campaign=1, run=1, core=0, **kwargs):
    return RunRecord(
        chip="TTT", benchmark="bwaves",
        setup=CharacterizationSetup(voltage_mv=voltage, freq_mhz=2400, core=core),
        campaign_index=campaign, run_index=run,
        effects=frozenset(effects),
        exit_code=kwargs.pop("exit_code", 0),
        output_matches=kwargs.pop("output_matches", True),
        **kwargs,
    )


@pytest.fixture()
def campaign():
    records = []
    for run in range(1, 11):
        records.append(record(910, {EffectType.NO}, run=run))
    for run in range(1, 11):
        effect = {EffectType.SDC} if run <= 4 else {EffectType.NO}
        records.append(record(905, effect, run=run))
    for run in range(1, 11):
        records.append(record(900, {EffectType.SC}, run=run, exit_code=None,
                              output_matches=None))
    return CampaignResult(
        chip="TTT", benchmark="bwaves", core=0, freq_mhz=2400,
        campaign_index=1, records=tuple(records),
    )


class TestSetupAndRecord:
    def test_setup_validation(self):
        with pytest.raises(ConfigurationError):
            CharacterizationSetup(voltage_mv=905, freq_mhz=2400, core=8)

    def test_setup_label(self):
        setup = CharacterizationSetup(voltage_mv=905, freq_mhz=2400, core=3)
        assert setup.label() == "c3@905mV/2400MHz"

    def test_record_flags(self):
        rec = record(905, {EffectType.SC}, exit_code=None, output_matches=None)
        assert rec.crashed_system and not rec.is_normal
        assert record(910, {EffectType.NO}).is_normal

    def test_csv_row_shape(self):
        row = record(905, {EffectType.SDC, EffectType.CE},
                     output_matches=False, edac_ce=2).csv_row()
        assert row["effects"] == "CE+SDC"
        assert row["voltage_mv"] == 905
        assert row["edac_ce"] == 2


class TestCampaignResult:
    def test_counts_by_voltage(self, campaign):
        counts = campaign.counts_by_voltage()
        assert counts[905][EffectType.SDC] == 4
        assert counts[900][EffectType.SC] == 10

    def test_severity_by_voltage(self, campaign):
        severity = campaign.severity_by_voltage()
        assert severity[910] == 0.0
        assert severity[905] == pytest.approx(1.6)
        assert severity[900] == 16.0

    def test_vmin_and_crash(self, campaign):
        assert campaign.vmin_mv == 910
        assert campaign.crash_mv == 900

    def test_empty_campaign_rejected(self):
        with pytest.raises(CampaignError):
            CampaignResult(chip="TTT", benchmark="x", core=0,
                           freq_mhz=2400, campaign_index=1, records=())


class TestCharacterizationResult:
    def test_highest_of_campaigns(self, campaign):
        lucky = CampaignResult(
            chip="TTT", benchmark="bwaves", core=0, freq_mhz=2400,
            campaign_index=2,
            records=tuple(
                record(v, {EffectType.NO}, campaign=2, run=r)
                for v in (910, 905) for r in range(1, 11)
            ) + tuple(
                record(900, {EffectType.SDC}, campaign=2, run=r,
                       output_matches=False)
                for r in range(1, 11)
            ),
        )
        result = CharacterizationResult(campaigns=(campaign, lucky))
        assert result.highest_vmin_mv == 910       # campaign 1's
        assert result.mean_vmin_mv == pytest.approx((910 + 905) / 2)
        assert result.highest_crash_mv == 900
        assert result.pooled_regions().vmin_mv == 910

    def test_mismatched_campaigns_rejected(self, campaign):
        other = CampaignResult(
            chip="TFF", benchmark="bwaves", core=0, freq_mhz=2400,
            campaign_index=2, records=(record(910, {EffectType.NO}),),
        )
        with pytest.raises(CampaignError):
            CharacterizationResult(campaigns=(campaign, other))

    def test_all_records_flat(self, campaign):
        result = CharacterizationResult(campaigns=(campaign,))
        assert len(result.all_records()) == 30


class TestResultStore:
    def test_runs_csv_roundtrip(self, campaign, tmp_path):
        store = ResultStore(tmp_path)
        result = CharacterizationResult(campaigns=(campaign,))
        path = store.write_runs_csv([result])
        rows = store.read_runs_csv()
        assert path.exists()
        assert len(rows) == 30
        # rows come back as typed RunRecord objects, not string dicts
        assert rows[0].chip == "TTT"
        assert {row.setup.voltage_mv for row in rows} == {910, 905, 900}
        assert all(isinstance(row.setup.core, int) for row in rows)
        assert all(isinstance(row.watchdog_intervened, bool) for row in rows)

    def test_runs_csv_roundtrip_preserves_fields(self, campaign, tmp_path):
        # write -> read must reproduce every CSV-carried field exactly
        store = ResultStore(tmp_path)
        result = CharacterizationResult(campaigns=(campaign,))
        store.write_runs_csv([result])
        rows = store.read_runs_csv()
        originals = result.all_records()
        assert len(rows) == len(originals)
        for row, original in zip(rows, originals):
            assert row.effects == original.effects
            assert row.exit_code == original.exit_code
            assert row.output_matches == original.output_matches
            assert (row.edac_ce, row.edac_ue) == (
                original.edac_ce, original.edac_ue)
            assert row.watchdog_intervened == original.watchdog_intervened
            # detail is not part of the CSV schema and comes back empty
            assert row.detail == {}

    def test_severity_csv_roundtrip(self, campaign, tmp_path):
        store = ResultStore(tmp_path)
        result = CharacterizationResult(campaigns=(campaign,))
        store.write_severity_csv([result])
        table = store.read_severity_csv()
        assert table[("TTT", "bwaves", 0, 2400, 905)] == pytest.approx(1.6)
        assert table[("TTT", "bwaves", 0, 2400, 900)] == 16.0

    def test_missing_file_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(CampaignError):
            store.read_runs_csv("nope.csv")

    def test_raw_log_persistence(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.write_raw_log(("gcc/200", 0, 2400, 1), "=== RUN ...\n")
        assert store.read_raw_log(path) == "=== RUN ...\n"
        assert "gcc_200" in path.name
        assert store.read_raw_log(tmp_path / "missing.txt") is None
