"""SRAM arrays and the cache hierarchy with real codecs."""

import numpy as np
import pytest

from repro.data.calibration import chip_calibration
from repro.errors import ConfigurationError
from repro.faults.models import FailureCurve, FunctionalUnit, build_unit_models
from repro.hardware.caches import CacheLevel, CacheStack
from repro.hardware.sram import SramArray


def quiet_curve():
    return FailureCurve(midpoint_mv=0.0, scale_mv=1.0, ceiling=0.0)


def noisy_curve(midpoint=900.0, ceiling=1.0):
    return FailureCurve(midpoint_mv=midpoint, scale_mv=2.0, ceiling=ceiling)


class TestSramArray:
    def test_capacity(self):
        array = SramArray("L2", 256, quiet_curve())
        assert array.num_words == 256 * 1024 // 8

    def test_read_write_roundtrip(self):
        array = SramArray("L1D", 32, quiet_curve())
        array.write(17, 0xFEED)
        assert array.read(17) == 0xFEED
        assert array.read(18) == 0  # unwritten reads as zero
        assert array.occupied() == 1

    def test_bounds_checked(self):
        array = SramArray("L1D", 32, quiet_curve())
        with pytest.raises(ConfigurationError):
            array.read(array.num_words)
        with pytest.raises(ConfigurationError):
            array.write(0, 1 << 64)

    def test_march_test_clean_at_nominal(self):
        array = SramArray("L1D", 32, quiet_curve())
        assert array.march_test(0xAAAA_AAAA_AAAA_AAAA, words=256) == 0

    def test_disturbance_rates_monotone_in_voltage(self):
        array = SramArray("L2", 256, noisy_curve())
        assert array.single_event_rate(850) > array.single_event_rate(950)

    def test_no_disturbances_when_quiet(self):
        array = SramArray("L2", 256, quiet_curve())
        rng = np.random.default_rng(0)
        assert array.sample_disturbances(700, rng) == []

    def test_disturbances_present_below_midpoint(self):
        array = SramArray("L2", 256, noisy_curve())
        rng = np.random.default_rng(0)
        events = array.sample_disturbances(870, rng)
        assert events, "expected disturbance events deep below midpoint"
        for index, bits in events:
            assert 0 <= index < array.num_words
            assert all(0 <= b < 64 for b in bits)
            assert len(bits) in (1, 2)

    def test_event_cap_bounds_work(self):
        array = SramArray("L2", 256, noisy_curve(midpoint=2000))
        rng = np.random.default_rng(0)
        events = array.sample_disturbances(700, rng, max_events=4)
        assert len(events) <= 8  # 4 singles + 4 doubles at most


class TestCacheLevel:
    def test_parity_clean_line_yields_ce(self):
        level = CacheLevel("L1I", 32, "parity", quiet_curve(), dirty_fraction=0.0)
        rng = np.random.default_rng(0)
        counts = level.classify_event((5,), rng)
        assert counts.ce == 1 and counts.ue == 0

    def test_parity_dirty_line_yields_ue(self):
        level = CacheLevel("L1D", 32, "parity", quiet_curve(), dirty_fraction=1.0)
        rng = np.random.default_rng(0)
        counts = level.classify_event((5,), rng)
        assert counts.ue == 1 and counts.ce == 0

    def test_secded_single_yields_ce(self):
        level = CacheLevel("L2", 256, "secded", quiet_curve())
        rng = np.random.default_rng(0)
        counts = level.classify_event((11,), rng)
        assert counts.ce == 1 and counts.ue == 0

    def test_secded_double_yields_ue(self):
        level = CacheLevel("L2", 256, "secded", quiet_curve())
        rng = np.random.default_rng(0)
        counts = level.classify_event((11, 40), rng)
        assert counts.ue == 1 and counts.ce == 0

    def test_dected_double_yields_ce(self):
        # The Section-6 enhancement in action.
        level = CacheLevel("L2", 256, "dected", quiet_curve())
        rng = np.random.default_rng(0)
        counts = level.classify_event((11, 40), rng)
        assert counts.ce == 1 and counts.ue == 0

    def test_cancelled_flips_invisible(self):
        level = CacheLevel("L2", 256, "secded", quiet_curve())
        rng = np.random.default_rng(0)
        counts = level.classify_event((11, 11), rng)
        assert counts.ce == 0 and counts.ue == 0

    def test_unknown_protection_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheLevel("L2", 256, "crc32", quiet_curve())


class TestCacheStack:
    @pytest.fixture()
    def stack(self):
        models = build_unit_models(
            chip_calibration("TTT"), core=0, stress=0.6, smoothness=1.0
        )
        return CacheStack.for_core(models)

    def test_table2_hierarchy(self, stack):
        by_name = {level.name: level for level in stack.levels}
        assert by_name["L1I"].size_kb == 32
        assert by_name["L1D"].size_kb == 32
        assert by_name["L2"].size_kb == 256
        assert by_name["L3"].size_kb == 8192
        assert by_name["L1I"].protection == "parity"
        assert by_name["L2"].protection == "secded"

    def test_quiet_at_safe_voltage(self, stack):
        rng = np.random.default_rng(0)
        counts = stack.sample_errors(960, rng)
        assert counts["ce"] == 0 and counts["ue"] == 0

    def test_errors_deep_below_vmin(self, stack):
        rng = np.random.default_rng(0)
        total_ce = 0
        for _ in range(300):
            total_ce += stack.sample_errors(875, rng)["ce"]
        assert total_ce > 0

    def test_per_level_attribution(self, stack):
        rng = np.random.default_rng(1)
        for _ in range(500):
            counts = stack.sample_errors(870, rng)
            level_ce = sum(v for k, v in counts.items() if k.startswith("ce_"))
            level_ue = sum(v for k, v in counts.items() if k.startswith("ue_"))
            assert level_ce == counts["ce"]
            assert level_ue == counts["ue"]

    def test_empty_stack_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheStack([])
