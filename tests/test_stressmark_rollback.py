"""di/dt stressmark search and the DeCoR-style rollback unit."""

from collections import Counter

import pytest

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.effects import EffectType
from repro.errors import ConfigurationError
# reprolint: disable=RPR003 -- wires rollback units into the concrete machine
from repro.hardware import MachineState, RollbackUnit, SupplyDroopModel, XGene2Machine
from repro.workloads import get_benchmark
from repro.workloads.stressmark import generate_didt_stressmark


class TestStressmark:
    @pytest.fixture(scope="class")
    def result(self):
        return generate_didt_stressmark(iterations=100)

    def test_beats_every_suite_benchmark(self, result):
        # The point of a stressmark: worse droop than any benchmark.
        assert result.droop_mv >= result.reference_droop_mv
        assert result.droop_gain >= 1.0

    def test_converges_before_the_budget(self, result):
        assert result.iterations <= 100

    def test_deterministic(self):
        first = generate_didt_stressmark(iterations=50)
        second = generate_didt_stressmark(iterations=50)
        assert first.droop_mv == second.droop_mv
        assert first.workload.traits == second.workload.traits

    def test_is_a_valid_workload(self, result):
        bench = result.workload
        assert bench.stress == 1.0
        assert bench.suite == "stressmark"
        # It runs on the machine like any benchmark.
        machine = XGene2Machine("TTT", seed=2)
        machine.power_on()
        outcome = machine.run_program(bench, core=0)
        assert outcome.effects == frozenset({EffectType.NO})

    def test_raises_measured_vmin_when_droop_active(self, result):
        """The stressmark exposes a deeper dynamic margin than the
        suite: its droop-inclusive Vmin is the machine's true bound."""
        def vmin(bench):
            machine = XGene2Machine(
                "TTT", seed=2, droop_model=SupplyDroopModel())
            machine.power_on()
            framework = CharacterizationFramework(
                machine, FrameworkConfig(start_mv=960, campaigns=3))
            return framework.characterize(bench, core=0).highest_vmin_mv
        assert vmin(result.workload) >= vmin(get_benchmark("zeusmp"))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_didt_stressmark(iterations=0)
        with pytest.raises(ConfigurationError):
            generate_didt_stressmark(step=-1.0)


class TestRollbackUnit:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RollbackUnit(detection_coverage=1.5)
        with pytest.raises(ConfigurationError):
            RollbackUnit(rollback_penalty=-0.1)

    def _run_in_sdc_band(self, machine, runs=60):
        bench = get_benchmark("bwaves")
        machine.clocks.park_all_except([0])
        machine.slimpro.set_pmd_voltage_mv(895)
        counts = Counter()
        rollbacks = 0
        for _ in range(runs):
            if machine.state is not MachineState.RUNNING:
                machine.press_reset()
                machine.clocks.park_all_except([0])
                machine.slimpro.set_pmd_voltage_mv(895)
            outcome = machine.run_program(bench, core=0)
            for effect in outcome.effects:
                counts[effect] += 1
            rollbacks += outcome.detail.get("rollbacks", 0)
        return counts, rollbacks

    def test_rollback_suppresses_sdcs(self):
        stock = XGene2Machine("TTT", seed=6)
        stock.power_on()
        stock_counts, _ = self._run_in_sdc_band(stock)

        protected = XGene2Machine(
            "TTT", seed=6, rollback_unit=RollbackUnit(detection_coverage=1.0))
        protected.power_on()
        protected_counts, rollbacks = self._run_in_sdc_band(protected)

        assert stock_counts[EffectType.SDC] > 10
        assert protected_counts[EffectType.SDC] == 0
        assert rollbacks >= stock_counts[EffectType.SDC] * 0.5

    def test_partial_coverage_leaks_some_sdcs(self):
        machine = XGene2Machine(
            "TTT", seed=6, rollback_unit=RollbackUnit(detection_coverage=0.5))
        machine.power_on()
        counts, rollbacks = self._run_in_sdc_band(machine)
        assert counts[EffectType.SDC] > 0
        assert rollbacks > 0

    def test_rollback_costs_runtime(self):
        machine = XGene2Machine(
            "TTT", seed=6,
            rollback_unit=RollbackUnit(detection_coverage=1.0,
                                       rollback_penalty=0.25))
        machine.power_on()
        bench = get_benchmark("bwaves")
        nominal_runtime = machine.run_program(bench, core=0).runtime_s
        machine.clocks.park_all_except([0])
        machine.slimpro.set_pmd_voltage_mv(895)
        for _ in range(40):
            if machine.state is not MachineState.RUNNING:
                machine.press_reset()
                machine.clocks.park_all_except([0])
                machine.slimpro.set_pmd_voltage_mv(895)
            outcome = machine.run_program(bench, core=0)
            if outcome.detail.get("rollbacks"):
                assert outcome.runtime_s == pytest.approx(
                    nominal_runtime * 1.25)
                return
        pytest.fail("no rollback observed in the SDC band")
