"""The vectorized batch kernel: bit-identity, RNG replay, fallback.

The kernel's contract (``repro.core.kernel``) is that a campaign run
through the compiled :class:`VoltageTable` produces **bit-identical**
observables to the scalar path: the same :class:`RunRecord` stream, the
same raw log bytes, the same machine state trajectory.  These tests pin
that contract at every layer -- the vectorized ``default_rng`` replay,
the per-run sampling, whole campaigns (property-swept over seeds,
chips and schedules), and the per-extension fallback matrix of
:meth:`XGene2Machine.compile_batch_table`.
"""

import hashlib
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CharacterizationFramework, FrameworkConfig
from repro.core.kernel import RunGeneratorFactory, VoltageTable
from repro.faults.injection import FaultInjector, Injection
from repro.faults.models import FunctionalUnit
# reprolint: disable=RPR003 -- compile_batch_table is the concrete machine's hook
from repro.hardware import XGene2Machine
from repro.hardware.dynamics import (
    AdaptiveClockingUnit,
    AgingModel,
    RollbackUnit,
    SupplyDroopModel,
    TemperatureSensitivity,
)
from repro.units import VOLTAGE_STEP_MV
from repro.workloads import get_benchmark


def _scalar_reference_rng(key: bytes) -> np.random.Generator:
    """The exact generator :meth:`XGene2Machine._run_rng` builds."""
    digest = np.frombuffer(hashlib.sha256(key).digest(), dtype=np.uint64)
    return np.random.default_rng(digest)


def _campaign_observables(machine, config, use_kernel, bench="mcf", core=0):
    framework = CharacterizationFramework(machine, config, use_kernel=use_kernel)
    result = framework.characterize(get_benchmark(bench), core=core)
    records = tuple(
        record.csv_row()
        for campaign in result.campaigns
        for record in campaign.records
    )
    state = (
        machine.tick,
        machine.run_counter,
        machine.state.value,
        len(machine.regulator.transactions),
        machine.regulator.transactions[-5:],
        len(machine.slimpro.i2c_log),
        machine.slimpro.i2c_log[-5:],
    )
    return framework, records, dict(framework.raw_logs), state


def _machine(chip="TTT", seed=55, **kwargs):
    machine = XGene2Machine(chip, seed=seed, **kwargs)
    machine.power_on()
    return machine


class TestRunGeneratorFactory:
    """The vectorized ``default_rng(sha256(key))`` replay."""

    def test_seed_states_match_default_rng(self):
        factory = RunGeneratorFactory()
        keys = [
            f"55|TTT|mcf|0|{920 - 5 * (i % 13)}|2400|{i}".encode()
            for i in range(150)
        ]
        states = factory.seed_states(keys)
        for key, state in zip(keys, states):
            expected = _scalar_reference_rng(key).random(7)
            got = factory.activate(state).random(7)
            assert np.array_equal(expected, got)

    def test_uniform_block_matches_generator_random(self):
        factory = RunGeneratorFactory()
        keys = [f"7|TFF|namd|3|905|2400|{i}".encode() for i in range(137)]
        block = factory.uniform_block(factory.seed_limbs(keys), 9)
        assert block.shape == (137, 9)
        for i, key in enumerate(keys):
            assert np.array_equal(_scalar_reference_rng(key).random(9), block[i])

    def test_uniform_block_prefix_property(self):
        # A wider block must agree with a narrower one on the shared
        # prefix -- what lets one over-drawn chunk width serve every
        # plan in the chunk.
        factory = RunGeneratorFactory()
        limbs = factory.seed_limbs([b"a", b"b", b"c"])
        assert np.array_equal(
            factory.uniform_block(limbs, 11)[:, :4],
            factory.uniform_block(limbs, 4),
        )

    @given(st.lists(st.binary(min_size=0, max_size=64), min_size=1,
                    max_size=8, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_keys_bit_identical(self, keys):
        factory = RunGeneratorFactory()
        states = factory.seed_states(keys)
        block = factory.uniform_block(factory.seed_limbs(keys), 5)
        for i, key in enumerate(keys):
            expected = _scalar_reference_rng(key).random(5)
            assert np.array_equal(expected, block[i])
            assert np.array_equal(
                expected, factory.activate(states[i]).random(5)
            )


class TestCampaignBitIdentity:
    """Whole campaigns: batch output == scalar output, byte for byte."""

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        chip=st.sampled_from(["TTT", "TFF", "TSS"]),
        start_mv=st.sampled_from([920, 905, 895]),
        runs_per_level=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=12, deadline=None)
    def test_records_logs_and_state_identical(
        self, seed, chip, start_mv, runs_per_level
    ):
        config = FrameworkConfig(
            start_mv=start_mv, campaigns=1, runs_per_level=runs_per_level
        )
        results = {}
        for use_kernel in (False, True):
            machine = _machine(chip=chip, seed=seed)
            framework, records, logs, state = _campaign_observables(
                machine, config, use_kernel
            )
            assert framework.last_campaign_path == (
                "batch" if use_kernel else "scalar"
            )
            results[use_kernel] = (records, logs, state)
        assert results[False] == results[True]

    def test_multi_campaign_characterization_identical(self):
        # Two campaigns back to back: the second campaign's RNG keys
        # continue from the first's run counter, which the kernel must
        # track without executing the scalar path.
        config = FrameworkConfig(start_mv=910, campaigns=2, runs_per_level=5)
        reference = _campaign_observables(_machine(), config, False)
        kernel = _campaign_observables(_machine(), config, True)
        assert reference[1:] == kernel[1:]

    def test_raw_log_formatting_parity(self):
        # The kernel formats log blocks inline instead of calling
        # format_run_block; a sweep through the crash region exercises
        # all three block shapes (completed, app-crash, system-crash)
        # and the parser must see identical bytes from both paths.
        config = FrameworkConfig(start_mv=900, campaigns=1, runs_per_level=8)
        _, _, scalar_logs, _ = _campaign_observables(_machine(), config, False)
        _, _, batch_logs, _ = _campaign_observables(_machine(), config, True)
        assert scalar_logs == batch_logs
        text = "".join(batch_logs.values())
        assert "status=system_crash" in text
        assert "status=completed" in text


class TestKernelFallbackMatrix:
    """compile_batch_table per built-in extension component."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"droop_model": SupplyDroopModel()},
            {"adaptive_clock": AdaptiveClockingUnit()},
            {"temperature_sensitivity": TemperatureSensitivity()},
            {"aging_model": AgingModel()},
            {"rollback_unit": RollbackUnit()},
            {
                "droop_model": SupplyDroopModel(max_droop_mv=22.0),
                "adaptive_clock": AdaptiveClockingUnit(recovery_mv=10.0),
                "rollback_unit": RollbackUnit(detection_coverage=0.5),
            },
        ],
        ids=["droop", "adaptive-clocking", "temperature", "aging",
             "rollback", "stacked"],
    )
    def test_builtin_extensions_stay_on_batch_path(self, kwargs):
        config = FrameworkConfig(start_mv=910, campaigns=1, runs_per_level=4)
        results = {}
        for use_kernel in (False, True):
            machine = _machine(seed=99, **kwargs)
            framework, records, logs, state = _campaign_observables(
                machine, config, use_kernel
            )
            results[use_kernel] = (records, logs, state)
            if use_kernel:
                assert framework.last_campaign_path == "batch"
        assert results[False] == results[True]

    def test_scripted_injector_falls_back_to_scalar(self):
        machine = _machine(
            seed=7,
            injector=FaultInjector(
                [Injection(unit=FunctionalUnit.L2_SRAM, bit_positions=(3,))]
            ),
        )
        config = FrameworkConfig(start_mv=905, campaigns=1, runs_per_level=3)
        framework, records, logs, _ = _campaign_observables(
            machine, config, True
        )
        assert framework.last_campaign_path == "scalar"
        # The fallback is transparent: identical output to use_kernel=False.
        reference = _machine(
            seed=7,
            injector=FaultInjector(
                [Injection(unit=FunctionalUnit.L2_SRAM, bit_positions=(3,))]
            ),
        )
        _, ref_records, ref_logs, _ = _campaign_observables(
            reference, config, False
        )
        assert (records, logs) == (ref_records, ref_logs)

    def test_stateful_subclass_falls_back_to_scalar(self):
        # A subclass of a built-in dynamics model could legally mutate
        # across runs, which the compiled table cannot represent.
        class TrackedDroop(SupplyDroopModel):
            pass

        machine = _machine(seed=7, droop_model=TrackedDroop())
        framework = CharacterizationFramework(
            machine,
            FrameworkConfig(start_mv=905, campaigns=1, runs_per_level=2),
            use_kernel=True,
        )
        framework.run_campaign(get_benchmark("mcf"), core=0)
        assert framework.last_campaign_path == "scalar"

    def test_undervolted_soc_falls_back_to_scalar(self):
        machine = _machine(seed=7)
        machine.slimpro.set_soc_voltage_mv(
            machine.chip.calibration.soc_vmin_mv - VOLTAGE_STEP_MV
        )
        framework = CharacterizationFramework(
            machine,
            FrameworkConfig(start_mv=905, campaigns=1, runs_per_level=2),
            use_kernel=True,
        )
        framework.run_campaign(get_benchmark("mcf"), core=0)
        assert framework.last_campaign_path == "scalar"

    def test_compile_returns_table_for_plain_machine(self):
        machine = _machine()
        table = machine.compile_batch_table(
            get_benchmark("mcf"), core=0, freq_mhz=2400
        )
        assert isinstance(table, VoltageTable)
        assert table.voltages == tuple(
            sorted(table.voltages, reverse=True)
        )
        assert table.index_of(table.voltages[3]) == 3


class TestLogFingerprint:
    """Satellite regression: fingerprints must be process-stable."""

    def test_fingerprint_is_crc32_not_builtin_hash(self):
        text = "=== RUN chip=TTT benchmark=mcf core=0 ===\nstatus=completed\n"
        fingerprint = CharacterizationFramework._log_fingerprint(text)
        assert fingerprint == (len(text), zlib.crc32(text.encode("utf-8")))

    def test_fingerprint_known_value(self):
        # Pinned constant: a salted builtin hash() would differ between
        # processes (PYTHONHASHSEED), this value must never change.
        assert CharacterizationFramework._log_fingerprint("vmin") == (
            4,
            zlib.crc32(b"vmin"),
        )
        assert CharacterizationFramework._log_fingerprint("vmin")[1] == 824894622

    def test_fingerprint_distinguishes_texts(self):
        base = CharacterizationFramework._log_fingerprint("edac_ce=1")
        assert base != CharacterizationFramework._log_fingerprint("edac_ce=2")
