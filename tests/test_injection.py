"""Scripted fault injection through the full reporting path."""

import numpy as np
import pytest

from repro.data.calibration import chip_calibration
from repro.effects import EffectType
from repro.errors import ConfigurationError
from repro.faults.injection import FaultInjector, Injection
from repro.faults.manifestation import EffectSampler
from repro.faults.models import FunctionalUnit, build_unit_models
# reprolint: disable=RPR003 -- wires injectors into the concrete machine
from repro.hardware import XGene2Machine
from repro.workloads import get_benchmark


class TestInjectorQueue:
    def test_fifo_consumption(self):
        injector = FaultInjector([
            Injection(FunctionalUnit.ALU),
            Injection(FunctionalUnit.FPU),
        ])
        assert len(injector) == 2
        assert injector.take(FunctionalUnit.FPU) is None  # head is ALU
        assert injector.take(FunctionalUnit.ALU).unit is FunctionalUnit.ALU
        assert injector.take(FunctionalUnit.FPU).unit is FunctionalUnit.FPU
        assert len(injector) == 0

    def test_run_pinning(self):
        injector = FaultInjector([
            Injection(FunctionalUnit.ALU, run_index=2),
        ])
        injector.begin_run()  # run 1
        assert injector.take(FunctionalUnit.ALU) is None
        injector.begin_run()  # run 2
        assert injector.take(FunctionalUnit.ALU) is not None

    def test_schedule_appends(self):
        injector = FaultInjector()
        injector.schedule(Injection(FunctionalUnit.L2_SRAM, (3, 7)))
        assert len(injector) == 1

    def test_empty_positions_rejected(self):
        with pytest.raises(ConfigurationError):
            Injection(FunctionalUnit.L2_SRAM, ())


@pytest.fixture()
def sampler_with(request):
    def build(injector, cache_stack=True):
        cal = chip_calibration("TTT")
        models = build_unit_models(cal, core=0, stress=0.6, smoothness=1.0)
        stack = None
        if cache_stack:
            from repro.hardware.caches import CacheStack
            stack = CacheStack.for_core(models)
        return EffectSampler(models, cache_stack=stack, injector=injector)
    return build


class TestSamplerIntegration:
    SAFE_V = 960  # no probabilistic effects up here

    def test_injected_sdc(self, sampler_with):
        injector = FaultInjector([Injection(FunctionalUnit.FPU)])
        sampler = sampler_with(injector)
        outcome = sampler.sample(self.SAFE_V, np.random.default_rng(0))
        assert outcome.effects == frozenset({EffectType.SDC})

    def test_injected_sc(self, sampler_with):
        injector = FaultInjector([Injection(FunctionalUnit.CLOCK_UNCORE)])
        sampler = sampler_with(injector)
        outcome = sampler.sample(self.SAFE_V, np.random.default_rng(0))
        assert outcome.effects == frozenset({EffectType.SC})

    def test_injected_ac(self, sampler_with):
        injector = FaultInjector([Injection(FunctionalUnit.LSU)])
        sampler = sampler_with(injector)
        outcome = sampler.sample(self.SAFE_V, np.random.default_rng(0))
        assert EffectType.AC in outcome.effects

    def test_injected_single_bit_becomes_ce_through_codec(self, sampler_with):
        injector = FaultInjector([Injection(FunctionalUnit.L2_SRAM, (17,))])
        sampler = sampler_with(injector)
        outcome = sampler.sample(self.SAFE_V, np.random.default_rng(0))
        assert outcome.effects == frozenset({EffectType.CE})
        assert outcome.detail["corrected_errors"] == 1

    def test_injected_double_bit_becomes_ue_through_codec(self, sampler_with):
        injector = FaultInjector([Injection(FunctionalUnit.L2_SRAM, (17, 40))])
        sampler = sampler_with(injector)
        # UE consumption can also abort the app; either way UE reported.
        outcome = sampler.sample(self.SAFE_V, np.random.default_rng(0))
        assert EffectType.UE in outcome.effects

    def test_analytic_path_without_cache_stack(self, sampler_with):
        injector = FaultInjector([Injection(FunctionalUnit.L3_SRAM, (1, 2))])
        sampler = sampler_with(injector, cache_stack=False)
        outcome = sampler.sample(self.SAFE_V, np.random.default_rng(0))
        assert EffectType.UE in outcome.effects

    def test_no_injection_is_clean_at_safe_voltage(self, sampler_with):
        sampler = sampler_with(FaultInjector())
        outcome = sampler.sample(self.SAFE_V, np.random.default_rng(0))
        assert outcome.is_normal


class TestMachineIntegration:
    def test_injected_sdc_corrupts_real_output(self):
        injector = FaultInjector([Injection(FunctionalUnit.FPU, run_index=2)])
        machine = XGene2Machine("TTT", seed=3, injector=injector)
        machine.power_on()
        bench = get_benchmark("gromacs")
        clean = machine.run_program(bench, core=0)    # run 1: untouched
        corrupted = machine.run_program(bench, core=0)  # run 2: injected
        assert clean.output_matches
        assert not corrupted.output_matches
        assert corrupted.effects == frozenset({EffectType.SDC})

    def test_injected_ce_reaches_edac(self):
        injector = FaultInjector([Injection(FunctionalUnit.L2_SRAM, (5,))])
        machine = XGene2Machine("TTT", seed=3, injector=injector)
        machine.power_on()
        outcome = machine.run_program(get_benchmark("gromacs"), core=0)
        assert EffectType.CE in outcome.effects
        assert machine.edac.counters()["ce_count"] == 1

    def test_injected_sc_hangs_machine(self):
        injector = FaultInjector([Injection(FunctionalUnit.CLOCK_UNCORE)])
        machine = XGene2Machine("TTT", seed=3, injector=injector)
        machine.power_on()
        outcome = machine.run_program(get_benchmark("gromacs"), core=0)
        assert outcome.effects == frozenset({EffectType.SC})
        assert machine.state.value == "hung"
