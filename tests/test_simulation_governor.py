"""Closed loop with the predicted (governor) policy and the Section-4.4
application-tolerance semantics."""

import pytest

from repro.data.calibration import chip_calibration
from repro.data.counters import CounterCatalog
from repro.energy.tradeoffs import FIGURE9_WORKLOAD
from repro.errors import ConfigurationError
from repro.scheduling import (
    ApplicationClass,
    EnergyEfficiencySimulation,
    VoltageGovernor,
)
from repro.workloads import SPEC2006_SUITE, get_benchmark


@pytest.fixture(scope="module")
def workload():
    return [get_benchmark(name) for name in FIGURE9_WORKLOAD]


@pytest.fixture(scope="module")
def governor():
    """Governor trained on the calibration oracle over the full suite
    for the most sensitive core (worst case on the shared plane)."""
    catalog = CounterCatalog(noise_sigma=0.0)
    cal = chip_calibration("TTT")
    snapshots, vmins = [], []
    for bench in SPEC2006_SUITE.values():
        snapshots.append(catalog.synthesize(bench.traits.as_dict()))
        vmins.append(cal.vmin_mv(0, bench.stress))
    return VoltageGovernor.train_from_observations(
        snapshots, vmins, core_offsets_mv=tuple(
            o - cal.core_offsets_mv[0] for o in cal.core_offsets_mv
        ),
        margin_mv=20,
    )


class TestPredictedPolicy:
    def test_governor_policy_runs_and_saves(self, workload, governor):
        simulation = EnergyEfficiencySimulation(workload, seed=7)
        report = simulation.run_policy("predicted", governor=governor,
                                       repeats=2)
        assert report.voltage_mv < 980
        assert report.saving_fraction > 0.0
        # The trained margin must keep it violation-free here.
        assert report.crash_recoveries == 0

    def test_predicted_requires_governor(self, workload):
        simulation = EnergyEfficiencySimulation(workload, seed=7)
        with pytest.raises(ConfigurationError):
            simulation.run_policy("predicted")


class TestApplicationTolerance:
    def test_sdc_tolerant_apps_accept_the_deeper_point(self, workload):
        simulation = EnergyEfficiencySimulation(workload, seed=7)
        below = simulation.margin_sweep([-10], repeats=2)[0]
        assert below.sdc_runs > 0
        assert below.violations(ApplicationClass.EXACT) == below.sdc_runs
        assert below.violations(ApplicationClass.SDC_TOLERANT) == 0
        # ...and it actually saves more than the exact-app point.
        safe = simulation.margin_sweep([10], repeats=2)[0]
        assert below.saving_fraction > safe.saving_fraction

    def test_default_violations_are_exact_semantics(self, workload):
        simulation = EnergyEfficiencySimulation(workload, seed=7)
        report = simulation.margin_sweep([-10], repeats=1)[0]
        assert report.violations() == report.sdc_runs
