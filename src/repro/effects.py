"""The effect vocabulary of Table 3.

Defined at the package root (rather than inside :mod:`repro.core`) so
that both the fault substrate and the characterization framework can
share it without import cycles; :mod:`repro.core.effects` re-exports it
together with the classification helpers.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable


class EffectType(enum.Enum):
    """Classification of one characterization run (Table 3)."""

    #: Normal operation: completed with the correct output, no errors.
    NO = "NO"
    #: Silent data corruption: completed but the output mismatches.
    SDC = "SDC"
    #: Corrected error reported by the EDAC driver.
    CE = "CE"
    #: Uncorrected (but detected) error reported by the EDAC driver.
    UE = "UE"
    #: Application crash: process exited abnormally.
    AC = "AC"
    #: System crash: machine unresponsive / timeout reached.
    SC = "SC"

    @property
    def is_abnormal(self) -> bool:
        """True for everything except normal operation."""
        return self is not EffectType.NO


#: Parse order used in reports: most to least severe.
EFFECT_ORDER = (
    EffectType.SC,
    EffectType.AC,
    EffectType.SDC,
    EffectType.UE,
    EffectType.CE,
    EffectType.NO,
)

#: Table-3 effect descriptions, keyed by effect.
EFFECT_DESCRIPTIONS: Dict[EffectType, str] = {
    EffectType.NO: "The benchmark was successfully completed without any "
                   "indications of failure.",
    EffectType.SDC: "The benchmark was successfully completed, but a mismatch "
                    "between the program output and the correct output was "
                    "observed.",
    EffectType.CE: "Errors were detected and corrected by the hardware "
                   "(provided by Linux EDAC driver).",
    EffectType.UE: "Errors were detected, but not corrected by the hardware "
                   "(provided by Linux EDAC driver).",
    EffectType.AC: "The application process was not terminated normally (the "
                   "exit value of the process was different than zero).",
    EffectType.SC: "The system was unresponsive; the machine is not responding "
                   "or the timeout limit was reached.",
}


#: Table-4 severity weights, keyed by effect.  This mapping is the
#: single source of truth for the paper's weight assignment
#: (W_SC=16, W_AC=8, W_SDC=4, W_UE=2, W_CE=1, W_NO=0); every consumer
#: -- including :class:`repro.core.severity.SeverityWeights` defaults
#: and the Table-4 renderer -- must import it rather than re-hardcode
#: the numbers (enforced by reprolint rule RPR005).
SEVERITY_WEIGHTS: Dict[EffectType, float] = {
    EffectType.SC: 16.0,
    EffectType.AC: 8.0,
    EffectType.SDC: 4.0,
    EffectType.UE: 2.0,
    EffectType.CE: 1.0,
    EffectType.NO: 0.0,
}


def severity_weight(effect: EffectType) -> float:
    """The Table-4 weight of one effect class."""
    return SEVERITY_WEIGHTS[effect]


def normalize_effects(effects: Iterable[EffectType]) -> FrozenSet[EffectType]:
    """Normalise an effect collection for one run.

    A run that manifested any abnormal effect is not *also* a normal
    run, and an empty collection means normal operation; this helper
    enforces both conventions.
    """
    effect_set = frozenset(effects)
    if not effect_set:
        return frozenset({EffectType.NO})
    if effect_set == {EffectType.NO}:
        return effect_set
    return effect_set - {EffectType.NO}
