"""Fault substrate: ECC codecs, voltage->failure curves, manifestation.

* :mod:`repro.faults.ecc` -- working error-correcting codes: even parity
  (L1 arrays), SECDED(72,64) Hamming (L2/L3 arrays, Table 2) and a
  BCH-based DEC-TED code for the Section-6 "stronger error protection"
  design-enhancement ablation.
* :mod:`repro.faults.models` -- logistic voltage-to-failure-probability
  curves for timing paths and SRAM bit-cells, anchored on the
  calibration data.
* :mod:`repro.faults.manifestation` -- turns component-level failures
  into the architectural effects of Table 3 (SDC/CE/UE/AC/SC).
* :mod:`repro.faults.injection` -- deterministic fault injection used by
  the tests.
"""

from .ecc import (
    DecodeStatus,
    DectedCode,
    EccDecodeResult,
    EvenParityCode,
    SecdedCode,
    flip_bits,
)
from .models import FailureCurve, UnitFailureModel, build_unit_models
from .manifestation import EffectSampler, SampledRunEffects

__all__ = [
    "DecodeStatus",
    "DectedCode",
    "EccDecodeResult",
    "EvenParityCode",
    "SecdedCode",
    "flip_bits",
    "FailureCurve",
    "UnitFailureModel",
    "build_unit_models",
    "EffectSampler",
    "SampledRunEffects",
]
