"""Working error-correcting codes for the simulated cache arrays.

Three codecs, all operating on 64-bit data words held as Python ints:

* :class:`EvenParityCode` -- single even-parity bit, detect-only.  The
  X-Gene 2 L1 instruction and data caches are parity protected
  (Table 2).
* :class:`SecdedCode` -- Hamming SECDED(72,64): corrects any single-bit
  error and detects any double-bit error.  The L2 and L3 caches are ECC
  protected (Table 2); SECDED is the standard choice the paper's
  Section 6 calls out ("SECDEC ECC protection at the lower levels of
  the memory hierarchy does not provide enough protection at lower
  voltages").
* :class:`DectedCode` -- a double-error-correcting, triple-error-
  detecting shortened BCH(79,64) code over GF(2^7) plus an overall
  parity bit.  This implements the Section-6 "stronger error
  protection" design enhancement used by the ablation benchmarks.

These are real codecs: encode/decode round-trips, syndromes, Chien-style
root finding -- not lookup stubs -- so the cache models exercise genuine
correction/detection behaviour when the SRAM model flips bits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..errors import EccError

#: Width of the protected data word, bits.
DATA_BITS = 64


def flip_bits(word: int, positions: Iterable[int]) -> int:
    """Return ``word`` with the given bit positions flipped."""
    for pos in positions:
        if pos < 0:
            raise EccError(f"bit position must be non-negative, got {pos}")
        word ^= 1 << pos
    return word


class DecodeStatus(enum.Enum):
    """Outcome of decoding one codeword."""

    #: No error detected.
    CLEAN = "clean"
    #: Error(s) detected and corrected; data is trustworthy.
    CORRECTED = "corrected"
    #: Error detected but beyond the code's correction capability.
    DETECTED_UNCORRECTABLE = "detected_uncorrectable"


@dataclass(frozen=True)
class EccDecodeResult:
    """Result of decoding one codeword.

    ``data`` is best-effort when ``status`` is
    :data:`DecodeStatus.DETECTED_UNCORRECTABLE` and must not be consumed
    by correctness-sensitive callers.  ``corrected_positions`` lists the
    codeword bit indices that were repaired.
    """

    data: int
    status: DecodeStatus
    corrected_positions: Tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        """True when the returned data is trustworthy."""
        return self.status is not DecodeStatus.DETECTED_UNCORRECTABLE


def _check_data_word(data: int) -> int:
    if not isinstance(data, int):
        raise EccError(f"data word must be an int, got {type(data).__name__}")
    if data < 0 or data >> DATA_BITS:
        raise EccError(f"data word must fit in {DATA_BITS} bits")
    return data


# ---------------------------------------------------------------------------
# Even parity (L1 arrays).
# ---------------------------------------------------------------------------


class EvenParityCode:
    """Single even-parity bit over a 64-bit word: detects odd bit flips.

    Parity cannot correct; the cache model decides what a detected
    parity error means (clean line -> refetch, dirty line -> data loss).
    """

    codeword_bits = DATA_BITS + 1

    def encode(self, data: int) -> int:
        """Append the even-parity bit as bit 64 of the codeword."""
        data = _check_data_word(data)
        parity = bin(data).count("1") & 1
        return data | (parity << DATA_BITS)

    def decode(self, codeword: int) -> EccDecodeResult:
        """Check parity; any odd number of flips is detected."""
        if codeword < 0 or codeword >> self.codeword_bits:
            raise EccError(f"codeword must fit in {self.codeword_bits} bits")
        data = codeword & ((1 << DATA_BITS) - 1)
        if bin(codeword).count("1") & 1:
            return EccDecodeResult(data, DecodeStatus.DETECTED_UNCORRECTABLE)
        return EccDecodeResult(data, DecodeStatus.CLEAN)


# ---------------------------------------------------------------------------
# SECDED(72,64) Hamming (L2/L3 arrays).
# ---------------------------------------------------------------------------


class SecdedCode:
    """Hamming SECDED(72,64): single-error-correcting, double-detecting.

    Layout: classic extended Hamming.  Codeword positions 1..71 hold the
    Hamming code (check bits at the power-of-two positions, data bits at
    the rest); position 0 holds the overall even-parity bit.  The
    decoder distinguishes:

    * zero syndrome, parity OK          -> clean;
    * non-zero syndrome, parity flipped -> single error, corrected;
    * zero syndrome, parity flipped     -> parity bit itself flipped,
      corrected;
    * non-zero syndrome, parity OK      -> double error, detected.
    """

    codeword_bits = 72
    _check_positions = (1, 2, 4, 8, 16, 32, 64)

    def __init__(self) -> None:
        # Positions 1..71 that carry data bits, in ascending order.
        self._data_positions: List[int] = [
            pos for pos in range(1, self.codeword_bits)
            if pos not in self._check_positions
        ]
        if len(self._data_positions) != DATA_BITS:
            raise EccError("internal layout error building SECDED positions")

    # -- encode ------------------------------------------------------------

    def encode(self, data: int) -> int:
        """Encode a 64-bit word into a 72-bit SECDED codeword."""
        data = _check_data_word(data)
        codeword = 0
        for i, pos in enumerate(self._data_positions):
            if (data >> i) & 1:
                codeword |= 1 << pos
        for check in self._check_positions:
            parity = 0
            for pos in range(1, self.codeword_bits):
                if pos & check and (codeword >> pos) & 1:
                    parity ^= 1
            if parity:
                codeword |= 1 << check
        # Overall parity over the whole 72-bit word, kept even.
        if bin(codeword).count("1") & 1:
            codeword |= 1
        return codeword

    # -- decode ---------------------------------------------------------------

    def _syndrome(self, codeword: int) -> int:
        syndrome = 0
        for pos in range(1, self.codeword_bits):
            if (codeword >> pos) & 1:
                syndrome ^= pos
        return syndrome

    def _extract(self, codeword: int) -> int:
        data = 0
        for i, pos in enumerate(self._data_positions):
            if (codeword >> pos) & 1:
                data |= 1 << i
        return data

    def decode(self, codeword: int) -> EccDecodeResult:
        """Decode a 72-bit codeword, correcting up to one flipped bit."""
        if codeword < 0 or codeword >> self.codeword_bits:
            raise EccError(f"codeword must fit in {self.codeword_bits} bits")
        syndrome = self._syndrome(codeword)
        parity_error = bin(codeword).count("1") & 1
        if syndrome == 0 and not parity_error:
            return EccDecodeResult(self._extract(codeword), DecodeStatus.CLEAN)
        if syndrome == 0 and parity_error:
            # The overall parity bit itself flipped.
            return EccDecodeResult(
                self._extract(codeword), DecodeStatus.CORRECTED, (0,)
            )
        if parity_error:
            # Odd number of flips with a valid location: single-bit error.
            if syndrome < self.codeword_bits:
                corrected = codeword ^ (1 << syndrome)
                return EccDecodeResult(
                    self._extract(corrected), DecodeStatus.CORRECTED, (syndrome,)
                )
            return EccDecodeResult(
                self._extract(codeword), DecodeStatus.DETECTED_UNCORRECTABLE
            )
        # Even number of flips but non-zero syndrome: double-bit error.
        return EccDecodeResult(
            self._extract(codeword), DecodeStatus.DETECTED_UNCORRECTABLE
        )


# ---------------------------------------------------------------------------
# DEC-TED shortened BCH(79,64) over GF(2^7) (Section-6 ablation).
# ---------------------------------------------------------------------------


class _GF128:
    """Arithmetic in GF(2^7) with primitive polynomial x^7 + x^3 + 1."""

    ORDER = 127  # multiplicative group order
    _PRIMITIVE_POLY = 0b10001001

    def __init__(self) -> None:
        self.exp = [0] * (2 * self.ORDER)
        self.log = [0] * (self.ORDER + 1)
        value = 1
        for power in range(self.ORDER):
            self.exp[power] = value
            self.log[value] = power
            value <<= 1
            if value & 0x80:
                value ^= self._PRIMITIVE_POLY
        for power in range(self.ORDER, 2 * self.ORDER):
            self.exp[power] = self.exp[power - self.ORDER]

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(128)")
        if a == 0:
            return 0
        return self.exp[(self.log[a] - self.log[b]) % self.ORDER]

    def pow(self, a: int, n: int) -> int:
        if a == 0:
            return 0
        return self.exp[(self.log[a] * n) % self.ORDER]

    def solve_quadratic_trace(self, c: int) -> Optional[int]:
        """Solve ``y^2 + y = c``; return one root or None if no solution.

        GF(2^7) is small enough that direct search (128 candidates) is
        both simple and fast; the other root is ``y ^ 1``.
        """
        for y in range(128):
            if self.mul(y, y) ^ y == c:
                return y
        return None


def _poly_mul_gf2(a: int, b: int) -> int:
    """Multiply two GF(2) polynomials held as bitmasks."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def _minimal_polynomial(gf: _GF128, element_log: int) -> int:
    """Minimal polynomial over GF(2) of alpha**element_log in GF(2^7).

    Built as prod (x - alpha**(element_log * 2^i)) over the conjugacy
    class; the product necessarily has GF(2) coefficients.
    """
    conjugates = []
    e = element_log % gf.ORDER
    while e not in conjugates:
        conjugates.append(e)
        e = (e * 2) % gf.ORDER
    # Polynomial with GF(128) coefficients, low-degree first.
    poly = [1]
    for conj in conjugates:
        root = gf.exp[conj]
        # poly *= (x + root)
        new = [0] * (len(poly) + 1)
        for i, coeff in enumerate(poly):
            new[i + 1] ^= coeff              # x * coeff
            new[i] ^= gf.mul(coeff, root)    # root * coeff
        poly = new
    mask = 0
    for i, coeff in enumerate(poly):
        if coeff not in (0, 1):
            raise EccError("minimal polynomial has non-binary coefficient")
        if coeff:
            mask |= 1 << i
    return mask


class DectedCode:
    """Shortened BCH(79,64) DEC-TED codec.

    The underlying code is the 2-error-correcting binary BCH code of
    length 127 with generator ``g(x) = m1(x) * m3(x)`` (degree 14),
    shortened to 64 data bits, plus one overall parity bit for
    triple-error *detection*.  Codeword layout (bit index in the int):

    * bits 0..13:  BCH parity (remainder of ``d(x) * x^14 mod g(x)``),
    * bits 14..77: data,
    * bit 78:      overall even parity.

    Decoding computes syndromes ``S1 = r(alpha)`` and ``S3 = r(alpha^3)``
    and solves the error locator directly (quadratic in GF(2^7)),
    using the overall parity bit to tell double from triple errors.
    """

    codeword_bits = 79
    _n_parity = 14
    _shortened_len = 78  # BCH part, without the overall parity bit

    def __init__(self) -> None:
        self._gf = _GF128()
        m1 = _minimal_polynomial(self._gf, 1)
        m3 = _minimal_polynomial(self._gf, 3)
        self._generator = _poly_mul_gf2(m1, m3)
        if self._generator.bit_length() - 1 != self._n_parity:
            raise EccError("unexpected BCH generator degree")

    # -- encode --------------------------------------------------------------

    def _bch_remainder(self, message: int) -> int:
        """Remainder of ``message`` (already shifted) divided by g(x)."""
        gen = self._generator
        gen_deg = self._n_parity
        rem = message
        for bit in range(rem.bit_length() - 1, gen_deg - 1, -1):
            if (rem >> bit) & 1:
                rem ^= gen << (bit - gen_deg)
        return rem

    def encode(self, data: int) -> int:
        """Encode a 64-bit word into a 79-bit DEC-TED codeword."""
        data = _check_data_word(data)
        shifted = data << self._n_parity
        codeword = shifted | self._bch_remainder(shifted)
        if bin(codeword).count("1") & 1:
            codeword |= 1 << (self._shortened_len)
        return codeword

    # -- decode ----------------------------------------------------------------

    def _syndromes(self, bch_part: int) -> Tuple[int, int]:
        gf = self._gf
        s1 = 0
        s3 = 0
        word = bch_part
        pos = 0
        while word:
            if word & 1:
                s1 ^= gf.exp[pos % gf.ORDER]
                s3 ^= gf.exp[(3 * pos) % gf.ORDER]
            word >>= 1
            pos += 1
        return s1, s3

    def _extract(self, bch_part: int) -> int:
        return bch_part >> self._n_parity

    def decode(self, codeword: int) -> EccDecodeResult:
        """Decode, correcting up to 2 flipped bits, detecting 3."""
        if codeword < 0 or codeword >> self.codeword_bits:
            raise EccError(f"codeword must fit in {self.codeword_bits} bits")
        gf = self._gf
        bch_part = codeword & ((1 << self._shortened_len) - 1)
        parity_odd = bool(bin(codeword).count("1") & 1)
        s1, s3 = self._syndromes(bch_part)

        if s1 == 0 and s3 == 0:
            if not parity_odd:
                return EccDecodeResult(self._extract(bch_part), DecodeStatus.CLEAN)
            # Only the overall parity bit flipped.
            return EccDecodeResult(
                self._extract(bch_part),
                DecodeStatus.CORRECTED,
                (self._shortened_len,),
            )

        if parity_odd:
            # Odd error count with non-zero syndrome: try single error.
            if s1 != 0 and s3 == gf.pow(s1, 3):
                pos = gf.log[s1]
                if pos < self._shortened_len:
                    corrected = bch_part ^ (1 << pos)
                    return EccDecodeResult(
                        self._extract(corrected), DecodeStatus.CORRECTED, (pos,)
                    )
            # Triple (or worse) error: detected, not correctable.
            return EccDecodeResult(
                self._extract(bch_part), DecodeStatus.DETECTED_UNCORRECTABLE
            )

        # Even error count with non-zero syndrome: try double error.
        if s1 != 0 and s3 == gf.pow(s1, 3):
            # One BCH-part error plus the overall parity bit flipped.
            pos = gf.log[s1]
            if pos < self._shortened_len:
                corrected = bch_part ^ (1 << pos)
                return EccDecodeResult(
                    self._extract(corrected),
                    DecodeStatus.CORRECTED,
                    (pos, self._shortened_len),
                )
            return EccDecodeResult(
                self._extract(bch_part), DecodeStatus.DETECTED_UNCORRECTABLE
            )
        if s1 != 0:
            # Locator: x^2 + s1*x + (s3 + s1^3)/s1 = 0; substitute
            # x = s1*y to get y^2 + y = q with q = (s3 + s1^3) / s1^3.
            q = gf.div(s3 ^ gf.pow(s1, 3), gf.pow(s1, 3))
            y = gf.solve_quadratic_trace(q)
            if y is not None and y not in (0, 1):
                x1 = gf.mul(s1, y)
                x2 = gf.mul(s1, y ^ 1)
                pos1, pos2 = gf.log[x1], gf.log[x2]
                if (
                    pos1 != pos2
                    and pos1 < self._shortened_len
                    and pos2 < self._shortened_len
                ):
                    corrected = bch_part ^ (1 << pos1) ^ (1 << pos2)
                    return EccDecodeResult(
                        self._extract(corrected),
                        DecodeStatus.CORRECTED,
                        tuple(sorted((pos1, pos2))),
                    )
        return EccDecodeResult(
            self._extract(bch_part), DecodeStatus.DETECTED_UNCORRECTABLE
        )
