"""From component failures to the architectural effects of Table 3.

:class:`EffectSampler` combines the per-unit failure models of
:mod:`repro.faults.models` into the observable outcome of one
characterization run:

* a clock/uncore failure hangs the machine -> **SC** (and nothing else
  is observable, the run never completes and its logs are lost);
* a control-path or LSU timing failure kills the process -> **AC**
  (EDAC logs survive, so corrected/uncorrected errors can accompany it);
* an ALU/FPU timing failure corrupts the retired result -> **SDC**
  (the hallmark X-Gene behaviour of Section 3.4);
* SRAM bit-cell failures go through the (real or analytic) ECC path:
  single flips in ECC-protected arrays -> **CE**, doubles -> **UE**;
  parity-protected L1 flips -> **CE** when the line is clean (refetch)
  or **UE** when dirty data is lost.

The Section-6 design-enhancement knobs live in
:class:`ProtectionConfig`: stronger codes and wider protection coverage
convert SDC/UE probability mass into CE, which is exactly the paper's
"significant probability to be transformed to corrected errors".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Sequence

import numpy as np

from ..effects import EffectType, normalize_effects
from ..errors import ConfigurationError
from .models import FunctionalUnit, UnitFailureModel


@dataclass(frozen=True)
class ProtectionConfig:
    """Error-protection configuration of the simulated part (Section 6).

    ``ecc`` selects the L2/L3 code ("secded" stock, "dected" the
    stronger-code enhancement).  ``coverage`` is the fraction of
    previously unprotected state (pipeline latches, more blocks) brought
    under protection; it converts that fraction of would-be SDCs into
    corrected errors.
    """

    ecc: str = "secded"
    coverage: float = 0.0

    def __post_init__(self) -> None:
        if self.ecc not in ("secded", "dected"):
            raise ConfigurationError(f"ecc must be 'secded' or 'dected', got {self.ecc!r}")
        if not 0.0 <= self.coverage <= 1.0:
            raise ConfigurationError("coverage must be within [0, 1]")


@dataclass(frozen=True)
class SampledRunEffects:
    """Outcome of one simulated run.

    ``effects`` is the Table-3 classification set; ``detail`` carries
    per-source event counts for the log files (e.g. how many corrected
    errors the EDAC driver would report).
    """

    effects: FrozenSet[EffectType]
    detail: Mapping[str, int] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        """True when the benchmark process ran to completion."""
        return not (
            EffectType.SC in self.effects or EffectType.AC in self.effects
        )

    @property
    def is_normal(self) -> bool:
        return self.effects == frozenset({EffectType.NO})


class EffectSampler:
    """Samples the Table-3 outcome of one run at one supply voltage.

    Parameters
    ----------
    unit_models:
        Output of :func:`repro.faults.models.build_unit_models`.
    protection:
        Error-protection configuration (Section-6 ablations).
    cache_stack:
        Optional object with a
        ``sample_errors(voltage_mv, rng) -> dict`` method (the real
        cache models of :mod:`repro.hardware.caches`); when omitted, the
        analytic SRAM curves stand in.
    """

    #: Probability that an ALU timing failure lands in address
    #: generation and kills the process instead of silently corrupting
    #: the output.
    _ALU_AC_FRACTION = 0.2
    #: Probability that consuming an uncorrectable error aborts the
    #: process (machine-check style) rather than being reported only.
    _UE_AC_FRACTION = 0.35

    def __init__(
        self,
        unit_models: Mapping[FunctionalUnit, UnitFailureModel],
        protection: ProtectionConfig = ProtectionConfig(),
        cache_stack: Optional[object] = None,
        injector: Optional[object] = None,
    ) -> None:
        missing = set(FunctionalUnit) - set(unit_models)
        if missing:
            raise ConfigurationError(f"unit_models missing units: {sorted(m.value for m in missing)}")
        self._models = dict(unit_models)
        self.protection = protection
        self._cache_stack = cache_stack
        #: Optional :class:`repro.faults.injection.FaultInjector`:
        #: scripted faults consumed at the start of each sampled run,
        #: on top of (not instead of) the probabilistic model.
        self._injector = injector

    # -- probability views ---------------------------------------------------

    @property
    def cache_stack(self) -> Optional[object]:
        """The wired cache hierarchy (``None`` on the analytic path)."""
        return self._cache_stack

    @property
    def ue_ac_fraction(self) -> float:
        """Probability that a consumed uncorrectable error aborts the run."""
        return self._UE_AC_FRACTION

    def probability(self, unit: FunctionalUnit, voltage_mv: float) -> float:
        """Per-run failure probability of one unit at a voltage."""
        return self._models[unit].probability(voltage_mv)

    def probability_table(self, voltages: Sequence[int]) -> Dict[str, np.ndarray]:
        """Every per-run draw threshold of :meth:`sample`, tabulated.

        Evaluated by calling the same scalar methods :meth:`sample` uses
        (never re-derived arithmetic), so each entry is bit-equal to the
        per-run value -- the exactness contract of the batch kernel
        (:mod:`repro.core.kernel`) rests on this.  Keys: ``sc`` (clock/
        uncore hang), ``ac_timing`` (control/LSU process kill), ``sdc``,
        ``sdc_to_ce`` (coverage conversion), ``ce``/``ue`` (analytic
        SRAM path; unused when a cache stack is wired).
        """
        n = len(voltages)
        table = {
            key: np.empty(n, dtype=np.float64)
            for key in ("sc", "ac_timing", "sdc", "sdc_to_ce", "ce", "ue")
        }
        for i, voltage_mv in enumerate(voltages):
            table["sc"][i] = self.probability(FunctionalUnit.CLOCK_UNCORE, voltage_mv)
            p_control = self.probability(FunctionalUnit.CONTROL, voltage_mv)
            p_lsu = self.probability(FunctionalUnit.LSU, voltage_mv)
            table["ac_timing"][i] = 1.0 - (1.0 - p_control) * (1.0 - p_lsu)
            table["sdc"][i] = self._sdc_probability(voltage_mv)
            table["sdc_to_ce"][i] = self._sdc_conversion_to_ce(voltage_mv)
            p_ce, p_ue = self._sram_probabilities(voltage_mv)
            table["ce"][i] = p_ce
            table["ue"][i] = p_ue
        return table

    def effect_probabilities(self, voltage_mv: float) -> Dict[EffectType, float]:
        """Approximate marginal per-run probability of each effect.

        Used by analysis/plotting; the exact run outcome distribution is
        defined by :meth:`sample`.
        """
        p_sc = self.probability(FunctionalUnit.CLOCK_UNCORE, voltage_mv)
        p_control = self.probability(FunctionalUnit.CONTROL, voltage_mv)
        p_lsu = self.probability(FunctionalUnit.LSU, voltage_mv)
        p_ac_timing = 1.0 - (1.0 - p_control) * (1.0 - p_lsu)
        p_sdc_raw = self._sdc_probability(voltage_mv)
        p_ce, p_ue = self._sram_probabilities(voltage_mv)
        survive = 1.0 - p_sc
        return {
            EffectType.SC: p_sc,
            EffectType.AC: survive * p_ac_timing,
            EffectType.SDC: survive * (1.0 - p_ac_timing) * p_sdc_raw,
            EffectType.CE: survive * p_ce,
            EffectType.UE: survive * p_ue,
        }

    def _sdc_probability(self, voltage_mv: float) -> float:
        p_alu = self.probability(FunctionalUnit.ALU, voltage_mv)
        p_fpu = self.probability(FunctionalUnit.FPU, voltage_mv)
        p_raw = 1.0 - (1.0 - p_alu * (1.0 - self._ALU_AC_FRACTION)) * (1.0 - p_fpu)
        # Section-6 enhancement: wider protection coverage converts SDCs
        # into corrected errors.
        return p_raw * (1.0 - self.protection.coverage)

    def _sram_probabilities(self, voltage_mv: float):
        """(p_ce, p_ue) per run from the SRAM arrays (analytic path)."""
        p_l1 = self.probability(FunctionalUnit.L1_SRAM, voltage_mv)
        p_l2 = self.probability(FunctionalUnit.L2_SRAM, voltage_mv)
        p_l3 = self.probability(FunctionalUnit.L3_SRAM, voltage_mv)
        # Singles dominate; doubles scale with the square of the cell
        # failure level in each protected array.
        p_single = 1.0 - (1.0 - p_l2) * (1.0 - p_l3) * (1.0 - p_l1 * 0.7)
        p_double = min(1.0, 0.35 * (p_l2**2 + p_l3**2) + 0.3 * p_l1**2)
        if self.protection.ecc == "dected":
            # The stronger code corrects the doubles too.
            p_single = min(1.0, p_single + 0.9 * p_double)
            p_double *= 0.1
        p_sdc_converted = self._sdc_conversion_to_ce(voltage_mv)
        return min(1.0, p_single + p_sdc_converted), p_double

    def _sdc_conversion_to_ce(self, voltage_mv: float) -> float:
        if self.protection.coverage <= 0.0:
            return 0.0
        p_alu = self.probability(FunctionalUnit.ALU, voltage_mv)
        p_fpu = self.probability(FunctionalUnit.FPU, voltage_mv)
        p_raw = 1.0 - (1.0 - p_alu * (1.0 - self._ALU_AC_FRACTION)) * (1.0 - p_fpu)
        return p_raw * self.protection.coverage

    # -- sampling -------------------------------------------------------------

    def sample(self, voltage_mv: float, rng: np.random.Generator) -> SampledRunEffects:
        """Sample the observable outcome of one run.

        The precedence mirrors what a real campaign can log: a system
        crash hides everything else; an application crash still leaves
        EDAC logs behind; SDCs require the run to complete.
        """
        detail: Dict[str, int] = {}
        forced = self._consume_injections(rng, detail)

        if EffectType.SC in forced or rng.random() < self.probability(
            FunctionalUnit.CLOCK_UNCORE, voltage_mv
        ):
            return SampledRunEffects(frozenset({EffectType.SC}), {"system_crash": 1})

        effects = set(forced)

        # SRAM / ECC path -- may use the real cache models when wired.
        if self._cache_stack is not None:
            counts = self._cache_stack.sample_errors(voltage_mv, rng)
            ce_events = int(counts.get("ce", 0))
            ue_events = int(counts.get("ue", 0))
            # Keep the per-location attribution for the EDAC report.
            detail.update(
                {key: int(val) for key, val in counts.items() if key not in ("ce", "ue")}
            )
            conv = self._sdc_conversion_to_ce(voltage_mv)
            if conv > 0.0 and rng.random() < conv:
                ce_events += 1
        else:
            p_ce, p_ue = self._sram_probabilities(voltage_mv)
            ce_events = 1 if rng.random() < p_ce else 0
            ue_events = 1 if rng.random() < p_ue else 0
        if ce_events:
            effects.add(EffectType.CE)
            detail["corrected_errors"] = (
                detail.get("corrected_errors", 0) + ce_events
            )
        if ue_events:
            effects.add(EffectType.UE)
            detail["uncorrected_errors"] = (
                detail.get("uncorrected_errors", 0) + ue_events
            )

        # Timing failures that kill the process.
        p_control = self.probability(FunctionalUnit.CONTROL, voltage_mv)
        p_lsu = self.probability(FunctionalUnit.LSU, voltage_mv)
        crashed = EffectType.AC in effects or (
            rng.random() < 1.0 - (1.0 - p_control) * (1.0 - p_lsu)
        )
        if not crashed and ue_events:
            crashed = rng.random() < self._UE_AC_FRACTION
        if crashed:
            effects.add(EffectType.AC)
            detail["application_crash"] = 1
            return SampledRunEffects(normalize_effects(effects), detail)

        # The run completes: silent corruption of the output?
        if EffectType.SDC in effects or rng.random() < self._sdc_probability(voltage_mv):
            effects.add(EffectType.SDC)
            detail["output_mismatch"] = 1

        return SampledRunEffects(normalize_effects(effects), detail)

    # -- scripted injection ----------------------------------------------------

    _SRAM_LEVELS = {
        FunctionalUnit.L1_SRAM: "L1D",
        FunctionalUnit.L2_SRAM: "L2",
        FunctionalUnit.L3_SRAM: "L3",
    }

    def _consume_injections(
        self, rng: np.random.Generator, detail: Dict[str, int]
    ):
        """Pop and apply any scripted faults due this run (FIFO)."""
        forced = set()
        if self._injector is None:
            return forced
        self._injector.begin_run()
        for unit in FunctionalUnit:
            while True:
                injection = self._injector.take(unit)
                if injection is None:
                    break
                forced |= self._apply_injection(unit, injection, rng, detail)
        return forced

    def _apply_injection(self, unit, injection, rng, detail: Dict[str, int]):
        if unit is FunctionalUnit.CLOCK_UNCORE:
            detail["injected_sc"] = detail.get("injected_sc", 0) + 1
            return {EffectType.SC}
        if unit in (FunctionalUnit.CONTROL, FunctionalUnit.LSU):
            detail["injected_ac"] = detail.get("injected_ac", 0) + 1
            return {EffectType.AC}
        if unit in (FunctionalUnit.ALU, FunctionalUnit.FPU):
            detail["injected_sdc"] = detail.get("injected_sdc", 0) + 1
            return {EffectType.SDC}
        # SRAM injections go through the real codec when a cache stack
        # is wired -- the injected flip count decides CE vs UE through
        # the actual decode, not a table.
        effects = set()
        if self._cache_stack is not None:
            level_name = self._SRAM_LEVELS[unit]
            level = next(
                lvl for lvl in self._cache_stack.levels if lvl.name == level_name
            )
            counts = level.classify_event(tuple(injection.bit_positions), rng)
            ce_events, ue_events = counts.ce, counts.ue
        else:
            single = len(set(injection.bit_positions)) == 1
            ce_events, ue_events = (1, 0) if single else (0, 1)
        if ce_events:
            effects.add(EffectType.CE)
            detail["corrected_errors"] = detail.get("corrected_errors", 0) + ce_events
        if ue_events:
            effects.add(EffectType.UE)
            detail["uncorrected_errors"] = (
                detail.get("uncorrected_errors", 0) + ue_events
            )
        return effects
