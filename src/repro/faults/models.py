"""Voltage-to-failure-probability models.

The behavioural core of the simulator: logistic curves that give, for
every component of a core, the probability that the component fails at
least once during one characterization run at supply voltage ``v``.

Curve placement is anchored on the calibration data
(:mod:`repro.data.calibration`) so that the *observable* quantities of
the paper come out right by construction:

* the highest-of-ten-campaigns safe Vmin equals the calibration anchor
  (the first-failing unit's probability is ~3e-4 per run at the anchor
  and ~5 % one regulator step below -- so 100 runs at the anchor are
  almost surely clean while ten campaigns almost surely catch the first
  step below);
* the highest crash voltage equals the crash anchor (same construction
  for the system-crash curve);
* between the two, the remaining units switch on at depths that produce
  the paper's effect ordering -- for the X-Gene's *timing-dominated*
  profile SDCs (ALU/FPU timing paths) precede lone corrected errors,
  while the Itanium-like *sram-dominated* profile shows a wide CE-only
  band first (Section 3.4).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..data.calibration import ChipCalibration
from ..errors import ConfigurationError
from ..units import FREQ_MAX_MHZ

#: Logistic offset (in units of ``scale_mv``) between a curve's
#: midpoint and the anchor voltage at which the failure probability is
#: "practically zero" (sigmoid(-8) ~ 3.4e-4).
_ANCHOR_MARGIN_STEPS = 8.0


class FunctionalUnit(enum.Enum):
    """Core components distinguished by the failure model."""

    ALU = "alu"
    FPU = "fpu"
    LSU = "lsu"
    CONTROL = "control"
    CLOCK_UNCORE = "clock_uncore"
    L1_SRAM = "l1_sram"
    L2_SRAM = "l2_sram"
    L3_SRAM = "l3_sram"


#: Units whose failures are timing-path failures (datapath logic).
TIMING_UNITS = (
    FunctionalUnit.ALU,
    FunctionalUnit.FPU,
    FunctionalUnit.LSU,
    FunctionalUnit.CONTROL,
)

#: Units whose failures are SRAM bit-cell failures.
SRAM_UNITS = (
    FunctionalUnit.L1_SRAM,
    FunctionalUnit.L2_SRAM,
    FunctionalUnit.L3_SRAM,
)


@dataclass(frozen=True)
class FailureCurve:
    """Logistic per-run failure probability in supply voltage.

    ``probability(v) = ceiling * sigmoid((midpoint_mv - v) / scale_mv)``

    so the probability rises toward ``ceiling`` as the voltage drops
    below ``midpoint_mv``.
    """

    midpoint_mv: float
    scale_mv: float
    ceiling: float = 1.0

    def __post_init__(self) -> None:
        if self.scale_mv <= 0:
            raise ConfigurationError("scale_mv must be positive")
        if not 0.0 <= self.ceiling <= 1.0:
            raise ConfigurationError("ceiling must be within [0, 1]")

    def probability(self, voltage_mv: float) -> float:
        """Per-run failure probability at the given supply voltage."""
        z = (self.midpoint_mv - voltage_mv) / self.scale_mv
        # Clamp to avoid overflow in exp for deep-margin voltages.
        if z < -60.0:
            return 0.0
        if z > 60.0:
            return self.ceiling
        return self.ceiling / (1.0 + math.exp(-z))

    @classmethod
    def anchored(
        cls,
        anchor_mv: float,
        scale_mv: float,
        ceiling: float = 1.0,
        margin_mv: Optional[float] = None,
    ) -> "FailureCurve":
        """Curve that is practically inactive at ``anchor_mv`` and wakes
        up one 5 mV regulator step below it.

        ``margin_mv`` is the gap between the anchor and the logistic
        midpoint; by default it scales with the curve's steepness (so
        the anchor-side probability is ~3e-4 regardless of scale),
        which is what the observable Vmin/crash edges need.  Interior
        curves pass a fixed margin instead, keeping their onset
        ordering stable across unsafe-region widths.
        """
        if margin_mv is None:
            margin_mv = _ANCHOR_MARGIN_STEPS * scale_mv
        return cls(
            midpoint_mv=anchor_mv - margin_mv,
            scale_mv=scale_mv,
            ceiling=ceiling,
        )


@dataclass(frozen=True)
class UnitFailureModel:
    """Failure curve of one functional unit under one workload.

    ``stress`` is the workload's relative exercise of this unit in
    [0, 1]; it scales the effective failure probability (a unit that a
    program never exercises cannot corrupt that program's output).
    """

    unit: FunctionalUnit
    curve: FailureCurve
    stress: float = 1.0

    def probability(self, voltage_mv: float) -> float:
        """Per-run probability that this unit causes a visible failure."""
        return self.curve.probability(voltage_mv) * self.stress


def _relative_depths(profile: str) -> Dict[FunctionalUnit, float]:
    """Fraction of the unsafe-region width at which each unit's curve
    midpoint sits below the first-failing unit's midpoint.

    Depth 0.0 marks the unit class that defines the safe Vmin.
    """
    if profile == "timing":
        # X-Gene-like: stressed datapath timing fails first (SDCs),
        # SRAM arrays hold on much longer (Section 3.4 self-tests), and
        # the clock/uncore path defines the crash point.
        return {
            FunctionalUnit.FPU: 0.00,
            FunctionalUnit.ALU: 0.05,
            FunctionalUnit.L2_SRAM: 0.35,
            FunctionalUnit.L3_SRAM: 0.45,
            FunctionalUnit.LSU: 0.50,
            FunctionalUnit.L1_SRAM: 0.55,
            FunctionalUnit.CONTROL: 0.65,
            FunctionalUnit.CLOCK_UNCORE: 1.00,
        }
    if profile == "sram":
        # Itanium-like: cache bit-cells brown out first behind ECC, so a
        # wide corrected-error band precedes any timing failure.
        return {
            FunctionalUnit.L2_SRAM: 0.00,
            FunctionalUnit.L3_SRAM: 0.05,
            FunctionalUnit.L1_SRAM: 0.25,
            FunctionalUnit.FPU: 0.60,
            FunctionalUnit.ALU: 0.65,
            FunctionalUnit.LSU: 0.70,
            FunctionalUnit.CONTROL: 0.80,
            FunctionalUnit.CLOCK_UNCORE: 1.00,
        }
    raise ConfigurationError(f"unknown failure profile {profile!r}")


def build_unit_models(
    calibration: ChipCalibration,
    core: int,
    stress: float,
    smoothness: float,
    freq_mhz: int = FREQ_MAX_MHZ,
    unit_stress: Optional[Mapping[FunctionalUnit, float]] = None,
    profile: Optional[str] = None,
    anchor_shift_mv: float = 0.0,
    timing_relief_mv: float = 0.0,
) -> Dict[FunctionalUnit, UnitFailureModel]:
    """Build the per-unit failure models for one characterization setup.

    Parameters
    ----------
    calibration:
        Chip anchor model.
    core:
        Core index 0..7.
    stress, smoothness:
        The workload's aggregate timing stress and severity smoothness
        (see :mod:`repro.workloads.benchmark`).
    freq_mhz:
        PMD frequency.  At or below the clock-division boundary
        (1.2 GHz) the paper observed *only* crashes below the safe Vmin,
        so every unit except the clock/uncore path is disabled.
    unit_stress:
        Optional per-unit relative exercise in [0, 1].  Unknown units
        default to 1.0 (fully exercised).
    profile:
        Override the chip's failure profile ("timing" / "sram").
    anchor_shift_mv:
        Uniform upward shift of every anchor: the dynamic-margin
        erosions of the extension models (elevated die temperature,
        NBTI aging, supply droop) all act by needing that much more
        voltage for the same behaviour.
    timing_relief_mv:
        Downward shift of the *timing-path* anchors only (ALU, FPU,
        LSU, control): what an adaptive-clocking unit recovers by
        stretching the clock through droops (the paper's footnote 1 --
        "adaptive-clocking can reduce the voltage at which SDCs
        occur").  SRAM retention and the clock/uncore crash point are
        not helped.
    """
    if anchor_shift_mv < 0:
        raise ConfigurationError("anchor_shift_mv must be non-negative")
    if timing_relief_mv < 0:
        raise ConfigurationError("timing_relief_mv must be non-negative")
    profile = profile or calibration.failure_profile
    vmin = calibration.vmin_mv(core, stress, freq_mhz) + anchor_shift_mv
    width = calibration.unsafe_width_mv(smoothness, freq_mhz)
    crash = vmin - width
    depths = dict(_relative_depths(profile))
    stresses = dict(unit_stress or {})
    # The calibration anchor already folds the workload's *absolute*
    # stress level into the Vmin, so the datapath stress vector is
    # interpreted relatively: the most exercised of ALU/FPU defines the
    # observable Vmin edge (stress 1.0, depth 0) and the other one sits
    # just behind it.
    alu = float(stresses.get(FunctionalUnit.ALU, 1.0))
    fpu = float(stresses.get(FunctionalUnit.FPU, 1.0))
    peak = max(alu, fpu)
    if peak > 0:
        stresses[FunctionalUnit.ALU] = alu / peak
        stresses[FunctionalUnit.FPU] = fpu / peak
    if profile == "timing" and alu > fpu:
        depths[FunctionalUnit.ALU], depths[FunctionalUnit.FPU] = (
            depths[FunctionalUnit.FPU],
            depths[FunctionalUnit.ALU],
        )

    models: Dict[FunctionalUnit, UnitFailureModel] = {}
    for unit in FunctionalUnit:
        if unit is FunctionalUnit.CLOCK_UNCORE:
            # Defines the crash anchor; steep and workload-independent.
            curve = FailureCurve.anchored(crash + 5, scale_mv=1.0)
            models[unit] = UnitFailureModel(unit, curve, stress=1.0)
            continue
        if width <= 5:
            # Clock-division regime: no unsafe region, nothing but
            # crashes below the safe Vmin (Section 3.2).
            curve = FailureCurve(midpoint_mv=0.0, scale_mv=1.0, ceiling=0.0)
            models[unit] = UnitFailureModel(unit, curve, stress=0.0)
            continue
        depth = depths[unit]
        anchor = vmin - depth * width
        if unit in TIMING_UNITS:
            anchor -= timing_relief_mv
        # The first-failing class is steep (it defines the observable
        # Vmin edge); deeper classes wake up more gradually -- with a
        # fixed 10 mV onset margin so their ordering holds for every
        # unsafe-region width -- which is what produces the smooth
        # severity ramps of Figure 5.
        if depth <= 0.05:
            curve = FailureCurve.anchored(anchor, scale_mv=1.0)
        else:
            curve = FailureCurve.anchored(anchor, scale_mv=2.5, margin_mv=10.0)
        models[unit] = UnitFailureModel(
            unit, curve, stress=float(stresses.get(unit, 1.0))
        )
    return models
