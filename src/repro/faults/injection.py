"""Deterministic fault injection for tests and what-if studies.

The characterization framework normally observes faults *sampled* by the
voltage model.  For testing the full reporting path (cache -> ECC ->
EDAC -> parser -> severity) it is much more convenient to *force* a
specific fault at a specific place, which is what :class:`FaultInjector`
provides: a scriptable queue of injections that a cache model or an
effect sampler consumes instead of its random draw.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Optional, Tuple

from ..errors import ConfigurationError
from .models import FunctionalUnit


@dataclass(frozen=True)
class Injection:
    """One scripted fault.

    ``unit`` says where the fault lands; ``bit_positions`` is used for
    SRAM units (how many / which codeword bits to flip); ``run_index``
    optionally pins the injection to the n-th sampled run.
    """

    unit: FunctionalUnit
    bit_positions: Tuple[int, ...] = (0,)
    run_index: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.bit_positions:
            raise ConfigurationError("bit_positions must not be empty")


class FaultInjector:
    """FIFO of scripted injections consumed by the simulation hooks.

    The injector is intentionally dumb: it neither knows voltages nor
    probabilities.  Components that support injection call
    :meth:`take` with their unit at each run; if the head of the queue
    matches (unit and, when set, run index), the injection is consumed
    and returned.
    """

    def __init__(self, injections: Iterable[Injection] = ()) -> None:
        self._queue: Deque[Injection] = deque(injections)
        self._run_counter = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __eq__(self, other: object) -> bool:
        # Equality is over the scripted queue only: the run counter is
        # execution state, and a codec-cloned injector starts at run 0.
        if not isinstance(other, FaultInjector):
            return NotImplemented
        return self.pending() == other.pending()

    def pending(self) -> Tuple[Injection, ...]:
        """The not-yet-consumed injections, in queue order."""
        return tuple(self._queue)

    def schedule(self, injection: Injection) -> None:
        """Append one scripted fault."""
        self._queue.append(injection)

    def begin_run(self) -> int:
        """Advance the run counter; returns the new run index."""
        self._run_counter += 1
        return self._run_counter

    @property
    def current_run(self) -> int:
        return self._run_counter

    def take(self, unit: FunctionalUnit) -> Optional[Injection]:
        """Consume the head injection if it targets ``unit`` now."""
        if not self._queue:
            return None
        head = self._queue[0]
        if head.unit is not unit:
            return None
        if head.run_index is not None and head.run_index != self._run_counter:
            return None
        return self._queue.popleft()
