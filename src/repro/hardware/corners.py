"""Process corners of the characterized parts.

Section 3 of the paper studies three 28 nm parts: the nominal **TTT**
part, the fast/leaky **TFF** corner and the slow/low-leakage **TSS**
corner.  This module captures the electrical personality of each corner
(leakage, threshold voltage, attainable frequency) that the power and
timing models consume; the Vmin anchors live separately in
:mod:`repro.data.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.calibration import CHIP_NAMES, chip_calibration
from ..errors import ConfigurationError


@dataclass(frozen=True)
class ProcessCorner:
    """Electrical personality of one process corner."""

    #: Corner name (matches the chip name in this study).
    name: str
    #: Leakage power relative to the TTT part at nominal V and T.
    leakage_rel: float
    #: Effective transistor threshold voltage in mV (drives the
    #: alpha-power timing model; lower threshold = faster, leakier).
    threshold_mv: float
    #: Maximum PLL-stable frequency in MHz at nominal voltage.  All
    #: three parts ship fused at 2.4 GHz, but the fast corner has
    #: silicon headroom above it (Section 3: "can operate at higher
    #: frequency").
    silicon_fmax_mhz: int
    #: Velocity-saturation exponent of the alpha-power delay law.
    alpha: float = 1.3

    def __post_init__(self) -> None:
        if self.leakage_rel <= 0:
            raise ConfigurationError("leakage_rel must be positive")
        if not 300 <= self.threshold_mv <= 700:
            raise ConfigurationError("threshold_mv out of plausible 28nm range")


_CORNERS = {
    "TTT": ProcessCorner(name="TTT", leakage_rel=1.00, threshold_mv=550.0,
                         silicon_fmax_mhz=2400),
    "TFF": ProcessCorner(name="TFF", leakage_rel=1.35, threshold_mv=525.0,
                         silicon_fmax_mhz=2700),
    "TSS": ProcessCorner(name="TSS", leakage_rel=0.70, threshold_mv=575.0,
                         silicon_fmax_mhz=2400),
}

assert set(_CORNERS) == set(CHIP_NAMES)


def corner_for_chip(chip: str) -> ProcessCorner:
    """Process corner of one of the three characterized parts.

    The leakage figure is cross-checked against the calibration table so
    the two views of a chip can never drift apart.
    """
    try:
        corner = _CORNERS[chip]
    except KeyError:
        raise ConfigurationError(
            f"unknown chip {chip!r}; expected one of {CHIP_NAMES}"
        ) from None
    calibration = chip_calibration(chip)
    if abs(corner.leakage_rel - calibration.leakage_rel) > 1e-9:
        raise ConfigurationError(
            f"corner/calibration leakage mismatch for {chip}"
        )
    return corner
