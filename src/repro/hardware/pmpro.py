"""PMpro: the Power Management processor.

Section 2.1: *"The dedicated PMpro processor provides advanced power
management capabilities, such as multiple power planes and clock
gating, thermal protection circuits, Advanced Configuration Power
Interface (ACPI) power management states and external power throttling
support."*

The model keeps the pieces the study interacts with: ACPI state
transitions (what the watchdog's power button toggles), thermal
protection (hard trip that forces a shutdown) and an external throttle
that caps PMD frequencies.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from ..errors import MachineStateError
from ..units import FREQ_MAX_MHZ, validate_frequency_mhz
from .clocking import ClockController


class AcpiState(enum.Enum):
    """The ACPI system states the platform exposes."""

    #: Working.
    S0 = "S0"
    #: Suspend-to-RAM (not used by the campaigns, modelled for API
    #: completeness).
    S3 = "S3"
    #: Soft-off -- what the power button toggles into.
    S5 = "S5"


class PmPro:
    """Power-management processor: ACPI, thermal trip, throttling."""

    #: Thermal protection trip point, degrees Celsius.
    THERMAL_TRIP_C = 95.0

    def __init__(self, clocks: ClockController) -> None:
        self._clocks = clocks
        self._state = AcpiState.S5
        self._throttle_cap_mhz: Optional[int] = None
        #: Event log of (event, detail) tuples.
        self.events: List[Tuple[str, str]] = []

    @property
    def acpi_state(self) -> AcpiState:
        return self._state

    # -- ACPI transitions --------------------------------------------------

    def power_up(self) -> None:
        """S5 -> S0 (power button while off)."""
        if self._state is AcpiState.S0:
            raise MachineStateError("already in S0")
        self._state = AcpiState.S0
        self.events.append(("acpi", "S0"))

    def power_down(self) -> None:
        """Any state -> S5 (power button held / watchdog power cut)."""
        self._state = AcpiState.S5
        self.events.append(("acpi", "S5"))

    def suspend(self) -> None:
        """S0 -> S3."""
        if self._state is not AcpiState.S0:
            raise MachineStateError("can only suspend from S0")
        self._state = AcpiState.S3
        self.events.append(("acpi", "S3"))

    # -- protection ---------------------------------------------------------

    def check_thermal(self, temp_c: float) -> bool:
        """Thermal protection: trips (and powers down) above the limit.

        Returns True when the trip fired.
        """
        if temp_c >= self.THERMAL_TRIP_C:
            self.events.append(("thermal_trip", f"{temp_c:.1f}C"))
            self.power_down()
            return True
        return False

    def set_throttle_cap_mhz(self, cap_mhz: Optional[int]) -> None:
        """External power throttling: cap every PMD's frequency."""
        if cap_mhz is not None:
            cap_mhz = validate_frequency_mhz(cap_mhz)
            for pmd in range(len(self._clocks.frequencies())):
                if self._clocks.pmd_frequency_mhz(pmd) > cap_mhz:
                    self._clocks.set_pmd_frequency_mhz(pmd, cap_mhz)
            self.events.append(("throttle", f"cap={cap_mhz}MHz"))
        else:
            self.events.append(("throttle", "released"))
        self._throttle_cap_mhz = cap_mhz

    def effective_cap_mhz(self) -> int:
        """Current frequency ceiling (max frequency when unthrottled)."""
        return self._throttle_cap_mhz or FREQ_MAX_MHZ
