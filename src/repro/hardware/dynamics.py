"""Dynamic-margin models: supply droop, adaptive clocking, temperature
sensitivity and aging.

These are the library's *extension* models -- phenomena the paper
discusses (its guardbands exist exactly to cover them: Section 1,
footnote 1 in Section 4.4, and the related work of Section 7) but does
not characterize separately because a physical machine cannot switch
them off.  A simulator can, so each becomes an explicit, ablatable
knob:

* :class:`SupplyDroopModel` -- workload-driven di/dt droop that erodes
  the effective margin (more eroded for high-activity workloads);
* :class:`AdaptiveClockingUnit` -- the circuit technique of
  [Sundaram'16, Whatmough'15] (paper footnote 1): stretch the clock
  through droops, recovering timing margin at a small throughput cost;
* :class:`TemperatureSensitivity` -- Vmin drift per kelvin away from
  the 43 C characterization setpoint;
* :class:`AgingModel` -- NBTI/PBTI threshold-voltage drift over
  operating hours, eroding the guardband of a deployed part.

Every model reduces to a millivolt shift of the failure-model anchors
(see :func:`repro.faults.models.build_unit_models`), so the whole
characterization / prediction / scheduling stack works on top of any
combination of them unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import CHARACTERIZATION_TEMP_C, FREQ_MAX_MHZ
from ..workloads.benchmark import WorkloadTraits


@dataclass(frozen=True)
class SupplyDroopModel:
    """Workload-dependent di/dt supply droop.

    The droop magnitude scales with the workload's switching activity
    (IPC and datapath intensity are the classic di/dt drivers) and with
    frequency; a resonance bonus models the mid-frequency PDN peak the
    ARM power-delivery studies report [Whatmough'15].
    """

    #: Droop at full activity and full frequency, mV.
    max_droop_mv: float = 15.0
    #: Fraction of the droop present even for quiet workloads.
    floor_fraction: float = 0.2
    #: Extra droop multiplier at the PDN resonance frequency.
    resonance_gain: float = 1.3
    #: Frequency of the PDN resonance peak, MHz (first-droop band).
    resonance_mhz: int = 1800

    def __post_init__(self) -> None:
        if self.max_droop_mv < 0:
            raise ConfigurationError("max_droop_mv must be non-negative")
        if not 0.0 <= self.floor_fraction <= 1.0:
            raise ConfigurationError("floor_fraction must be within [0, 1]")

    def activity_of(self, traits: WorkloadTraits) -> float:
        """Switching-activity proxy in [0, 1] from a trait vector."""
        compute = traits.fp_ratio + traits.simd_ratio
        return min(1.0, (traits.ipc / 2.4) * (0.6 + 0.8 * compute))

    def droop_mv(self, traits: WorkloadTraits, freq_mhz: int = FREQ_MAX_MHZ) -> float:
        """Expected worst droop of one run, mV."""
        activity = self.activity_of(traits)
        f_rel = freq_mhz / FREQ_MAX_MHZ
        resonance = 1.0 + (self.resonance_gain - 1.0) * math.exp(
            -((freq_mhz - self.resonance_mhz) / 600.0) ** 2
        )
        level = self.floor_fraction + (1.0 - self.floor_fraction) * activity
        return self.max_droop_mv * level * f_rel * resonance


@dataclass(frozen=True)
class AdaptiveClockingUnit:
    """Droop-triggered clock stretching (paper footnote 1).

    When armed, timing paths get ``recovery_mv`` of their margin back
    (SDCs move to lower voltages) because the clock slows down through
    the droop.  The cost is throughput: the deeper below the *unaided*
    SDC onset the machine runs, the more often adaptation deploys.
    """

    #: Timing margin recovered, mV.
    recovery_mv: float = 15.0
    #: Throughput loss while adaptation is deployed (clock stretched).
    stretch_penalty: float = 0.05
    #: How quickly the deployment duty cycle saturates below the
    #: unaided onset, per mV.
    deployment_slope_per_mv: float = 0.1

    def __post_init__(self) -> None:
        if self.recovery_mv < 0:
            raise ConfigurationError("recovery_mv must be non-negative")
        if not 0.0 <= self.stretch_penalty <= 1.0:
            raise ConfigurationError("stretch_penalty must be within [0, 1]")

    def deployment_duty(self, voltage_mv: float, unaided_onset_mv: float) -> float:
        """Fraction of cycles spent adapting at a supply voltage."""
        depth = unaided_onset_mv - voltage_mv
        if depth <= 0:
            return 0.0
        return min(1.0, self.deployment_slope_per_mv * depth)

    def runtime_factor(self, voltage_mv: float, unaided_onset_mv: float) -> float:
        """Multiplicative runtime overhead at a supply voltage."""
        duty = self.deployment_duty(voltage_mv, unaided_onset_mv)
        return 1.0 + self.stretch_penalty * duty


@dataclass(frozen=True)
class RollbackUnit:
    """DeCoR-style delayed-commit-and-rollback (Section 7, ref. [34]).

    Architectural state commits only after results are validated; a
    detected timing error triggers a replay instead of corrupting the
    output.  Detection is imperfect (``detection_coverage``) and each
    replay costs ``rollback_penalty`` of the affected run's time.

    The unit converts detected would-be SDCs into clean-but-slower
    runs: an orthogonal mitigation to adaptive clocking (which shifts
    the onset) and to stronger ECC (which protects state, not logic).
    """

    #: Fraction of timing-error SDCs the checker catches.
    detection_coverage: float = 0.9
    #: Runtime overhead of one detected-and-replayed run.
    rollback_penalty: float = 0.10

    def __post_init__(self) -> None:
        if not 0.0 <= self.detection_coverage <= 1.0:
            raise ConfigurationError("detection_coverage must be within [0, 1]")
        if self.rollback_penalty < 0:
            raise ConfigurationError("rollback_penalty must be non-negative")


@dataclass(frozen=True)
class TemperatureSensitivity:
    """Vmin drift away from the characterization temperature.

    The study pins the die at 43 C precisely because Vmin is
    temperature-dependent; this model makes the dependency explicit so
    "what if the fan setpoint were 60 C" is answerable.
    """

    #: Vmin increase per kelvin above the setpoint, mV/K.  (Inverse
    #: temperature dependence of delay is mild at 28 nm; retention
    #: worsens with heat, so the net guardband erodes when hot.)
    mv_per_kelvin: float = 0.3
    reference_c: float = CHARACTERIZATION_TEMP_C

    def shift_mv(self, temp_c: float) -> float:
        """Anchor shift at a die temperature (never negative: running
        colder does not relax the characterized anchors, it only adds
        untapped margin)."""
        return max(0.0, self.mv_per_kelvin * (temp_c - self.reference_c))


@dataclass(frozen=True)
class AgingModel:
    """BTI-style guardband erosion over operating time.

    Threshold-voltage drift follows the classic power law in stress
    time; the chip's Vmin rises accordingly.  A freshly characterized
    part therefore *loses* harvested margin in deployment -- the reason
    the paper's online predictor (rather than a one-off table) matters.
    """

    #: Vmin shift after 1000 hours at full activity, mV.
    shift_mv_per_1000h: float = 8.0
    #: Power-law time exponent (classic BTI ~ t^0.2).
    exponent: float = 0.2

    def __post_init__(self) -> None:
        if self.shift_mv_per_1000h < 0:
            raise ConfigurationError("shift_mv_per_1000h must be non-negative")
        if not 0.0 < self.exponent <= 1.0:
            raise ConfigurationError("exponent must be within (0, 1]")

    def shift_mv(self, stress_hours: float) -> float:
        """Anchor shift after ``stress_hours`` of full-activity life."""
        if stress_hours < 0:
            raise ConfigurationError("stress_hours must be non-negative")
        return self.shift_mv_per_1000h * (stress_hours / 1000.0) ** self.exponent

    def remaining_guardband_mv(
        self, initial_guardband_mv: float, stress_hours: float
    ) -> float:
        """Guardband left after aging (floored at zero)."""
        return max(0.0, initial_guardband_mv - self.shift_mv(stress_hours))

    def hours_until_exhausted(self, guardband_mv: float) -> float:
        """Operating hours until aging consumes a given guardband."""
        if guardband_mv <= 0:
            return 0.0
        if self.shift_mv_per_1000h == 0:
            return float("inf")
        return 1000.0 * (guardband_mv / self.shift_mv_per_1000h) ** (
            1.0 / self.exponent
        )
