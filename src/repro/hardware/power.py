"""Chip power model.

Calibrated against every savings figure in the paper (see DESIGN.md §5):
the PMD-domain dynamic power follows ``(V/V0)^2 * (f_eff/f0)`` per PMD,
which reproduces the prose numbers exactly --

* 915 mV, all PMDs at 2.4 GHz  -> 87.2 % relative power (12.8 % saving),
* 885 mV                       -> 81.6 % (19.4 % saving at 880 mV),
* 760 mV, all PMDs at 1.2 GHz  -> 30.1 % (69.9 % saving)

-- and the intermediate Figure-9 points to the digit.  The only
published number it cannot hit is Figure 9's 37.6 % at 760 mV, which is
inconsistent with the paper's own prose (69.9 % saving); setting
``clock_tree_fraction=0.25`` attributes a quarter of the dynamic power
to the always-full-rate input clock tree (clock *skipping* keeps it
toggling; Section 3.2) and reproduces the figure instead.

Absolute watts are scaled to the 35 W TDP of Table 2 for the thermal
loop; all energy-efficiency analyses use the relative views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import math

from ..errors import ConfigurationError
from ..units import FREQ_MAX_MHZ, PMD_NOMINAL_MV, SOC_NOMINAL_MV
from .clocking import ClockMechanism, mechanism_for
from .corners import ProcessCorner
from .domains import NUM_PMDS


@dataclass(frozen=True)
class PowerModel:
    """Analytic power model of one X-Gene 2 part."""

    corner: ProcessCorner
    #: Fraction of PMD dynamic power burnt in the input clock tree,
    #: which does not slow down under clock *skipping*.  0 by default
    #: (matches the paper's prose and Figure-9 points A-D); 0.25
    #: reproduces Figure 9's 760 mV point instead.
    clock_tree_fraction: float = 0.0
    #: Absolute budget split at nominal, watts (sums to ~TDP with
    #: nominal leakage).
    pmd_dynamic_nominal_w: float = 24.0
    soc_nominal_w: float = 6.0
    leakage_nominal_w: float = 5.0
    #: Leakage temperature sensitivity, e-fold per this many kelvin.
    leakage_temp_efold_k: float = 25.0
    reference_temp_c: float = 43.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.clock_tree_fraction < 1.0:
            raise ConfigurationError("clock_tree_fraction must be in [0, 1)")

    # -- relative views (what the paper's percentages are computed on) --

    def pmd_frequency_factor(self, freq_mhz: int) -> float:
        """Relative switching activity of one PMD at a frequency.

        Under clock *division* (exactly half rate) everything, including
        the local clock tree, runs at half rate.  Under *skipping* the
        configured fraction of the clock tree keeps full-rate toggling.
        """
        f_rel = freq_mhz / FREQ_MAX_MHZ
        mechanism = mechanism_for(freq_mhz)
        if mechanism is ClockMechanism.SKIPPING and self.clock_tree_fraction > 0:
            return (1.0 - self.clock_tree_fraction) * f_rel + self.clock_tree_fraction
        if mechanism is ClockMechanism.DIVISION and self.clock_tree_fraction > 0:
            # The divided clock halves the core but the input tree up to
            # the divider still toggles at full rate.
            return (1.0 - self.clock_tree_fraction) * f_rel + self.clock_tree_fraction
        return f_rel

    def pmd_power_rel(
        self, pmd_voltage_mv: int, pmd_freqs_mhz: Sequence[int]
    ) -> float:
        """PMD-domain dynamic power relative to nominal (all PMDs at
        2.4 GHz, 980 mV).  This is the quantity behind every savings
        percentage in the paper."""
        if len(pmd_freqs_mhz) != NUM_PMDS:
            raise ConfigurationError(f"expected {NUM_PMDS} PMD frequencies")
        v_rel_sq = (pmd_voltage_mv / PMD_NOMINAL_MV) ** 2
        freq_sum = sum(self.pmd_frequency_factor(f) for f in pmd_freqs_mhz)
        return v_rel_sq * freq_sum / NUM_PMDS

    def leakage_w(self, pmd_voltage_mv: int, temp_c: float) -> float:
        """Leakage power in watts at a PMD voltage and die temperature."""
        v_rel = pmd_voltage_mv / PMD_NOMINAL_MV
        temp_factor = math.exp((temp_c - self.reference_temp_c) / self.leakage_temp_efold_k)
        return self.leakage_nominal_w * self.corner.leakage_rel * v_rel * temp_factor

    # -- absolute view --------------------------------------------------------

    def chip_power_w(
        self,
        pmd_voltage_mv: int,
        pmd_freqs_mhz: Sequence[int],
        soc_voltage_mv: int = SOC_NOMINAL_MV,
        temp_c: float = 43.0,
        activity: float = 1.0,
    ) -> float:
        """Total chip power in watts.

        ``activity`` scales the PMD dynamic component for idle/partial
        workloads (1.0 = every core fully busy).
        """
        if not 0.0 <= activity <= 1.0:
            raise ConfigurationError("activity must be within [0, 1]")
        pmd_dyn = (
            self.pmd_dynamic_nominal_w
            * self.pmd_power_rel(pmd_voltage_mv, pmd_freqs_mhz)
            * activity
        )
        soc = self.soc_nominal_w * (soc_voltage_mv / SOC_NOMINAL_MV) ** 2
        return pmd_dyn + soc + self.leakage_w(pmd_voltage_mv, temp_c)

    def energy_j(
        self,
        runtime_s: float,
        pmd_voltage_mv: int,
        pmd_freqs_mhz: Sequence[int],
        **kwargs,
    ) -> float:
        """Energy of a run: power times wall-clock time."""
        if runtime_s < 0:
            raise ConfigurationError("runtime_s must be non-negative")
        return self.chip_power_w(pmd_voltage_mv, pmd_freqs_mhz, **kwargs) * runtime_s
