"""Process-variation model: generating additional chips.

The paper characterizes three specific parts (TTT/TFF/TSS).  This
module generalises their calibration into a *population* model so
fleet-level questions -- how do Vmin guardbands distribute across a
rack of micro-servers? how conservative is a single chip-wide setting
for a whole fleet? -- become runnable experiments:

* per-corner distributions of the robust-core floor and the
  stress span, centred on the characterized parts;
* per-core variation offsets drawn with the same structure the real
  parts show (a robust PMD, a sensitive PMD, bounded spread);
* deterministic generation: a (corner, serial) pair always yields the
  same chip.

Generated chips are ordinary :class:`~repro.data.calibration.
ChipCalibration` objects, so every framework, predictor and scheduler
in the library runs on them unchanged.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..data.calibration import ChipCalibration, chip_calibration, round5
from ..errors import ConfigurationError
from ..units import PMD_NOMINAL_MV
from .corners import corner_for_chip
from .xgene2 import XGene2Chip


@dataclass(frozen=True)
class CornerPopulation:
    """Distribution parameters of one process corner's population."""

    corner: str
    #: Mean / sigma of the zero-stress robust-core Vmin at 2.4 GHz, mV.
    base_vmin_mean_mv: float
    base_vmin_sigma_mv: float
    #: Mean / sigma of the stress span, mV.
    span_mean_mv: float
    span_sigma_mv: float
    #: Sigma of the per-core variation offsets around their PMD mean.
    core_offset_sigma_mv: float
    #: Mean / sigma of the 1.2 GHz program-independent Vmin, mV.
    vmin_1200_mean_mv: float
    vmin_1200_sigma_mv: float


def _population_for(corner: str) -> CornerPopulation:
    """Population centred on the characterized part of that corner."""
    anchor = chip_calibration(corner)
    return CornerPopulation(
        corner=corner,
        base_vmin_mean_mv=float(anchor.base_vmin_2400_mv),
        base_vmin_sigma_mv=6.0,
        span_mean_mv=float(anchor.stress_span_mv),
        span_sigma_mv=4.0,
        core_offset_sigma_mv=5.0,
        vmin_1200_mean_mv=float(anchor.vmin_1200_mv),
        vmin_1200_sigma_mv=4.0,
    )


class ChipGenerator:
    """Draws additional parts from a corner's population.

    Parameters
    ----------
    corner:
        "TTT", "TFF" or "TSS" -- the population to sample from.
    lot_seed:
        Identifies the wafer lot; (lot_seed, serial index) is the full
        deterministic identity of a generated chip.
    """

    def __init__(self, corner: str = "TTT", lot_seed: int = 0) -> None:
        self.population = _population_for(corner)
        self.corner = corner_for_chip(corner)
        self.lot_seed = int(lot_seed)

    def _rng_for(self, serial_index: int) -> np.random.Generator:
        key = f"lot{self.lot_seed}|{self.population.corner}|{serial_index}"
        digest = np.frombuffer(
            hashlib.sha256(key.encode()).digest(), dtype=np.uint64
        )
        return np.random.default_rng(digest)

    def calibration(self, serial_index: int) -> ChipCalibration:
        """Generate the calibration of the ``serial_index``-th part."""
        if serial_index < 0:
            raise ConfigurationError("serial_index must be non-negative")
        pop = self.population
        rng = self._rng_for(serial_index)
        base = round5(float(rng.normal(pop.base_vmin_mean_mv,
                                       pop.base_vmin_sigma_mv)))
        span = max(10, round5(float(rng.normal(pop.span_mean_mv,
                                               pop.span_sigma_mv))))
        vmin_1200 = round5(float(rng.normal(pop.vmin_1200_mean_mv,
                                            pop.vmin_1200_sigma_mv)))

        # PMD-structured core offsets: draw a mean offset per PMD, then
        # split it across the pair; shift so the most robust core is 0.
        pmd_means = np.abs(rng.normal(0.0, 12.0, size=4))
        offsets: List[int] = []
        for pmd in range(4):
            for _core in range(2):
                offsets.append(round5(float(
                    pmd_means[pmd] + abs(rng.normal(0.0, pop.core_offset_sigma_mv))
                )))
        floor = min(offsets)
        offsets = [o - floor for o in offsets]
        # Keep the characterized parts' structural invariant: a PMD-2
        # core is the most robust (swap PMD2 with the actually most
        # robust PMD -- equivalent to relabelling the die's PMDs the
        # way the vendor's fusing would).
        robust_pmd = min(range(4), key=lambda p: min(offsets[2 * p:2 * p + 2]))
        if robust_pmd != 2:
            offsets[4:6], offsets[2 * robust_pmd:2 * robust_pmd + 2] = (
                offsets[2 * robust_pmd:2 * robust_pmd + 2], offsets[4:6]
            )
        # Break ties so the most robust core is unambiguously on PMD 2
        # (two exactly-equal cores on one die are a measurement fiction
        # anyway -- 5 mV is the resolution floor).
        for core in (0, 1, 2, 3, 6, 7):
            if offsets[core] == 0:
                offsets[core] = 5
        return ChipCalibration(
            name=f"{pop.corner}-{self.lot_seed}-{serial_index:04d}",
            corner_description=f"generated part, {pop.corner} population",
            base_vmin_2400_mv=base,
            stress_span_mv=span,
            core_offsets_mv=tuple(offsets),
            vmin_1200_mv=vmin_1200,
            leakage_rel=self.corner.leakage_rel * float(rng.uniform(0.9, 1.1)),
            failure_profile="timing",
        )

    def chip(self, serial_index: int) -> XGene2Chip:
        """Generate a full :class:`XGene2Chip` (usable by the machine)."""
        calibration = self.calibration(serial_index)
        return XGene2Chip(
            name=calibration.name,
            calibration=calibration,
            corner=self.corner,
            serial=f"XG2-{calibration.name}",
        )

    def fleet(self, count: int) -> List[XGene2Chip]:
        """Generate ``count`` parts."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        return [self.chip(index) for index in range(count)]


def fleet_vmin_distribution(
    chips: Sequence[XGene2Chip],
    stress: float = 1.0,
    freq_mhz: int = 2400,
) -> Dict[str, float]:
    """Fleet statistics of the chip-level worst-case Vmin.

    The chip-level Vmin (most sensitive core, most demanding workload)
    is what a fleet-wide voltage setting must respect; the gap between
    its mean and max is the saving a per-chip setting recovers.
    """
    if not chips:
        raise ConfigurationError("need at least one chip")
    worst = [
        max(chip.calibration.vmin_mv(core, stress, freq_mhz)
            for core in range(8))
        for chip in chips
    ]
    arr = np.array(worst, dtype=float)
    fleet_setting = float(arr.max())
    per_chip_mean = float(arr.mean())
    return {
        "chips": float(len(chips)),
        "mean_mv": per_chip_mean,
        "std_mv": float(arr.std()),
        "min_mv": float(arr.min()),
        "max_mv": fleet_setting,
        # Saving left on the table by one fleet-wide setting vs
        # per-chip settings, as a fraction of nominal power.
        "fleet_setting_penalty": float(
            (fleet_setting / PMD_NOMINAL_MV) ** 2
            - np.mean((arr / PMD_NOMINAL_MV) ** 2)
        ),
    }
