"""SRAM array model with voltage-dependent bit-cell disturbance.

A cache data array is modelled as a sparse store of 64-bit words plus a
statistical bit-cell failure process: at low supply voltages marginal
cells flip with a probability given by a :class:`~repro.faults.models.
FailureCurve`.  The array does not pre-materialise its capacity (an 8 MB
L3 would be 1M words); only written lines are stored, and disturbance
events are sampled per run from the aggregate rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..faults.models import FailureCurve

#: Bits per protected word (the ECC granule).
WORD_BITS = 64


class SramArray:
    """One SRAM data array (an L1/L2/L3 data or tag macro).

    Parameters
    ----------
    name:
        Diagnostic label, e.g. ``"L2.PMD0.data"``.
    size_kb:
        Array capacity; sets the number of 64-bit words and hence the
        number of cells exposed to disturbance.
    cell_curve:
        Per-run probability that at least one *accessed* marginal cell
        flips in this array, as a function of supply voltage.  The curve
        already folds in the array's activity factor, so the expected
        number of disturbance events per run is
        ``-ln(1 - p_single(v))`` (a Poisson thinning).
    double_fraction:
        Relative rate of two-bit events (two flips landing in the same
        ECC word) versus single-bit events, at equal voltage.  Doubles
        scale with an extra power of the cell failure level.
    """

    def __init__(
        self,
        name: str,
        size_kb: int,
        cell_curve: FailureCurve,
        double_fraction: float = 0.35,
    ) -> None:
        if size_kb <= 0:
            raise ConfigurationError("size_kb must be positive")
        if not 0.0 <= double_fraction <= 1.0:
            raise ConfigurationError("double_fraction must be within [0, 1]")
        self.name = name
        self.size_kb = int(size_kb)
        self.cell_curve = cell_curve
        self.double_fraction = float(double_fraction)
        self._store: Dict[int, int] = {}

    # -- functional word store ------------------------------------------

    @property
    def num_words(self) -> int:
        """Capacity in 64-bit words."""
        return self.size_kb * 1024 // (WORD_BITS // 8)

    def write(self, index: int, word: int) -> None:
        """Store a word (sparse; unwritten words read as zero)."""
        self._check_index(index)
        if word < 0 or word >> WORD_BITS:
            raise ConfigurationError("word must fit in 64 bits")
        self._store[index] = word

    def read(self, index: int) -> int:
        """Read a word back (zero if never written)."""
        self._check_index(index)
        return self._store.get(index, 0)

    def occupied(self) -> int:
        """Number of words explicitly written."""
        return len(self._store)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_words:
            raise ConfigurationError(
                f"word index {index} out of range 0..{self.num_words - 1} in {self.name}"
            )

    # -- disturbance sampling -----------------------------------------------

    def single_event_rate(self, voltage_mv: float) -> float:
        """Expected single-bit disturbance events per run."""
        p = min(self.cell_curve.probability(voltage_mv), 0.999999)
        return -float(np.log1p(-p))

    def double_event_rate(self, voltage_mv: float) -> float:
        """Expected double-bit (same ECC word) events per run."""
        p = min(self.cell_curve.probability(voltage_mv), 0.999999)
        return self.double_fraction * p * self.single_event_rate(voltage_mv)

    def event_rate_table(
        self, voltages: "Tuple[int, ...]"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(single_rates, double_rates)`` over a voltage grid.

        Tabulated by calling the scalar rate methods per voltage (not
        vectorized arithmetic), so each entry is bit-equal to what
        :meth:`sample_disturbances` would compute at run time -- the
        batch kernel's Poisson zero-test thresholds depend on that.
        """
        n = len(voltages)
        singles = np.empty(n, dtype=np.float64)
        doubles = np.empty(n, dtype=np.float64)
        for i, voltage_mv in enumerate(voltages):
            singles[i] = self.single_event_rate(voltage_mv)
            doubles[i] = self.double_event_rate(voltage_mv)
        return singles, doubles

    def sample_disturbances(
        self, voltage_mv: float, rng: np.random.Generator, max_events: int = 16
    ) -> List[Tuple[int, Tuple[int, ...]]]:
        """Sample the disturbance events of one run.

        Returns a list of ``(word_index, flipped_bit_positions)``; the
        event count is Poisson with the configured rates, clipped at
        ``max_events`` to bound worst-case work deep below the crash
        point.
        """
        events: List[Tuple[int, Tuple[int, ...]]] = []
        n_single = int(rng.poisson(self.single_event_rate(voltage_mv)))
        n_double = int(rng.poisson(self.double_event_rate(voltage_mv)))
        for _ in range(min(n_single, max_events)):
            index = int(rng.integers(self.num_words))
            bit = int(rng.integers(WORD_BITS))
            events.append((index, (bit,)))
        for _ in range(min(n_double, max_events)):
            index = int(rng.integers(self.num_words))
            first, second = rng.choice(WORD_BITS, size=2, replace=False)
            events.append((index, (int(first), int(second))))
        return events

    def march_test(self, pattern: int, words: Optional[int] = None) -> int:
        """Self-test helper (Section 3.4 cache tests): fill ``words``
        words with ``pattern`` and its complement alternately, read them
        back, and return the number of mismatching words.

        At nominal voltage the model never disturbs stored words, so the
        march test returns 0; the cache-test *workload* models voltage-
        dependent behaviour through the fault path instead.
        """
        limit = self.num_words if words is None else min(words, self.num_words)
        mask = (1 << WORD_BITS) - 1
        mismatches = 0
        for index in range(limit):
            expected = pattern if index % 2 == 0 else (~pattern & mask)
            self.write(index, expected)
            if self.read(index) != expected:
                mismatches += 1
        return mismatches
