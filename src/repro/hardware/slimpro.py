"""SLIMpro: the Scalable Lightweight Intelligent Management processor.

Section 2.1: *"The dedicated SLIMpro processor monitors system sensors,
configures system attributes (e.g. regulate supply voltage, change DRAM
refresh rate etc.) and accesses all error reporting infrastructure,
using an integrated I2C controller as the instrumentation interface...
SLIMpro can be accessed by the system's running Linux Kernel."*

This model is exactly that interface: voltage regulation, sensor reads
and error-report access, each recorded as an I2C transaction.  The
characterization framework only ever touches the machine through
SLIMpro (plus the serial console and the physical buttons), matching
how the real framework drives the real board.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .domains import VoltageRegulator
from .edac import EdacDriver
from .sensors import FanController

#: Immutable log entry appended on every safe-state restore.
_RESTORE_LOG_ENTRY = ("set_voltage", "all=nominal")


class SlimPro:
    """Management-processor front-end over regulator, sensors and EDAC."""

    def __init__(
        self,
        regulator: VoltageRegulator,
        fan: FanController,
        edac: EdacDriver,
    ) -> None:
        self._regulator = regulator
        self._fan = fan
        self._edac = edac
        #: I2C transaction log: (operation, argument) tuples.
        self.i2c_log: List[Tuple[str, str]] = []
        self._last_power_w = 0.0
        # (voltage_mv, log tuple) of the last shared-plane programming.
        self._pmd_log_cache: Optional[Tuple[int, Tuple[str, str]]] = None

    # -- voltage regulation ----------------------------------------------

    def set_pmd_voltage_mv(self, voltage_mv: int, pmd: int = None) -> None:
        """Program the PMD plane (or one plane in the per-PMD ablation)."""
        self._regulator.set_pmd_voltage_mv(voltage_mv, pmd=pmd)
        if pmd is None:
            # Steady-voltage reprogramming (one entry per run at a
            # level) reuses the immutable log tuple.
            cache = self._pmd_log_cache
            if cache is None or cache[0] != voltage_mv:
                cache = (voltage_mv, ("set_voltage", f"PMD={voltage_mv}mV"))
                self._pmd_log_cache = cache
            self.i2c_log.append(cache[1])
        else:
            self.i2c_log.append(("set_voltage", f"PMD{pmd}={voltage_mv}mV"))

    def get_pmd_voltage_mv(self, pmd: int = 0) -> int:
        return self._regulator.pmd_voltage_mv(pmd)

    def set_soc_voltage_mv(self, voltage_mv: int) -> None:
        self._regulator.set_soc_voltage_mv(voltage_mv)
        self.i2c_log.append(("set_voltage", f"SoC={voltage_mv}mV"))

    def get_soc_voltage_mv(self) -> int:
        return self._regulator.soc.voltage_mv

    def restore_nominal_voltages(self) -> None:
        """Safe-state entry before log collection (Section 2.2.1)."""
        self._regulator.restore_nominal()
        self.i2c_log.append(_RESTORE_LOG_ENTRY)

    # -- sensors / thermal -------------------------------------------------

    def update_power_estimate(self, power_w: float) -> None:
        """The machine reports its current draw for the thermal loop."""
        self._last_power_w = float(power_w)

    def read_temperature_c(self) -> float:
        """Regulated die temperature at the current power draw."""
        temp = self._fan.regulate(self._last_power_w)
        self.i2c_log.append(("read_sensor", f"temp={temp:.1f}C"))
        return temp

    def set_fan_setpoint_c(self, setpoint_c: float) -> None:
        self._fan.setpoint_c = float(setpoint_c)
        self.i2c_log.append(("set_fan", f"setpoint={setpoint_c:.1f}C"))

    # -- error reporting access ----------------------------------------------

    def read_error_counters(self) -> Dict[str, int]:
        """EDAC aggregate counters, through the instrumentation path."""
        counters = self._edac.counters()
        self.i2c_log.append(
            ("read_edac", f"ce={counters['ce_count']},ue={counters['ue_count']}")
        )
        return counters
