"""The X-Gene 2 micro-server: top-level machine composition.

:class:`XGene2Chip` is the silicon (identity, calibration anchors,
corner personality); :class:`XGene2Machine` is the board: chip plus
regulator, clocks, management processors, EDAC, serial console, fan --
everything the characterization framework drives.

The machine has real failure semantics: running a program at a scaled
voltage samples the fault model, and a system crash leaves the machine
**hung** -- the serial heartbeat stops, further run requests raise, and
only the (simulated) physical reset/power buttons bring it back, with
EDAC logs and console state wiped.  The characterization framework must
therefore recover the machine exactly the way the paper's Raspberry-Pi
watchdog does.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional

import numpy as np

from ..data.calibration import ChipCalibration, chip_calibration
from ..effects import EffectType, normalize_effects
from ..errors import ConfigurationError, MachineStateError
from ..faults.manifestation import EffectSampler, ProtectionConfig
from ..faults.models import FailureCurve, build_unit_models
from ..units import (
    CHARACTERIZATION_TEMP_C,
    FREQ_MAX_MHZ,
    PMD_NOMINAL_MV,
)
from ..workloads.benchmark import Benchmark, Program
from ..workloads.execution import (
    corrupted_output,
    reference_output,
    runtime_seconds,
)
from .caches import CacheStack
from .clocking import ClockController
from .corners import ProcessCorner, corner_for_chip
from .domains import NUM_CORES, VoltageRegulator, pmd_of_core
from .edac import EdacDriver
from .pmpro import AcpiState, PmPro
from .pmu import PerformanceMonitoringUnit
from .power import PowerModel
from .sensors import FanController, TemperatureSensor
from .serial_console import BOOT_BANNER, LOGIN_PROMPT, SerialConsole
from .slimpro import SlimPro
from .timing import AlphaPowerTimingModel


class MachineState(enum.Enum):
    """Board-level machine state."""

    OFF = "off"
    RUNNING = "running"
    #: System crash: unresponsive until power-cycled.
    HUNG = "hung"


@dataclass(frozen=True)
class RunOutcome:
    """Everything observable about one program execution."""

    program: str
    core: int
    voltage_mv: int
    freq_mhz: int
    #: Table-3 effect classification of this run.
    effects: FrozenSet[EffectType]
    #: Process exit code; None when the run never finished (SC).
    exit_code: Optional[int]
    #: Output digest; None when no output was produced.
    output: Optional[str]
    #: Golden digest for comparison.
    expected_output: str
    #: EDAC deltas attributable to this run.
    edac_ce: int
    edac_ue: int
    #: Wall-clock runtime (seconds) the run consumed (full runtime even
    #: for crashed runs: the hang is discovered at the timeout).
    runtime_s: float
    #: Raw per-source event counts from the fault model.
    detail: Mapping[str, int] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return self.exit_code == 0

    @property
    def output_matches(self) -> bool:
        return self.output is not None and self.output == self.expected_output


@dataclass(frozen=True)
class XGene2Chip:
    """One physical part: identity + anchors + electrical personality."""

    name: str
    calibration: ChipCalibration
    corner: ProcessCorner
    serial: str = ""

    @classmethod
    def part(cls, chip: str) -> "XGene2Chip":
        """One of the three characterized parts (TTT/TFF/TSS)."""
        return cls(
            name=chip,
            calibration=chip_calibration(chip),
            corner=corner_for_chip(chip),
            serial=f"XG2-{chip}-0001",
        )

    def timing_model(self) -> AlphaPowerTimingModel:
        return AlphaPowerTimingModel.for_corner(self.corner)


class XGene2Machine:
    """The complete micro-server board.

    Parameters
    ----------
    chip:
        The silicon, by name ("TTT") or as an :class:`XGene2Chip`.
    seed:
        Master seed; every run's randomness is derived from it plus the
        run's coordinates, so campaigns replay bit-identically.
    protection:
        Error-protection configuration (Section-6 ablations).
    per_pmd_domains:
        Build the finer-grained-voltage-domain variant of Section 6.
    failure_profile:
        Override the failure mode ("timing" / "sram") for the
        cross-architecture comparison of Section 3.4.
    """

    #: Logical ticks the watchdog treats as the liveness timeout.
    HEARTBEAT_TIMEOUT_TICKS = 10

    def __init__(
        self,
        chip: object = "TTT",
        seed: int = 2017,
        protection: ProtectionConfig = ProtectionConfig(),
        per_pmd_domains: bool = False,
        failure_profile: Optional[str] = None,
        use_cache_models: bool = True,
        droop_model: Optional[object] = None,
        adaptive_clock: Optional[object] = None,
        temperature_sensitivity: Optional[object] = None,
        aging_model: Optional[object] = None,
        rollback_unit: Optional[object] = None,
        injector: Optional[object] = None,
    ) -> None:
        self.chip = chip if isinstance(chip, XGene2Chip) else XGene2Chip.part(str(chip))
        self.seed = int(seed)
        self.protection = protection
        self.failure_profile = failure_profile
        self.use_cache_models = bool(use_cache_models)
        # Dynamic-margin extension models (see repro.hardware.dynamics).
        # All default to off: the calibration anchors describe the
        # machine as characterized (43 C, fresh silicon, droop folded
        # into the measured Vmin).
        self.droop_model = droop_model
        self.adaptive_clock = adaptive_clock
        self.temperature_sensitivity = temperature_sensitivity
        self.aging_model = aging_model
        #: Optional DeCoR-style delayed-commit/rollback checker.
        self.rollback_unit = rollback_unit
        #: Optional scripted fault injector (tests / what-if studies).
        self.injector = injector
        self._stress_hours = 0.0

        self.regulator = VoltageRegulator(per_pmd_domains=per_pmd_domains)
        self.clocks = ClockController()
        self.edac = EdacDriver()
        self.console = SerialConsole()
        self.fan = FanController(TemperatureSensor(), CHARACTERIZATION_TEMP_C)
        self.slimpro = SlimPro(self.regulator, self.fan, self.edac)
        self.pmpro = PmPro(self.clocks)
        self.power_model = PowerModel(corner=self.chip.corner)
        self.timing = self.chip.timing_model()
        self.pmus = [PerformanceMonitoringUnit(core) for core in range(NUM_CORES)]

        self._state = MachineState.OFF
        self._tick = 0
        self._run_counter = 0

    # -- state & physical controls ---------------------------------------

    @property
    def state(self) -> MachineState:
        return self._state

    @property
    def tick(self) -> int:
        """Logical time; advances on every machine operation."""
        return self._tick

    def _advance(self, ticks: int = 1) -> None:
        self._tick += ticks
        if self._state is MachineState.RUNNING:
            self.console.heartbeat(self._tick)

    def power_on(self) -> None:
        """Press the power button (machine must be off)."""
        if self._state is not MachineState.OFF:
            raise MachineStateError(f"power_on in state {self._state.value}")
        self.pmpro.power_up()
        self._boot()

    def power_off(self) -> None:
        """Hold the power button: hard power removal from any state."""
        self.pmpro.power_down()
        self._state = MachineState.OFF
        self.console.go_silent()
        self._advance_off()

    def press_reset(self) -> None:
        """Press the reset button: reboot from RUNNING or HUNG."""
        if self._state is MachineState.OFF:
            raise MachineStateError("reset pressed while powered off")
        if self.pmpro.acpi_state is not AcpiState.S0:
            self.pmpro.power_up()
        self._boot()

    def _boot(self) -> None:
        """Common boot path: firmware defaults, clean kernel state."""
        self.regulator.restore_nominal()
        self.clocks.restore_all(FREQ_MAX_MHZ)
        self.edac.clear()
        self.console.clear()
        for pmu in self.pmus:
            pmu.reset()
        self._state = MachineState.RUNNING
        self._tick += 1
        self.console.write_line(BOOT_BANNER)
        self.console.write_line(LOGIN_PROMPT)
        self.console.heartbeat(self._tick)

    def _advance_off(self) -> None:
        self._tick += 1

    def is_responsive(self) -> bool:
        """What a remote SSH/ping probe would report."""
        return self._state is MachineState.RUNNING

    # -- RNG derivation ------------------------------------------------------

    @property
    def run_counter(self) -> int:
        """Runs executed so far (the per-run RNG derivation counter)."""
        return self._run_counter

    def _run_rng(self, program_name: str, core: int, voltage_mv: int,
                 freq_mhz: int) -> np.random.Generator:
        """Deterministic per-run RNG from stable coordinates."""
        key = (
            f"{self.seed}|{self.chip.name}|{program_name}|{core}|"
            f"{voltage_mv}|{freq_mhz}|{self._run_counter}"
        )
        digest = np.frombuffer(hashlib.sha256(key.encode()).digest(), dtype=np.uint64)
        return np.random.default_rng(digest)

    # -- the fault path ----------------------------------------------------------

    # -- dynamic-margin bookkeeping ------------------------------------------

    @property
    def stress_hours(self) -> float:
        """Accumulated full-activity operating hours (aging input)."""
        return self._stress_hours

    def age(self, hours: float, activity: float = 1.0) -> None:
        """Advance the part's lifetime by ``hours`` at an activity level."""
        if hours < 0 or not 0.0 <= activity <= 1.0:
            raise ConfigurationError("hours must be >= 0, activity in [0, 1]")
        self._stress_hours += hours * activity

    def to_spec(self):
        """Declarative capture of this machine's rebuildable
        configuration (see :mod:`repro.machines`)."""
        from ..machines.spec import MachineSpec

        return MachineSpec.from_machine(self)

    def anchor_shift_mv(self, workload: object, freq_mhz: int) -> float:
        """Total upward anchor shift from the active dynamics models."""
        shift = 0.0
        if self.temperature_sensitivity is not None:
            shift += self.temperature_sensitivity.shift_mv(self.fan.setpoint_c)
        if self.aging_model is not None:
            shift += self.aging_model.shift_mv(self._stress_hours)
        if self.droop_model is not None:
            shift += self.droop_model.droop_mv(workload.traits, freq_mhz)
        return shift

    def _sampler_for(self, workload: object, core: int, voltage_mv: int,
                     freq_mhz: int) -> EffectSampler:
        stress = workload.stress
        smoothness = workload.smoothness
        unit_stress = workload.unit_stress
        relief = (
            self.adaptive_clock.recovery_mv
            if self.adaptive_clock is not None else 0.0
        )
        models = build_unit_models(
            self.chip.calibration,
            core=core,
            stress=stress,
            smoothness=smoothness,
            freq_mhz=freq_mhz,
            unit_stress=unit_stress,
            profile=self.failure_profile,
            anchor_shift_mv=self.anchor_shift_mv(workload, freq_mhz),
            timing_relief_mv=relief,
        )
        cache_stack = (
            CacheStack.for_core(models, protection_ecc=self.protection.ecc)
            if self.use_cache_models
            else None
        )
        return EffectSampler(models, protection=self.protection,
                             cache_stack=cache_stack, injector=self.injector)

    # -- batch-kernel hooks ---------------------------------------------------

    def compile_batch_table(self, workload: object, core: int, freq_mhz: int):
        """Compile this machine's fault surface for the batch kernel.

        Returns a :class:`repro.core.kernel.VoltageTable`, or ``None``
        when some component requires the scalar path: a scripted
        :class:`FaultInjector` (stateful FIFO consumed per run), an
        undervolted SoC domain (adds per-run uncore draws), or an
        extension model that is not exactly one of the pure built-in
        dynamics dataclasses (a stateful subclass could legally mutate
        across runs, which the table cannot represent).
        """
        if self.injector is not None:
            return None
        if self.regulator.soc.voltage_mv < self.chip.calibration.soc_vmin_mv:
            return None
        from .dynamics import (
            AdaptiveClockingUnit,
            AgingModel,
            RollbackUnit,
            SupplyDroopModel,
            TemperatureSensitivity,
        )

        table_safe = (
            (self.droop_model, SupplyDroopModel),
            (self.adaptive_clock, AdaptiveClockingUnit),
            (self.temperature_sensitivity, TemperatureSensitivity),
            (self.aging_model, AgingModel),
            (self.rollback_unit, RollbackUnit),
        )
        for component, built_in in table_safe:
            if component is not None and type(component) is not built_in:
                return None
        if not 0 <= core < NUM_CORES:
            raise ConfigurationError(f"core index must be 0..{NUM_CORES - 1}")
        from ..core.kernel import compile_voltage_table

        program = self._as_program(workload)
        sampler = self._sampler_for(program, core, PMD_NOMINAL_MV, freq_mhz)
        return compile_voltage_table(
            sampler,
            program,
            core=core,
            freq_mhz=freq_mhz,
            chip_name=self.chip.name,
            expected_output=reference_output(program),
            rollback_coverage=(
                self.rollback_unit.detection_coverage
                if self.rollback_unit is not None
                else None
            ),
        )

    def batch_surface_token(self) -> str:
        """Value snapshot of everything a compiled table depends on.

        The framework caches compiled kernels across campaigns keyed by
        this token: any change that could alter the fault surface (an
        injector attaching, a SoC undervolt, an extension model being
        replaced, reconfigured or mutated in place) produces a
        different token and forces a fresh ``compile_batch_table``
        pass.  Value ``repr`` (the dynamics models are plain
        dataclasses) is what makes in-place mutation visible.
        """
        return repr((
            self.injector is not None,
            self.regulator.soc.voltage_mv,
            self.droop_model,
            self.adaptive_clock,
            self.temperature_sensitivity,
            self.aging_model,
            self.rollback_unit,
            self.failure_profile,
            self.protection,
            self.use_cache_models,
        ))

    def kernel_execute(self, table: object, vidx: int,
                       effects: object, detail: dict):
        """Apply one sampled batch-kernel outcome to the machine.

        The kernel samples ``(effects, detail)`` from the compiled
        table (sampling is machine-independent); this method mirrors
        every observable state transition of :meth:`run_program` (run
        counter, power estimate, hang/tick bookkeeping, EDAC reports).
        Returns the log-visible tuple ``(effects, exit_code, output,
        edac_ce, edac_ue, locations)``.
        """
        if self._state is MachineState.HUNG:
            raise MachineStateError("machine is hung; reset it first")
        if self._state is MachineState.OFF:
            raise MachineStateError("machine is powered off")
        self._run_counter += 1
        self.slimpro.update_power_estimate(table.power_w(vidx, self))
        if EffectType.SC in effects:
            self._state = MachineState.HUNG
            self.console.go_silent()
            self._tick += self.HEARTBEAT_TIMEOUT_TICKS + 1
            return effects, None, None, 0, 0, {}
        if detail:
            self._report_edac(detail, table.core)
            ce = int(detail.get("corrected_errors", 0))
            ue = int(detail.get("uncorrected_errors", 0))
            locations = {
                key: value
                for key, value in detail.items()
                if key.startswith(("ce_", "ue_"))
            }
        else:
            ce = 0
            ue = 0
            locations = {}
        if EffectType.AC in effects:
            exit_code: Optional[int] = 139
            output: Optional[str] = None
        else:
            exit_code = 0
            if EffectType.SDC in effects:
                output = corrupted_output(table.program, self._run_counter)
            else:
                output = table.expected_output
        self._advance()
        return effects, exit_code, output, ce, ue, locations

    # -- the PCP/SoC domain's own margin (extension study) ---------------------------

    #: Width of the SoC unsafe band (L3/fabric corrected errors) above
    #: its crash point, mV.
    SOC_UNSAFE_WIDTH_MV = 15

    def _soc_effects(self, rng: np.random.Generator):
        """Sample the uncore's misbehaviour at the current SoC voltage.

        The PCP/SoC domain (L3, DRAM controllers, fabric) can be scaled
        independently (Section 2.1); below its own Vmin the SECDED-
        protected L3 starts correcting, and below that the fabric
        hangs the whole system.  Returns ``(system_crash, ce_events)``.
        """
        soc_voltage = self.regulator.soc.voltage_mv
        soc_vmin = self.chip.calibration.soc_vmin_mv
        if soc_voltage >= soc_vmin:
            return False, 0
        crash_anchor = soc_vmin - self.SOC_UNSAFE_WIDTH_MV
        sc_curve = FailureCurve.anchored(crash_anchor + 5, scale_mv=1.0)
        ce_curve = FailureCurve.anchored(soc_vmin, scale_mv=2.0)
        if rng.random() < sc_curve.probability(soc_voltage):
            return True, 0
        ce_events = int(rng.poisson(3.0 * ce_curve.probability(soc_voltage)))
        return False, ce_events

    # -- program execution ----------------------------------------------------------

    def run_program(
        self,
        program: object,
        core: int,
        timeout_s: Optional[float] = None,
    ) -> RunOutcome:
        """Execute one program pinned to one core at the current V/F.

        ``program`` is a :class:`~repro.workloads.benchmark.Program` or
        a bare :class:`~repro.workloads.benchmark.Benchmark` (treated as
        its "ref" program).
        """
        if self._state is MachineState.HUNG:
            raise MachineStateError("machine is hung; reset it first")
        if self._state is MachineState.OFF:
            raise MachineStateError("machine is powered off")
        if not 0 <= core < NUM_CORES:
            raise ConfigurationError(f"core index must be 0..{NUM_CORES - 1}")
        program = self._as_program(program)

        voltage_mv = self.regulator.core_voltage_mv(core)
        freq_mhz = self.clocks.core_frequency_mhz(core)
        self._run_counter += 1
        rng = self._run_rng(program.name, core, voltage_mv, freq_mhz)

        sampler = self._sampler_for(program, core, voltage_mv, freq_mhz)
        sampled = sampler.sample(voltage_mv, rng)
        soc_crash, soc_ce = self._soc_effects(rng)
        if soc_crash:
            sampled = type(sampled)(
                effects=frozenset({EffectType.SC}),
                detail={"system_crash": 1, "soc_domain": 1},
            )
        elif soc_ce:
            detail = dict(sampled.detail)
            detail["ce_L3"] = detail.get("ce_L3", 0) + soc_ce
            detail["corrected_errors"] = (
                detail.get("corrected_errors", 0) + soc_ce
            )
            effects = (set(sampled.effects) | {EffectType.CE}) - {EffectType.NO}
            sampled = type(sampled)(effects=frozenset(effects), detail=detail)

        rolled_back = False
        if (self.rollback_unit is not None
                and EffectType.SDC in sampled.effects
                and rng.random() < self.rollback_unit.detection_coverage):
            # DeCoR catches the timing error before commit: the run
            # replays and produces the correct output, slower.
            detail = dict(sampled.detail)
            detail.pop("output_mismatch", None)
            detail["rollbacks"] = detail.get("rollbacks", 0) + 1
            sampled = type(sampled)(
                effects=normalize_effects(
                    set(sampled.effects) - {EffectType.SDC}),
                detail=detail,
            )
            rolled_back = True

        runtime = runtime_seconds(program, freq_mhz)
        if rolled_back:
            runtime *= 1.0 + self.rollback_unit.rollback_penalty
        if self.adaptive_clock is not None:
            # Clock stretching costs throughput in proportion to how
            # often it deploys below the unaided SDC onset.
            unaided_onset = (
                self.chip.calibration.vmin_mv(core, program.stress, freq_mhz)
                + self.anchor_shift_mv(program, freq_mhz)
            )
            runtime *= self.adaptive_clock.runtime_factor(
                voltage_mv, unaided_onset)
        if timeout_s is not None:
            runtime = min(runtime, timeout_s)
        expected = reference_output(program)

        # Thermal bookkeeping: the fan loop holds the setpoint.
        power_w = self.power_model.chip_power_w(
            voltage_mv, self.clocks.frequencies(), temp_c=CHARACTERIZATION_TEMP_C
        )
        self.slimpro.update_power_estimate(power_w)

        if EffectType.SC in sampled.effects:
            self._state = MachineState.HUNG
            self.console.go_silent()
            # Time passes until the run's timeout expires with no
            # heartbeat -- which is exactly how the watchdog notices.
            self._tick += self.HEARTBEAT_TIMEOUT_TICKS + 1
            return RunOutcome(
                program=program.name, core=core, voltage_mv=voltage_mv,
                freq_mhz=freq_mhz, effects=sampled.effects,
                exit_code=None, output=None, expected_output=expected,
                edac_ce=0, edac_ue=0, runtime_s=runtime,
                detail=dict(sampled.detail),
            )

        self._report_edac(sampled.detail, core)
        ce = int(sampled.detail.get("corrected_errors", 0))
        ue = int(sampled.detail.get("uncorrected_errors", 0))

        if EffectType.AC in sampled.effects:
            exit_code = 139  # SIGSEGV-style abnormal termination
            output = None
        else:
            exit_code = 0
            if EffectType.SDC in sampled.effects:
                output = corrupted_output(program, self._run_counter)
            else:
                output = expected
        self._advance()
        return RunOutcome(
            program=program.name, core=core, voltage_mv=voltage_mv,
            freq_mhz=freq_mhz, effects=sampled.effects,
            exit_code=exit_code, output=output, expected_output=expected,
            edac_ce=ce, edac_ue=ue, runtime_s=runtime,
            detail=dict(sampled.detail),
        )

    def profile_program(self, program: object, core: int = 0) -> Dict[str, float]:
        """Profile a program at nominal conditions: the full 101-event
        PMU snapshot (Section 4.1's ``perf`` collection step)."""
        if self._state is not MachineState.RUNNING:
            raise MachineStateError("machine must be running to profile")
        program = self._as_program(program)
        if self.regulator.core_voltage_mv(core) != PMD_NOMINAL_MV:
            raise MachineStateError(
                "profiling must happen at nominal voltage (Section 4.1)"
            )
        self._run_counter += 1
        rng = self._run_rng(f"profile:{program.name}", core, PMD_NOMINAL_MV,
                            self.clocks.core_frequency_mhz(core))
        pmu = self.pmus[core]
        pmu.start()
        pmu.record_run(program.trait_dict(), rng)
        self._advance()
        return pmu.stop()

    def _report_edac(self, detail: Mapping[str, int], core: int) -> None:
        """Turn the fault model's location detail into EDAC records."""
        for key, count in detail.items():
            if key.startswith("ce_"):
                self._edac_report_level("ce", key[3:], core, count)
            elif key.startswith("ue_"):
                self._edac_report_level("ue", key[3:], core, count)
        # Analytic path (no cache models): attribute to L2 by default.
        if "corrected_errors" in detail and not any(
            key.startswith("ce_") for key in detail
        ):
            self.edac.report("ce", "L2", core, detail["corrected_errors"])
        if "uncorrected_errors" in detail and not any(
            key.startswith("ue_") for key in detail
        ):
            self.edac.report("ue", "L2", core, detail["uncorrected_errors"])

    def _edac_report_level(self, kind: str, location: str, core: int,
                           count: int) -> None:
        shared = location in ("L3",)
        self.edac.report(kind, location, -1 if shared else core, count)

    @staticmethod
    def _as_program(workload: object) -> Program:
        if isinstance(workload, Program):
            return workload
        if isinstance(workload, Benchmark):
            return workload.programs()[0]
        raise ConfigurationError(
            f"expected a Program or Benchmark, got {type(workload).__name__}"
        )
