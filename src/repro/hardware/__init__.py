"""The simulated APM X-Gene 2 micro-server.

This package is the paper's *testbed substitute*: a behavioural model of
the 8-core ARMv8 X-Gene 2 with the same topology, control interfaces and
error-reporting surfaces the real machine exposes to the
characterization framework:

* four PMDs of two cores each on one shared voltage plane (5 mV steps
  from 980 mV) with per-PMD frequency control (300 MHz..2.4 GHz,
  Section 2.1);
* a PCP/SoC domain (L3, DRAM controllers, fabric) at 950 mV nominal;
* the SLIMpro/PMpro management processors on a standby domain,
  reachable "over I2C" for voltage regulation and error reporting;
* parity-protected L1 caches, SECDED-protected L2/L3 backed by real
  codecs, reported through a Linux-EDAC-like driver;
* a 101-event PMU, a temperature sensor + fan, a serial console with a
  boot banner and heartbeat for the external watchdog.
"""

from .corners import ProcessCorner, corner_for_chip
from .domains import PowerDomain, VoltageRegulator
from .clocking import ClockController, ClockMechanism
from .sram import SramArray
from .caches import CacheLevel, CacheStack
from .timing import AlphaPowerTimingModel
from .pmu import PerformanceMonitoringUnit
from .edac import EdacDriver, EdacRecord
from .sensors import FanController, TemperatureSensor
from .slimpro import SlimPro
from .pmpro import AcpiState, PmPro
from .serial_console import SerialConsole
from .power import PowerModel
from .xgene2 import MachineState, RunOutcome, XGene2Chip, XGene2Machine
from .dynamics import (
    AdaptiveClockingUnit,
    AgingModel,
    RollbackUnit,
    SupplyDroopModel,
    TemperatureSensitivity,
)
from .variation import ChipGenerator, fleet_vmin_distribution

__all__ = [
    "ProcessCorner",
    "corner_for_chip",
    "PowerDomain",
    "VoltageRegulator",
    "ClockController",
    "ClockMechanism",
    "SramArray",
    "CacheLevel",
    "CacheStack",
    "AlphaPowerTimingModel",
    "PerformanceMonitoringUnit",
    "EdacDriver",
    "EdacRecord",
    "FanController",
    "TemperatureSensor",
    "SlimPro",
    "AcpiState",
    "PmPro",
    "SerialConsole",
    "PowerModel",
    "MachineState",
    "RunOutcome",
    "XGene2Chip",
    "XGene2Machine",
    "AdaptiveClockingUnit",
    "AgingModel",
    "RollbackUnit",
    "SupplyDroopModel",
    "TemperatureSensitivity",
    "ChipGenerator",
    "fleet_vmin_distribution",
]
