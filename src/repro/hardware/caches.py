"""Cache hierarchy with real protection codecs in the error path.

Table 2 of the paper:

========  =======================  ====================
Level     Size                     Protection
========  =======================  ====================
L1 instr  32 KB per core           parity
L1 data   32 KB per core           parity
L2        256 KB per PMD           ECC (SECDED)
L3        8 MB shared              ECC (SECDED)
========  =======================  ====================

Every sampled SRAM disturbance is pushed through the *actual* codec of
its level (:mod:`repro.faults.ecc`): an event only becomes a corrected
error if the codec really corrects the flipped codeword, and an
uncorrected error if the codec really detects-without-correcting.  This
keeps the simulated EDAC reports honest -- e.g. swapping SECDED for the
DEC-TED code (Section-6 ablation) changes the CE/UE balance because the
decode outcomes change, not because a probability constant was edited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..faults.ecc import (
    DecodeStatus,
    DectedCode,
    EvenParityCode,
    SecdedCode,
    flip_bits,
)
from ..faults.models import FailureCurve, FunctionalUnit, UnitFailureModel
from .sram import SramArray


@dataclass(frozen=True)
class CacheErrorCounts:
    """Errors observed in the cache hierarchy during one run."""

    ce: int = 0
    ue: int = 0

    def __add__(self, other: "CacheErrorCounts") -> "CacheErrorCounts":
        return CacheErrorCounts(self.ce + other.ce, self.ue + other.ue)


class CacheLevel:
    """One cache level: an SRAM array plus its protection codec.

    ``dirty_fraction`` matters for parity-protected levels: a detected
    parity error on a *clean* line is recoverable (refetch -> corrected
    error semantics), on a *dirty* line the data is lost (uncorrected).
    """

    def __init__(
        self,
        name: str,
        size_kb: int,
        protection: str,
        cell_curve: FailureCurve,
        dirty_fraction: float = 0.0,
    ) -> None:
        if protection not in ("parity", "secded", "dected"):
            raise ConfigurationError(f"unknown protection {protection!r}")
        if not 0.0 <= dirty_fraction <= 1.0:
            raise ConfigurationError("dirty_fraction must be within [0, 1]")
        self.name = name
        self.protection = protection
        self.dirty_fraction = float(dirty_fraction)
        self.array = SramArray(f"{name}.data", size_kb, cell_curve)
        if protection == "parity":
            self._codec = EvenParityCode()
        elif protection == "secded":
            self._codec = SecdedCode()
        else:
            self._codec = DectedCode()

    @property
    def size_kb(self) -> int:
        return self.array.size_kb

    def classify_event(
        self, flipped_bits, rng: np.random.Generator, payload: Optional[int] = None
    ) -> CacheErrorCounts:
        """Run one disturbance event through the real codec.

        A random (or given) payload word is encoded, the event's bit
        positions are flipped *in the codeword*, and the decode outcome
        is mapped to EDAC semantics.
        """
        if payload is None:
            payload = int(rng.integers(0, 1 << 63))
        codeword = self._codec.encode(payload)
        width = self._codec.codeword_bits
        positions = [pos % width for pos in flipped_bits]
        corrupted = flip_bits(codeword, positions)
        result = self._codec.decode(corrupted)
        if result.status is DecodeStatus.CLEAN:
            # Flips cancelled out (same position twice) -- invisible.
            return CacheErrorCounts()
        if result.status is DecodeStatus.CORRECTED:
            return CacheErrorCounts(ce=1)
        if self.protection == "parity":
            # Parity detects but cannot correct; recoverability depends
            # on whether the line was dirty.
            if rng.random() < self.dirty_fraction:
                return CacheErrorCounts(ue=1)
            return CacheErrorCounts(ce=1)
        return CacheErrorCounts(ue=1)

    def sample_errors(
        self, voltage_mv: float, rng: np.random.Generator
    ) -> CacheErrorCounts:
        """Sample and classify this level's disturbances for one run."""
        total = CacheErrorCounts()
        for _index, bits in self.array.sample_disturbances(voltage_mv, rng):
            total = total + self.classify_event(bits, rng)
        return total


class CacheStack:
    """The cache hierarchy visible to one characterized core.

    Exposes ``sample_errors(voltage_mv, rng)`` in the shape
    :class:`repro.faults.manifestation.EffectSampler` expects for its
    ``cache_stack`` hook.
    """

    def __init__(self, levels: List[CacheLevel]) -> None:
        if not levels:
            raise ConfigurationError("cache stack needs at least one level")
        self.levels = list(levels)

    @classmethod
    def for_core(
        cls,
        unit_models: Dict[FunctionalUnit, UnitFailureModel],
        protection_ecc: str = "secded",
    ) -> "CacheStack":
        """Build the Table-2 hierarchy around a core's failure models.

        The per-level cell curves are scaled by the unit-stress factors
        so a workload that barely touches memory also rarely exposes
        marginal cells.
        """
        l1_model = unit_models[FunctionalUnit.L1_SRAM]
        l2_model = unit_models[FunctionalUnit.L2_SRAM]
        l3_model = unit_models[FunctionalUnit.L3_SRAM]

        def scaled(model: UnitFailureModel, activity: float) -> FailureCurve:
            curve = model.curve
            return FailureCurve(
                midpoint_mv=curve.midpoint_mv,
                scale_mv=curve.scale_mv,
                ceiling=curve.ceiling * model.stress * activity,
            )

        return cls(
            [
                CacheLevel("L1I", 32, "parity", scaled(l1_model, 0.35)),
                CacheLevel("L1D", 32, "parity", scaled(l1_model, 0.35),
                           dirty_fraction=0.3),
                CacheLevel("L2", 256, protection_ecc, scaled(l2_model, 0.6)),
                CacheLevel("L3", 8192, protection_ecc, scaled(l3_model, 0.4)),
            ]
        )

    def poisson_rate_table(self, voltages) -> np.ndarray:
        """Per-voltage Poisson event rates of every level's array.

        Row ``i`` holds, for voltage ``voltages[i]``, the channels in
        the exact order :meth:`sample_errors` consumes them: per level
        (stack order) the single-event rate then the double-event rate.
        Built from :meth:`SramArray.event_rate_table` so each rate is
        bit-equal to the scalar path's -- the batch kernel derives its
        zero-event uniform thresholds from these.
        """
        out = np.empty((len(voltages), 2 * len(self.levels)), dtype=np.float64)
        for j, level in enumerate(self.levels):
            singles, doubles = level.array.event_rate_table(voltages)
            out[:, 2 * j] = singles
            out[:, 2 * j + 1] = doubles
        return out

    def sample_errors(self, voltage_mv: float, rng: np.random.Generator) -> Dict[str, int]:
        """Aggregate CE/UE counts across all levels for one run.

        Besides the ``"ce"``/``"ue"`` totals the result carries
        per-level keys (``"ce_L2"``, ``"ue_L3"``, ...) so the EDAC model
        can attribute each error to its reporting location.
        """
        out: Dict[str, int] = {"ce": 0, "ue": 0}
        for level in self.levels:
            counts = level.sample_errors(voltage_mv, rng)
            out["ce"] += counts.ce
            out["ue"] += counts.ue
            if counts.ce:
                out[f"ce_{level.name}"] = counts.ce
            if counts.ue:
                out[f"ue_{level.name}"] = counts.ue
        return out

    def by_level(self, voltage_mv: float, rng: np.random.Generator) -> Dict[str, CacheErrorCounts]:
        """Per-level CE/UE counts (used by the EDAC location reports)."""
        return {level.name: level.sample_errors(voltage_mv, rng) for level in self.levels}
