"""Power domains and the voltage regulator of the X-Gene 2.

Section 2.1: three independently regulated domains --

* **PMD**: all four processor modules (8 cores) share one plane,
  scalable in 5 mV steps from 980 mV;
* **PCP/SoC**: L3, DRAM controllers, central switch, I/O bridge,
  scalable in 5 mV steps from 950 mV;
* **Standby**: SLIMpro/PMpro and the I2C fabric, not scalable.

A key design constraint the paper analyses (Section 6, "finer-grained
voltage domains"): the single PMD plane means the chip voltage is set by
its *weakest* core.  :class:`VoltageRegulator` also supports an optional
per-PMD mode used by the finer-domain ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ConfigurationError, VoltageRangeError
from ..units import PMD_NOMINAL_MV, SOC_NOMINAL_MV, validate_voltage_mv

#: Number of processor modules (PMDs) on the chip.
NUM_PMDS = 4
#: Cores per PMD.
CORES_PER_PMD = 2
#: Total core count.
NUM_CORES = NUM_PMDS * CORES_PER_PMD


def pmd_of_core(core: int) -> int:
    """PMD index (0..3) hosting a core (0..7)."""
    if not 0 <= core < NUM_CORES:
        raise ConfigurationError(f"core index must be 0..{NUM_CORES - 1}, got {core}")
    return core // CORES_PER_PMD


def cores_of_pmd(pmd: int) -> Tuple[int, int]:
    """The two core indices of a PMD."""
    if not 0 <= pmd < NUM_PMDS:
        raise ConfigurationError(f"PMD index must be 0..{NUM_PMDS - 1}, got {pmd}")
    return (pmd * CORES_PER_PMD, pmd * CORES_PER_PMD + 1)


@dataclass
class PowerDomain:
    """One independently regulated supply domain."""

    name: str
    nominal_mv: int
    scalable: bool = True
    _voltage_mv: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self._voltage_mv = self.nominal_mv
        # Last request that passed grid validation (not a dataclass
        # field: a pure cache, excluded from eq/repr).
        self._validated_mv = self.nominal_mv

    @property
    def voltage_mv(self) -> int:
        """Currently programmed supply voltage."""
        return self._voltage_mv

    def set_voltage_mv(self, voltage_mv: int) -> None:
        """Program a new supply voltage (5 mV grid, at or below nominal)."""
        if not self.scalable:
            raise VoltageRangeError(f"domain {self.name!r} is not scalable")
        if voltage_mv == self._validated_mv:
            self._voltage_mv = self._validated_mv
            return
        self._voltage_mv = validate_voltage_mv(voltage_mv, nominal_mv=self.nominal_mv)
        self._validated_mv = self._voltage_mv

    def restore_nominal(self) -> None:
        """Return to the nominal supply (always allowed)."""
        self._voltage_mv = self.nominal_mv

    @property
    def undervolt_mv(self) -> int:
        """How far below nominal the domain currently sits."""
        return self.nominal_mv - self._voltage_mv


class VoltageRegulator:
    """The chip's supply regulators, as SLIMpro exposes them.

    In stock configuration there is a single PMD plane; constructing
    with ``per_pmd_domains=True`` models the Section-6 design
    enhancement of one plane per PMD.
    """

    def __init__(self, per_pmd_domains: bool = False) -> None:
        self.per_pmd_domains = bool(per_pmd_domains)
        self.soc = PowerDomain("PCP/SoC", SOC_NOMINAL_MV)
        self.standby = PowerDomain("Standby", SOC_NOMINAL_MV, scalable=False)
        if self.per_pmd_domains:
            self._pmd_domains = [
                PowerDomain(f"PMD{i}", PMD_NOMINAL_MV) for i in range(NUM_PMDS)
            ]
        else:
            shared = PowerDomain("PMD", PMD_NOMINAL_MV)
            self._pmd_domains = [shared] * NUM_PMDS
        #: The physically distinct PMD planes (one shared plane in
        #: stock configuration) -- what per-plane operations iterate.
        self._distinct_pmd_domains = tuple(
            {id(domain): domain for domain in self._pmd_domains}.values()
        )
        #: Transaction log mirroring what the I2C instrumentation
        #: interface would show (domain name, programmed mV).
        self.transactions: List[Tuple[str, int]] = []
        # Precomputed restore-to-nominal log entries (immutable tuples,
        # safe to append repeatedly).
        self._nominal_transactions = tuple(
            (domain.name, domain.nominal_mv)
            for domain in self._distinct_pmd_domains
        ) + ((self.soc.name, self.soc.nominal_mv),)

    # -- PMD plane(s) -----------------------------------------------------

    def pmd_voltage_mv(self, pmd: int = 0) -> int:
        """Voltage of a PMD's plane (all equal in stock configuration)."""
        self._check_pmd(pmd)
        return self._pmd_domains[pmd].voltage_mv

    def core_voltage_mv(self, core: int) -> int:
        """Supply voltage currently feeding a core."""
        return self.pmd_voltage_mv(pmd_of_core(core))

    def set_pmd_voltage_mv(self, voltage_mv: int, pmd: int = None) -> None:
        """Program the PMD plane (or one plane in per-PMD mode).

        With the stock shared plane, ``pmd`` must be omitted or the call
        raises -- programming "one PMD" is physically impossible, which
        is precisely the limitation the Section-6 ablation removes.
        """
        if pmd is None:
            for domain in self._distinct_pmd_domains:
                domain.set_voltage_mv(voltage_mv)
                self.transactions.append((domain.name, voltage_mv))
            return
        self._check_pmd(pmd)
        if not self.per_pmd_domains:
            raise VoltageRangeError(
                "stock X-Gene 2 has a single PMD voltage plane; "
                "per-PMD programming requires per_pmd_domains=True"
            )
        self._pmd_domains[pmd].set_voltage_mv(voltage_mv)
        self.transactions.append((self._pmd_domains[pmd].name, voltage_mv))

    def set_soc_voltage_mv(self, voltage_mv: int) -> None:
        """Program the PCP/SoC domain (950 mV nominal, 5 mV steps)."""
        self.soc.set_voltage_mv(voltage_mv)
        self.transactions.append((self.soc.name, voltage_mv))

    def restore_nominal(self) -> None:
        """Return every scalable domain to nominal (safe-state entry)."""
        for domain in self._distinct_pmd_domains:
            domain.restore_nominal()
        self.soc.restore_nominal()
        self.transactions.extend(self._nominal_transactions)

    def domains(self) -> Dict[str, PowerDomain]:
        """All distinct domains by name (diagnostics view)."""
        out: Dict[str, PowerDomain] = {}
        for domain in self._pmd_domains:
            out[domain.name] = domain
        out[self.soc.name] = self.soc
        out[self.standby.name] = self.standby
        return out

    @staticmethod
    def _check_pmd(pmd: int) -> None:
        if not 0 <= pmd < NUM_PMDS:
            raise ConfigurationError(f"PMD index must be 0..{NUM_PMDS - 1}, got {pmd}")
