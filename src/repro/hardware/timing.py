"""Critical-path timing under voltage scaling: the alpha-power law.

The classic alpha-power delay model [Sakurai & Newton, 1990]:

    delay(V)  ~  V / (V - Vth)^alpha

With the 28 nm-plausible parameters used here (Vth = 550 mV,
alpha = 1.3 for the TTT part) the model independently *predicts* the
paper's headline frequency/voltage pairing: the maximum stable frequency
at 760 mV comes out at ~1.22 GHz, which is exactly why every TTT core
runs every program safely at 760 mV / 1.2 GHz (Section 3.2) while
2.4 GHz needs ~900 mV.  The characterization anchors remain the source
of truth for Vmin; this model supplies the physical narrative and the
frequency-margin queries used by the governor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import FREQ_MAX_MHZ, PMD_NOMINAL_MV
from .corners import ProcessCorner


@dataclass(frozen=True)
class AlphaPowerTimingModel:
    """Alpha-power critical-path model, normalised at nominal conditions.

    ``fmax_nominal_mhz`` is the silicon speed at ``nominal_mv``
    *including* the design guardband, i.e. the critical path closes at
    ``design_margin`` above the fused frequency.
    """

    threshold_mv: float
    alpha: float
    nominal_mv: int = PMD_NOMINAL_MV
    fused_fmax_mhz: int = FREQ_MAX_MHZ
    #: Fraction of extra silicon speed at nominal voltage beyond the
    #: fused maximum frequency (the designed-in timing guardband).
    design_margin: float = 0.08

    def __post_init__(self) -> None:
        if self.threshold_mv >= self.nominal_mv:
            raise ConfigurationError("threshold must be below nominal voltage")
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")

    @classmethod
    def for_corner(cls, corner: ProcessCorner) -> "AlphaPowerTimingModel":
        """Timing model matching a process corner's personality."""
        return cls(threshold_mv=corner.threshold_mv, alpha=corner.alpha)

    def relative_delay(self, voltage_mv: float) -> float:
        """Critical-path delay relative to nominal voltage."""
        if voltage_mv <= self.threshold_mv:
            return float("inf")
        def delay(v: float) -> float:
            return v / (v - self.threshold_mv) ** self.alpha
        return delay(voltage_mv) / delay(float(self.nominal_mv))

    def max_frequency_mhz(self, voltage_mv: float) -> float:
        """Maximum timing-stable frequency at a supply voltage."""
        rel = self.relative_delay(voltage_mv)
        if rel == float("inf"):
            return 0.0
        return self.fused_fmax_mhz * (1.0 + self.design_margin) / rel

    def min_voltage_mv(self, freq_mhz: float) -> float:
        """Lowest (continuous) voltage whose critical path closes at a
        frequency -- the *physical* floor the characterization anchors
        sit slightly above.  Solved by bisection."""
        if freq_mhz <= 0:
            raise ConfigurationError("freq_mhz must be positive")
        lo = self.threshold_mv + 1.0
        hi = float(self.nominal_mv)
        if self.max_frequency_mhz(hi) < freq_mhz:
            raise ConfigurationError(
                f"{freq_mhz} MHz unreachable even at nominal voltage"
            )
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if self.max_frequency_mhz(mid) >= freq_mhz:
                hi = mid
            else:
                lo = mid
        return hi

    def timing_slack(self, voltage_mv: float, freq_mhz: float) -> float:
        """Fractional cycle slack at (V, f); negative means violation."""
        fmax = self.max_frequency_mhz(voltage_mv)
        if fmax == 0.0:
            return -1.0
        return 1.0 - freq_mhz / fmax
