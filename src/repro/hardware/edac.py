"""Linux-EDAC-driver-like error reporting (Table 3's CE/UE source).

The paper's framework learns about corrected and uncorrected errors from
the kernel's EDAC driver.  This module models that reporting surface: a
persistent log of :class:`EdacRecord` entries with per-location counters
mirroring the ``/sys/devices/system/edac`` counter files, which the
characterization framework polls after every run.

Records survive application crashes (the kernel keeps running) but are
lost in a system crash -- which is why a crashed run can never
contribute CE/UE observations (Section 3.4.1 severity accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class EdacRecord:
    """One reported hardware error."""

    #: "ce" or "ue".
    kind: str
    #: Reporting location, e.g. "L2", "L3", "L1D", "DRAM".
    location: str
    #: Core affected (for core-private structures) or -1 for shared.
    core: int
    #: Monotonic event sequence number.
    seqno: int


class EdacDriver:
    """In-kernel error accounting, as the framework's parser sees it."""

    def __init__(self) -> None:
        self._records: List[EdacRecord] = []
        self._seqno = 0
        self._cursor = 0

    def report(self, kind: str, location: str, core: int = -1, count: int = 1) -> None:
        """Driver-side entry point used by the cache/memory models."""
        if kind not in ("ce", "ue"):
            raise ValueError(f"kind must be 'ce' or 'ue', got {kind!r}")
        for _ in range(int(count)):
            self._seqno += 1
            self._records.append(EdacRecord(kind, location, core, self._seqno))

    # -- reader side -------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Aggregate counters, like the sysfs ``ce_count``/``ue_count``."""
        out = {"ce_count": 0, "ue_count": 0}
        for record in self._records:
            out[f"{record.kind}_count"] += 1
        return out

    def counters_by_location(self) -> Dict[Tuple[str, str], int]:
        """Counters keyed by (kind, location) -- the fine-grained view
        the parser can optionally report (Section 2.2)."""
        out: Dict[Tuple[str, str], int] = {}
        for record in self._records:
            key = (record.kind, record.location)
            out[key] = out.get(key, 0) + 1
        return out

    def poll_new(self) -> List[EdacRecord]:
        """Records added since the previous poll (framework's per-run read)."""
        new = self._records[self._cursor:]
        self._cursor = len(self._records)
        return list(new)

    def clear(self) -> None:
        """Reset all state (system reboot: dmesg/EDAC counters are gone)."""
        self._records.clear()
        self._seqno = 0
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._records)
