"""Serial console: the watchdog's window into the machine.

The Raspberry-Pi watchdog of the paper is physically wired to the
X-Gene 2's serial port and power/reset buttons (Figure 2).  This model
provides the serial side: a line buffer the machine writes boot banners
and kernel messages into, plus a heartbeat the watchdog polls to decide
whether the machine is still alive.

Time is logical: the machine advances a monotonic tick counter as it
executes; a heartbeat older than the watchdog's timeout means "hung".
"""

from __future__ import annotations

from typing import List, Optional

BOOT_BANNER = "X-Gene 2 (Potenza) 8-core ARMv8 -- kernel 4.x booting"
LOGIN_PROMPT = "xgene2 login:"


class SerialConsole:
    """Line-oriented serial console with a liveness heartbeat."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._cursor = 0
        self._last_heartbeat_tick: Optional[int] = None

    # -- machine side ---------------------------------------------------

    def write_line(self, line: str) -> None:
        """The machine prints a line to the console."""
        self._lines.append(line)

    def heartbeat(self, tick: int) -> None:
        """The machine signals liveness at a logical tick."""
        self._last_heartbeat_tick = int(tick)

    def go_silent(self) -> None:
        """The machine hangs: the heartbeat stops updating."""
        # Nothing to do -- the stale timestamp *is* the signal -- but the
        # explicit method documents intent at call sites.

    def clear(self) -> None:
        """Power cycle: console buffer and heartbeat state reset."""
        self._lines.clear()
        self._cursor = 0
        self._last_heartbeat_tick = None

    # -- watchdog side ------------------------------------------------------

    def read_new_lines(self) -> List[str]:
        """Lines printed since the previous read."""
        new = self._lines[self._cursor:]
        self._cursor = len(self._lines)
        return new

    def all_lines(self) -> List[str]:
        return list(self._lines)

    def last_heartbeat_tick(self) -> Optional[int]:
        """Logical tick of the latest heartbeat, or None if never seen."""
        return self._last_heartbeat_tick

    def is_alive(self, now_tick: int, timeout_ticks: int) -> bool:
        """Liveness check: a recent-enough heartbeat exists."""
        if self._last_heartbeat_tick is None:
            return False
        return now_tick - self._last_heartbeat_tick <= timeout_ticks
