"""Temperature sensing and fan control.

Section 3.1: *"we also control the temperature by adjusting the CPU's
fan speed accordingly.  We stabilize the temperature at 43C, and thus,
all benchmarks complete their execution at the same temperature."*

The thermal model is a simple lumped RC in steady state: die temperature
is ambient plus thermal resistance times power, minus the fan's
contribution.  The fan controller solves for the duty cycle that holds
the setpoint; the characterization framework asserts the setpoint was
reachable before trusting a campaign (temperature is a controlled
variable in the study, not a free one).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass
class TemperatureSensor:
    """Die temperature sensor with a steady-state thermal model."""

    ambient_c: float = 25.0
    #: Thermal resistance at zero airflow, C per watt.
    theta_ja_still_c_per_w: float = 1.6
    #: Factor by which full airflow divides the thermal resistance.
    max_airflow_gain: float = 4.0

    def temperature_c(self, power_w: float, fan_duty: float) -> float:
        """Steady-state die temperature at a power and fan duty cycle."""
        if power_w < 0:
            raise ConfigurationError("power_w must be non-negative")
        if not 0.0 <= fan_duty <= 1.0:
            raise ConfigurationError("fan_duty must be within [0, 1]")
        gain = 1.0 + (self.max_airflow_gain - 1.0) * fan_duty
        return self.ambient_c + self.theta_ja_still_c_per_w * power_w / gain


class FanController:
    """Closed-loop fan control holding the characterization setpoint."""

    def __init__(self, sensor: TemperatureSensor, setpoint_c: float = 43.0) -> None:
        if setpoint_c <= sensor.ambient_c:
            raise ConfigurationError("setpoint must be above ambient")
        self.sensor = sensor
        self.setpoint_c = float(setpoint_c)
        self.duty = 0.5

    def regulate(self, power_w: float) -> float:
        """Solve for the duty cycle that holds the setpoint at ``power_w``.

        Returns the achieved temperature; when the setpoint is
        unreachable (power too high even at full fan, or so low the die
        never warms to the setpoint) the closest achievable temperature
        is returned and the duty saturates.
        """
        lo, hi = 0.0, 1.0
        for _ in range(40):
            mid = (lo + hi) / 2.0
            if self.sensor.temperature_c(power_w, mid) > self.setpoint_c:
                lo = mid
            else:
                hi = mid
        self.duty = (lo + hi) / 2.0
        return self.sensor.temperature_c(power_w, self.duty)

    def holds_setpoint(self, power_w: float, tolerance_c: float = 0.5) -> bool:
        """True when regulation lands within tolerance of the setpoint."""
        return abs(self.regulate(power_w) - self.setpoint_c) <= tolerance_c
