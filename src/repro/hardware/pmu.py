"""Performance Monitoring Unit: the 101-event counter bank.

Models ``perf``-style profiling of a program run at *nominal*
conditions, which is what the paper's prediction flow consumes
(Section 4.1: counters are always collected in nominal conditions; the
voltage of the later characterization step is a separate feature).

The PMU is per-core; each programmed run produces a full 101-event
snapshot synthesised from the workload's trait vector through
:class:`repro.data.counters.CounterCatalog` with per-run measurement
noise.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from ..data.counters import COUNTER_NAMES, CounterCatalog
from ..errors import MachineStateError, UnknownCounterError


class PerformanceMonitoringUnit:
    """One core's PMU.

    The real hardware multiplexes a handful of physical counters over
    the event space; profiling a whole benchmark with ``perf`` yields
    the full set, which is the granularity this model works at.
    """

    def __init__(self, core: int, catalog: Optional[CounterCatalog] = None) -> None:
        self.core = int(core)
        self.catalog = catalog or CounterCatalog()
        self._active = False
        self._last_snapshot: Optional[Dict[str, float]] = None
        self._history: List[Dict[str, float]] = []

    @property
    def is_counting(self) -> bool:
        return self._active

    def start(self) -> None:
        """Arm the counters for the next run."""
        if self._active:
            raise MachineStateError(f"PMU of core {self.core} is already counting")
        self._active = True

    def record_run(
        self, traits: Mapping[str, float], rng: Optional[np.random.Generator] = None
    ) -> Dict[str, float]:
        """Account one full program execution while counting."""
        if not self._active:
            raise MachineStateError(
                f"PMU of core {self.core} must be started before recording"
            )
        snapshot = self.catalog.synthesize(traits, rng)
        self._last_snapshot = snapshot
        return dict(snapshot)

    def stop(self) -> Dict[str, float]:
        """Disarm and return the last snapshot."""
        if not self._active:
            raise MachineStateError(f"PMU of core {self.core} is not counting")
        self._active = False
        if self._last_snapshot is None:
            self._last_snapshot = {name: 0.0 for name in COUNTER_NAMES}
        self._history.append(self._last_snapshot)
        return dict(self._last_snapshot)

    def read(self, event: str) -> float:
        """Read one event from the last completed snapshot."""
        if self._last_snapshot is None:
            raise MachineStateError(f"PMU of core {self.core} has no snapshot yet")
        if event not in self._last_snapshot:
            raise UnknownCounterError(f"unknown PMU event {event!r}")
        return self._last_snapshot[event]

    def history(self) -> List[Dict[str, float]]:
        """All completed snapshots, oldest first."""
        return [dict(snapshot) for snapshot in self._history]

    def reset(self) -> None:
        """Clear state (power cycle)."""
        self._active = False
        self._last_snapshot = None
        self._history.clear()
