"""Per-PMD clock generation: skipping and division (Section 3.2).

The X-Gene 2 derives each PMD's clock from a fixed 2.4 GHz input clock:

* ratios **above or below 1/2** are produced by *clock skipping* on the
  input clock (the input clock tree keeps toggling at full rate and
  pulses are swallowed);
* a ratio of **exactly 1/2** is produced by *clock division*.

This is why the paper only characterizes 2.4 GHz and 1.2 GHz: every
frequency above 1.2 GHz behaves like 2.4 GHz for timing purposes and
every frequency at or below behaves like 1.2 GHz.
"""

from __future__ import annotations

import enum
from typing import List

from ..data.calibration import CLOCK_DIVISION_BOUNDARY_MHZ
from ..errors import ConfigurationError
from ..units import FREQ_MAX_MHZ, PARK_FREQ_MHZ, validate_frequency_mhz
from .domains import NUM_PMDS, pmd_of_core


class ClockMechanism(enum.Enum):
    """How a PMD frequency is derived from the input clock."""

    #: Full-rate input clock, no gating.
    DIRECT = "direct"
    #: Pulse swallowing on the full-rate input clock.
    SKIPPING = "skipping"
    #: True divide-by-two of the input clock.
    DIVISION = "division"


def mechanism_for(freq_mhz: int, input_clock_mhz: int = FREQ_MAX_MHZ) -> ClockMechanism:
    """Clock mechanism used for a requested PMD frequency."""
    validate_frequency_mhz(freq_mhz)
    if freq_mhz == input_clock_mhz:
        return ClockMechanism.DIRECT
    if freq_mhz * 2 == input_clock_mhz:
        return ClockMechanism.DIVISION
    return ClockMechanism.SKIPPING


def timing_equivalent_mhz(freq_mhz: int) -> int:
    """The frequency whose Vmin behaviour a request inherits.

    Above the division boundary everything behaves like the maximum
    frequency; at or below, like the boundary itself (Section 3.2).
    """
    validate_frequency_mhz(freq_mhz)
    if freq_mhz > CLOCK_DIVISION_BOUNDARY_MHZ:
        return FREQ_MAX_MHZ
    return CLOCK_DIVISION_BOUNDARY_MHZ


class ClockController:
    """Per-PMD frequency control.

    Each PMD can run at a different frequency (300 MHz..2.4 GHz in
    300 MHz steps) even though all PMDs share one voltage plane --
    the asymmetry the Section-5 trade-off analysis exploits.
    """

    def __init__(self, input_clock_mhz: int = FREQ_MAX_MHZ) -> None:
        self.input_clock_mhz = validate_frequency_mhz(input_clock_mhz)
        self._pmd_freqs_mhz: List[int] = [self.input_clock_mhz] * NUM_PMDS

    def pmd_frequency_mhz(self, pmd: int) -> int:
        """Programmed frequency of one PMD."""
        self._check_pmd(pmd)
        return self._pmd_freqs_mhz[pmd]

    def core_frequency_mhz(self, core: int) -> int:
        """Programmed frequency of the PMD hosting a core."""
        return self.pmd_frequency_mhz(pmd_of_core(core))

    def set_pmd_frequency_mhz(self, pmd: int, freq_mhz: int) -> None:
        """Program one PMD's frequency.

        A request equal to the programmed value is a no-op (it was
        validated when first stored), so per-run reprogramming at a
        steady frequency skips grid validation.
        """
        self._check_pmd(pmd)
        if freq_mhz != self._pmd_freqs_mhz[pmd]:
            self._pmd_freqs_mhz[pmd] = validate_frequency_mhz(freq_mhz)

    def park_all_except(self, cores: List[int]) -> None:
        """Reliable-cores setup (Section 2.2.1): park every PMD that
        hosts none of ``cores`` at 300 MHz, keep the rest as-is."""
        freqs = self._pmd_freqs_mhz
        if len(cores) == 1:
            active = pmd_of_core(cores[0])
            for pmd in range(NUM_PMDS):
                if pmd != active:
                    freqs[pmd] = PARK_FREQ_MHZ
            return
        active_pmds = {pmd_of_core(core) for core in cores}
        for pmd in range(NUM_PMDS):
            if pmd not in active_pmds:
                freqs[pmd] = PARK_FREQ_MHZ

    def restore_all(self, freq_mhz: int = FREQ_MAX_MHZ) -> None:
        """Set every PMD to one frequency."""
        freq_mhz = validate_frequency_mhz(freq_mhz)
        self._pmd_freqs_mhz = [freq_mhz] * NUM_PMDS

    def mechanism(self, pmd: int) -> ClockMechanism:
        """Clock mechanism currently in effect for a PMD."""
        return mechanism_for(self.pmd_frequency_mhz(pmd), self.input_clock_mhz)

    def frequencies(self) -> List[int]:
        """Programmed frequency of every PMD, MHz."""
        return list(self._pmd_freqs_mhz)

    @staticmethod
    def _check_pmd(pmd: int) -> None:
        if not 0 <= pmd < NUM_PMDS:
            raise ConfigurationError(f"PMD index must be 0..{NUM_PMDS - 1}, got {pmd}")
