"""Top-level experiment configuration.

One object that names everything a full reproduction run needs --
which chips, which benchmarks, how many campaigns -- with the paper's
setup as the default.  The example scripts and the benchmark harness
both start from here, so "what the paper did" is written down in
exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .core.framework import FrameworkConfig
from .data.calibration import CHIP_NAMES
from .errors import ConfigurationError
from .machines import MachineSpec
from .units import FREQ_MAX_MHZ
from .workloads.spec2006 import FIGURE_BENCHMARKS


@dataclass(frozen=True)
class StudyConfig:
    """Configuration of a full reproduction study."""

    #: Parts to characterize.
    chips: Tuple[str, ...] = CHIP_NAMES
    #: Benchmarks of the characterization sweeps (Figures 3-5).
    benchmarks: Tuple[str, ...] = FIGURE_BENCHMARKS
    #: Cores to characterize.
    cores: Tuple[int, ...] = tuple(range(8))
    #: Frequencies of interest; the paper characterizes the two
    #: timing-distinct points (Section 3.2).
    frequencies_mhz: Tuple[int, ...] = (FREQ_MAX_MHZ, 1200)
    #: Campaign configuration (paper defaults: 10 campaigns x 10 runs).
    framework: FrameworkConfig = field(
        default_factory=lambda: FrameworkConfig(start_mv=930)
    )
    #: Master seed of every machine.
    seed: int = 2017

    def __post_init__(self) -> None:
        unknown = set(self.chips) - set(CHIP_NAMES)
        if unknown:
            raise ConfigurationError(f"unknown chips: {sorted(unknown)}")
        if not self.benchmarks:
            raise ConfigurationError("need at least one benchmark")
        bad_cores = [c for c in self.cores if not 0 <= c <= 7]
        if bad_cores:
            raise ConfigurationError(f"invalid cores: {bad_cores}")

    # -- machine construction (see repro.machines) ------------------------

    def machine_spec(self, chip: Optional[str] = None) -> MachineSpec:
        """Blueprint of one study machine (defaults to the first chip)."""
        return MachineSpec(
            chip=self.chips[0] if chip is None else chip, seed=self.seed
        )

    def machine_specs(self) -> Tuple[MachineSpec, ...]:
        """One blueprint per configured chip, in study order."""
        return tuple(self.machine_spec(chip) for chip in self.chips)

    def build_machine(self, chip: Optional[str] = None, power_on: bool = True):
        """Construct (and by default power on) one study machine."""
        return self.machine_spec(chip).build(power_on=power_on)


#: The paper's full setup.
PAPER_STUDY = StudyConfig()

#: A reduced setup for quick runs (one chip, three benchmarks, two
#: cores, three campaigns) -- the examples default to this.
QUICK_STUDY = StudyConfig(
    chips=("TTT",),
    benchmarks=("bwaves", "leslie3d", "mcf"),
    cores=(0, 4),
    framework=FrameworkConfig(start_mv=930, campaigns=3),
)
