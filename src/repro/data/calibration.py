"""Anchor voltages digitised from the paper's measurements.

The paper's raw Vmin data is proprietary (three physical X-Gene 2 chips
measured over six months).  This module encodes everything the published
figures and prose pin down, and a small parametric model for the digits
they do not:

* **Figure 3** -- most-robust-core Vmin at 2.4 GHz spans 860-885 mV
  (TTT), 870-885 mV (TFF) and 870-900 mV (TSS), with the same
  workload-to-workload ordering on every chip.
* **Figure 4 / Section 3.3** -- PMD 2 (cores 4, 5) is the most robust
  PMD on all three chips; the most sensitive cores need up to 3.6 % more
  voltage (~35 mV) than the most robust ones; the TFF chip has lower
  *average* Vmin than TTT while TSS is significantly higher.
* **Section 5** -- leslie3d on TTT: robust PMD safe Vmin 880 mV,
  sensitive PMD 915 mV at 2.4 GHz.
* **Section 4.3.1** -- core 0's unsafe region is narrow, 910 mV down to
  885 mV.
* **Section 3.2** -- at 1.2 GHz every TTT core runs every program safely
  at 760 mV and *nothing* but crashes happens below the safe Vmin.

The parametric part: each benchmark carries a ``stress`` value in
``[0, 1]`` (aggregate timing-path stress, defined with the workload
suite) and a ``smoothness`` value in ``[0, 1]`` (how gradually severity
grows below Vmin).  A chip maps stress onto its Figure-3 span and each
core adds its process-variation offset:

``vmin(chip, core, bench) = round5(base + span * stress) + core_offset``

With the stress values assigned in :mod:`repro.workloads.spec2006`, this
reproduces every Figure-3/4 number called out in the prose exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ConfigurationError
from ..units import FREQ_MAX_MHZ, PMD_NOMINAL_MV, validate_frequency_mhz

#: The three characterized parts: nominal (TTT), fast/leaky corner (TFF)
#: and slow/low-leakage corner (TSS).
CHIP_NAMES: Tuple[str, ...] = ("TTT", "TFF", "TSS")

#: Frequency threshold of the clock skipping/division boundary
#: (Section 3.2): requests above behave like 2.4 GHz, requests at or
#: below behave like 1.2 GHz.
CLOCK_DIVISION_BOUNDARY_MHZ = 1200


def round5(value_mv: float) -> int:
    """Round an analog voltage onto the regulator's 5 mV grid."""
    return int(round(value_mv / 5.0)) * 5


@dataclass(frozen=True)
class ChipCalibration:
    """Anchor model for one characterized chip."""

    #: Part name: "TTT", "TFF" or "TSS".
    name: str
    #: Prose description of the process corner.
    corner_description: str
    #: Most-robust-core Vmin at 2.4 GHz for a zero-stress benchmark (mV).
    base_vmin_2400_mv: int
    #: Additional Vmin a stress=1.0 benchmark needs on this chip (mV).
    stress_span_mv: int
    #: Per-core process-variation offsets added to the robust-core Vmin,
    #: cores 0..7.  PMD 2 (cores 4, 5) carries the smallest offsets.
    core_offsets_mv: Tuple[int, int, int, int, int, int, int, int]
    #: Program-independent safe Vmin at 1.2 GHz and below (mV).
    vmin_1200_mv: int
    #: Leakage power relative to the TTT part at nominal conditions.
    leakage_rel: float
    #: Safe Vmin of the PCP/SoC domain (L3, DRAM controllers, fabric;
    #: 950 mV nominal).  The paper leaves this domain uncharacterized
    #: ("can be independently scaled downwards", Section 2.1); the
    #: anchor here parameterises the library's SoC-undervolting
    #: extension study.
    soc_vmin_mv: int = 870
    #: Dominant low-voltage failure mode: "timing" (X-Gene-like; SDCs
    #: appear before lone corrected errors) or "sram" (Itanium-like; a
    #: wide corrected-error band appears first).  All three measured
    #: X-Gene 2 parts are timing-dominated; the "sram" profile exists for
    #: the Section 3.4 / 4.4 cross-architecture comparison.
    failure_profile: str = "timing"

    def __post_init__(self) -> None:
        if len(self.core_offsets_mv) != 8:
            raise ConfigurationError("core_offsets_mv must have 8 entries")
        if self.failure_profile not in ("timing", "sram"):
            raise ConfigurationError(
                f"failure_profile must be 'timing' or 'sram', got {self.failure_profile!r}"
            )
        if min(self.core_offsets_mv[4:6]) != min(self.core_offsets_mv):
            raise ConfigurationError("PMD 2 (cores 4-5) must contain the most robust core")

    # ---------------------------------------------------------------- anchors

    def robust_vmin_2400_mv(self, stress: float) -> int:
        """Figure-3 series: most-robust-core safe Vmin at 2.4 GHz."""
        _check_unit("stress", stress)
        return round5(self.base_vmin_2400_mv + self.stress_span_mv * stress)

    def vmin_mv(self, core: int, stress: float, freq_mhz: int = FREQ_MAX_MHZ) -> int:
        """Safe Vmin anchor for (core, benchmark-stress, frequency).

        This is the *highest observed over campaigns* Vmin, i.e. the
        value Figures 3 and 4 plot; individual campaigns may observe a
        step or two lower (see :mod:`repro.faults.models`).
        """
        _check_core(core)
        validate_frequency_mhz(freq_mhz)
        if freq_mhz <= CLOCK_DIVISION_BOUNDARY_MHZ:
            # Clock-division regime: program-independent Vmin, and no
            # core-to-core spread was observed at 1.2 GHz (Section 3.2).
            return self.vmin_1200_mv
        return self.robust_vmin_2400_mv(stress) + self.core_offsets_mv[core]

    def unsafe_width_mv(self, smoothness: float, freq_mhz: int = FREQ_MAX_MHZ) -> int:
        """Width of the unsafe region (Vmin minus highest crash voltage).

        At 2.4 GHz the width grows with the benchmark's ``smoothness``
        (bwaves has the widest unsafe band, Figure 5); at 1.2 GHz the
        paper observed *no* unsafe region -- the first step below the
        safe Vmin already crashes.
        """
        _check_unit("smoothness", smoothness)
        validate_frequency_mhz(freq_mhz)
        if freq_mhz <= CLOCK_DIVISION_BOUNDARY_MHZ:
            return 5
        return round5(10 + 25 * smoothness)

    def crash_voltage_mv(
        self, core: int, stress: float, smoothness: float, freq_mhz: int = FREQ_MAX_MHZ
    ) -> int:
        """Highest voltage at which at least one run crashes the system."""
        return self.vmin_mv(core, stress, freq_mhz) - self.unsafe_width_mv(
            smoothness, freq_mhz
        )

    def guardband_mv(self, core: int, stress: float, freq_mhz: int = FREQ_MAX_MHZ) -> int:
        """Voltage guardband: nominal supply minus the safe Vmin."""
        return PMD_NOMINAL_MV - self.vmin_mv(core, stress, freq_mhz)

    def most_robust_core(self) -> int:
        """Core index with the smallest variation offset (a PMD-2 core)."""
        return min(range(8), key=lambda c: (self.core_offsets_mv[c], c))

    def most_sensitive_core(self) -> int:
        """Core index with the largest variation offset (a PMD-0 core)."""
        return max(range(8), key=lambda c: (self.core_offsets_mv[c], -c))


def _check_core(core: int) -> None:
    if not 0 <= core <= 7:
        raise ConfigurationError(f"core index must be 0..7, got {core}")


def _check_unit(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be within [0, 1], got {value}")


_CALIBRATIONS: Dict[str, ChipCalibration] = {
    "TTT": ChipCalibration(
        name="TTT",
        corner_description="nominal-rated part",
        base_vmin_2400_mv=860,
        stress_span_mv=25,
        # PMD0 most sensitive (Section 5), PMD2 most robust (Section 3.3);
        # max spread 35 mV = 3.6 % of nominal; core0 + leslie3d = 915 mV.
        core_offsets_mv=(35, 30, 15, 10, 0, 10, 20, 25),
        vmin_1200_mv=760,
        leakage_rel=1.00,
        soc_vmin_mv=870,
    ),
    "TFF": ChipCalibration(
        name="TFF",
        corner_description="fast corner part: high leakage, higher attainable frequency",
        base_vmin_2400_mv=870,
        stress_span_mv=15,
        # Smaller core-to-core spread => lower *average* Vmin than TTT
        # even though its robust-core floor is higher (Section 3.3).
        core_offsets_mv=(20, 15, 10, 5, 0, 5, 10, 15),
        vmin_1200_mv=755,
        leakage_rel=1.35,
        soc_vmin_mv=865,
    ),
    "TSS": ChipCalibration(
        name="TSS",
        corner_description="slow corner part: low leakage, lower guardband headroom",
        base_vmin_2400_mv=870,
        stress_span_mv=30,
        core_offsets_mv=(30, 25, 15, 10, 0, 10, 20, 25),
        vmin_1200_mv=770,
        leakage_rel=0.70,
        soc_vmin_mv=880,
    ),
}


def chip_calibration(chip: str) -> ChipCalibration:
    """Look up the calibration anchors for a chip by name."""
    try:
        return _CALIBRATIONS[chip]
    except KeyError:
        raise ConfigurationError(
            f"unknown chip {chip!r}; expected one of {CHIP_NAMES}"
        ) from None


def vmin_mv(chip: str, core: int, stress: float, freq_mhz: int = FREQ_MAX_MHZ) -> int:
    """Module-level convenience wrapper for :meth:`ChipCalibration.vmin_mv`."""
    return chip_calibration(chip).vmin_mv(core, stress, freq_mhz)


def unsafe_width_mv(chip: str, smoothness: float, freq_mhz: int = FREQ_MAX_MHZ) -> int:
    """Module-level wrapper for :meth:`ChipCalibration.unsafe_width_mv`."""
    return chip_calibration(chip).unsafe_width_mv(smoothness, freq_mhz)


def crash_voltage_mv(
    chip: str, core: int, stress: float, smoothness: float, freq_mhz: int = FREQ_MAX_MHZ
) -> int:
    """Module-level wrapper for :meth:`ChipCalibration.crash_voltage_mv`."""
    return chip_calibration(chip).crash_voltage_mv(core, stress, smoothness, freq_mhz)
