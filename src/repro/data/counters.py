"""The 101 performance-monitoring events of the simulated X-Gene 2 PMU.

Section 4.1 of the paper: *"The X-Gene 2 provides 101 performance
counters in total which report microarchitectural events of the entire
system for individual cores, for the memory hierarchy (accesses and
misses of all cache, TLB and page walks levels, unaligned accesses,
prefetches, etc.), the pipeline (flushes, mispredictions, etc.), and the
system (bus accesses, etc.)."*

The exact event list of the real chip is not public, so this catalogue
uses standard ARMv8 PMU event mnemonics organised into the same
categories.  Each event has a closed-form synthesis rule that derives its
reading from a workload's architectural *traits* (instruction mix, miss
rates, stall behaviour -- see :mod:`repro.workloads.benchmark`), so that
any trait vector yields a complete, internally consistent 101-counter
profile, exactly the input the paper's prediction flow consumes.

The five events the paper's Recursive Feature Elimination settles on
(Section 4.2) are exposed as :data:`RFE_SELECTED_FEATURES`:

1. dispatched stalled cycles        -> ``DISPATCH_STALL_CYCLES``
2. exceptions taken                 -> ``EXC_TAKEN``
3. read data memory accesses        -> ``MEM_ACCESS_RD``
4. branch-target-buffer mispredicts -> ``BTB_MIS_PRED``
5. conditional & indirect branches  -> ``BR_COND_RETIRED``
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from ..errors import UnknownCounterError

#: The five events selected by RFE in the paper (Section 4.2), in the
#: order the paper lists them.
RFE_SELECTED_FEATURES = (
    "DISPATCH_STALL_CYCLES",
    "EXC_TAKEN",
    "MEM_ACCESS_RD",
    "BTB_MIS_PRED",
    "BR_COND_RETIRED",
)

# ---------------------------------------------------------------------------
# Synthesis rules.
#
# A rule maps the dictionary of *base quantities* (derived once per
# workload from its traits) to an event count.  Keeping the base
# quantities explicit makes the catalogue internally consistent:
# e.g. L2 accesses are exactly the L1 refills plus prefetch traffic.
# ---------------------------------------------------------------------------

Rule = Callable[[Dict[str, float]], float]


def _base_quantities(traits: Mapping[str, float]) -> Dict[str, float]:
    """Derive the shared base quantities from a workload trait vector.

    ``traits`` must provide (all rates are per instruction unless noted):

    ``instructions`` total retired instructions;
    ``ipc`` retired instructions per cycle;
    ``load_ratio`` / ``store_ratio`` memory-op fractions;
    ``fp_ratio`` floating-point fraction; ``simd_ratio`` SIMD fraction;
    ``branch_ratio`` branch fraction;
    ``branch_misp_rate`` mispredictions per branch;
    ``btb_misp_rate`` BTB mispredictions per branch;
    ``l1d_miss_rate`` / ``l1i_mpki`` / ``l2_miss_rate`` / ``l3_miss_rate``
    cache locality; ``dtlb_mpki`` / ``itlb_mpki`` TLB locality;
    ``dispatch_stall_ratio`` fraction of cycles dispatch is stalled;
    ``exception_rate`` exceptions per kilo-instruction;
    ``prefetch_ratio`` prefetches per L1D access;
    ``unaligned_ratio`` unaligned fraction of memory ops.
    """
    n = float(traits["instructions"])
    cycles = n / max(float(traits["ipc"]), 1e-9)
    loads = n * float(traits["load_ratio"])
    stores = n * float(traits["store_ratio"])
    mem_ops = loads + stores
    branches = n * float(traits["branch_ratio"])
    branch_misp = branches * float(traits["branch_misp_rate"])
    btb_misp = branches * float(traits["btb_misp_rate"])
    l1d_acc = mem_ops
    l1d_refill = l1d_acc * float(traits["l1d_miss_rate"])
    l1i_acc = n / 4.0  # ~4-wide fetch
    l1i_refill = n * float(traits["l1i_mpki"]) / 1000.0
    prefetches = l1d_acc * float(traits["prefetch_ratio"])
    l2_acc = l1d_refill + l1i_refill + prefetches
    l2_refill = l2_acc * float(traits["l2_miss_rate"])
    l3_acc = l2_refill
    l3_refill = l3_acc * float(traits["l3_miss_rate"])
    dtlb_refill = n * float(traits["dtlb_mpki"]) / 1000.0
    itlb_refill = n * float(traits["itlb_mpki"]) / 1000.0
    fp_ops = n * float(traits["fp_ratio"])
    simd_ops = n * float(traits["simd_ratio"])
    exceptions = n * float(traits["exception_rate"]) / 1000.0
    stall_cycles = cycles * float(traits["dispatch_stall_ratio"])
    unaligned = mem_ops * float(traits["unaligned_ratio"])
    return {
        "n": n,
        "cycles": cycles,
        "loads": loads,
        "stores": stores,
        "mem_ops": mem_ops,
        "branches": branches,
        "branch_misp": branch_misp,
        "btb_misp": btb_misp,
        "l1d_acc": l1d_acc,
        "l1d_refill": l1d_refill,
        "l1i_acc": l1i_acc,
        "l1i_refill": l1i_refill,
        "prefetches": prefetches,
        "l2_acc": l2_acc,
        "l2_refill": l2_refill,
        "l3_acc": l3_acc,
        "l3_refill": l3_refill,
        "dtlb_refill": dtlb_refill,
        "itlb_refill": itlb_refill,
        "fp_ops": fp_ops,
        "simd_ops": simd_ops,
        "exceptions": exceptions,
        "stall_cycles": stall_cycles,
        "unaligned": unaligned,
    }


def _catalogue() -> List:
    """Build the full (name, category, description, rule) table."""
    c: List = []

    def ev(name: str, category: str, description: str, rule: Rule) -> None:
        c.append((name, category, description, rule))

    # -- instructions & micro-ops (12) ------------------------------------
    ev("INST_RETIRED", "core", "architecturally retired instructions", lambda b: b["n"])
    ev("INST_SPEC", "core", "speculatively executed instructions", lambda b: b["n"] * 1.18)
    ev("CPU_CYCLES", "core", "core clock cycles", lambda b: b["cycles"])
    ev("OP_RETIRED", "core", "retired micro-operations", lambda b: b["n"] * 1.25)
    ev("OP_SPEC", "core", "speculatively executed micro-operations", lambda b: b["n"] * 1.45)
    ev("LD_RETIRED", "core", "retired load instructions", lambda b: b["loads"])
    ev("ST_RETIRED", "core", "retired store instructions", lambda b: b["stores"])
    ev("LDST_SPEC", "core", "speculative load/store operations", lambda b: b["mem_ops"] * 1.15)
    ev("DP_SPEC", "core", "speculative integer data-processing ops",
       lambda b: b["n"] - b["mem_ops"] - b["branches"] - b["fp_ops"])
    ev("ASE_SPEC", "core", "speculative advanced-SIMD operations", lambda b: b["simd_ops"])
    ev("VFP_SPEC", "core", "speculative scalar floating-point operations", lambda b: b["fp_ops"])
    ev("CRYPTO_SPEC", "core", "speculative crypto-extension operations", lambda b: b["n"] * 1e-6)

    # -- branches (9) ------------------------------------------------------
    ev("BR_RETIRED", "branch", "retired branches", lambda b: b["branches"])
    ev("BR_MIS_PRED", "branch", "mispredicted branches", lambda b: b["branch_misp"])
    ev("BR_PRED", "branch", "predictable branches speculatively executed",
       lambda b: b["branches"] * 1.1)
    ev("BTB_MIS_PRED", "branch", "branch-target-buffer mispredictions", lambda b: b["btb_misp"])
    ev("BR_COND_RETIRED", "branch", "retired conditional and indirect branches",
       lambda b: b["branches"] * 0.78)
    ev("BR_COND_MIS_PRED", "branch", "mispredicted conditional branches",
       lambda b: b["branch_misp"] * 0.85)
    ev("BR_IMMED_SPEC", "branch", "speculative immediate branches", lambda b: b["branches"] * 0.70)
    ev("BR_RETURN_SPEC", "branch", "speculative procedure returns", lambda b: b["branches"] * 0.08)
    ev("BR_INDIRECT_SPEC", "branch", "speculative indirect branches", lambda b: b["branches"] * 0.12)

    # -- L1 data cache (8) -------------------------------------------------
    ev("L1D_CACHE", "l1d", "L1 data-cache accesses", lambda b: b["l1d_acc"])
    ev("L1D_CACHE_REFILL", "l1d", "L1 data-cache refills (misses)", lambda b: b["l1d_refill"])
    ev("L1D_CACHE_WB", "l1d", "L1 data-cache write-backs", lambda b: b["l1d_refill"] * 0.45)
    ev("L1D_CACHE_RD", "l1d", "L1 data-cache read accesses", lambda b: b["loads"])
    ev("L1D_CACHE_WR", "l1d", "L1 data-cache write accesses", lambda b: b["stores"])
    ev("L1D_CACHE_REFILL_RD", "l1d", "L1D refills caused by reads",
       lambda b: b["l1d_refill"] * (b["loads"] / max(b["mem_ops"], 1.0)))
    ev("L1D_CACHE_REFILL_WR", "l1d", "L1D refills caused by writes",
       lambda b: b["l1d_refill"] * (b["stores"] / max(b["mem_ops"], 1.0)))
    ev("L1D_CACHE_INVAL", "l1d", "L1 data-cache invalidations", lambda b: b["l1d_refill"] * 0.02)

    # -- L1 instruction cache (2) -----------------------------------------
    ev("L1I_CACHE", "l1i", "L1 instruction-cache accesses", lambda b: b["l1i_acc"])
    ev("L1I_CACHE_REFILL", "l1i", "L1 instruction-cache refills", lambda b: b["l1i_refill"])

    # -- L2 cache (8) -------------------------------------------------------
    ev("L2D_CACHE", "l2", "L2 cache accesses", lambda b: b["l2_acc"])
    ev("L2D_CACHE_REFILL", "l2", "L2 cache refills (misses)", lambda b: b["l2_refill"])
    ev("L2D_CACHE_WB", "l2", "L2 cache write-backs", lambda b: b["l2_refill"] * 0.40)
    ev("L2D_CACHE_RD", "l2", "L2 read accesses", lambda b: b["l2_acc"] * 0.7)
    ev("L2D_CACHE_WR", "l2", "L2 write accesses", lambda b: b["l2_acc"] * 0.3)
    ev("L2D_CACHE_REFILL_RD", "l2", "L2 refills caused by reads", lambda b: b["l2_refill"] * 0.7)
    ev("L2D_CACHE_REFILL_WR", "l2", "L2 refills caused by writes", lambda b: b["l2_refill"] * 0.3)
    ev("L2D_CACHE_INVAL", "l2", "L2 cache invalidations", lambda b: b["l2_refill"] * 0.02)

    # -- L3 cache (4) -------------------------------------------------------
    ev("L3D_CACHE", "l3", "L3 cache accesses", lambda b: b["l3_acc"])
    ev("L3D_CACHE_REFILL", "l3", "L3 cache refills (misses to DRAM)", lambda b: b["l3_refill"])
    ev("L3D_CACHE_RD", "l3", "L3 read accesses", lambda b: b["l3_acc"] * 0.72)
    ev("L3D_CACHE_WB", "l3", "L3 write-backs to memory", lambda b: b["l3_refill"] * 0.38)

    # -- TLBs and page walks (8) --------------------------------------------
    ev("L1D_TLB", "tlb", "L1 data-TLB accesses", lambda b: b["mem_ops"])
    ev("L1D_TLB_REFILL", "tlb", "L1 data-TLB refills", lambda b: b["dtlb_refill"])
    ev("L1I_TLB", "tlb", "L1 instruction-TLB accesses", lambda b: b["l1i_acc"])
    ev("L1I_TLB_REFILL", "tlb", "L1 instruction-TLB refills", lambda b: b["itlb_refill"])
    ev("L2D_TLB", "tlb", "unified L2 TLB accesses",
       lambda b: b["dtlb_refill"] + b["itlb_refill"])
    ev("L2D_TLB_REFILL", "tlb", "unified L2 TLB refills",
       lambda b: (b["dtlb_refill"] + b["itlb_refill"]) * 0.25)
    ev("DTLB_WALK", "tlb", "data-side hardware page walks", lambda b: b["dtlb_refill"] * 0.25)
    ev("ITLB_WALK", "tlb", "instruction-side hardware page walks", lambda b: b["itlb_refill"] * 0.25)

    # -- memory system (8) ----------------------------------------------------
    ev("MEM_ACCESS", "memory", "data memory accesses", lambda b: b["mem_ops"])
    ev("MEM_ACCESS_RD", "memory", "read data memory accesses", lambda b: b["loads"])
    ev("MEM_ACCESS_WR", "memory", "write data memory accesses", lambda b: b["stores"])
    ev("UNALIGNED_LDST_RETIRED", "memory", "retired unaligned memory ops", lambda b: b["unaligned"])
    ev("UNALIGNED_LD_SPEC", "memory", "speculative unaligned loads",
       lambda b: b["unaligned"] * (b["loads"] / max(b["mem_ops"], 1.0)) * 1.1)
    ev("UNALIGNED_ST_SPEC", "memory", "speculative unaligned stores",
       lambda b: b["unaligned"] * (b["stores"] / max(b["mem_ops"], 1.0)) * 1.1)
    ev("MEMORY_ERROR", "memory", "local memory errors observed by the core", lambda b: 0.0)
    ev("REMOTE_ACCESS", "memory", "accesses to another socket/chip", lambda b: 0.0)

    # -- prefetch (4) -----------------------------------------------------------
    ev("L1D_CACHE_PRF", "prefetch", "L1D prefetches issued", lambda b: b["prefetches"])
    ev("L2D_CACHE_PRF", "prefetch", "L2 prefetches issued", lambda b: b["prefetches"] * 0.6)
    ev("PRF_LINEFILL", "prefetch", "prefetch-triggered line fills", lambda b: b["prefetches"] * 0.8)
    ev("PRF_DROPPED", "prefetch", "prefetches dropped (late/duplicate)",
       lambda b: b["prefetches"] * 0.2)

    # -- pipeline (12) ------------------------------------------------------------
    ev("STALL_FRONTEND", "pipeline", "cycles no op delivered by frontend",
       lambda b: b["stall_cycles"] * 0.35)
    ev("STALL_BACKEND", "pipeline", "cycles no op dispatched due to backend",
       lambda b: b["stall_cycles"] * 0.65)
    ev("DISPATCH_STALL_CYCLES", "pipeline", "cycles the dispatch stage is stalled",
       lambda b: b["stall_cycles"])
    ev("ISSUE_STALL_CYCLES", "pipeline", "cycles the issue stage is stalled",
       lambda b: b["stall_cycles"] * 0.8)
    ev("DECODE_STALL_CYCLES", "pipeline", "cycles the decode stage is stalled",
       lambda b: b["stall_cycles"] * 0.3)
    ev("RENAME_STALL_CYCLES", "pipeline", "cycles rename is short of resources",
       lambda b: b["stall_cycles"] * 0.25)
    ev("ROB_FULL_CYCLES", "pipeline", "cycles the reorder buffer is full",
       lambda b: b["stall_cycles"] * 0.30)
    ev("IQ_FULL_CYCLES", "pipeline", "cycles an issue queue is full",
       lambda b: b["stall_cycles"] * 0.22)
    ev("LSQ_FULL_CYCLES", "pipeline", "cycles the load/store queue is full",
       lambda b: b["stall_cycles"] * 0.18)
    ev("PIPELINE_FLUSH", "pipeline", "pipeline flushes",
       lambda b: b["branch_misp"] + b["exceptions"])
    ev("OP_DISPATCHED", "pipeline", "micro-ops dispatched", lambda b: b["n"] * 1.3)
    ev("OP_ISSUED", "pipeline", "micro-ops issued", lambda b: b["n"] * 1.35)

    # -- exceptions (8) --------------------------------------------------------------
    ev("EXC_TAKEN", "exception", "exceptions taken", lambda b: b["exceptions"])
    ev("EXC_RETURN", "exception", "exception returns", lambda b: b["exceptions"] * 0.98)
    ev("EXC_UNDEF", "exception", "undefined-instruction exceptions", lambda b: b["exceptions"] * 0.001)
    ev("EXC_SVC", "exception", "supervisor calls", lambda b: b["exceptions"] * 0.55)
    ev("EXC_PABORT", "exception", "instruction aborts", lambda b: b["exceptions"] * 0.002)
    ev("EXC_DABORT", "exception", "data aborts (incl. demand paging)",
       lambda b: b["exceptions"] * 0.10)
    ev("EXC_IRQ", "exception", "IRQ exceptions", lambda b: b["exceptions"] * 0.30)
    ev("EXC_FIQ", "exception", "FIQ exceptions", lambda b: b["exceptions"] * 0.01)

    # -- bus / system (8) ------------------------------------------------------------
    ev("BUS_ACCESS", "system", "bus accesses from this core", lambda b: b["l2_refill"] * 1.4)
    ev("BUS_ACCESS_RD", "system", "bus read accesses", lambda b: b["l2_refill"] * 1.0)
    ev("BUS_ACCESS_WR", "system", "bus write accesses", lambda b: b["l2_refill"] * 0.4)
    ev("BUS_CYCLES", "system", "bus clock cycles", lambda b: b["cycles"] * 0.5)
    ev("CNT_CYCLES", "system", "constant-frequency timer cycles", lambda b: b["cycles"] * 0.0417)
    ev("SNOOP_RECEIVED", "system", "coherence snoops received", lambda b: b["l2_refill"] * 0.15)
    ev("MCU_READS", "system", "memory-controller read transactions", lambda b: b["l3_refill"])
    ev("MCU_WRITES", "system", "memory-controller write transactions",
       lambda b: b["l3_refill"] * 0.4)

    # -- architectural / barrier / misc (10) --------------------------------------------
    ev("SW_INCR", "misc", "software PMU increments", lambda b: 0.0)
    ev("CID_WRITE_RETIRED", "misc", "context-ID register writes (context switches)",
       lambda b: b["exceptions"] * 0.02)
    ev("TTBR_WRITE_RETIRED", "misc", "translation-table-base writes",
       lambda b: b["exceptions"] * 0.02)
    ev("LD_SPEC", "misc", "speculative loads", lambda b: b["loads"] * 1.12)
    ev("ST_SPEC", "misc", "speculative stores", lambda b: b["stores"] * 1.08)
    ev("PC_WRITE_SPEC", "misc", "speculative software PC writes", lambda b: b["branches"] * 1.05)
    ev("ISB_SPEC", "misc", "instruction synchronisation barriers", lambda b: b["n"] * 2e-6)
    ev("DSB_SPEC", "misc", "data synchronisation barriers", lambda b: b["n"] * 8e-6)
    ev("DMB_SPEC", "misc", "data memory barriers", lambda b: b["n"] * 1.5e-5)
    ev("FP_FIXED_OPS_SPEC", "misc", "fixed-width floating-point operations",
       lambda b: b["fp_ops"] * 0.9)

    return c


_CATALOGUE = _catalogue()

#: Ordered names of all PMU events.
COUNTER_NAMES = tuple(name for name, _cat, _desc, _rule in _CATALOGUE)
#: The paper's event population size.
NUM_COUNTERS = len(COUNTER_NAMES)

assert NUM_COUNTERS == 101, f"expected 101 PMU events, got {NUM_COUNTERS}"
assert all(f in COUNTER_NAMES for f in RFE_SELECTED_FEATURES)


class CounterCatalog:
    """Catalogue of the 101 PMU events with the trait->reading synthesis.

    Parameters
    ----------
    noise_sigma:
        Standard deviation of the multiplicative log-normal measurement
        noise applied per event per profiling run.  ``0`` produces exact
        deterministic readings (useful in tests).
    """

    def __init__(self, noise_sigma: float = 0.02) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self.noise_sigma = float(noise_sigma)
        self._by_name = {name: (cat, desc, rule) for name, cat, desc, rule in _CATALOGUE}

    # -- introspection ---------------------------------------------------

    @property
    def names(self):
        """Ordered tuple of all event names."""
        return COUNTER_NAMES

    def category(self, name: str) -> str:
        """Category of an event (core/branch/l1d/.../system/misc)."""
        return self._lookup(name)[0]

    def description(self, name: str) -> str:
        """Human-readable description of an event."""
        return self._lookup(name)[1]

    def categories(self) -> Dict[str, List[str]]:
        """Mapping of category -> ordered event names."""
        out: Dict[str, List[str]] = {}
        for name, cat, _desc, _rule in _CATALOGUE:
            out.setdefault(cat, []).append(name)
        return out

    def _lookup(self, name: str):
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownCounterError(
                f"{name!r} is not one of the {NUM_COUNTERS} PMU events"
            ) from None

    # -- synthesis ---------------------------------------------------------

    def synthesize(
        self,
        traits: Mapping[str, float],
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[str, float]:
        """Produce a full 101-event reading for a workload trait vector.

        With ``rng`` given and ``noise_sigma > 0``, each event reading is
        perturbed by independent log-normal noise, modelling run-to-run
        profiling variability.
        """
        base = _base_quantities(traits)
        readings: Dict[str, float] = {}
        if rng is not None and self.noise_sigma > 0:
            noise = np.exp(rng.normal(0.0, self.noise_sigma, size=NUM_COUNTERS))
        else:
            noise = np.ones(NUM_COUNTERS)
        for (name, _cat, _desc, rule), factor in zip(_CATALOGUE, noise):
            value = max(rule(base), 0.0) * float(factor)
            readings[name] = float(round(value))
        return readings

    def vector(self, readings: Mapping[str, float]) -> np.ndarray:
        """Order a readings mapping into the canonical feature vector."""
        try:
            return np.array([float(readings[name]) for name in COUNTER_NAMES])
        except KeyError as exc:
            raise UnknownCounterError(f"readings missing event {exc.args[0]!r}") from None
