"""Static data tables: PMU event catalogue and Vmin calibration anchors.

These modules hold the numbers everything else is calibrated against:

* :mod:`repro.data.counters` -- the 101 performance-monitoring events the
  simulated X-Gene 2 PMU exposes, with the synthesis model that turns a
  workload's architectural *traits* into counter readings.
* :mod:`repro.data.calibration` -- per-chip / per-core / per-benchmark
  anchor voltages digitised from the paper's Figures 3-5 and prose.
"""

from .counters import (
    COUNTER_NAMES,
    NUM_COUNTERS,
    RFE_SELECTED_FEATURES,
    CounterCatalog,
)
from .calibration import (
    CHIP_NAMES,
    ChipCalibration,
    chip_calibration,
    crash_voltage_mv,
    unsafe_width_mv,
    vmin_mv,
)

__all__ = [
    "COUNTER_NAMES",
    "NUM_COUNTERS",
    "RFE_SELECTED_FEATURES",
    "CounterCatalog",
    "CHIP_NAMES",
    "ChipCalibration",
    "chip_calibration",
    "crash_voltage_mv",
    "unsafe_width_mv",
    "vmin_mv",
]
