"""Value helpers for the physical units used throughout the library.

The X-Gene 2 regulator and PLL work on coarse grids (5 mV voltage steps,
300 MHz frequency steps), so rather than introducing heavyweight unit
types the library standardises on plain numbers with explicit unit
suffixes in names:

* voltages are **millivolts** (``int``), e.g. ``980``;
* frequencies are **megahertz** (``int``), e.g. ``2400``;
* temperatures are **degrees Celsius** (``float``);
* power is **watts** (``float``), energy **joules** (``float``).

This module centralises the grid constants and the snapping/validation
helpers so every subsystem agrees on what a legal operating point is.
"""

from __future__ import annotations

from .errors import FrequencyRangeError, VoltageRangeError

#: Nominal PMD (core) supply voltage in mV (Section 2.1 of the paper).
PMD_NOMINAL_MV = 980
#: Nominal PCP/SoC supply voltage in mV.
SOC_NOMINAL_MV = 950
#: Regulator granularity for both scalable domains, in mV.
VOLTAGE_STEP_MV = 5
#: Lowest voltage the characterization framework ever requests.  The
#: paper's sweeps bottom out around 850 mV at 2.4 GHz and ~740 mV at
#: 1.2 GHz; the simulated regulator allows a wider floor.
VOLTAGE_FLOOR_MV = 700

#: PMD frequency range and granularity (Section 2.1): 300 MHz..2.4 GHz
#: in 300 MHz steps.
FREQ_MIN_MHZ = 300
FREQ_MAX_MHZ = 2400
FREQ_STEP_MHZ = 300

#: Frequency used to park PMDs that are not under characterization
#: ("reliable cores setup", Section 2.2.1).
PARK_FREQ_MHZ = 300

#: Temperature at which the fan controller stabilises the chip during
#: characterization (Section 3.1).
CHARACTERIZATION_TEMP_C = 43.0


def validate_voltage_mv(voltage_mv: int, *, nominal_mv: int = PMD_NOMINAL_MV) -> int:
    """Validate a supply-voltage request against the regulator grid.

    Returns the voltage unchanged when it is an integer on the 5 mV grid
    within ``[VOLTAGE_FLOOR_MV, nominal_mv]``; raises
    :class:`~repro.errors.VoltageRangeError` otherwise.
    """
    if int(voltage_mv) != voltage_mv:
        raise VoltageRangeError(f"voltage must be an integer mV value, got {voltage_mv!r}")
    voltage_mv = int(voltage_mv)
    if not VOLTAGE_FLOOR_MV <= voltage_mv <= nominal_mv:
        raise VoltageRangeError(
            f"voltage {voltage_mv} mV outside regulator range "
            f"[{VOLTAGE_FLOOR_MV}, {nominal_mv}] mV"
        )
    if (nominal_mv - voltage_mv) % VOLTAGE_STEP_MV:
        raise VoltageRangeError(
            f"voltage {voltage_mv} mV not on the {VOLTAGE_STEP_MV} mV grid "
            f"anchored at {nominal_mv} mV"
        )
    return voltage_mv


def validate_frequency_mhz(freq_mhz: int) -> int:
    """Validate a PMD frequency request against the PLL grid."""
    if int(freq_mhz) != freq_mhz:
        raise FrequencyRangeError(f"frequency must be an integer MHz value, got {freq_mhz!r}")
    freq_mhz = int(freq_mhz)
    if not FREQ_MIN_MHZ <= freq_mhz <= FREQ_MAX_MHZ:
        raise FrequencyRangeError(
            f"frequency {freq_mhz} MHz outside [{FREQ_MIN_MHZ}, {FREQ_MAX_MHZ}] MHz"
        )
    if freq_mhz % FREQ_STEP_MHZ:
        raise FrequencyRangeError(
            f"frequency {freq_mhz} MHz not a multiple of {FREQ_STEP_MHZ} MHz"
        )
    return freq_mhz


def snap_down_mv(voltage_mv: float, *, nominal_mv: int = PMD_NOMINAL_MV) -> int:
    """Snap an arbitrary voltage down onto the regulator grid.

    Used by policies that compute a continuous voltage target and must
    program the closest *safe* (i.e. not lower than intended -- so the
    snap direction is up) regulator step.  Despite the name, the snap is
    toward the next representable value **at or above** the request,
    because programming a lower voltage than the computed safe bound
    would be unsafe.
    """
    steps = (nominal_mv - voltage_mv) / VOLTAGE_STEP_MV
    snapped = nominal_mv - int(steps) * VOLTAGE_STEP_MV
    return validate_voltage_mv(snapped, nominal_mv=nominal_mv)


def voltage_sweep(start_mv: int, stop_mv: int, *, nominal_mv: int = PMD_NOMINAL_MV) -> list:
    """Inclusive descending sweep from ``start_mv`` to ``stop_mv`` on the
    5 mV grid -- the voltage schedule of an undervolting campaign."""
    start_mv = validate_voltage_mv(start_mv, nominal_mv=nominal_mv)
    stop_mv = validate_voltage_mv(stop_mv, nominal_mv=nominal_mv)
    if stop_mv > start_mv:
        raise VoltageRangeError(
            f"sweep stop {stop_mv} mV must not exceed start {start_mv} mV"
        )
    return list(range(start_mv, stop_mv - 1, -VOLTAGE_STEP_MV))


def effective_frequency_mhz(freq_mhz: int, input_clock_mhz: int = FREQ_MAX_MHZ) -> float:
    """Effective PMD frequency under clock skipping / division.

    The X-Gene 2 derives PMD clocks from a fixed input clock: ratios
    greater or less than 1/2 use clock *skipping*, exactly 1/2 uses
    clock *division* (Section 3.2).  Either way the effective frequency
    equals the requested one; this helper exists so the clock-tree power
    model can distinguish the mechanisms (see
    :mod:`repro.hardware.clocking`).
    """
    validate_frequency_mhz(freq_mhz)
    return float(min(freq_mhz, input_clock_mhz))
