"""Terminal rendering of the regenerated figures.

Deliberately dependency-free (no matplotlib offline): bar charts,
heat-maps and scatter plots as monospace text, good enough to eyeball
the shapes the paper's figures show.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """Horizontal bar chart; bars start at ``baseline`` (default min)."""
    if not values:
        raise ConfigurationError("bar_chart needs at least one value")
    label_width = max(len(str(k)) for k in values)
    low = baseline if baseline is not None else min(values.values())
    high = max(values.values())
    span = max(high - low, 1e-12)
    lines = []
    for key, value in values.items():
        filled = int(round((value - low) / span * width))
        bar = "#" * filled
        lines.append(f"{str(key).ljust(label_width)} |{bar.ljust(width)}| "
                     f"{value:g}{unit}")
    return "\n".join(lines)


def heatmap(
    matrix: Mapping[float, Mapping[int, float]],
    value_format: str = "{:5.1f}",
    empty: str = "    .",
    col_header: str = "core",
) -> str:
    """Row-keyed heat-map with numeric cells (the Figure-5 shape).

    ``matrix`` maps row key (e.g. voltage) -> {column key: value};
    zero cells render as ``empty``.
    """
    if not matrix:
        raise ConfigurationError("heatmap needs at least one row")
    columns = sorted({c for row in matrix.values() for c in row})
    header = "        " + " ".join(f"{col_header}{c}".rjust(5) for c in columns)
    lines = [header]
    for row_key in sorted(matrix, reverse=True):
        cells = []
        for column in columns:
            value = matrix[row_key].get(column, 0.0)
            cells.append(value_format.format(value) if value else empty)
        lines.append(f"{row_key:>6}  " + " ".join(cells))
    return "\n".join(lines)


def scatter(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    marks: str = "o",
) -> str:
    """Monospace scatter plot of (x, y) points."""
    if not points:
        raise ConfigurationError("scatter needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = marks
    lines = [f"{y_label} [{y_lo:g} .. {y_hi:g}]"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_lo:g} .. {x_hi:g}]")
    return "\n".join(lines)


def region_strip(
    regions: Mapping[int, object], symbols: Optional[Mapping[str, str]] = None
) -> str:
    """One Figure-4 column as a vertical strip of region glyphs."""
    glyphs = symbols or {"safe": "S", "unsafe": "u", "crash": "#"}
    lines = []
    for voltage in sorted(regions, reverse=True):
        region = regions[voltage]
        name = getattr(region, "value", str(region))
        lines.append(f"{voltage:>4} {glyphs.get(name, '?')}")
    return "\n".join(lines)
