"""Analysis & regeneration of every table and figure in the paper.

* :mod:`repro.analysis.variation` -- core-to-core / chip-to-chip /
  workload-to-workload variation statistics (Section 3.3).
* :mod:`repro.analysis.tables` -- Tables 1-4 as data + text rendering.
* :mod:`repro.analysis.figures` -- Figures 3, 4, 5, 7, 8, 9 as data
  series, from either the calibration anchors (instant) or measured
  characterization results.
* :mod:`repro.analysis.ascii_plots` -- terminal rendering.
* :mod:`repro.analysis.report` -- paper-vs-measured comparison report.
* :mod:`repro.analysis.lint` -- ``reprolint``, the AST-based checker
  of the repo's determinism / unit-safety / machine-protocol
  invariants (``repro lint`` or ``python -m repro.analysis``).
"""

from .variation import (
    VariationSummary,
    chip_to_chip_summary,
    core_to_core_spread,
    workload_ordering_consistency,
)
from .tables import table1_prior_work, table2_parameters, table3_effects, table4_weights
from .figures import (
    figure3_vmin_series,
    figure4_region_grid,
    figure5_severity_map,
    figure7_prediction_series,
    figure9_series,
)
from .ascii_plots import bar_chart, heatmap, scatter
from .error_locations import LocationProfile, location_profiles, onset_table
from .export import FigureExporter
from .lint import Diagnostic, LintReport, lint_paths, lint_source
from .report import PAPER_CLAIMS, ClaimCheck, check_claims

__all__ = [
    "VariationSummary",
    "chip_to_chip_summary",
    "core_to_core_spread",
    "workload_ordering_consistency",
    "table1_prior_work",
    "table2_parameters",
    "table3_effects",
    "table4_weights",
    "figure3_vmin_series",
    "figure4_region_grid",
    "figure5_severity_map",
    "figure7_prediction_series",
    "figure9_series",
    "bar_chart",
    "heatmap",
    "scatter",
    "FigureExporter",
    "LocationProfile",
    "location_profiles",
    "onset_table",
    "PAPER_CLAIMS",
    "ClaimCheck",
    "check_claims",
    "Diagnostic",
    "LintReport",
    "lint_paths",
    "lint_source",
]
