"""Error-location analytics (Section 2.2's parser extension).

*"the parser can also report the exact location that the correctable
errors occurred (e.g. the cache level, the memory, etc.) using the
logging information provided by the execution phase."*

The machine's EDAC model attributes every corrected/uncorrected error
to its reporting location (L1D, L2, L3, ...).  This module aggregates
those attributions across a characterization, answering where the
memory hierarchy starts to wear out as the voltage drops -- the
location-resolved refinement of the CE/UE columns in Figure 4's
unsafe band.

Diagnostics go through the structured telemetry logger (silent unless
a telemetry session is active) instead of the :mod:`logging` module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from .. import telemetry
from ..core.runs import RunRecord
from ..errors import CampaignError

_LOG = telemetry.get_logger("repro.analysis.error_locations")


@dataclass(frozen=True)
class LocationProfile:
    """Error counts of one location across a voltage sweep."""

    location: str
    #: {voltage: (ce_events, ue_events)}
    by_voltage: Mapping[int, Tuple[int, int]]

    @property
    def total_ce(self) -> int:
        return sum(ce for ce, _ue in self.by_voltage.values())

    @property
    def total_ue(self) -> int:
        return sum(ue for _ce, ue in self.by_voltage.values())

    @property
    def onset_voltage_mv(self) -> Optional[int]:
        """Highest voltage at which this location reported anything."""
        reporting = [
            v for v, (ce, ue) in self.by_voltage.items() if ce or ue
        ]
        return max(reporting) if reporting else None


def location_profiles(records: List[RunRecord]) -> Dict[str, LocationProfile]:
    """Aggregate per-location error counts from run records.

    Locations come from the fault model's detail keys (``ce_L2``,
    ``ue_L3``, ...), which the machine also feeds to the EDAC driver.
    """
    if not records:
        raise CampaignError("need at least one run record")
    staging: Dict[str, Dict[int, List[int]]] = {}
    for record in records:
        voltage = record.setup.voltage_mv
        for key, count in record.detail.items():
            kind: Optional[str] = None
            if key.startswith("ce_"):
                kind, location = "ce", key[3:]
            elif key.startswith("ue_"):
                kind, location = "ue", key[3:]
            else:
                continue
            slot = staging.setdefault(location, {}).setdefault(voltage, [0, 0])
            slot[0 if kind == "ce" else 1] += int(count)
    _LOG.debug(
        "aggregated error locations",
        locations=len(staging),
        records=len(records),
    )
    return {
        location: LocationProfile(
            location=location,
            by_voltage={v: (ce, ue) for v, (ce, ue) in per_voltage.items()},
        )
        for location, per_voltage in staging.items()
    }


def onset_table(profiles: Mapping[str, LocationProfile]) -> List[Tuple[str, Optional[int], int, int]]:
    """(location, onset mV, total CE, total UE), highest onset first."""
    rows = [
        (p.location, p.onset_voltage_mv, p.total_ce, p.total_ue)
        for p in profiles.values()
    ]
    return sorted(rows, key=lambda r: (-(r[1] or 0), r[0]))
