"""Process-variation statistics (Section 3.3).

Three levels of Vmin variation, each a lever for energy savings:

* **core-to-core**: up to 3.6 % more voltage reduction on the most
  robust cores; PMD 2 is the most robust PMD on all three chips;
* **chip-to-chip**: TFF averages below TTT, TSS significantly above;
* **workload-to-workload**: the per-benchmark ordering is the same on
  every chip ("there is a program dependency of Vmin behavior in all
  chips").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..data.calibration import CHIP_NAMES, chip_calibration
from ..errors import ConfigurationError
from ..units import PMD_NOMINAL_MV
from ..workloads.benchmark import Benchmark


@dataclass(frozen=True)
class VariationSummary:
    """Per-chip variation summary over a benchmark set."""

    chip: str
    #: Mean Vmin over cores and benchmarks, mV.
    mean_vmin_mv: float
    #: Most robust / most sensitive core indices.
    most_robust_core: int
    most_sensitive_core: int
    #: Largest core-to-core Vmin gap for any single benchmark, mV.
    max_core_spread_mv: int
    #: That gap as a fraction of the nominal supply ("up to 3.6 %").
    max_core_spread_fraction: float
    #: Per-PMD mean variation offset, mV (PMD 2 should be smallest).
    pmd_mean_offset_mv: Tuple[float, float, float, float]


def _vmin_grid(chip: str, benchmarks: Sequence[Benchmark],
               freq_mhz: int = 2400) -> Dict[Tuple[str, int], int]:
    calibration = chip_calibration(chip)
    return {
        (bench.name, core): calibration.vmin_mv(core, bench.stress, freq_mhz)
        for bench in benchmarks
        for core in range(8)
    }


def core_to_core_spread(
    chip: str, benchmarks: Sequence[Benchmark], freq_mhz: int = 2400
) -> VariationSummary:
    """Core-to-core variation summary from the calibration anchors."""
    if not benchmarks:
        raise ConfigurationError("need at least one benchmark")
    calibration = chip_calibration(chip)
    grid = _vmin_grid(chip, benchmarks, freq_mhz)
    spreads = []
    for bench in benchmarks:
        values = [grid[(bench.name, core)] for core in range(8)]
        spreads.append(max(values) - min(values))
    max_spread = max(spreads)
    offsets = calibration.core_offsets_mv
    pmd_means = tuple(
        (offsets[2 * pmd] + offsets[2 * pmd + 1]) / 2.0 for pmd in range(4)
    )
    return VariationSummary(
        chip=chip,
        mean_vmin_mv=sum(grid.values()) / len(grid),
        most_robust_core=calibration.most_robust_core(),
        most_sensitive_core=calibration.most_sensitive_core(),
        max_core_spread_mv=max_spread,
        max_core_spread_fraction=max_spread / PMD_NOMINAL_MV,
        pmd_mean_offset_mv=pmd_means,
    )


def chip_to_chip_summary(
    benchmarks: Sequence[Benchmark], freq_mhz: int = 2400
) -> Dict[str, VariationSummary]:
    """Variation summary of all three chips, keyed by chip name."""
    return {
        chip: core_to_core_spread(chip, benchmarks, freq_mhz)
        for chip in CHIP_NAMES
    }


def workload_ordering_consistency(
    benchmarks: Sequence[Benchmark], freq_mhz: int = 2400
) -> float:
    """Kendall-style concordance of the benchmark Vmin ordering across
    chips (1.0 = identical ordering on all chips, as the paper finds).

    Computed pairwise on the most robust core of each chip: the
    fraction of benchmark pairs ordered consistently (ties ignored)
    across every chip pair.
    """
    if len(benchmarks) < 2:
        raise ConfigurationError("need at least two benchmarks")
    per_chip: Dict[str, List[int]] = {}
    for chip in CHIP_NAMES:
        calibration = chip_calibration(chip)
        core = calibration.most_robust_core()
        per_chip[chip] = [
            calibration.vmin_mv(core, bench.stress, freq_mhz)
            for bench in benchmarks
        ]
    agreements = 0
    comparisons = 0
    n = len(benchmarks)
    chips = list(CHIP_NAMES)
    for a in range(len(chips)):
        for b in range(a + 1, len(chips)):
            va, vb = per_chip[chips[a]], per_chip[chips[b]]
            for i in range(n):
                for j in range(i + 1, n):
                    da = va[i] - va[j]
                    db = vb[i] - vb[j]
                    if da == 0 or db == 0:
                        continue
                    comparisons += 1
                    if (da > 0) == (db > 0):
                        agreements += 1
    if comparisons == 0:
        return 1.0
    return agreements / comparisons
