"""The ``reprolint`` command line.

Reached two ways -- ``repro lint ...`` (subcommand of the main CLI)
and ``python -m repro.analysis ...`` (standalone, usable before the
package is installed).  Exit codes follow the classic linter contract:

* ``0`` -- every checked file is clean;
* ``1`` -- findings were reported;
* ``2`` -- usage error (unknown path, unknown rule id, bad flags).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ...errors import ConfigurationError
from .runner import DEFAULT_CACHE_PATH, lint_paths, render_rule_catalog
from .sarif import render_sarif

#: Default lint targets when none are given, filtered to what exists.
DEFAULT_PATHS = ("src", "tests", "examples")


def build_lint_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Build (or extend) the argument parser of the lint CLI."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="reprolint",
            description="AST- and dataflow-based checker for the repo's "
                        "determinism, unit-safety, machine-protocol and "
                        "parallel-purity invariants (rules "
                        "RPR001-RPR013).",
        )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src tests examples)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RPR00x[,RPR00y]",
        help="run only these rule ids (disables the cache and the "
             "stale-suppression check)",
    )
    parser.add_argument(
        "--format", dest="output_format", choices=("text", "json"),
        default="text", help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="also write the findings as a SARIF 2.1.0 document "
             "(for GitHub code scanning)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print per-rule finding counts and per-phase wall time",
    )
    parser.add_argument(
        "--cache", default=DEFAULT_CACHE_PATH, metavar="FILE",
        help="incremental result cache location "
             f"(default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="analyze every file fresh; neither read nor write the cache",
    )
    parser.add_argument(
        "--no-stale-check", action="store_true",
        help="do not report disable= suppressions that shielded nothing",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        print(render_rule_catalog())
        return 0
    paths: List[str] = list(args.paths)
    if not paths:
        paths = [p for p in DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            print("error: no PATH given and no default target "
                  "(src/tests/examples) exists here", file=sys.stderr)
            return 2
    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
    cache_path = None if args.no_cache else args.cache
    try:
        report = lint_paths(
            paths, select=select, cache_path=cache_path,
            stale_check=not args.no_stale_check,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.sarif:
        try:
            Path(args.sarif).write_text(
                json.dumps(render_sarif(report.diagnostics), indent=2),
                encoding="utf-8",
            )
        except OSError as exc:
            print(f"error: cannot write SARIF file: {exc}", file=sys.stderr)
            return 2
    if args.output_format == "json":
        print(json.dumps(report.to_json_dict(), indent=2))
    else:
        print(report.render_text())
    if args.stats:
        print(report.render_stats())
    return 0 if report.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = build_lint_parser()
    args = parser.parse_args(argv)
    return run_lint(args)
