"""The ``reprolint`` command line.

Reached two ways -- ``repro lint ...`` (subcommand of the main CLI)
and ``python -m repro.analysis ...`` (standalone, usable before the
package is installed).  Exit codes follow the classic linter contract:

* ``0`` -- every checked file is clean;
* ``1`` -- findings were reported;
* ``2`` -- usage error (unknown path, unknown rule id, bad flags).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ...errors import ConfigurationError
from .runner import lint_paths, render_rule_catalog

#: Default lint targets when none are given, filtered to what exists.
DEFAULT_PATHS = ("src", "tests", "examples")


def build_lint_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Build (or extend) the argument parser of the lint CLI."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="reprolint",
            description="AST-based checker for the repo's determinism, "
                        "unit-safety and machine-protocol invariants "
                        "(rules RPR001-RPR008).",
        )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src tests examples)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RPR00x[,RPR00y]",
        help="run only these rule ids",
    )
    parser.add_argument(
        "--format", dest="output_format", choices=("text", "json"),
        default="text", help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        print(render_rule_catalog())
        return 0
    paths: List[str] = list(args.paths)
    if not paths:
        from pathlib import Path

        paths = [p for p in DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            print("error: no PATH given and no default target "
                  "(src/tests/examples) exists here", file=sys.stderr)
            return 2
    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
    try:
        report = lint_paths(paths, select=select)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(json.dumps(report.to_json_dict(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = build_lint_parser()
    args = parser.parse_args(argv)
    return run_lint(args)
