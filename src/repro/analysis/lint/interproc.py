"""The interprocedural rule set: RPR011-RPR013.

These rules generalize their per-file ancestors across function and
module boundaries by checking the solved
:class:`~repro.analysis.lint.dataflow.ProjectDataflow` instead of one
AST at a time:

* **RPR011** traces every RNG-constructor seed argument back to its
  ground provenance through any number of helper functions -- a seed
  that is a laundered literal or wall-clock value breaks
  campaign-to-campaign comparability no matter how many calls deep
  the laundering is.
* **RPR012** propagates mV/V unit tags through parameters and returns,
  so a volt-scale value produced in one module and passed into an
  mV-typed parameter in another is caught even though neither file is
  wrong in isolation (RPR004 only sees literals next to names).
* **RPR013** walks the call graph from the parallel engine's worker
  entry points and flags writes to module-level or closure-captured
  mutable state anywhere in the reachable cone -- mutations workers
  never share back, however indirectly they happen (RPR006 only sees
  ``global`` statements and lambda arguments syntactically).

All three share one :meth:`ProjectModel.dataflow` solution per run.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from .dataflow import FunctionSummary, SeedSink, WriteSite, is_level_name
from .diagnostics import Diagnostic
from .project import ProjectModel
from .registry import ProjectRule, register_rule

_PROVENANCE_LABELS = {
    "literal": "a literal constant",
    "wallclock": "a wall-clock/entropy source",
}


def _call_chain(path: Tuple[str, ...]) -> str:
    """Render a worker call chain with module-local names."""
    return " -> ".join(q.rsplit(".", 1)[-1] for q in path)


@register_rule
class SeedProvenance(ProjectRule):
    """RPR011: every RNG seed must trace to SeedSequence/sha256."""

    rule_id = "RPR011"
    name = "seed-provenance"
    description = (
        "RNG-constructor seed arguments (default_rng, RandomState, "
        "bit generators, random.Random) must trace back to a "
        "SeedSequence-derived or sha256-keyed value; literal or "
        "wall-clock seeds are flagged through any number of helper "
        "functions and module boundaries."
    )
    protects = "interprocedural SeedSequence determinism"

    def check_project(self, project: ProjectModel) -> Iterator[Diagnostic]:
        flow = project.dataflow()
        for qualname, summary in sorted(project.functions.items()):
            for sink in summary.seed_sinks:
                yield from self._check_sink(flow, summary, sink)

    def _check_sink(
        self,
        flow: "ProjectDataflow",  # noqa: F821
        summary: FunctionSummary,
        sink: SeedSink,
    ) -> Iterator[Diagnostic]:
        ground = flow.resolve_taint(sink.atoms, summary.qualname)
        tainted = sorted(ground & _PROVENANCE_LABELS.keys())
        if not tainted:
            return
        sources = " and ".join(_PROVENANCE_LABELS[t] for t in tainted)
        also_safe = (
            "; one call path is safe, but every path must be"
            if "safe" in ground else ""
        )
        yield Diagnostic(
            path=summary.path, line=sink.line, col=sink.col,
            rule=self.rule_id, name=self.name,
            message=(
                f"seed for {sink.api} traces to {sources}"
                f"{also_safe} -- derive it from the campaign "
                "SeedSequence (spawn keys) or a sha256-keyed digest "
                "so reruns are bit-identical"
            ),
        )


@register_rule
class CrossModuleUnitFlow(ProjectRule):
    """RPR012: mV/V unit tags propagate through call edges."""

    rule_id = "RPR012"
    name = "cross-module-unit-flow"
    description = (
        "Propagates mV/V unit tags through function parameters and "
        "returns: a volt-scale value flowing into an mV-typed "
        "parameter in another function or module (or vice versa) is "
        "flagged, generalizing RPR004's per-file literal heuristics."
    )
    protects = "5 mV unit discipline across call edges"

    def check_project(self, project: ProjectModel) -> Iterator[Diagnostic]:
        flow = project.dataflow()
        for call in flow.resolved_calls:
            caller = project.functions[call.caller]
            for qualname, offset in call.targets:
                callee = project.functions[qualname]
                yield from self._check_edge(flow, caller, call, callee, offset)

    def _check_edge(
        self,
        flow: "ProjectDataflow",  # noqa: F821
        caller: FunctionSummary,
        call: "ResolvedCall",  # noqa: F821
        callee: FunctionSummary,
        offset: int,
    ) -> Iterator[Diagnostic]:
        site = call.site
        flows: List[Tuple[int, Tuple[str, ...]]] = []
        for pos, atoms in enumerate(site.arg_units):
            flows.append((pos + offset, atoms))
        for name, atoms in site.kwarg_units:
            try:
                flows.append((callee.params.index(name), atoms))
            except ValueError:
                continue
        for index, atoms in flows:
            declared = callee.param_units.get(index)
            if declared is None:
                continue
            arrived = flow.resolve_unit(atoms, caller.qualname)
            if declared in arrived:
                continue
            param = (
                callee.params[index]
                if index < len(callee.params) else f"#{index}"
            )
            if declared == "mv":
                # A name-derived volt tag always flags; a volt-scale
                # *literal* only flags into level-named parameters
                # (widths/scales are legitimately sub-volt -- RPR004's
                # own refinement).
                mismatch = "v" in arrived or (
                    "vlit" in arrived and is_level_name(param)
                )
                scale = "volt"
            else:
                mismatch = "mv" in arrived
                scale = "millivolt"
            if mismatch:
                want = "mV" if declared == "mv" else "V"
                yield Diagnostic(
                    path=caller.path, line=site.line, col=site.col,
                    rule=self.rule_id, name=self.name,
                    message=(
                        f"{scale}-scale value flows into {want}-typed "
                        f"parameter '{param}' of {callee.qualname} -- "
                        "convert at the boundary (repro.units) instead "
                        "of mixing magnitudes across calls"
                    ),
                )


@register_rule
class ParallelSharedStateReachability(ProjectRule):
    """RPR013: no shared-state writes reachable from worker entries."""

    rule_id = "RPR013"
    name = "parallel-shared-state"
    description = (
        "Walks the call graph from ParallelCampaignEngine worker entry "
        "points (run_* tasks and submitted functions) and flags writes "
        "to module-level or closure-captured mutable state anywhere in "
        "the reachable cone: workers never share such mutations back, "
        "so they silently diverge from the serial path."
    )
    protects = "serial/parallel bit-equivalence beyond lambda checks"

    _KIND_LABELS: Dict[str, str] = {
        "module-state": "module-level state",
        "global-decl": "a global declaration",
        "closure-state": "closure-captured state",
    }

    def check_project(self, project: ProjectModel) -> Iterator[Diagnostic]:
        flow = project.dataflow()
        for qualname, chain in sorted(flow.reachable.items()):
            summary = project.functions.get(qualname)
            if summary is None:
                continue
            for write in summary.writes:
                yield self._diagnostic(summary, write, chain)

    def _diagnostic(
        self,
        summary: FunctionSummary,
        write: WriteSite,
        chain: Tuple[str, ...],
    ) -> Diagnostic:
        kind = self._KIND_LABELS.get(write.kind, write.kind)
        return Diagnostic(
            path=summary.path, line=write.line, col=write.col,
            rule=self.rule_id, name=self.name,
            message=(
                f"write to {kind} '{write.target}' is reachable from "
                f"a parallel worker entry point ({_call_chain(chain)})"
                " -- worker-side mutations never propagate back; pass "
                "state through task arguments and results instead"
            ),
        )


from typing import TYPE_CHECKING  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover
    from .dataflow import ProjectDataflow, ResolvedCall
