"""SARIF 2.1.0 rendering of a lint report.

SARIF (Static Analysis Results Interchange Format) is what GitHub
code scanning ingests: uploading ``reprolint.sarif`` from CI turns
every finding into an inline PR annotation.  The document shape here
is the minimal valid core of the 2.1.0 schema -- one run, the tool's
rule metadata from the live registry, and one ``result`` per
diagnostic with a file/region-precise physical location.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .diagnostics import META_RULE_ID, Diagnostic
from .registry import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_REPO_URI = "https://github.com/repro/voltage-margins"


def _tool_component() -> Dict[str, Any]:
    from ..._version import __version__

    rules: List[Dict[str, Any]] = [{
        "id": META_RULE_ID,
        "name": "lint-integrity",
        "shortDescription": {
            "text": "Syntax errors, unreadable files, malformed or "
                    "stale suppressions."
        },
    }]
    for rule in all_rules():
        rules.append({
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.protects or rule.name},
            "fullDescription": {"text": rule.description},
        })
    return {
        "name": "reprolint",
        "version": __version__,
        "informationUri": _REPO_URI,
        "rules": rules,
    }


def _result(diagnostic: Diagnostic) -> Dict[str, Any]:
    return {
        "ruleId": diagnostic.rule,
        "level": "error",
        "message": {"text": f"[{diagnostic.name}] {diagnostic.message}"},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": diagnostic.path.replace("\\", "/"),
                },
                "region": {
                    "startLine": diagnostic.line,
                    "startColumn": diagnostic.col,
                },
            },
        }],
    }


def render_sarif(diagnostics: List[Diagnostic]) -> Dict[str, Any]:
    """A SARIF 2.1.0 document (as a plain dict) for the findings."""
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": _tool_component()},
            "results": [_result(d) for d in diagnostics],
        }],
    }
