"""Per-line ``# reprolint: disable=...`` suppression comments.

Syntax::

    x = risky()  # reprolint: disable=RPR001 -- seeded upstream by the engine

* The rule list is comma-separated (``disable=RPR001,RPR004``).
* The ``-- justification`` tail is **mandatory**: the repo policy is
  "no blanket suppressions", so a suppression without a reason is
  itself reported (as :data:`~repro.analysis.lint.diagnostics.META_RULE_ID`).
* A trailing comment suppresses findings on its own line; a comment
  alone on a line suppresses findings on the next line (useful ahead
  of long statements).

There is deliberately no file-level or block-level disable.  And a
suppression must *earn its keep*: the runner records which entries
actually shielded a diagnostic, and (unless ``--no-stale-check``) a
``disable=`` clause that suppressed nothing is itself reported --
stale suppressions hide future regressions behind dead comments.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Set, Tuple

from .diagnostics import META_RULE_ID, Diagnostic

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Z0-9, ]+?)\s*(?:--\s*(.*?)\s*)?$"
)
_RULE_ID_RE = re.compile(r"^RPR\d{3}$")


@dataclass(frozen=True)
class SuppressionEntry:
    """One well-formed ``disable=`` clause and the line it shields."""

    comment_line: int
    col: int
    target_line: int
    rules: Tuple[str, ...]

    def to_json_dict(self) -> List[Any]:
        return [self.comment_line, self.col, self.target_line,
                list(self.rules)]

    @classmethod
    def from_json_dict(cls, payload: List[Any]) -> "SuppressionEntry":
        return cls(comment_line=payload[0], col=payload[1],
                   target_line=payload[2], rules=tuple(payload[3]))


@dataclass
class SuppressionTable:
    """Which rules are suppressed on which physical lines of one file."""

    #: line number -> rule ids suppressed there.
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: the well-formed clauses, for stale-suppression accounting.
    entries: List[SuppressionEntry] = field(default_factory=list)
    #: integrity problems found while parsing the comments.
    problems: List[Diagnostic] = field(default_factory=list)

    def is_suppressed(self, line: int, rule: str) -> bool:
        return rule in self.by_line.get(line, set())

    def add_entry(self, entry: SuppressionEntry) -> None:
        self.entries.append(entry)
        self.by_line.setdefault(entry.target_line, set()).update(entry.rules)

    @classmethod
    def from_parts(
        cls,
        entries: Iterable[SuppressionEntry],
        problems: Iterable[Diagnostic],
    ) -> "SuppressionTable":
        """Rebuild a table from cached entries and problems."""
        table = cls(problems=list(problems))
        for entry in entries:
            table.add_entry(entry)
        return table


def _comment_tokens(source: str) -> List[Tuple[int, int, str, str]]:
    """(line, col, comment_text, line_text) for every comment token."""
    comments = []
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                row, col = token.start
                line_text = lines[row - 1] if row - 1 < len(lines) else ""
                comments.append((row, col, token.string, line_text))
    except (tokenize.TokenError, IndentationError):
        # The AST parse reports syntax errors; nothing more to add here.
        pass
    return comments


def scan_suppressions(path: str, source: str) -> SuppressionTable:
    """Build the suppression table of one file.

    Malformed rule lists and missing justifications become
    :data:`META_RULE_ID` problems instead of silently (not) applying.
    """
    table = SuppressionTable()
    for row, col, comment, line_text in _comment_tokens(source):
        if "reprolint:" not in comment:
            continue
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            table.problems.append(Diagnostic(
                path=path, line=row, col=col + 1, rule=META_RULE_ID,
                name="malformed-suppression",
                message="cannot parse reprolint comment; expected "
                        "'# reprolint: disable=RPR00x -- justification'",
            ))
            continue
        rule_ids = [r.strip() for r in match.group(1).split(",") if r.strip()]
        justification = match.group(2)
        bad = [r for r in rule_ids if not _RULE_ID_RE.match(r)]
        if bad or not rule_ids:
            table.problems.append(Diagnostic(
                path=path, line=row, col=col + 1, rule=META_RULE_ID,
                name="malformed-suppression",
                message=f"unknown rule id(s) {bad or ['<empty>']} in "
                        "reprolint suppression",
            ))
            continue
        if META_RULE_ID in rule_ids:
            table.problems.append(Diagnostic(
                path=path, line=row, col=col + 1, rule=META_RULE_ID,
                name="unsuppressible-rule",
                message=f"{META_RULE_ID} (lint integrity) cannot be "
                        "suppressed",
            ))
            continue
        if not justification:
            table.problems.append(Diagnostic(
                path=path, line=row, col=col + 1, rule=META_RULE_ID,
                name="unjustified-suppression",
                message="suppression needs a justification: "
                        "'# reprolint: disable="
                        + ",".join(rule_ids) + " -- <why this is safe>'",
            ))
            continue
        # A comment alone on its line shields the next line; a trailing
        # comment shields its own.
        standalone = line_text[:col].strip() == ""
        target = row + 1 if standalone else row
        table.add_entry(SuppressionEntry(
            comment_line=row, col=col + 1, target_line=target,
            rules=tuple(rule_ids),
        ))
    return table
