"""Rule registry and the per-file analysis context.

A rule is a class with a stable ``rule_id`` (``RPR00x``), a short
``name``, a human ``description`` and a ``check(ctx)`` generator that
yields :class:`~repro.analysis.lint.diagnostics.Diagnostic` records.
Registration is declarative::

    @register_rule
    class MyRule(Rule):
        rule_id = "RPR042"
        name = "my-invariant"
        description = "..."

        def check(self, ctx):
            ...

:class:`FileContext` carries everything a rule needs about one file:
the parsed tree, the dotted module name (for files under ``src/repro``)
and an import-alias table that resolves ``np.random.default_rng``-style
attribute chains back to absolute dotted paths -- including relative
imports, which resolve against the file's package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Type

from ...errors import ConfigurationError
from .diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover
    from .project import ProjectModel


@dataclass
class FileContext:
    """One file under analysis."""

    #: Path as reported in diagnostics (as given on the command line).
    path: str
    source: str
    tree: ast.Module
    #: Dotted module name for files under ``src/repro`` (e.g.
    #: ``repro.scheduling.simulation``); None for tests/examples/etc.
    module: Optional[str] = None
    #: name -> absolute dotted path bound by an import statement.
    imports: Dict[str, str] = field(default_factory=dict)

    @property
    def package(self) -> Optional[str]:
        """The package relative imports resolve against."""
        if self.module is None:
            return None
        if self.path.endswith("__init__.py"):
            return self.module
        return self.module.rsplit(".", 1)[0] if "." in self.module else ""

    @property
    def path_parts(self) -> Tuple[str, ...]:
        return tuple(self.path.replace("\\", "/").split("/"))

    def in_dirs(self, *names: str) -> bool:
        """True when any directory segment of the path is in ``names``."""
        return any(part in names for part in self.path_parts[:-1])

    @property
    def is_test_file(self) -> bool:
        filename = self.path_parts[-1]
        return self.in_dirs("tests") or filename.startswith("test_")

    # -- import resolution -------------------------------------------------

    def _resolve_relative(self, node: ast.ImportFrom) -> Optional[str]:
        if self.package is None:
            return None
        parts = self.package.split(".") if self.package else []
        if node.level - 1 > len(parts):
            return None
        base = parts[: len(parts) - (node.level - 1)]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) or None

    def import_target(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted module an ``ImportFrom`` pulls from."""
        if node.level == 0:
            return node.module
        return self._resolve_relative(node)

    def build_import_table(self) -> None:
        """Map every import-bound name to its absolute dotted path."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                target = self.import_target(node)
                if target is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{target}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Absolute dotted path of a ``Name``/``Attribute`` chain.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when ``np`` was imported as numpy;
        chains whose base is not an imported name resolve to None (so
        ``rng.shuffle(...)`` on a Generator is never mistaken for the
        module-level ``numpy.random.shuffle``).
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id)
        if base is None:
            return None
        return ".".join([base] + list(reversed(chain)))


class Rule:
    """Base class for reprolint rules."""

    rule_id: str = ""
    name: str = ""
    description: str = ""
    #: The paper/repo artifact the rule protects (shown in the catalog).
    protects: str = ""

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            name=self.name,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program (interprocedural) rules.

    Project rules see every analyzed ``repro.*`` module at once --
    :meth:`check_project` receives the
    :class:`~repro.analysis.lint.project.ProjectModel` and yields
    diagnostics anywhere in it.  ``check(ctx)`` still works (so
    single-file fixtures through :func:`lint_source` exercise these
    rules too): it wraps the one file into a single-module project and
    keeps only that file's findings.
    """

    def check_project(
        self, project: "ProjectModel"
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        from .project import ProjectModel, build_module_model

        model = build_module_model(ctx)
        project = ProjectModel([model] if model is not None else [])
        for diagnostic in self.check_project(project):
            if diagnostic.path == ctx.path:
                yield diagnostic


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id or not cls.name:
        raise ConfigurationError(
            f"rule {cls.__name__} must define rule_id and name"
        )
    if cls.rule_id in _REGISTRY:
        raise ConfigurationError(
            f"duplicate rule id {cls.rule_id} "
            f"({cls.__name__} vs {_REGISTRY[cls.rule_id].__name__})"
        )
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Instances of every registered rule, ordered by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one rule by id; raises for unknown ids."""
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown rule id {rule_id!r} (known: {known})"
        ) from None
