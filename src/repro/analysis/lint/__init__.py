"""``reprolint`` -- the repo's AST-based invariant checker.

The characterization methodology only holds if every run is
bit-reproducible: the same (workload, core, voltage, seed) must always
classify into the same Table-3 effect class and severity must always
use the Table-4 weights.  After the parallel engine (SeedSequence
determinism) and the machine protocol (no concrete-machine coupling
outside :mod:`repro.hardware`), those invariants are load-bearing --
this package machine-checks them on every commit.

* :mod:`repro.analysis.lint.registry` -- rule base class, registry and
  per-file analysis context (import resolution, module scoping).
* :mod:`repro.analysis.lint.rules` -- the RPR001-RPR008 rule set.
* :mod:`repro.analysis.lint.suppressions` -- per-line
  ``# reprolint: disable=RPR00x -- why`` comments (a justification is
  mandatory; unjustified suppressions are themselves findings).
* :mod:`repro.analysis.lint.runner` -- file discovery and aggregation.
* :mod:`repro.analysis.lint.cli` -- the ``repro lint`` /
  ``python -m repro.analysis`` entry points.
"""

from .diagnostics import Diagnostic
from .registry import FileContext, Rule, all_rules, get_rule, register_rule
from .runner import LintReport, lint_paths, lint_source
from . import rules as _rules  # noqa: F401  (registers the rule set)

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintReport",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register_rule",
]
