"""``reprolint`` -- the repo's AST- and dataflow-based invariant checker.

The characterization methodology only holds if every run is
bit-reproducible: the same (workload, core, voltage, seed) must always
classify into the same Table-3 effect class and severity must always
use the Table-4 weights.  After the parallel engine (SeedSequence
determinism) and the machine protocol (no concrete-machine coupling
outside :mod:`repro.hardware`), those invariants are load-bearing --
this package machine-checks them on every commit.

* :mod:`repro.analysis.lint.registry` -- rule base classes, registry and
  per-file analysis context (import resolution, module scoping).
* :mod:`repro.analysis.lint.rules` -- the per-file RPR001-RPR010 rules.
* :mod:`repro.analysis.lint.project` -- the whole-program project
  model: module/import graph, symbol table, call graph.
* :mod:`repro.analysis.lint.dataflow` -- per-function dataflow
  summaries (seed taint, mV/V unit tags, shared-state writes) and
  their whole-program fixed point.
* :mod:`repro.analysis.lint.interproc` -- the interprocedural
  RPR011-RPR013 rules built on the two modules above.
* :mod:`repro.analysis.lint.suppressions` -- per-line
  ``# reprolint: disable=RPR00x -- why`` comments (a justification is
  mandatory; unjustified and stale suppressions are themselves
  findings).
* :mod:`repro.analysis.lint.cache` -- the incremental result cache
  keyed on content SHA-256 with reverse-dependency-cone invalidation.
* :mod:`repro.analysis.lint.sarif` -- SARIF 2.1.0 rendering for
  GitHub code scanning.
* :mod:`repro.analysis.lint.runner` -- file discovery, the
  parse/graph/dataflow pipeline and aggregation.
* :mod:`repro.analysis.lint.cli` -- the ``repro lint`` /
  ``python -m repro.analysis`` entry points.
"""

from .diagnostics import Diagnostic
from .project import ModuleModel, ProjectModel, build_module_model
from .registry import (
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register_rule,
)
from .runner import LintReport, lint_paths, lint_source
from .sarif import render_sarif
from . import rules as _rules  # noqa: F401  (registers the per-file rules)
from . import interproc as _interproc  # noqa: F401  (registers RPR011-013)

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintReport",
    "ModuleModel",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "all_rules",
    "build_module_model",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_sarif",
]
