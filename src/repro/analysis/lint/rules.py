"""The per-file RPR001-RPR010 rule set.

(The interprocedural RPR011-RPR013 rules live in
:mod:`repro.analysis.lint.interproc`, on top of the project model and
dataflow summaries.)

Each rule encodes one invariant the reproduction's results rest on;
the canonical values a rule compares against (Table-4 weights, the
effect vocabulary, the 5 mV regulator step) are imported from their
single source of truth rather than re-stated here, so the linter can
never drift from the library.

================  =====================================================
RPR001            no unseeded randomness inside ``src/repro``
RPR002            no wall-clock / entropy sources in simulation paths
RPR003            machine-protocol boundary: no ``repro.hardware.xgene2``
                  import and no ``XGene2Machine`` binding outside
                  ``hardware/`` and ``machines/``
RPR004            unit safety: millivolt discipline, no bare V<->mV
                  magnitude mixing, no hardcoded 5 mV step
RPR005            Table-3 classes / Table-4 weights must come from
                  :mod:`repro.effects`, never re-hardcoded
RPR006            parallel-safety: engine callables must be
                  module-level; no module-global mutation in tasks
RPR007            single persistence path: no ad-hoc csv.writer /
                  json.dump of run data outside ``repro.store`` and
                  ``repro.core.results``
RPR008            no bare ``print()`` in library code outside
                  ``cli.py``, ``analysis/ascii_plots.py`` and
                  ``parallel/progress.py``; output routes through
                  :mod:`repro.telemetry`
RPR009            no voltage-curve evaluation inside per-run loops in
                  ``core/`` / ``hardware/``; compile the curve into a
                  table (:mod:`repro.core.kernel`) once per campaign
RPR010            single model path: fitted-model coefficients and
                  artifacts serialize only through
                  ``repro.store.models``; no ad-hoc json/pickle dumps
                  of models elsewhere
================  =====================================================
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from ...effects import SEVERITY_WEIGHTS, EffectType
from ...units import VOLTAGE_STEP_MV
from .diagnostics import Diagnostic
from .registry import FileContext, Rule, register_rule

#: Packages whose modules are "simulation/characterization paths":
#: anything whose output can flow into classification or severity.
SIMULATION_PACKAGES = frozenset({
    "core", "hardware", "faults", "scheduling", "workloads",
    "prediction", "energy", "data", "machines", "parallel",
})

#: The canonical Table-3 vocabulary, derived from the enum (not
#: re-spelled as literals).
EFFECT_NAMES = frozenset(effect.value for effect in EffectType)

#: Table-4 weights keyed by lowercase field name, derived from the
#: canonical mapping.
_CANONICAL_WEIGHTS = {
    effect.value.lower(): weight for effect, weight in SEVERITY_WEIGHTS.items()
}


def _is_repro_module(ctx: FileContext) -> bool:
    return ctx.module is not None and (
        ctx.module == "repro" or ctx.module.startswith("repro.")
    )


def _module_package(ctx: FileContext) -> Optional[str]:
    """The first package below ``repro`` (``repro.core.x`` -> ``core``)."""
    if not _is_repro_module(ctx) or ctx.module is None:
        return None
    parts = ctx.module.split(".")
    return parts[1] if len(parts) > 1 else None


def _attr_or_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# ---------------------------------------------------------------------------
# RPR001 -- unseeded randomness
# ---------------------------------------------------------------------------

#: Module-level numpy RNG entry points (shared global state).
_NP_GLOBAL_RNG = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_integers",
    "random_sample", "ranf", "sample", "choice", "shuffle", "permutation",
    "uniform", "normal", "standard_normal", "exponential", "poisson",
    "binomial", "beta", "gamma", "dirichlet", "bytes",
    "get_state", "set_state",
})

#: Stdlib ``random`` module functions backed by the shared global RNG.
_STDLIB_RNG = frozenset({
    "seed", "random", "randint", "randrange", "uniform", "choice",
    "choices", "shuffle", "sample", "gauss", "normalvariate",
    "betavariate", "expovariate", "gammavariate", "lognormvariate",
    "paretovariate", "triangular", "vonmisesvariate", "weibullvariate",
    "getrandbits", "randbytes",
})


def _call_is_unseeded(node: ast.Call) -> bool:
    """True when a constructor call carries no seed argument."""
    if node.args and not (
        isinstance(node.args[0], ast.Constant) and node.args[0].value is None
    ):
        return False
    seedy = {"seed", "x"}  # default_rng(seed=...) / Random(x=...)
    if any(kw.arg in seedy and not (
        isinstance(kw.value, ast.Constant) and kw.value.value is None
    ) for kw in node.keywords):
        return False
    return True


@register_rule
class UnseededRandomness(Rule):
    rule_id = "RPR001"
    name = "unseeded-randomness"
    description = (
        "src/repro must draw every random number from an explicitly "
        "seeded generator; module-level np.random.* / random.* and "
        "default_rng() without a seed break bit-reproducibility"
    )
    protects = "SeedSequence determinism (jobs=N == jobs=1)"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not _is_repro_module(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = ctx.resolve(node.func)
            if path is None:
                continue
            if path == "numpy.random.default_rng":
                if _call_is_unseeded(node):
                    yield self.diagnostic(
                        ctx, node,
                        "default_rng() without an explicit seed; derive "
                        "seeds from the campaign SeedSequence instead",
                    )
                continue
            if path.startswith("numpy.random."):
                tail = path.rsplit(".", 1)[1]
                if tail in _NP_GLOBAL_RNG:
                    yield self.diagnostic(
                        ctx, node,
                        f"np.random.{tail} uses numpy's shared global "
                        "RNG; use an explicitly seeded Generator",
                    )
                elif tail == "RandomState" and _call_is_unseeded(node):
                    yield self.diagnostic(
                        ctx, node, "RandomState() without an explicit seed",
                    )
                continue
            if path.startswith("random."):
                tail = path.rsplit(".", 1)[1]
                if tail in _STDLIB_RNG:
                    yield self.diagnostic(
                        ctx, node,
                        f"random.{tail} uses the stdlib's shared global "
                        "RNG; use an explicitly seeded "
                        "random.Random/np Generator",
                    )
                elif tail == "Random" and _call_is_unseeded(node):
                    yield self.diagnostic(
                        ctx, node, "random.Random() without an explicit seed",
                    )


# ---------------------------------------------------------------------------
# RPR002 -- wall-clock / entropy sources
# ---------------------------------------------------------------------------

_BANNED_CLOCK_PATHS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "secrets.choice",
})


@register_rule
class WallClockSource(Rule):
    rule_id = "RPR002"
    name = "wall-clock-source"
    description = (
        "simulation/characterization paths must not read wall clocks "
        "or entropy sources (time.time, datetime.now, os.urandom, "
        "uuid.uuid4, ...); time is logical and randomness is seeded"
    )
    protects = "bit-identical reruns of every campaign"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if _module_package(ctx) not in SIMULATION_PACKAGES:
            return
        seen: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            path = ctx.resolve(node)
            if path in _BANNED_CLOCK_PATHS and node.lineno not in seen:
                seen.add(node.lineno)
                yield self.diagnostic(
                    ctx, node,
                    f"{path} is a wall-clock/entropy source; simulation "
                    "paths must stay deterministic (logical ticks, "
                    "seeded RNG)",
                )


# ---------------------------------------------------------------------------
# RPR003 -- machine-protocol boundary
# ---------------------------------------------------------------------------

_CONCRETE_MODULE = "repro.hardware.xgene2"
_CONCRETE_NAME = "XGene2Machine"


@register_rule
class MachineProtocolBoundary(Rule):
    rule_id = "RPR003"
    name = "machine-protocol-boundary"
    description = (
        "outside hardware/ and machines/, code must stay on the "
        "Machine protocol: importing repro.hardware.xgene2 or binding "
        "XGene2Machine re-couples consumers to one concrete machine"
    )
    protects = "the Machine protocol decoupling (PR 2)"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.in_dirs("hardware", "machines"):
            return
        import_bound = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _CONCRETE_MODULE or alias.name.startswith(
                        _CONCRETE_MODULE + "."
                    ):
                        yield self.diagnostic(
                            ctx, node,
                            f"import of concrete machine module "
                            f"{_CONCRETE_MODULE}; use the repro.machines "
                            "protocol/spec layer",
                        )
            elif isinstance(node, ast.ImportFrom):
                target = ctx.import_target(node)
                if target is not None and (
                    target == _CONCRETE_MODULE
                    or target.startswith(_CONCRETE_MODULE + ".")
                ):
                    yield self.diagnostic(
                        ctx, node,
                        f"import from concrete machine module {target}; "
                        "import from repro.hardware (protocol types) or "
                        "build via repro.machines.MachineSpec",
                    )
                for alias in node.names:
                    if alias.name == _CONCRETE_NAME:
                        import_bound = True
                        yield self.diagnostic(
                            ctx, node,
                            f"binding {_CONCRETE_NAME} couples this file "
                            "to one concrete machine; build through "
                            "repro.machines.build_machine(MachineSpec(...))",
                        )
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == _CONCRETE_NAME
            ):
                yield self.diagnostic(
                    ctx, node,
                    f"attribute access to {_CONCRETE_NAME}; use the "
                    "Machine protocol instead of the concrete class",
                )
            elif (
                isinstance(node, ast.Name)
                and node.id == _CONCRETE_NAME
                and isinstance(node.ctx, ast.Load)
                and not import_bound
            ):
                # Uses of an already-flagged import are not re-flagged
                # (one finding per boundary crossing: the import site).
                yield self.diagnostic(
                    ctx, node,
                    f"reference to {_CONCRETE_NAME} outside hardware/ "
                    "and machines/",
                )


# ---------------------------------------------------------------------------
# RPR004 -- unit safety
# ---------------------------------------------------------------------------

def _mv_named(node: ast.AST) -> bool:
    name = _attr_or_name(node)
    if name is None:
        return False
    lowered = name.lower()
    if lowered.endswith("_per_mv"):
        return False  # a rate denominated in mV, not a voltage
    return lowered.endswith("_mv") or lowered.endswith("_millivolts")


#: Name stems that denote an absolute voltage *level* (as opposed to a
#: width, scale, margin or offset, where sub-volt floats are ordinary).
_LEVEL_HINTS = (
    "voltage", "vmin", "vmax", "vdd", "vnom", "nominal", "supply",
    "crash", "onset", "level", "setpoint", "start", "stop",
)


def _mv_level_named(node: ast.AST) -> bool:
    if not _mv_named(node):
        return False
    name = _attr_or_name(node)
    assert name is not None
    lowered = name.lower()
    return any(hint in lowered for hint in _LEVEL_HINTS)


def _volt_named(node: ast.AST) -> bool:
    name = _attr_or_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return lowered.endswith("_v") or lowered.endswith("_volts")


def _is_const(node: ast.AST, *values: float) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and float(node.value) in values
    )


def _volt_scale_literal(node: ast.AST) -> bool:
    """A float literal in volt magnitude (0 < x < 2.0)."""
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and 0.0 < node.value < 2.0
    )


@register_rule
class UnitSafety(Rule):
    rule_id = "RPR004"
    name = "unit-safety"
    description = (
        "voltages are integer millivolts on the regulator grid; "
        "volt-scale floats in *_mv slots, bare *1000//1000 "
        "conversions, V-with-mV arithmetic and hardcoded 5 mV steps "
        "must flow through repro.units helpers"
    )
    protects = "the 5 mV regulator-step discipline (Section 2.1)"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module == "repro.units":
            return  # the single place conversions are allowed to live
        for node in ast.walk(ctx.tree):
            yield from self._check_bindings(ctx, node)
            if isinstance(node, ast.BinOp):
                yield from self._check_binop(ctx, node)
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                if any(map(_mv_named, operands)) and any(
                    map(_volt_named, operands)
                ):
                    yield self.diagnostic(
                        ctx, node,
                        "comparison mixes millivolt- and volt-named "
                        "values; convert through repro.units first",
                    )

    def _check_bindings(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Diagnostic]:
        pairs = []
        if isinstance(node, ast.Assign):
            pairs = [(t, node.value) for t in node.targets]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            pairs = [(node.target, node.value)]
        elif isinstance(node, ast.keyword) and node.arg is not None:
            pairs = [(ast.Name(id=node.arg, ctx=ast.Store()), node.value)]
        for target, value in pairs:
            if (
                _mv_level_named(target)
                and isinstance(value, ast.Constant)
                and _volt_scale_literal(value)
            ):
                yield Diagnostic(
                    path=ctx.path,
                    line=value.lineno, col=value.col_offset + 1,
                    rule=self.rule_id, name=self.name,
                    message=f"volt-scale literal {value.value!r} bound to "
                            "a millivolt-named target; voltages are "
                            "integer mV (see repro.units)",
                )

    def _check_binop(
        self, ctx: FileContext, node: ast.BinOp
    ) -> Iterator[Diagnostic]:
        left, right = node.left, node.right
        mv_side = _mv_named(left) or _mv_named(right)
        if isinstance(node.op, (ast.Mult, ast.Div)) and mv_side and (
            _is_const(left, 1000.0) or _is_const(right, 1000.0)
        ):
            yield self.diagnostic(
                ctx, node,
                "manual V<->mV magnitude conversion on a millivolt "
                "value; keep voltages in integer mV end to end "
                "(repro.units)",
            )
        if isinstance(node.op, (ast.Add, ast.Sub)) and mv_side and (
            _is_const(left, float(VOLTAGE_STEP_MV))
            or _is_const(right, float(VOLTAGE_STEP_MV))
        ):
            yield self.diagnostic(
                ctx, node,
                f"hardcoded {VOLTAGE_STEP_MV} mV regulator step; use "
                "repro.units.VOLTAGE_STEP_MV / voltage_sweep so the "
                "grid stays in one place",
            )
        if (_mv_named(left) and _volt_named(right)) or (
            _volt_named(left) and _mv_named(right)
        ):
            yield self.diagnostic(
                ctx, node,
                "arithmetic mixes millivolt- and volt-named values; "
                "convert through repro.units first",
            )


# ---------------------------------------------------------------------------
# RPR005 -- effect classes and severity weights
# ---------------------------------------------------------------------------

_WEIGHT_NAME_RE = re.compile(
    r"^W_?(SC|AC|SDC|UE|CE|NO)$|SEVERITY_WEIGHT", re.IGNORECASE
)


def _effect_key_name(node: ast.AST) -> Optional[str]:
    """Effect-class name a dict key spells, literally or via the enum.

    ``EffectType.SC`` attributes count here (for the weight-table
    check the *numbers* are the problem, not the keys); the
    vocabulary check below deliberately counts string literals only,
    because enum references *are* the sanctioned spelling.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in EFFECT_NAMES else None
    attr = node.attr if isinstance(node, ast.Attribute) else None
    return attr if attr in EFFECT_NAMES else None


def _effect_string_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in EFFECT_NAMES
    )


def _numeric_const(node: ast.AST) -> Optional[float]:
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return float(node.value)
    return None


@register_rule
class CanonicalEffectConstants(Rule):
    rule_id = "RPR005"
    name = "canonical-effect-constants"
    description = (
        "Table-3 effect classes and Table-4 severity weights have one "
        "home (repro.effects); re-hardcoding the vocabulary or the "
        "16/8/4/2/1/0 weight table lets copies drift from the paper"
    )
    protects = "Table 3 classification and Table 4 weights"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module in ("repro.effects", "repro.analysis.lint.rules"):
            return  # the source of truth, and this rule's own encoding
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Dict):
                yield from self._check_dict(ctx, node)
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set)):
                if sum(map(_effect_string_literal, node.elts)) >= 4:
                    yield self.diagnostic(
                        ctx, node,
                        "re-hardcoded effect vocabulary; iterate "
                        "repro.effects.EFFECT_ORDER / EffectType instead",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_weights_call(ctx, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_weight_assign(ctx, node)

    def _check_dict(
        self, ctx: FileContext, node: ast.Dict
    ) -> Iterator[Diagnostic]:
        # Only a mapping that re-states the actual Table-4 numbers is a
        # re-hardcode; effect->count dicts (run tallies) are ordinary.
        hits = 0
        for key, value in zip(node.keys, node.values):
            if key is None:
                continue
            name = _effect_key_name(key)
            number = _numeric_const(value)
            if name is None or number is None:
                continue
            if number != _CANONICAL_WEIGHTS[name.lower()]:
                return
            hits += 1
        if hits >= 3:
            yield self.diagnostic(
                ctx, node,
                "effect->number mapping re-hardcodes the Table-4 "
                "severity weights; import repro.effects.SEVERITY_WEIGHTS",
            )

    def _check_weights_call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Diagnostic]:
        if _attr_or_name(node.func) != "SeverityWeights":
            return
        literal = {
            kw.arg: _numeric_const(kw.value)
            for kw in node.keywords
            if kw.arg in _CANONICAL_WEIGHTS
            and _numeric_const(kw.value) is not None
        }
        if len(literal) >= 3 and all(
            value == _CANONICAL_WEIGHTS[arg] for arg, value in literal.items()
        ):
            yield self.diagnostic(
                ctx, node,
                "SeverityWeights(...) re-states the Table-4 defaults; "
                "use SeverityWeights() / DEFAULT_WEIGHTS (custom "
                "studies may pass *different* weights)",
            )

    def _check_weight_assign(
        self, ctx: FileContext, node: ast.Assign
    ) -> Iterator[Diagnostic]:
        values = set(_CANONICAL_WEIGHTS.values())
        for target in node.targets:
            name = _attr_or_name(target)
            if name is None or not _WEIGHT_NAME_RE.search(name):
                continue
            value = _numeric_const(node.value)
            if value is not None and value in values:
                yield self.diagnostic(
                    ctx, node,
                    f"severity weight re-hardcoded as {name}; import "
                    "repro.effects.SEVERITY_WEIGHTS / severity_weight",
                )


# ---------------------------------------------------------------------------
# RPR006 -- parallel-safety
# ---------------------------------------------------------------------------

#: Call targets whose callable/workload arguments cross (potential)
#: process boundaries and therefore must be picklable.
_ENGINE_APIS = frozenset({
    "ParallelCampaignEngine", "characterize_many", "submit",
})


def _engine_call_name(node: ast.Call) -> Optional[str]:
    name = _attr_or_name(node.func)
    return name if name in _ENGINE_APIS else None


@register_rule
class ParallelSafety(Rule):
    rule_id = "RPR006"
    name = "parallel-safety"
    description = (
        "callables handed to the parallel engine must be module-level "
        "(lambdas/closures do not pickle and silently pin the run to "
        "one worker semantics), and task functions must not mutate "
        "module globals (workers never share them back)"
    )
    protects = "serial/parallel bit-equivalence of the engine"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                api = _engine_call_name(node)
                if api is not None:
                    yield from self._check_engine_args(ctx, node, api)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_closures(ctx, node)
                if _is_repro_module(ctx):
                    for stmt in ast.walk(node):
                        if isinstance(stmt, ast.Global):
                            yield self.diagnostic(
                                ctx, stmt,
                                f"function {node.name!r} mutates module "
                                "globals; worker processes never share "
                                "them back -- thread state through "
                                "arguments and return values",
                            )

    def _check_engine_args(
        self, ctx: FileContext, node: ast.Call, api: str
    ) -> Iterator[Diagnostic]:
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            for sub in ast.walk(value):
                if isinstance(sub, ast.Lambda):
                    yield self.diagnostic(
                        ctx, sub,
                        f"lambda passed into {api}(...); engine "
                        "callables must be module-level functions so "
                        "they pickle into worker processes",
                    )

    def _check_closures(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterator[Diagnostic]:
        nested: Set[str] = set()
        body: List[ast.stmt] = getattr(func, "body", [])
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(sub.name)
        if not nested:
            return
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call) and _engine_call_name(sub):
                    values = list(sub.args) + [kw.value for kw in sub.keywords]
                    for value in values:
                        if isinstance(value, ast.Name) and value.id in nested:
                            yield self.diagnostic(
                                ctx, value,
                                f"closure {value.id!r} passed into "
                                f"{_engine_call_name(sub)}(...); define "
                                "it at module level so it pickles into "
                                "worker processes",
                            )


# ---------------------------------------------------------------------------
# RPR007 -- single persistence path for run data
# ---------------------------------------------------------------------------

#: Serializer entry points whose use on run data bypasses the store.
_SERIALIZER_PATHS = frozenset({
    "csv.writer", "csv.DictWriter", "json.dump", "json.dumps",
})

#: Identifiers that mark a scope as handling run-level campaign data.
#: Spec/figure/report serialization is fine -- those are different
#: artifacts; what must not be serialized ad hoc is the run record
#: stream the store journals -- and, since the fleet refactor, the
#: fleet manifest and the warm index answers derived from it: a second
#: writer of ``fleet.json`` or of index payloads would fork the schema
#: exactly the way an ad-hoc run-record CSV would (indexes are only
#: provably reparse-identical while ``repro.store`` owns their bytes).
_RUN_DATA_MARKERS = frozenset({
    "RunRecord", "StoredCampaign", "all_records", "csv_row",
    "from_csv_row", "RUN_FIELDS", "SEVERITY_FIELDS", "severity_by_voltage",
    # fleet manifest writers
    "FleetManifest", "ShardEntry", "FleetStore", "refresh_watermarks",
    # warm index writers
    "StoreIndexes", "FleetIndexes", "VminIndex", "SeverityIndex",
    "PredictionFeatureIndex",
})

#: The sanctioned homes of run-data serialization.
_PERSISTENCE_MODULES = ("repro.core.results", "repro.store")


def _in_persistence_layer(ctx: FileContext) -> bool:
    return ctx.module is not None and any(
        ctx.module == home or ctx.module.startswith(home + ".")
        for home in _PERSISTENCE_MODULES
    )


@register_rule
class SinglePersistencePath(Rule):
    rule_id = "RPR007"
    name = "single-persistence-path"
    description = (
        "run data has one persistence path (repro.store journals, "
        "repro.core.results derived CSVs); ad-hoc csv.writer/json.dump "
        "of run records elsewhere forks the schema and breaks resume "
        "and cross-box analysis"
    )
    protects = "the repro-campaign/v1 journal as the single source of truth"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not _is_repro_module(ctx) or _in_persistence_layer(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = ctx.resolve(node.func)
            if path not in _SERIALIZER_PATHS:
                continue
            scope = self._enclosing_scope(ctx.tree, node)
            marker = self._run_data_marker(scope)
            if marker is not None:
                yield self.diagnostic(
                    ctx, node,
                    f"{path} in a scope handling run data ({marker}); "
                    "persist through repro.store.CampaignStore (or the "
                    "derived repro.core.results.ResultStore exports)",
                )

    @staticmethod
    def _enclosing_scope(tree: ast.AST, node: ast.AST) -> ast.AST:
        """Innermost function containing ``node`` (module tree if none).

        Nested functions start on later lines than their enclosers, so
        the latest-starting container is the innermost scope.
        """
        best = tree
        best_line = -1
        for candidate in ast.walk(tree):
            if not isinstance(candidate, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if candidate.lineno <= best_line:
                continue
            if any(sub is node for sub in ast.walk(candidate)):
                best = candidate
                best_line = candidate.lineno
        return best

    @staticmethod
    def _run_data_marker(scope: ast.AST) -> Optional[str]:
        """First run-data identifier the scope mentions, if any."""
        for sub in ast.walk(scope):
            if isinstance(sub, ast.Name) and sub.id in _RUN_DATA_MARKERS:
                return sub.id
            if isinstance(sub, ast.Attribute) and sub.attr in _RUN_DATA_MARKERS:
                return sub.attr
        return None


#: Modules whose job *is* console output (RPR008 exemptions, besides
#: any file named ``cli.py``).
_PRINT_ALLOWED_MODULES = frozenset({
    "repro.analysis.ascii_plots",
    "repro.parallel.progress",
})


@register_rule
class NoBarePrint(Rule):
    """RPR008: library code must not ``print()``; use repro.telemetry.

    A six-month unattended campaign is monitored through traces,
    metrics and the structured logger -- output scattered over stdout
    is invisible to all three and garbles the CLI's own rendering.
    Only the user-facing surfaces may print: any ``cli.py``, the ASCII
    plot renderer, and the console progress reporter.
    """

    rule_id = "RPR008"
    name = "no-bare-print"
    description = (
        "bare print() in library code; route diagnostics through "
        "repro.telemetry (structured logger / tracer / metrics)"
    )
    protects = "observability: every signal reaches the telemetry layer"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not _is_repro_module(ctx):
            return
        if ctx.path_parts and ctx.path_parts[-1] == "cli.py":
            return
        if ctx.module in _PRINT_ALLOWED_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.diagnostic(
                    ctx, node,
                    "bare print() in library code; route output through "
                    "repro.telemetry (get_logger/event/metrics) or move "
                    "it to a cli.py surface",
                )


# ---------------------------------------------------------------------------
# RPR010 -- single serialization path for model artifacts
# ---------------------------------------------------------------------------

#: Serializer entry points whose use on fitted models bypasses the
#: model store (pickle included: a pickled estimator is neither
#: versioned nor digest-checked, and stops loading across refactors).
_MODEL_SERIALIZER_PATHS = frozenset({
    "json.dump", "json.dumps", "pickle.dump", "pickle.dumps",
})

#: Identifiers that mark a scope as handling fitted-model state.
#: Dataset/metrics serialization is fine -- what must not leave through
#: an ad-hoc dump is coefficient/selection state, which only the
#: ``repro-model/v1`` artifact series may persist.
_MODEL_DATA_MARKERS = frozenset({
    "ModelArtifact", "FittedModel", "OrdinaryLeastSquares",
    "OnlineLeastSquares", "StreamingTrainer", "coefficients_by_name",
    "standardized_coef", "selected_features", "trainer_state",
    "MODEL_FORMAT", "train_set_digest",
})

#: The sanctioned home of model serialization.
_MODEL_STORE_MODULE = "repro.store.models"


@register_rule
class SingleModelPath(Rule):
    rule_id = "RPR010"
    name = "single-model-path"
    description = (
        "fitted models have one serialization path (repro.store.models "
        "repro-model/v1 artifacts); ad-hoc json.dump/pickle of "
        "coefficients elsewhere forks the artifact schema and loses "
        "versioning, digests and journal offsets"
    )
    protects = "the repro-model/v1 artifact series as the single model source"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not _is_repro_module(ctx) or ctx.module == _MODEL_STORE_MODULE:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = ctx.resolve(node.func)
            if path not in _MODEL_SERIALIZER_PATHS:
                continue
            scope = SinglePersistencePath._enclosing_scope(ctx.tree, node)
            marker = self._model_marker(scope)
            if marker is not None:
                yield self.diagnostic(
                    ctx, node,
                    f"{path} in a scope handling fitted-model state "
                    f"({marker}); persist models through "
                    "repro.store.models.ModelStore (repro-model/v1 "
                    "artifacts)",
                )

    @staticmethod
    def _model_marker(scope: ast.AST) -> Optional[str]:
        """First fitted-model identifier the scope mentions, if any."""
        for sub in ast.walk(scope):
            if isinstance(sub, ast.Name) and sub.id in _MODEL_DATA_MARKERS:
                return sub.id
            if isinstance(sub, ast.Attribute) and sub.attr in _MODEL_DATA_MARKERS:
                return sub.attr
        return None


# ---------------------------------------------------------------------------
# RPR009 -- voltage-curve evaluation inside per-run loops
# ---------------------------------------------------------------------------

#: Methods that evaluate a voltage/fault curve.  Each is pure in the
#: voltage argument, so inside a per-run loop every call after the
#: first recomputes a value the batch kernel compiles exactly once.
_CURVE_EVAL_METHODS = frozenset({
    "probability", "effect_probabilities", "probability_table",
    "single_event_rate", "double_event_rate", "poisson_rate_table",
    "event_rate_table",
})

#: Packages where per-run loops are hot paths (campaign execution).
_RUN_LOOP_PACKAGES = frozenset({"core", "hardware"})


def _function_uses_rng(node: ast.AST) -> bool:
    """True when a function takes or references an ``rng`` -- the
    signature of a per-*run* body rather than per-campaign setup."""
    args = getattr(node, "args", None)
    if args is not None:
        every = (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
            + [a for a in (args.vararg, args.kwarg) if a is not None]
        )
        if any(arg.arg == "rng" for arg in every):
            return True
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "rng":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "rng":
            return True
    return False


@register_rule
class CurveEvalInRunLoop(Rule):
    """RPR009: curve objects are compiled, not re-evaluated per run.

    The batch kernel (:mod:`repro.core.kernel`) exists because the
    fault surface is a pure function of voltage: it can be tabulated
    once per campaign and indexed thereafter.  A call to a curve-eval
    method (``probability``, ``poisson_rate_table``, ...) inside a
    ``for``/``while`` body of an rng-driven function in ``core/`` or
    ``hardware/`` re-derives that table on every run -- the exact
    pattern whose removal bought the kernel its speedup, and the first
    thing a future refactor is likely to reintroduce.
    """

    rule_id = "RPR009"
    name = "no-curve-eval-in-run-loop"
    description = (
        "voltage-curve evaluation inside a per-run loop; hoist it out "
        "of the loop or compile a VoltageTable (repro.core.kernel) "
        "once per campaign"
    )
    protects = "throughput: the batch kernel's compile-once contract"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if _module_package(ctx) not in _RUN_LOOP_PACKAGES:
            return
        seen: Set[int] = set()
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _function_uses_rng(func):
                continue
            for loop in ast.walk(func):
                if not isinstance(loop, (ast.For, ast.While)):
                    continue
                for node in ast.walk(loop):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _CURVE_EVAL_METHODS
                        and id(node) not in seen
                    ):
                        seen.add(id(node))
                        yield self.diagnostic(
                            ctx, node,
                            f"{node.func.attr}() evaluated inside a "
                            "per-run loop; the curve is pure in voltage "
                            "-- evaluate it once before the loop or "
                            "compile a VoltageTable "
                            "(repro.core.kernel) per campaign",
                        )
