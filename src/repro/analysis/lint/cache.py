"""The incremental result cache (``.reprolint_cache.json``).

One :class:`FileAnalysis` is everything a lint run learns from one
file *in isolation*: its per-file rule findings, its suppression
table, and (for ``repro.*`` files) its
:class:`~repro.analysis.lint.project.ModuleModel` of function
summaries.  All of it is derived from the file's bytes alone, so it is
sound to key the record on the content SHA-256 and reuse it until the
file changes.

What is *not* cached -- by design -- are the interprocedural (RPR011-
RPR013) diagnostics: a new caller in file A can create a finding in an
unchanged file B (reachability and taint are properties of the whole
program), so those are recomputed from the (cached or fresh) summaries
on every run.  The global fixed point over summaries is cheap; the
per-file parsing and AST walks it feeds on are what the cache avoids.

The cache file carries a fingerprint over the schema version and the
registered rule inventory: adding, removing or renaming a rule
invalidates everything.  Writes are atomic (tmp + ``os.replace``) so
an interrupted run never leaves a torn cache, and any unreadable or
mismatched cache is silently treated as empty -- the cache is an
optimization, never a source of truth.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .diagnostics import Diagnostic
from .project import ModuleModel
from .registry import Rule
from .suppressions import SuppressionEntry

#: Bump when the cached record shape changes.
CACHE_SCHEMA = 1


def content_sha(source: str) -> str:
    """The cache key of one file's content."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def rule_fingerprint(rules: Sequence[Rule]) -> str:
    """Fingerprint of the rule inventory a cache was built with."""
    payload = json.dumps(
        [CACHE_SCHEMA] + sorted(r.rule_id for r in rules)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class FileAnalysis:
    """The cacheable result of analyzing one file in isolation."""

    path: str
    sha: str
    module: Optional[str] = None
    #: Per-file rule findings, *before* suppression filtering (the
    #: assembly step applies suppressions so it can track which
    #: entries earned their keep).
    findings: List[Diagnostic] = field(default_factory=list)
    supp_entries: List[SuppressionEntry] = field(default_factory=list)
    supp_problems: List[Diagnostic] = field(default_factory=list)
    model: Optional[ModuleModel] = None

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "sha": self.sha,
            "module": self.module,
            "findings": [d.to_json_dict() for d in self.findings],
            "supp_entries": [e.to_json_dict() for e in self.supp_entries],
            "supp_problems": [d.to_json_dict() for d in self.supp_problems],
            "model": self.model.to_json_dict() if self.model else None,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "FileAnalysis":
        return cls(
            path=payload["path"],
            sha=payload["sha"],
            module=payload["module"],
            findings=[
                Diagnostic.from_json_dict(d) for d in payload["findings"]
            ],
            supp_entries=[
                SuppressionEntry.from_json_dict(e)
                for e in payload["supp_entries"]
            ],
            supp_problems=[
                Diagnostic.from_json_dict(d) for d in payload["supp_problems"]
            ],
            model=(
                ModuleModel.from_json_dict(payload["model"])
                if payload["model"] else None
            ),
        )


def load_cache(
    path: Path, fingerprint: str
) -> Tuple[Dict[str, FileAnalysis], bool]:
    """(cached entries by path label, cache-was-usable).

    Any unreadable, unparsable or fingerprint-mismatched cache loads
    as empty: the next run rebuilds and overwrites it.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return {}, False
    if not isinstance(payload, dict) or \
            payload.get("schema") != CACHE_SCHEMA or \
            payload.get("fingerprint") != fingerprint:
        return {}, False
    entries: Dict[str, FileAnalysis] = {}
    try:
        for key, entry in payload.get("files", {}).items():
            entries[key] = FileAnalysis.from_json_dict(entry)
    except (KeyError, TypeError, IndexError, AttributeError):
        return {}, False
    return entries, True


def save_cache(
    path: Path, fingerprint: str, entries: Dict[str, FileAnalysis]
) -> None:
    """Atomically persist the cache; failures are non-fatal silence."""
    payload = {
        "schema": CACHE_SCHEMA,
        "fingerprint": fingerprint,
        "files": {
            key: entry.to_json_dict()
            for key, entry in sorted(entries.items())
        },
    }
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(
            json.dumps(payload, separators=(",", ":")), encoding="utf-8"
        )
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
