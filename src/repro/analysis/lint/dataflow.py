"""Intraprocedural dataflow summaries and their whole-program solution.

The interprocedural rules (RPR011-RPR013) need to see through function
and module boundaries without giving up the incremental cache.  The
split that makes both possible:

* :func:`summarize_module` extracts a :class:`FunctionSummary` per
  function (and one for module-level code) using **only that file's
  AST** -- an abstract interpretation over a small taint lattice that
  records, in terms of *atoms*, where seed arguments come from, which
  unit family (mV vs V) values belong to, which project functions are
  called with which argument atoms, and which writes touch
  module-level or closure-captured state.  Because a summary depends
  on nothing outside its file, it is cacheable under the file's
  content hash.
* :class:`ProjectDataflow` solves the summaries together: a monotone
  fixed point resolves ``param``/``return`` atoms through the call
  graph (context-insensitively, joining over all call sites), and a
  breadth-first walk from the parallel-engine worker entry points
  yields the reachability relation RPR013 checks.

**Atoms.**  A value's abstract state is a set of strings:

=============  ========================================================
``literal``    a numeric/str constant (or module-level constant)
``safe``       derived from ``SeedSequence``, ``hashlib.sha256`` or a
               method call on an already-safe value (``generate_state``,
               ``digest``, ...)
``wallclock``  derived from a wall-clock/entropy source (RPR002's set)
``p:<i>``      the i-th parameter of the enclosing function
``r:<dotted>`` the return value of a call to ``<dotted>``
=============  ========================================================

Unknown values are the empty set: only *positively traced* literal and
wall-clock provenance is ever flagged, so values arriving from outside
the analyzed program never produce findings.

The unit domain reuses the same parameterized atoms with ground tags
``mv`` and ``v``, seeded from name suffixes (``*_mv``, ``*_v``,
``*_volts``) and volt-scale float literals.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .registry import FileContext

Atoms = FrozenSet[str]

_EMPTY: Atoms = frozenset()
_LITERAL: Atoms = frozenset({"literal"})
_SAFE: Atoms = frozenset({"safe"})
_WALLCLOCK: Atoms = frozenset({"wallclock"})

#: Constructors that *are* safe seed derivations.
_SAFE_CALLS = frozenset({
    "numpy.random.SeedSequence",
    "hashlib.sha256", "hashlib.sha512", "hashlib.blake2b", "hashlib.blake2s",
})

#: Wall-clock/entropy call paths (RPR002's set, re-declared here so the
#: dataflow layer has no import cycle with the rule set).
_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "secrets.choice",
})

#: Calls that pass their arguments' provenance through unchanged.
_PASSTHROUGH_CALLS = frozenset({
    "int", "float", "abs", "min", "max", "round", "sum",
    "tuple", "list", "sorted", "str",
    "numpy.frombuffer", "numpy.asarray", "numpy.array",
    "numpy.uint64", "numpy.uint32", "numpy.int64",
})

#: Attribute method names that pass provenance through (``int.from_bytes``).
_PASSTHROUGH_METHODS = frozenset({"from_bytes"})

#: Passthroughs whose every positional argument is data.  All others
#: take data in the first slot only -- trailing arguments are mode
#: selectors (``int.from_bytes(digest, "little")``, ``round(x, 2)``,
#: ``numpy.frombuffer(buf, dtype=...)``) and must not leak their own
#: literal-ness into the result.
_VARIADIC_PASSTHROUGHS = frozenset({"min", "max"})

#: RNG constructors whose seed argument RPR011 traces; value is the
#: keyword name of the seed parameter.
SEED_SINKS: Dict[str, str] = {
    "numpy.random.default_rng": "seed",
    "numpy.random.RandomState": "seed",
    "numpy.random.PCG64": "seed",
    "numpy.random.PCG64DXSM": "seed",
    "numpy.random.Philox": "seed",
    "numpy.random.MT19937": "seed",
    "random.Random": "x",
}

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "update", "insert", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "set",
})


#: Name stems that denote an absolute voltage *level* (RPR004's set:
#: widths, scales, margins and offsets are legitimately sub-volt).
_LEVEL_HINTS = (
    "voltage", "vmin", "vmax", "vdd", "vnom", "nominal", "supply",
    "crash", "onset", "level", "setpoint", "start", "stop",
)


def is_level_name(name: str) -> bool:
    """True when a name denotes an absolute voltage level."""
    lowered = name.lower()
    return any(hint in lowered for hint in _LEVEL_HINTS)


def name_unit(name: Optional[str]) -> Optional[str]:
    """The unit family a name's suffix declares, if any."""
    if not name:
        return None
    lowered = name.lower()
    if lowered.endswith("_per_mv"):
        return None  # a rate denominated in mV, not a voltage
    if lowered.endswith("_mv") or lowered.endswith("_millivolts") or \
            lowered in ("mv", "millivolts"):
        return "mv"
    if lowered.endswith("_v") or lowered.endswith("_volts") or \
            lowered == "volts":
        return "v"
    return None


def _tail_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# ---------------------------------------------------------------------------
# Summary records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeedSink:
    """One RNG-constructor call whose seed argument is traced."""

    line: int
    col: int
    api: str
    atoms: Tuple[str, ...]


@dataclass(frozen=True)
class CallSite:
    """One call to a (potential) project function."""

    line: int
    col: int
    #: Candidate dotted targets, resolved against the project later.
    callees: Tuple[str, ...]
    #: True when called through an instance (``obj.method(...)``), so
    #: positional arguments map to parameters shifted past ``self``.
    bound: bool
    args: Tuple[Tuple[str, ...], ...]
    kwargs: Tuple[Tuple[str, Tuple[str, ...]], ...]
    arg_units: Tuple[Tuple[str, ...], ...]
    kwarg_units: Tuple[Tuple[str, Tuple[str, ...]], ...]


@dataclass(frozen=True)
class WriteSite:
    """One write to module-level or closure-captured mutable state."""

    line: int
    col: int
    target: str
    #: ``module-state`` | ``global-decl`` | ``closure-state``
    kind: str


@dataclass
class FunctionSummary:
    """Everything the whole-program pass needs from one function."""

    qualname: str
    name: str
    module: str
    path: str
    lineno: int
    params: Tuple[str, ...] = ()
    is_method: bool = False
    #: Worker entry point (``run_*`` in ``repro.parallel``).
    entry: bool = False
    #: Atoms of literal parameter defaults, by parameter index.
    defaults: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    returns: Tuple[str, ...] = ()
    return_unit: Tuple[str, ...] = ()
    #: Declared unit family per parameter index (from name suffixes).
    param_units: Dict[int, str] = field(default_factory=dict)
    seed_sinks: Tuple[SeedSink, ...] = ()
    calls: Tuple[CallSite, ...] = ()
    writes: Tuple[WriteSite, ...] = ()
    #: Dotted candidates handed to ``executor.submit(...)`` -- extra
    #: worker entry points.
    spawns: Tuple[str, ...] = ()

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "module": self.module,
            "path": self.path,
            "lineno": self.lineno,
            "params": list(self.params),
            "is_method": self.is_method,
            "entry": self.entry,
            "defaults": {str(i): list(a) for i, a in self.defaults.items()},
            "returns": list(self.returns),
            "return_unit": list(self.return_unit),
            "param_units": {str(i): u for i, u in self.param_units.items()},
            "seed_sinks": [
                [s.line, s.col, s.api, list(s.atoms)] for s in self.seed_sinks
            ],
            "calls": [
                {
                    "line": c.line, "col": c.col,
                    "callees": list(c.callees), "bound": c.bound,
                    "args": [list(a) for a in c.args],
                    "kwargs": [[n, list(a)] for n, a in c.kwargs],
                    "arg_units": [list(a) for a in c.arg_units],
                    "kwarg_units": [[n, list(a)] for n, a in c.kwarg_units],
                }
                for c in self.calls
            ],
            "writes": [
                [w.line, w.col, w.target, w.kind] for w in self.writes
            ],
            "spawns": list(self.spawns),
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "FunctionSummary":
        calls = []
        for c in payload["calls"]:  # type: ignore[index]
            calls.append(CallSite(
                line=c["line"], col=c["col"],
                callees=tuple(c["callees"]), bound=c["bound"],
                args=tuple(tuple(a) for a in c["args"]),
                kwargs=tuple((n, tuple(a)) for n, a in c["kwargs"]),
                arg_units=tuple(tuple(a) for a in c["arg_units"]),
                kwarg_units=tuple((n, tuple(a)) for n, a in c["kwarg_units"]),
            ))
        return cls(
            qualname=payload["qualname"],  # type: ignore[arg-type]
            name=payload["name"],  # type: ignore[arg-type]
            module=payload["module"],  # type: ignore[arg-type]
            path=payload["path"],  # type: ignore[arg-type]
            lineno=payload["lineno"],  # type: ignore[arg-type]
            params=tuple(payload["params"]),  # type: ignore[arg-type]
            is_method=bool(payload["is_method"]),
            entry=bool(payload["entry"]),
            defaults={
                int(i): tuple(a)
                for i, a in payload["defaults"].items()  # type: ignore[union-attr]
            },
            returns=tuple(payload["returns"]),  # type: ignore[arg-type]
            return_unit=tuple(payload["return_unit"]),  # type: ignore[arg-type]
            param_units={
                int(i): u
                for i, u in payload["param_units"].items()  # type: ignore[union-attr]
            },
            seed_sinks=tuple(
                SeedSink(line=s[0], col=s[1], api=s[2], atoms=tuple(s[3]))
                for s in payload["seed_sinks"]  # type: ignore[union-attr]
            ),
            calls=tuple(calls),
            writes=tuple(
                WriteSite(line=w[0], col=w[1], target=w[2], kind=w[3])
                for w in payload["writes"]  # type: ignore[union-attr]
            ),
            spawns=tuple(payload["spawns"]),  # type: ignore[arg-type]
        )


# ---------------------------------------------------------------------------
# Per-module summarization
# ---------------------------------------------------------------------------


def _module_level_names(tree: ast.Module) -> Tuple[Set[str], Set[str], Dict[str, Atoms]]:
    """(assigned names, ContextVar-bound names, constant atoms) at module scope."""
    assigned: Set[str] = set()
    contextvars: Set[str] = set()
    consts: Dict[str, Atoms] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            assigned.add(target.id)
            if isinstance(value, ast.Call) and \
                    _tail_name(value.func) == "ContextVar":
                contextvars.add(target.id)
            elif isinstance(value, ast.Constant) and \
                    isinstance(value.value, (int, float, str)) and \
                    not isinstance(value.value, bool):
                consts[target.id] = _LITERAL
    return assigned, contextvars, consts


def _local_names(node: ast.AST, params: Sequence[str]) -> Set[str]:
    """Names bound locally in a function body (excluding nested defs)."""
    local: Set[str] = set(params)
    globals_declared: Set[str] = set()

    def walk(stmt: ast.AST, top: bool) -> None:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    local.add(child.name)
                continue
            if isinstance(child, ast.Global):
                globals_declared.update(child.names)
            elif isinstance(child, ast.Name) and \
                    isinstance(child.ctx, (ast.Store, ast.Del)):
                local.add(child.id)
            elif isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    local.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(child, ast.ExceptHandler) and child.name:
                local.add(child.name)
            elif isinstance(child, ast.arg):
                local.add(child.arg)
            walk(child, False)

    walk(node, True)
    return local - globals_declared


Env = Dict[str, Tuple[Atoms, Atoms]]


class _Summarizer:
    """Summarizes the functions (and module scope) of one file."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        assert ctx.module is not None
        self.module: str = ctx.module
        mod_assigned, mod_contextvars, mod_consts = _module_level_names(ctx.tree)
        self.module_globals = mod_assigned
        self.contextvar_globals = mod_contextvars
        self.module_consts = mod_consts
        #: Top-level symbols (functions and classes defined here).
        self.module_symbols: Set[str] = {
            n.name for n in ctx.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        }
        # Mutable per-function collection state
        self.env: Env = {}
        self.var_types: Dict[str, str] = {}
        self.locals: Set[str] = set()
        self.outer_locals: Set[str] = set()
        self.sinks: List[SeedSink] = []
        self.calls: List[CallSite] = []
        self.writes: List[WriteSite] = []
        self.spawns: List[str] = []
        self.returns: Set[str] = set()
        self.return_units: Set[str] = set()
        self.in_nested: bool = False

    # -- entry points ------------------------------------------------------

    def summarize(self) -> Iterator[FunctionSummary]:
        yield self._summarize_module_scope()
        for node in self.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield self._summarize_function(node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield self._summarize_function(
                            item, class_name=node.name
                        )

    def _reset(self, params: Sequence[str]) -> None:
        self.env = {
            name: (frozenset({f"p:{i}"}), frozenset({f"p:{i}"}))
            for i, name in enumerate(params)
        }
        self.var_types = {}
        self.sinks = []
        self.calls = []
        self.writes = []
        self.spawns = []
        self.returns = set()
        self.return_units = set()
        self.in_nested = False
        self.outer_locals = set()

    def _summarize_module_scope(self) -> FunctionSummary:
        self._reset(())
        self.locals = set()  # module scope: bare assigns are module state
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            self._exec(stmt)
        return FunctionSummary(
            qualname=f"{self.module}#module",
            name="#module", module=self.module, path=self.ctx.path,
            lineno=1, params=(),
            seed_sinks=tuple(self.sinks), calls=tuple(self.calls),
            writes=(),  # module-level init writes are not worker writes
            spawns=tuple(self.spawns),
        )

    def _summarize_function(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        class_name: Optional[str],
    ) -> FunctionSummary:
        args = node.args
        params: List[str] = [
            a.arg for a in
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ]
        self._reset(params)
        self.locals = _local_names(node, params)
        # Literal defaults are call-site contributions a caller can pick
        # by omitting the argument.
        defaults: Dict[int, Tuple[str, ...]] = {}
        positional = list(args.posonlyargs) + list(args.args)
        pos_defaults = list(args.defaults)
        offset = len(positional) - len(pos_defaults)
        for i, default in enumerate(pos_defaults):
            atoms, _ = self._eval(default)
            ground = atoms & {"literal", "safe", "wallclock"}
            if ground:
                defaults[offset + i] = tuple(sorted(ground))
        for i, kw_default in enumerate(args.kw_defaults):
            if kw_default is None:
                continue
            atoms, _ = self._eval(kw_default)
            ground = atoms & {"literal", "safe", "wallclock"}
            if ground:
                defaults[len(positional) + i] = tuple(sorted(ground))
        self.current_class = class_name
        for stmt in node.body:
            self._exec(stmt)
        is_method = class_name is not None and bool(params) and \
            params[0] in ("self", "cls")
        qualname = (
            f"{self.module}.{class_name}.{node.name}"
            if class_name is not None else f"{self.module}.{node.name}"
        )
        module_parts = self.module.split(".")
        entry = (
            class_name is None
            and len(module_parts) > 1 and module_parts[1] == "parallel"
            and node.name.startswith("run_")
        )
        func_unit = name_unit(node.name)
        return_unit: Tuple[str, ...] = (
            (func_unit,) if func_unit else tuple(sorted(self.return_units))
        )
        param_units = {
            i: unit for i, name in enumerate(params)
            for unit in (name_unit(name),) if unit is not None
        }
        return FunctionSummary(
            qualname=qualname, name=node.name, module=self.module,
            path=self.ctx.path, lineno=node.lineno,
            params=tuple(params), is_method=is_method, entry=entry,
            defaults=defaults,
            returns=tuple(sorted(self.returns)),
            return_unit=return_unit, param_units=param_units,
            seed_sinks=tuple(self.sinks), calls=tuple(self.calls),
            writes=tuple(self.writes), spawns=tuple(self.spawns),
        )

    current_class: Optional[str] = None

    # -- statements --------------------------------------------------------

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint, unit = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint, unit, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taint, unit = self._eval(stmt.value)
                self._bind(stmt.target, taint, unit, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taint, unit = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                old = self.env.get(stmt.target.id, (_EMPTY, _EMPTY))
                self.env[stmt.target.id] = (old[0] | taint, old[1] | unit)
                self._check_bare_global_write(stmt.target)
            else:
                self._check_store_target(stmt.target)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint, unit = self._eval(stmt.value)
                self.returns.update(taint)
                self.return_units.update(unit)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint, unit = self._eval(stmt.iter)
            self._bind(stmt.target, taint, unit, None)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint, unit = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint, unit,
                               item.context_expr)
            for sub in stmt.body:
                self._exec(sub)
        elif isinstance(stmt, ast.Try):
            blocks: List[List[ast.stmt]] = [stmt.body]
            for handler in stmt.handlers:
                blocks.append(list(handler.body))
            blocks.append(list(stmt.orelse))
            self._exec_branches(blocks)
            for sub in stmt.finalbody:
                self._exec(sub)
        elif isinstance(stmt, ast.Global):
            self.writes.append(WriteSite(
                line=stmt.lineno, col=stmt.col_offset + 1,
                target=", ".join(stmt.names), kind="global-decl",
            ))
        elif isinstance(stmt, ast.Nonlocal):
            self.writes.append(WriteSite(
                line=stmt.lineno, col=stmt.col_offset + 1,
                target=", ".join(stmt.names), kind="closure-state",
            ))
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._exec_nested(stmt)
        elif isinstance(stmt, (ast.Delete, ast.Assert, ast.Raise)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._eval(value)
        # Pass/Import/Break/Continue/ClassDef: nothing to track.

    def _exec_branches(self, blocks: List[List[ast.stmt]]) -> None:
        """Run each block from the same entry env; join the results."""
        base_env = dict(self.env)
        joined: Env = dict(self.env)
        for block in blocks:
            self.env = dict(base_env)
            for stmt in block:
                self._exec(stmt)
            for name, (taint, unit) in self.env.items():
                old = joined.get(name, (_EMPTY, _EMPTY))
                joined[name] = (old[0] | taint, old[1] | unit)
        self.env = joined

    def _exec_nested(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        """Walk a nested def for closure writes and seed sinks.

        Nested functions do not get their own summary -- their effects
        (sinks, calls, writes to the enclosing scope) are attributed to
        the enclosing function, which is what the call graph sees.
        """
        saved = (self.env, dict(self.var_types), self.outer_locals,
                 self.locals, self.in_nested)
        self.outer_locals = self.outer_locals | self.locals
        params = [
            a.arg for a in
            list(node.args.posonlyargs) + list(node.args.args)
            + list(node.args.kwonlyargs)
        ]
        self.locals = _local_names(node, params)
        self.env = {}
        self.in_nested = True
        for stmt in node.body:
            self._exec(stmt)
        (self.env, self.var_types, self.outer_locals,
         self.locals, self.in_nested) = saved

    def _bind(
        self,
        target: ast.expr,
        taint: Atoms,
        unit: Atoms,
        value: Optional[ast.expr],
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = (taint, unit)
            if isinstance(value, ast.Call):
                dotted = self._callable_target(value.func)
                if dotted is not None:
                    self.var_types[target.id] = dotted
            self._check_bare_global_write(target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._bind(inner, taint, unit, None)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self._check_store_target(target)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint, unit, None)

    # -- shared-state writes -----------------------------------------------

    def _chain_root(self, node: ast.expr) -> Optional[ast.Name]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node if isinstance(node, ast.Name) else None

    def _check_bare_global_write(self, target: ast.Name) -> None:
        # A bare-name Store inside a function is a local binding unless
        # declared ``global`` -- and the Global statement itself is
        # already recorded as a write site.
        return

    def _check_store_target(self, target: ast.expr) -> None:
        """Record ``X[k] = ...`` / ``X.attr = ...`` on shared state."""
        root = self._chain_root(target)
        if root is None:
            return
        self._record_state_write(root, target)

    def _record_state_write(self, root: ast.Name, site: ast.expr) -> None:
        name = root.id
        if name in self.locals or name in self.contextvar_globals:
            return
        if self.in_nested and name in self.outer_locals:
            self.writes.append(WriteSite(
                line=site.lineno, col=site.col_offset + 1,
                target=name, kind="closure-state",
            ))
        elif name in self.module_globals:
            self.writes.append(WriteSite(
                line=site.lineno, col=site.col_offset + 1,
                target=name, kind="module-state",
            ))

    # -- expressions -------------------------------------------------------

    def _eval(self, node: ast.expr) -> Tuple[Atoms, Atoms]:
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool) or value is None:
                return _EMPTY, _EMPTY
            if isinstance(value, (int, float, str, bytes)):
                # ``vlit`` (not ``v``): a literal's volt-ness is only a
                # magnitude heuristic, so RPR012 applies it just to
                # level-named parameters, exactly as RPR004 does.
                unit = (
                    frozenset({"vlit"})
                    if isinstance(value, float) and 0.0 < value < 2.0
                    else _EMPTY
                )
                return _LITERAL, unit
            return _EMPTY, _EMPTY
        if isinstance(node, ast.Name):
            unit_tag = name_unit(node.id)
            named_unit = frozenset({unit_tag}) if unit_tag else _EMPTY
            if node.id in self.env:
                taint, unit = self.env[node.id]
                return taint, unit | named_unit
            if node.id in self.module_consts and node.id not in self.locals:
                return self.module_consts[node.id], named_unit
            return _EMPTY, named_unit
        if isinstance(node, ast.Attribute):
            base_taint, _ = self._eval(node.value)
            unit_tag = name_unit(node.attr)
            unit = frozenset({unit_tag}) if unit_tag else _EMPTY
            taint = _SAFE if "safe" in base_taint else _EMPTY
            return taint, unit
        if isinstance(node, ast.Subscript):
            taint, unit = self._eval(node.value)
            if isinstance(node.slice, ast.expr):
                self._eval(node.slice)
            return taint, unit
        if isinstance(node, ast.BinOp):
            lt, lu = self._eval(node.left)
            rt, ru = self._eval(node.right)
            if "safe" in lt or "safe" in rt:
                taint = _SAFE
            else:
                taint = lt | rt
            return taint, lu | ru
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            taint, unit = _EMPTY, _EMPTY
            for value in node.values:
                t, u = self._eval(value)
                taint, unit = taint | t, unit | u
            return taint, unit
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return _EMPTY, _EMPTY
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            bt, bu = self._eval(node.body)
            ot, ou = self._eval(node.orelse)
            return bt | ot, bu | ou
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            taint, unit = _EMPTY, _EMPTY
            for elt in node.elts:
                t, u = self._eval(elt)
                taint, unit = taint | t, unit | u
            return taint, unit
        if isinstance(node, ast.Dict):
            taint, unit = _EMPTY, _EMPTY
            for value in node.values:
                if value is not None:
                    t, u = self._eval(value)
                    taint, unit = taint | t, unit | u
            return taint, unit
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.JoinedStr):
            taint = _LITERAL
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    t, _ = self._eval(part.value)
                    taint = taint | t
            return taint, _EMPTY
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                return self._eval(node.value)
            return _EMPTY, _EMPTY
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for generator in node.generators:
                self._eval(generator.iter)
            return self._eval(node.elt)
        if isinstance(node, ast.DictComp):
            for generator in node.generators:
                self._eval(generator.iter)
            self._eval(node.key)
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            return _EMPTY, _EMPTY
        return _EMPTY, _EMPTY

    # -- calls -------------------------------------------------------------

    def _callable_target(self, func: ast.expr) -> Optional[str]:
        """Dotted candidate a callable expression refers to, if any."""
        resolved = self.ctx.resolve(func)
        if resolved is not None:
            return resolved
        if isinstance(func, ast.Name) and func.id in self.module_symbols:
            return f"{self.module}.{func.id}"
        return None

    def _call_candidates(self, func: ast.expr) -> Tuple[List[str], bool]:
        """(candidate dotted targets, called-through-an-instance?)."""
        direct = self._callable_target(func)
        if direct is not None:
            return ([direct] if direct.startswith("repro") else []), False
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and self.current_class:
                    return [f"{self.module}.{self.current_class}.{func.attr}"], True
                var_type = self.var_types.get(base.id)
                if var_type is not None and var_type.startswith("repro"):
                    return [f"{var_type}.{func.attr}"], True
        return [], False

    def _eval_call(self, node: ast.Call) -> Tuple[Atoms, Atoms]:
        arg_states = [self._eval(arg) for arg in node.args]
        kw_states = [
            (kw.arg, self._eval(kw.value)) for kw in node.keywords
        ]
        dotted = self.ctx.resolve(node.func)

        if dotted in _SAFE_CALLS:
            return _SAFE, _EMPTY
        if dotted in _WALLCLOCK_CALLS:
            return _WALLCLOCK, _EMPTY
        if dotted in SEED_SINKS:
            self._record_seed_sink(node, dotted, arg_states, kw_states)
            return _EMPTY, _EMPTY
        if dotted in _PASSTHROUGH_CALLS or (
            dotted is None and isinstance(node.func, ast.Name)
            and node.func.id in _PASSTHROUGH_CALLS
            and node.func.id not in self.locals
        ):
            name = dotted if dotted is not None else node.func.id  # type: ignore[union-attr]
            if name.rpartition(".")[2] in _VARIADIC_PASSTHROUGHS:
                taint, unit = _EMPTY, _EMPTY
                for t, u in arg_states:
                    taint, unit = taint | t, unit | u
                return taint, unit
            return arg_states[0] if arg_states else (_EMPTY, _EMPTY)
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _PASSTHROUGH_METHODS:
                return arg_states[0] if arg_states else (_EMPTY, _EMPTY)
            base_taint, _ = self._eval(node.func.value)
            if "safe" in base_taint:
                # generate_state/spawn/digest/... on a safe derivation.
                return _SAFE, _EMPTY
            self._check_mutator_call(node.func)
            if node.func.attr == "submit" and node.args:
                spawn = self._callable_target(node.args[0])
                if spawn is not None and spawn.startswith("repro"):
                    self.spawns.append(spawn)

        candidates, bound = self._call_candidates(node.func)
        if candidates:
            self.calls.append(CallSite(
                line=node.lineno, col=node.col_offset + 1,
                callees=tuple(candidates), bound=bound,
                args=tuple(tuple(sorted(t)) for t, _ in arg_states),
                kwargs=tuple(
                    (name, tuple(sorted(t)))
                    for name, (t, _) in kw_states if name is not None
                ),
                arg_units=tuple(tuple(sorted(u)) for _, u in arg_states),
                kwarg_units=tuple(
                    (name, tuple(sorted(u)))
                    for name, (_, u) in kw_states if name is not None
                ),
            ))
            primary = candidates[0]
            func_name = _tail_name(node.func)
            unit_tag = name_unit(func_name)
            unit = (
                frozenset({unit_tag}) if unit_tag
                else frozenset({f"r:{primary}"})
            )
            return frozenset({f"r:{primary}"}), unit
        func_name = _tail_name(node.func)
        unit_tag = name_unit(func_name)
        return _EMPTY, frozenset({unit_tag}) if unit_tag else _EMPTY

    def _check_mutator_call(self, func: ast.Attribute) -> None:
        if func.attr not in _MUTATOR_METHODS:
            return
        root = self._chain_root(func.value)
        if root is not None:
            self._record_state_write(root, func)

    def _record_seed_sink(
        self,
        node: ast.Call,
        api: str,
        arg_states: List[Tuple[Atoms, Atoms]],
        kw_states: List[Tuple[Optional[str], Tuple[Atoms, Atoms]]],
    ) -> None:
        seed_kw = SEED_SINKS[api]
        atoms: Optional[Atoms] = None
        if node.args:
            atoms = arg_states[0][0]
        else:
            for name, (taint, _) in kw_states:
                if name == seed_kw:
                    atoms = taint
                    break
        if atoms is None:
            return  # no seed at all: RPR001's per-file territory
        self.sinks.append(SeedSink(
            line=node.lineno, col=node.col_offset + 1,
            api=api, atoms=tuple(sorted(atoms)),
        ))


def summarize_module(ctx: FileContext) -> Iterator[FunctionSummary]:
    """Function summaries of one ``repro.*`` file."""
    yield from _Summarizer(ctx).summarize()


# ---------------------------------------------------------------------------
# Whole-program solution
# ---------------------------------------------------------------------------

_GROUND_TAINT = frozenset({"literal", "safe", "wallclock"})
_GROUND_UNIT = frozenset({"mv", "v", "vlit"})


@dataclass(frozen=True)
class ResolvedCall:
    """A call site with its callees resolved to project functions."""

    caller: str
    site: CallSite
    #: (callee qualname, positional parameter offset) pairs.
    targets: Tuple[Tuple[str, int], ...]


class ProjectDataflow:
    """The monotone fixed point over all function summaries."""

    def __init__(self, project: "ProjectModel") -> None:  # noqa: F821
        self.project = project
        functions = project.functions
        self.ground_param: Dict[str, List[Set[str]]] = {
            q: [set() for _ in s.params] for q, s in functions.items()
        }
        self.ground_return: Dict[str, Set[str]] = {q: set() for q in functions}
        self.unit_return: Dict[str, Set[str]] = {q: set() for q in functions}
        self.resolved_calls: List[ResolvedCall] = []
        self.entries: List[str] = []
        #: qualname -> call chain from a worker entry (inclusive).
        self.reachable: Dict[str, Tuple[str, ...]] = {}

    # -- resolution helpers ------------------------------------------------

    def _resolve_targets(
        self, site: CallSite
    ) -> Tuple[Tuple[str, int], ...]:
        functions = self.project.functions
        targets: List[Tuple[str, int]] = []
        for candidate in site.callees:
            qualname = self.project.resolve_callee(candidate)
            if qualname is None:
                continue
            summary = functions[qualname]
            offset = 1 if summary.is_method and (
                site.bound or summary.name == "__init__"
            ) else 0
            targets.append((qualname, offset))
        return tuple(targets)

    def resolve_taint(self, atoms: Sequence[str], owner: str) -> Set[str]:
        """Ground provenance of an atom set, in the owner's context."""
        ground: Set[str] = set()
        params = self.ground_param.get(owner, [])
        for atom in atoms:
            if atom in _GROUND_TAINT:
                ground.add(atom)
            elif atom.startswith("p:"):
                index = int(atom[2:])
                if index < len(params):
                    ground.update(params[index])
            elif atom.startswith("r:"):
                qualname = self.project.resolve_callee(atom[2:])
                if qualname is not None:
                    ground.update(self.ground_return.get(qualname, ()))
        return ground

    def resolve_unit(self, atoms: Sequence[str], owner: str) -> Set[str]:
        """Ground unit family of an atom set, in the owner's context."""
        ground: Set[str] = set()
        summary = self.project.functions.get(owner)
        for atom in atoms:
            if atom in _GROUND_UNIT:
                ground.add(atom)
            elif atom.startswith("p:") and summary is not None:
                declared = summary.param_units.get(int(atom[2:]))
                if declared is not None:
                    ground.add(declared)
            elif atom.startswith("r:"):
                qualname = self.project.resolve_callee(atom[2:])
                if qualname is not None:
                    ground.update(self.unit_return.get(qualname, ()))
        return ground

    # -- the fixed point ---------------------------------------------------

    def solve(self) -> None:
        functions = self.project.functions
        self.resolved_calls = [
            ResolvedCall(caller=q, site=site,
                         targets=self._resolve_targets(site))
            for q, s in functions.items() for site in s.calls
        ]
        spawned: Set[str] = set()
        for q, s in functions.items():
            if s.entry:
                spawned.add(q)
            for candidate in s.spawns:
                qualname = self.project.resolve_callee(candidate)
                if qualname is not None:
                    spawned.add(qualname)
        self.entries = sorted(spawned)

        # Parameter defaults contribute once, as ground atoms.
        for q, s in functions.items():
            for index, atoms in s.defaults.items():
                if index < len(self.ground_param[q]):
                    self.ground_param[q][index].update(
                        a for a in atoms if a in _GROUND_TAINT
                    )

        changed = True
        while changed:
            changed = False
            for q, s in functions.items():
                new_return = self.resolve_taint(s.returns, q)
                if not new_return <= self.ground_return[q]:
                    self.ground_return[q].update(new_return)
                    changed = True
                new_unit = self.resolve_unit(s.return_unit, q)
                if not new_unit <= self.unit_return[q]:
                    self.unit_return[q].update(new_unit)
                    changed = True
            for call in self.resolved_calls:
                for qualname, offset in call.targets:
                    params = self.ground_param[qualname]
                    callee = functions[qualname]
                    for pos, atoms in enumerate(call.site.args):
                        index = pos + offset
                        if index >= len(params):
                            continue
                        flowed = self.resolve_taint(atoms, call.caller)
                        if not flowed <= params[index]:
                            params[index].update(flowed)
                            changed = True
                    for name, atoms in call.site.kwargs:
                        try:
                            index = callee.params.index(name)
                        except ValueError:
                            continue
                        flowed = self.resolve_taint(atoms, call.caller)
                        if not flowed <= params[index]:
                            params[index].update(flowed)
                            changed = True

        self._walk_reachability()

    def _walk_reachability(self) -> None:
        edges: Dict[str, List[str]] = {}
        for call in self.resolved_calls:
            for qualname, _ in call.targets:
                edges.setdefault(call.caller, []).append(qualname)
        for entry in self.entries:
            if entry in self.reachable:
                continue
            self.reachable[entry] = (entry,)
            frontier = [entry]
            while frontier:
                current = frontier.pop(0)
                for callee in edges.get(current, ()):
                    if callee not in self.reachable:
                        self.reachable[callee] = \
                            self.reachable[current] + (callee,)
                        frontier.append(callee)


# Imported late to avoid a cycle at module load (project.py imports the
# summary types above).
from typing import TYPE_CHECKING  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover
    from .project import ProjectModel
