"""Whole-program project model for the interprocedural rules.

A :class:`ProjectModel` is the unit the RPR011-RPR013 rules operate
on: every ``repro.*`` module in the lint run, each reduced to a
:class:`ModuleModel` -- its dotted name, its import-alias table and the
per-function :class:`~repro.analysis.lint.dataflow.FunctionSummary`
records the dataflow pass extracted.  Three whole-program services live
here:

* **symbol resolution** (:meth:`ProjectModel.resolve_symbol`): a dotted
  path such as ``repro.parallel.run_campaign_task`` is chased through
  package ``__init__`` re-export tables until it lands on a real
  function/method summary (``repro.parallel.tasks.run_campaign_task``);
* **the module import graph** (:meth:`ProjectModel.dependencies_of`,
  plus :func:`dependent_closure` for the cache's reverse-dependency
  cone);
* **the solved dataflow** (:meth:`ProjectModel.dataflow`): the
  fixed-point propagation over function summaries, computed once and
  shared by every project rule.

Everything in a :class:`ModuleModel` is derived from one file's source
alone, which is what makes the incremental cache sound: a file's model
can be serialized, keyed on its content hash, and reused until the
file itself changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from .dataflow import FunctionSummary, ProjectDataflow, summarize_module
from .registry import FileContext

#: How many re-export hops :meth:`ProjectModel.resolve_symbol` will
#: chase (``repro.parallel`` -> ``repro.parallel.tasks`` is one hop).
_MAX_REEXPORT_HOPS = 8


@dataclass
class ModuleModel:
    """One ``repro.*`` module, reduced to what project rules need."""

    path: str
    module: str
    #: name -> absolute dotted path bound by an import statement.
    imports: Dict[str, str] = field(default_factory=dict)
    #: Absolute dotted paths this module imports (module or symbol
    #: granularity); matched against project modules by prefix.
    import_targets: Tuple[str, ...] = ()
    summaries: Tuple[FunctionSummary, ...] = ()

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "imports": dict(self.imports),
            "import_targets": list(self.import_targets),
            "summaries": [s.to_json_dict() for s in self.summaries],
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "ModuleModel":
        return cls(
            path=payload["path"],
            module=payload["module"],
            imports=dict(payload["imports"]),
            import_targets=tuple(payload["import_targets"]),
            summaries=tuple(
                FunctionSummary.from_json_dict(s) for s in payload["summaries"]
            ),
        )


def collect_import_targets(ctx: FileContext) -> Tuple[str, ...]:
    """Absolute dotted paths a file imports, for the dependency graph."""
    import ast

    targets: Set[str] = set(ctx.imports.values())
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            resolved = ctx.import_target(node)
            if resolved is not None:
                targets.add(resolved)
    return tuple(sorted(targets))


def build_module_model(ctx: FileContext) -> Optional[ModuleModel]:
    """The :class:`ModuleModel` of one file; None outside ``repro``."""
    if ctx.module is None or not (
        ctx.module == "repro" or ctx.module.startswith("repro.")
    ):
        return None
    return ModuleModel(
        path=ctx.path,
        module=ctx.module,
        imports=dict(ctx.imports),
        import_targets=collect_import_targets(ctx),
        summaries=tuple(summarize_module(ctx)),
    )


class ProjectModel:
    """The whole-program view the interprocedural rules check."""

    def __init__(self, modules: Iterable[ModuleModel]) -> None:
        self.modules: Dict[str, ModuleModel] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        for model in modules:
            self.modules[model.module] = model
            for summary in model.summaries:
                self.functions[summary.qualname] = summary
        self._resolved: Dict[str, Optional[str]] = {}
        self._dataflow: Optional[ProjectDataflow] = None

    # -- symbol resolution -------------------------------------------------

    def resolve_symbol(self, dotted: str) -> Optional[str]:
        """Chase a dotted path to a function summary's qualname.

        Handles package re-exports: ``repro.parallel.run_campaign_task``
        resolves through ``repro/parallel/__init__.py``'s import table
        to ``repro.parallel.tasks.run_campaign_task``.  Returns None
        when the path does not land on a known function or method.
        """
        cached = self._resolved.get(dotted, _UNRESOLVED)
        if cached is not _UNRESOLVED:
            return cached
        result = self._resolve_uncached(dotted)
        self._resolved[dotted] = result
        return result

    def _resolve_uncached(self, dotted: str) -> Optional[str]:
        current = dotted
        for _ in range(_MAX_REEXPORT_HOPS):
            if current in self.functions:
                return current
            hop = self._chase_one(current)
            if hop is None or hop == current:
                return None
            current = hop
        return None

    def _chase_one(self, dotted: str) -> Optional[str]:
        """One re-export hop: rebase ``dotted`` through an import table."""
        module = self._longest_module_prefix(dotted)
        if module is None or module == dotted:
            return None
        rest = dotted[len(module) + 1:].split(".")
        target = self.modules[module].imports.get(rest[0])
        if target is None:
            return None
        return ".".join([target] + rest[1:])

    def _longest_module_prefix(self, dotted: str) -> Optional[str]:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate
        return None

    def resolve_callee(self, dotted: str) -> Optional[str]:
        """Like :meth:`resolve_symbol`, but a class name resolves to
        its ``__init__`` (the call edge a constructor creates)."""
        direct = self.resolve_symbol(dotted)
        if direct is not None:
            return direct
        return self.resolve_symbol(dotted + ".__init__")

    # -- the module import graph -------------------------------------------

    def dependencies_of(self, module: str) -> Set[str]:
        """Project modules ``module`` imports (directly)."""
        model = self.modules.get(module)
        if model is None:
            return set()
        deps: Set[str] = set()
        for target in model.import_targets:
            dep = self._longest_module_prefix(target)
            if dep is not None and dep != module:
                deps.add(dep)
        return deps

    # -- dataflow ----------------------------------------------------------

    def dataflow(self) -> ProjectDataflow:
        """The solved whole-program dataflow (computed once)."""
        if self._dataflow is None:
            flow = ProjectDataflow(self)
            flow.solve()
            self._dataflow = flow
        return self._dataflow


#: Sentinel distinguishing "not cached" from "resolved to None".
_UNRESOLVED: Any = object()


def dependent_closure(
    changed: Set[str], deps_by_module: Dict[str, Set[str]]
) -> Set[str]:
    """Modules whose analysis a change may affect: ``changed`` plus
    every module that transitively imports one of them (the
    reverse-dependency cone the incremental cache invalidates).
    """
    reverse: Dict[str, Set[str]] = {}
    for module, deps in deps_by_module.items():
        for dep in deps:
            reverse.setdefault(dep, set()).add(module)
    cone = set(changed)
    frontier = list(changed)
    while frontier:
        module = frontier.pop()
        for dependent in reverse.get(module, ()):
            if dependent not in cone:
                cone.add(dependent)
                frontier.append(dependent)
    return cone
