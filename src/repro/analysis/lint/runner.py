"""File discovery, per-file analysis and report aggregation."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ...errors import ConfigurationError
from .diagnostics import META_RULE_ID, Diagnostic
from .registry import FileContext, Rule, all_rules, get_rule
from .suppressions import scan_suppressions

#: Directory names never descended into.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hg", ".tox", ".venv", "venv",
    "build", "dist", ".eggs", "node_modules",
})


@dataclass
class LintReport:
    """Everything one lint run produced."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return dict(sorted(counts.items()))

    def render_text(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        summary = (
            f"{len(self.diagnostics)} finding(s) in "
            f"{self.files_checked} file(s)"
        )
        if self.diagnostics:
            per_rule = ", ".join(
                f"{rule}: {count}"
                for rule, count in self.counts_by_rule().items()
            )
            summary += f" ({per_rule})"
        return "\n".join(lines + [summary])

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [d.to_json_dict() for d in self.diagnostics],
            "summary": self.counts_by_rule(),
        }


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for files under a ``repro`` package tree.

    Works for both the in-repo ``src/repro/...`` layout and an
    installed ``.../site-packages/repro/...`` layout; returns None for
    tests, examples and scripts outside the package.
    """
    parts = list(path.parts)
    for index, part in enumerate(parts[:-1]):
        if part == "repro" and (index == 0 or parts[index - 1] != "tests"):
            dotted = parts[index:-1] + [path.stem]
            if path.stem == "__init__":
                dotted = parts[index:-1]
            return ".".join(dotted)
    return None


def _make_context(path_label: str, source: str) -> FileContext:
    tree = ast.parse(source, filename=path_label)
    ctx = FileContext(
        path=path_label,
        source=source,
        tree=tree,
        module=module_name_for(Path(path_label)),
    )
    ctx.build_import_table()
    return ctx


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Lint one source string; the unit-test/fixture entry point.

    ``path`` participates in scoping (e.g. ``src/repro/core/x.py``
    puts the snippet inside the package boundary), so fixtures can
    exercise both sides of every rule.
    """
    selected = list(rules) if rules is not None else all_rules()
    try:
        ctx = _make_context(path, source)
    except SyntaxError as exc:
        return [Diagnostic(
            path=path, line=exc.lineno or 1, col=(exc.offset or 0) + 1 or 1,
            rule=META_RULE_ID, name="syntax-error",
            message=f"cannot parse file: {exc.msg}",
        )]
    table = scan_suppressions(path, source)
    findings: List[Diagnostic] = list(table.problems)
    for rule in selected:
        for diagnostic in rule.check(ctx):
            if not table.is_suppressed(diagnostic.line, diagnostic.rule):
                findings.append(diagnostic)
    return sorted(findings)


def discover_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into the ordered ``.py`` work list.

    Raises :class:`~repro.errors.ConfigurationError` for paths that do
    not exist -- a usage error, not a clean run.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigurationError(f"path does not exist: {raw}")
        if path.is_file():
            files.append(path)
            continue
        for found in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in found.parts):
                files.append(found)
    deduped: List[Path] = []
    seen: set = set()
    for path in files:
        key = str(path)
        if key not in seen:
            seen.add(key)
            deduped.append(path)
    return deduped


def resolve_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """The rule set a run uses; ``select`` narrows by id."""
    if not select:
        return all_rules()
    return [get_rule(rule_id) for rule_id in select]


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint files and directories; the CLI entry point."""
    rules = resolve_rules(select)
    report = LintReport()
    for path in discover_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.diagnostics.append(Diagnostic(
                path=str(path), line=1, col=1,
                rule=META_RULE_ID, name="unreadable-file",
                message=f"cannot read file: {exc}",
            ))
            continue
        report.files_checked += 1
        report.diagnostics.extend(lint_source(source, str(path), rules))
    report.diagnostics.sort()
    return report


def _columns(rows: List[Tuple[str, ...]]) -> str:
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    return "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    )


def render_rule_catalog() -> str:
    """The ``--list-rules`` table (also embedded in docs/linting.md)."""
    rows = [("ID", "NAME", "PROTECTS")]
    rows += [
        (rule.rule_id, rule.name, rule.protects) for rule in all_rules()
    ]
    return _columns(rows)
