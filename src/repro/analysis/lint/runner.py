"""File discovery, per-file and whole-program analysis, aggregation.

A lint run has three phases, each timed for ``--stats``:

* **parse** -- every requested file is read, hashed, and (unless its
  cached record is still valid) parsed and run through the per-file
  rules, its suppression comments scanned and, for ``repro.*`` files,
  its function summaries extracted (:func:`analyze_file`).
* **graph** -- the per-file :class:`ModuleModel` records are joined
  into one :class:`ProjectModel` (symbol table, import graph, call
  graph).
* **dataflow** -- the project rules (RPR011-RPR013) solve the
  whole-program fixed point over the summaries and their findings are
  merged with the per-file ones, suppressions applied and -- on full
  runs -- suppressions that shielded nothing reported as stale.

The cache (:mod:`repro.analysis.lint.cache`) short-circuits only the
first phase: per-file records are keyed on content SHA-256, and a
change invalidates the changed module plus its reverse-dependency
cone.  Interprocedural findings are recomputed every run from the
(cached or fresh) summaries -- they are whole-program properties, so
caching them per file would be unsound.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...errors import ConfigurationError
from .cache import FileAnalysis, content_sha, load_cache, rule_fingerprint, save_cache
from .diagnostics import META_RULE_ID, Diagnostic
from .project import ProjectModel, build_module_model, dependent_closure
from .registry import FileContext, ProjectRule, Rule, all_rules, get_rule
from .suppressions import SuppressionTable, scan_suppressions

#: Directory names never descended into.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hg", ".tox", ".venv", "venv",
    "build", "dist", ".eggs", "node_modules",
})

#: Default location of the incremental result cache.
DEFAULT_CACHE_PATH = ".reprolint_cache.json"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    #: Files analyzed fresh this run vs. served from the cache.
    files_analyzed: int = 0
    files_cached: int = 0
    #: Phase wall time in seconds: ``parse``, ``graph``, ``dataflow``.
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return dict(sorted(counts.items()))

    def render_text(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        summary = (
            f"{len(self.diagnostics)} finding(s) in "
            f"{self.files_checked} file(s)"
        )
        if self.diagnostics:
            per_rule = ", ".join(
                f"{rule}: {count}"
                for rule, count in self.counts_by_rule().items()
            )
            summary += f" ({per_rule})"
        return "\n".join(lines + [summary])

    def render_stats(self) -> str:
        """The ``--stats`` block: per-rule counts and phase wall time."""
        lines = [
            f"files checked: {self.files_checked}",
            f"files analyzed: {self.files_analyzed}",
            f"files cached: {self.files_cached}",
        ]
        counts = self.counts_by_rule()
        if counts:
            lines.append("findings by rule:")
            lines.extend(
                f"  {rule}: {count}" for rule, count in counts.items()
            )
        else:
            lines.append("findings by rule: none")
        lines.append("phase wall time:")
        labels = {"graph": "graph build"}
        for phase in ("parse", "graph", "dataflow"):
            seconds = self.timings.get(phase, 0.0)
            label = labels.get(phase, phase)
            lines.append(f"  {label}: {seconds * 1000.0:.1f} ms")
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "files_analyzed": self.files_analyzed,
            "files_cached": self.files_cached,
            "timings": {k: round(v, 6) for k, v in self.timings.items()},
            "findings": [d.to_json_dict() for d in self.diagnostics],
            "summary": self.counts_by_rule(),
        }


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for files under a ``repro`` package tree.

    Works for both the in-repo ``src/repro/...`` layout and an
    installed ``.../site-packages/repro/...`` layout; returns None for
    tests, examples and scripts outside the package.
    """
    parts = list(path.parts)
    for index, part in enumerate(parts[:-1]):
        if part == "repro" and (index == 0 or parts[index - 1] != "tests"):
            dotted = parts[index:-1] + [path.stem]
            if path.stem == "__init__":
                dotted = parts[index:-1]
            return ".".join(dotted)
    return None


def _make_context(path_label: str, source: str) -> FileContext:
    tree = ast.parse(source, filename=path_label)
    ctx = FileContext(
        path=path_label,
        source=source,
        tree=tree,
        module=module_name_for(Path(path_label)),
    )
    ctx.build_import_table()
    return ctx


def analyze_file(
    path_label: str, source: str, file_rules: Sequence[Rule]
) -> FileAnalysis:
    """Analyze one file in isolation: the cacheable unit of work.

    Runs the per-file rules, scans suppressions and extracts the
    module's function summaries.  Findings are recorded *before*
    suppression filtering -- assembly applies suppressions so it can
    tell which ones earned their keep.
    """
    sha = content_sha(source)
    try:
        ctx = _make_context(path_label, source)
    except SyntaxError as exc:
        return FileAnalysis(
            path=path_label, sha=sha,
            findings=[Diagnostic(
                path=path_label, line=exc.lineno or 1,
                col=(exc.offset or 0) + 1 or 1,
                rule=META_RULE_ID, name="syntax-error",
                message=f"cannot parse file: {exc.msg}",
            )],
        )
    table = scan_suppressions(path_label, source)
    findings: List[Diagnostic] = []
    for rule in file_rules:
        findings.extend(rule.check(ctx))
    return FileAnalysis(
        path=path_label, sha=sha, module=ctx.module,
        findings=sorted(findings),
        supp_entries=list(table.entries),
        supp_problems=list(table.problems),
        model=build_module_model(ctx),
    )


def _stale_suppression_findings(
    analysis: FileAnalysis, hits: Set[Tuple[int, str]]
) -> List[Diagnostic]:
    """RPR000 findings for ``disable=`` clauses that shielded nothing."""
    stale: List[Diagnostic] = []
    for entry in analysis.supp_entries:
        for rule_id in entry.rules:
            if (entry.target_line, rule_id) in hits:
                continue
            stale.append(Diagnostic(
                path=analysis.path, line=entry.comment_line, col=entry.col,
                rule=META_RULE_ID, name="stale-suppression",
                message=(
                    f"suppression of {rule_id} matched no diagnostic on "
                    f"line {entry.target_line}; remove it (stale "
                    "suppressions hide future regressions)"
                ),
            ))
    return stale


def _relabel(analysis: FileAnalysis, label: str) -> FileAnalysis:
    """The analysis with every path field rewritten to ``label``.

    Cache records are stored under resolved paths but a run may request
    the same file under a different spelling (relative vs. absolute);
    findings and summaries must carry the requested spelling so that
    suppression matching and interprocedural joins line up.
    """
    if analysis.path == label:
        return analysis
    model = analysis.model
    if model is not None:
        model = replace(model, path=label, summaries=tuple(
            replace(summary, path=label) for summary in model.summaries
        ))
    return replace(
        analysis,
        path=label,
        findings=[replace(d, path=label) for d in analysis.findings],
        supp_problems=[
            replace(d, path=label) for d in analysis.supp_problems
        ],
        model=model,
    )


def _assemble_file(
    analysis: FileAnalysis,
    interproc: Sequence[Diagnostic],
    stale_check: bool,
) -> List[Diagnostic]:
    """Suppression-filter one file's findings; report stale clauses."""
    table = SuppressionTable.from_parts(
        analysis.supp_entries, analysis.supp_problems
    )
    out: List[Diagnostic] = list(analysis.supp_problems)
    hits: Set[Tuple[int, str]] = set()
    for diagnostic in list(analysis.findings) + list(interproc):
        if table.is_suppressed(diagnostic.line, diagnostic.rule):
            hits.add((diagnostic.line, diagnostic.rule))
        else:
            out.append(diagnostic)
    if stale_check:
        out.extend(_stale_suppression_findings(analysis, hits))
    return out


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    stale_check: bool = False,
) -> List[Diagnostic]:
    """Lint one source string; the unit-test/fixture entry point.

    ``path`` participates in scoping (e.g. ``src/repro/core/x.py``
    puts the snippet inside the package boundary), so fixtures can
    exercise both sides of every rule.  ``stale_check`` is off by
    default here -- fixtures routinely carry suppressions for rules
    they deliberately do not trigger.
    """
    selected = list(rules) if rules is not None else all_rules()
    analysis = analyze_file(path, source, selected)
    return sorted(_assemble_file(analysis, [], stale_check))


def discover_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into the ordered ``.py`` work list.

    Raises :class:`~repro.errors.ConfigurationError` for paths that do
    not exist -- a usage error, not a clean run.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigurationError(f"path does not exist: {raw}")
        if path.is_file():
            files.append(path)
            continue
        for found in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in found.parts):
                files.append(found)
    deduped: List[Path] = []
    seen: set = set()
    for path in files:
        key = str(path)
        if key not in seen:
            seen.add(key)
            deduped.append(path)
    return deduped


def resolve_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """The rule set a run uses; ``select`` narrows by id."""
    if not select:
        return all_rules()
    return [get_rule(rule_id) for rule_id in select]


def _module_dependencies(
    entries: Dict[str, FileAnalysis]
) -> Dict[str, Set[str]]:
    """module -> directly imported project modules, from cached models."""
    known = {
        entry.module for entry in entries.values()
        if entry.module is not None
    }

    def longest_prefix(dotted: str) -> Optional[str]:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in known:
                return candidate
        return None

    deps: Dict[str, Set[str]] = {}
    for entry in entries.values():
        if entry.module is None or entry.model is None:
            continue
        targets: Set[str] = set()
        for dotted in entry.model.import_targets:
            dep = longest_prefix(dotted)
            if dep is not None and dep != entry.module:
                targets.add(dep)
        deps[entry.module] = targets
    return deps


def _invalidation_cone(
    cached: Dict[str, FileAnalysis],
    disk_sha: Dict[str, str],
) -> Set[str]:
    """Modules needing re-analysis: changed ones plus their
    reverse-dependency cone (callers may see different summaries)."""
    changed: Set[str] = set()
    for label, sha in disk_sha.items():
        old = cached.get(label)
        if old is None or old.sha != sha:
            module = module_name_for(Path(label))
            if module is not None:
                changed.add(module)
    for label, old in cached.items():
        if label not in disk_sha and old.module is not None and \
                not Path(label).exists():
            changed.add(old.module)
    if not changed:
        return set()
    return dependent_closure(changed, _module_dependencies(cached))


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    cache_path: Optional[str] = None,
    stale_check: bool = True,
) -> LintReport:
    """Lint files and directories; the CLI entry point.

    ``cache_path`` enables the incremental cache (None disables it).
    Both the cache and the stale-suppression check only apply to
    full-rule-set runs: under ``--select``, cached records would have
    been produced by a different rule inventory, and suppressions for
    unselected rules would all look stale.
    """
    rules = resolve_rules(select)
    full_run = not select
    use_cache = cache_path is not None and full_run
    check_stale = stale_check and full_run
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    report = LintReport()

    started = time.perf_counter()
    fingerprint = rule_fingerprint(all_rules())
    # Cache records and the project join are keyed on *resolved* paths
    # so a run that spells the same file differently (relative from the
    # repo root, absolute from a hook) still matches; the spelling the
    # caller used is kept as the display label.
    cached: Dict[str, FileAnalysis] = {}
    if use_cache:
        assert cache_path is not None
        loaded, _ = load_cache(Path(cache_path), fingerprint)
        for stored_key, entry in loaded.items():
            cached[str(Path(stored_key).resolve())] = entry

    requested: List[str] = []
    resolved_of: Dict[str, str] = {}
    seen_keys: Set[str] = set()
    sources: Dict[str, str] = {}
    for path in discover_files(paths):
        label = str(path)
        key = str(path.resolve())
        if key in seen_keys:
            continue
        seen_keys.add(key)
        try:
            sources[label] = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.diagnostics.append(Diagnostic(
                path=label, line=1, col=1,
                rule=META_RULE_ID, name="unreadable-file",
                message=f"cannot read file: {exc}",
            ))
            continue
        requested.append(label)
        resolved_of[label] = key
    disk_sha = {
        resolved_of[label]: content_sha(sources[label])
        for label in requested
    }
    cone = _invalidation_cone(cached, disk_sha) if use_cache else set()

    analyses: Dict[str, FileAnalysis] = {}
    for label in requested:
        old = cached.get(resolved_of[label])
        reusable = (
            use_cache and old is not None
            and old.sha == disk_sha[resolved_of[label]]
            and (old.module is None or old.module not in cone)
        )
        if reusable:
            assert old is not None
            analyses[label] = _relabel(old, label)
            report.files_cached += 1
        else:
            analyses[label] = analyze_file(
                label, sources[label], file_rules
            )
            report.files_analyzed += 1
    report.files_checked = len(requested)

    # Cached repro modules outside the requested paths still feed the
    # project model, so subset runs (pre-commit passes changed files
    # only) keep seeing the whole program.
    requested_keys = set(resolved_of.values())
    carried: Dict[str, FileAnalysis] = {}
    for key, old in cached.items():
        if key in requested_keys:
            continue
        if old.module is None:
            # Not part of the project model, but still a valid record
            # for the next run that does request the file.
            if Path(key).exists():
                carried[key] = old
            continue
        try:
            carried_source = Path(key).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        if content_sha(carried_source) == old.sha and \
                old.module not in cone:
            carried[key] = _relabel(old, key)
        else:
            carried[key] = analyze_file(key, carried_source, file_rules)
    report.timings["parse"] = time.perf_counter() - started

    started = time.perf_counter()
    models = [
        analysis.model
        for analysis in list(analyses.values()) + list(carried.values())
        if analysis.model is not None
    ]
    project = ProjectModel(models)
    report.timings["graph"] = time.perf_counter() - started

    started = time.perf_counter()
    label_of_key = {key: label for label, key in resolved_of.items()}
    interproc_by_path: Dict[str, List[Diagnostic]] = {}
    for rule in project_rules:
        for diagnostic in rule.check_project(project):
            label = label_of_key.get(str(Path(diagnostic.path).resolve()))
            if label is None:
                continue
            if diagnostic.path != label:
                diagnostic = replace(diagnostic, path=label)
            interproc_by_path.setdefault(label, []).append(diagnostic)
    for label in requested:
        report.diagnostics.extend(_assemble_file(
            analyses[label],
            interproc_by_path.get(label, []),
            check_stale,
        ))
    report.timings["dataflow"] = time.perf_counter() - started

    if use_cache:
        assert cache_path is not None
        merged = dict(carried)
        for label, analysis in analyses.items():
            key = resolved_of[label]
            merged[key] = _relabel(analysis, key)
        save_cache(Path(cache_path), fingerprint, merged)
    report.diagnostics.sort()
    return report


def _columns(rows: List[Tuple[str, ...]]) -> str:
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    return "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    )


def render_rule_catalog() -> str:
    """The ``--list-rules`` table (also embedded in docs/linting.md)."""
    rows = [("ID", "NAME", "PROTECTS")]
    rows += [
        (rule.rule_id, rule.name, rule.protects) for rule in all_rules()
    ]
    return _columns(rows)
