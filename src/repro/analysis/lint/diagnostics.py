"""Diagnostic records and their text/JSON renderings."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: Rule id of the linter's own integrity findings (syntax errors,
#: malformed or unjustified suppression comments).  Deliberately not
#: suppressible: a broken suppression must never hide itself.
META_RULE_ID = "RPR000"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: file/line/column-precise, tied to a rule.

    Ordering is (path, line, col, rule) so reports are stable and
    diffable across runs regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    name: str
    message: str

    def render(self) -> str:
        """The one-line ``path:line:col: RPR00x [name] message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.name}] {self.message}"
        )

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-dict form for ``--format json`` output."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "name": self.name,
            "message": self.message,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "Diagnostic":
        """Inverse of :meth:`to_json_dict` (the result-cache format)."""
        return cls(
            path=payload["path"], line=payload["line"], col=payload["col"],
            rule=payload["rule"], name=payload["name"],
            message=payload["message"],
        )
