"""``python -m repro.analysis`` runs reprolint.

The standalone spelling of ``repro lint``: same rules, same flags,
same exit codes.  Kept module-level-trivial so CI and pre-commit can
invoke the checker without installing the console script.
"""

import sys

from .lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
