"""Figures 3, 4, 5, 7, 8 and 9 as data series.

Each regenerator has two modes where applicable:

* **from measurement** -- pass the characterization / prediction
  results produced by the framework (what the benchmark harness does);
* **from anchors** -- omit them and the series is derived from the
  calibration model directly (instant, exact; useful for sanity checks
  and documentation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.campaign import CharacterizationResult
from ..core.regions import Region
from ..data.calibration import CHIP_NAMES, chip_calibration
from ..energy.tradeoffs import TradeoffPoint, figure9_ladder
from ..errors import CampaignError
from ..prediction.pipeline import PredictionReport
from ..units import voltage_sweep
from ..workloads.spec2006 import figure_benchmarks


# ---------------------------------------------------------------------------
# Figure 3: Vmin at 2.4 GHz, most robust core, 10 benchmarks x 3 chips.
# ---------------------------------------------------------------------------


def figure3_vmin_series(
    measured: Optional[Mapping[Tuple[str, str], CharacterizationResult]] = None,
) -> Dict[str, Dict[str, int]]:
    """{chip: {benchmark: Vmin mV}} for the most robust core.

    ``measured`` maps (chip, benchmark) to characterization results;
    omitted entries fall back to the calibration anchors.
    """
    series: Dict[str, Dict[str, int]] = {}
    for chip in CHIP_NAMES:
        calibration = chip_calibration(chip)
        core = calibration.most_robust_core()
        row: Dict[str, int] = {}
        for bench in figure_benchmarks():
            key = (chip, bench.name)
            if measured is not None and key in measured:
                row[bench.name] = measured[key].highest_vmin_mv
            else:
                row[bench.name] = calibration.vmin_mv(core, bench.stress)
        series[chip] = row
    return series


# ---------------------------------------------------------------------------
# Figure 4: per-core region grid for every benchmark and chip.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegionColumn:
    """One bar of Figure 4: a core's regions for one benchmark."""

    chip: str
    benchmark: str
    core: int
    vmin_mv: int
    crash_mv: Optional[int]
    #: {voltage: region} across the plotted range.
    regions: Mapping[int, Region]


def figure4_region_grid(
    measured: Optional[
        Mapping[Tuple[str, str, int], CharacterizationResult]
    ] = None,
    top_mv: int = 930,
    bottom_mv: int = 850,
) -> List[RegionColumn]:
    """All Figure-4 columns (3 chips x 10 benchmarks x 8 cores).

    ``measured`` maps (chip, benchmark, core) to results; omitted cells
    fall back to anchors.
    """
    columns: List[RegionColumn] = []
    plot_range = voltage_sweep(top_mv, bottom_mv)
    for chip in CHIP_NAMES:
        calibration = chip_calibration(chip)
        for bench in figure_benchmarks():
            for core in range(8):
                key = (chip, bench.name, core)
                if measured is not None and key in measured:
                    regions_obj = measured[key].pooled_regions()
                    vmin = regions_obj.vmin_mv
                    crash = regions_obj.crash_mv
                    region_map = {v: regions_obj.classify(v) for v in plot_range}
                else:
                    vmin = calibration.vmin_mv(core, bench.stress)
                    crash = calibration.crash_voltage_mv(
                        core, bench.stress, bench.smoothness
                    )
                    def classify(v: int, vmin: int = vmin,
                                 crash: int = crash) -> Region:
                        if v >= vmin:
                            return Region.SAFE
                        if v > crash:
                            return Region.UNSAFE
                        return Region.CRASH
                    region_map = {v: classify(v) for v in plot_range}
                columns.append(
                    RegionColumn(
                        chip=chip, benchmark=bench.name, core=core,
                        vmin_mv=vmin, crash_mv=crash, regions=region_map,
                    )
                )
    return columns


def figure4_chip_averages(
    columns: Sequence[RegionColumn],
) -> Dict[str, Tuple[float, float]]:
    """Figure 4's green/red lines: (mean Vmin, mean crash) per chip."""
    sums: Dict[str, List[float]] = {}
    for column in columns:
        slot = sums.setdefault(column.chip, [0.0, 0.0, 0.0])
        slot[0] += column.vmin_mv
        slot[1] += column.crash_mv if column.crash_mv is not None else 0.0
        slot[2] += 1
    return {
        chip: (total_vmin / count, total_crash / count)
        for chip, (total_vmin, total_crash, count) in sums.items()
    }


# ---------------------------------------------------------------------------
# Figure 5: severity heat-map of one benchmark on one chip's cores.
# ---------------------------------------------------------------------------


def figure5_severity_map(
    results_by_core: Mapping[int, CharacterizationResult],
) -> Dict[int, Dict[int, Optional[float]]]:
    """{voltage: {core: severity}} -- the Figure-5 matrix.

    Only voltages where at least one core shows non-zero severity are
    included (matching the figure, which annotates the abnormal cells).
    Cells a core's sweep never measured -- its campaign stopped above
    that voltage after hitting the crash floor -- are ``None``, not 0.
    """
    if not results_by_core:
        raise CampaignError("need at least one core's result")
    per_core = {
        core: result.severity_by_voltage()
        for core, result in results_by_core.items()
    }
    voltages = sorted(
        {v for table in per_core.values() for v in table}, reverse=True
    )
    matrix: Dict[int, Dict[int, Optional[float]]] = {}
    for voltage in voltages:
        row = {
            core: per_core[core].get(voltage)
            for core in sorted(per_core)
        }
        if any(value is not None and value > 0 for value in row.values()):
            matrix[voltage] = row
    return matrix


# ---------------------------------------------------------------------------
# Figures 7/8: severity prediction scatter.
# ---------------------------------------------------------------------------


def figure7_prediction_series(
    report: PredictionReport,
) -> List[Tuple[str, float, float]]:
    """(tag, observed, predicted) test points, sorted by observed --
    the dots and line of Figures 7 and 8."""
    return sorted(report.test_points, key=lambda point: point[1])


# ---------------------------------------------------------------------------
# Figure 9: energy-performance trade-off ladder.
# ---------------------------------------------------------------------------


def figure9_series(
    chip: str = "TTT", clock_tree_fraction: float = 0.0
) -> List[TradeoffPoint]:
    """The Figure-9 point series (delegates to the energy package)."""
    return figure9_ladder(chip, clock_tree_fraction=clock_tree_fraction)
