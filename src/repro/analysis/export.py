"""Figure-data export: the paper's plots as machine-readable CSVs.

Every figure regenerator in :mod:`repro.analysis.figures` returns data
series; this module writes them in the shape a plotting script (or a
spreadsheet) consumes directly -- the "artifact" version of the
reproduction.  One file per figure:

* ``figure3_vmin.csv``       -- chip, benchmark, vmin_mv
* ``figure4_regions.csv``    -- chip, benchmark, core, vmin_mv,
  crash_mv, unsafe_width_mv
* ``figure5_severity.csv``   -- voltage_mv, core, severity
* ``figure7_prediction.csv`` -- tag, observed, predicted
* ``figure9_tradeoffs.csv``  -- label, voltage_mv, perf_pct, power_pct
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..core.campaign import CharacterizationResult
from ..data.calibration import chip_calibration
from ..energy.tradeoffs import TradeoffPoint
from ..errors import CampaignError, ConfigurationError
from ..prediction.pipeline import PredictionReport
from ..store import CampaignStore, FleetStore
from .figures import (
    figure3_vmin_series,
    figure4_region_grid,
    figure5_severity_map,
    figure7_prediction_series,
    figure9_series,
)


def _as_store(store: "str | Path | CampaignStore") -> CampaignStore:
    """Accept a CampaignStore or a store directory path."""
    if isinstance(store, CampaignStore):
        return store
    return CampaignStore.open(store)


class FigureExporter:
    """Writes the figure data series as CSV files into one directory."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _write(self, filename: str, header: Sequence[str],
               rows: Sequence[Sequence[object]]) -> Path:
        path = self.directory / filename
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            writer.writerows(rows)
        return path

    # -- per figure --------------------------------------------------------

    def figure3(
        self,
        measured: Optional[Mapping[Tuple[str, str], CharacterizationResult]] = None,
    ) -> Path:
        series = figure3_vmin_series(measured=measured)
        rows = [
            (chip, bench, vmin)
            for chip, per_bench in series.items()
            for bench, vmin in per_bench.items()
        ]
        return self._write(
            "figure3_vmin.csv", ("chip", "benchmark", "vmin_mv"), rows)

    def figure4(
        self,
        measured: Optional[
            Mapping[Tuple[str, str, int], CharacterizationResult]
        ] = None,
    ) -> Path:
        columns = figure4_region_grid(measured=measured)
        rows = [
            (c.chip, c.benchmark, c.core, c.vmin_mv,
             "" if c.crash_mv is None else c.crash_mv,
             "" if c.crash_mv is None else c.vmin_mv - c.crash_mv)
            for c in columns
        ]
        return self._write(
            "figure4_regions.csv",
            ("chip", "benchmark", "core", "vmin_mv", "crash_mv",
             "unsafe_width_mv"),
            rows,
        )

    def figure5(
        self, results_by_core: Mapping[int, CharacterizationResult]
    ) -> Path:
        matrix = figure5_severity_map(results_by_core)
        rows = [
            (voltage, core, f"{severity:.4f}")
            for voltage, per_core in sorted(matrix.items(), reverse=True)
            for core, severity in per_core.items()
            if severity is not None
        ]
        return self._write(
            "figure5_severity.csv", ("voltage_mv", "core", "severity"), rows)

    def figure7(self, report: PredictionReport,
                filename: str = "figure7_prediction.csv") -> Path:
        series = figure7_prediction_series(report)
        rows = [
            (tag, f"{observed:.4f}", f"{predicted:.4f}")
            for tag, observed, predicted in series
        ]
        return self._write(filename, ("sample", "observed", "predicted"), rows)

    def figure9(self, points: Optional[Sequence[TradeoffPoint]] = None) -> Path:
        points = list(points) if points is not None else figure9_series()
        if not points:
            raise ConfigurationError("figure 9 needs at least one point")
        rows = [
            (p.label, p.chip_voltage_mv,
             f"{100 * p.performance_rel:.1f}", f"{100 * p.power_rel:.1f}")
            for p in points
        ]
        return self._write(
            "figure9_tradeoffs.csv",
            ("label", "voltage_mv", "performance_pct", "power_pct"),
            rows,
        )

    # -- from a campaign store ---------------------------------------------

    def figure3_from_store(
        self, store: "str | Path | CampaignStore"
    ) -> Path:
        """Figure 3 with the journaled measurements filled in.

        The figure plots each chip's *most robust* core; store cells
        for that core override the calibration anchors, every other
        (chip, benchmark) pair falls back to the model.
        """
        journal = _as_store(store)
        measured: Dict[Tuple[str, str], CharacterizationResult] = {}
        for (bench, core), result in journal.results().items():
            if core == chip_calibration(result.chip).most_robust_core():
                measured[(result.chip, bench)] = result
        return self.figure3(measured=measured)

    def figure4_from_store(
        self, store: "str | Path | CampaignStore"
    ) -> Path:
        """Figure 4 with every journaled (chip, benchmark, core) cell."""
        journal = _as_store(store)
        measured = {
            (result.chip, bench, core): result
            for (bench, core), result in journal.results().items()
        }
        return self.figure4(measured=measured)

    def figure5_from_store(
        self,
        store: "str | Path | CampaignStore",
        benchmark: Optional[str] = None,
    ) -> Path:
        """Figure 5 for one journaled benchmark across its cores.

        ``benchmark`` defaults to the first workload of the manifest
        grid (the figure shows a single benchmark's heat-map).
        """
        journal = _as_store(store)
        name = benchmark if benchmark is not None else journal.manifest.workloads[0]
        results_by_core = {
            core: result
            for (bench, core), result in journal.results().items()
            if bench == name
        }
        if not results_by_core:
            raise CampaignError(
                f"store has no completed cells for benchmark {name!r}"
            )
        return self.figure5(results_by_core)

    def export_store_figures(
        self, store: "str | Path | CampaignStore"
    ) -> Mapping[str, Path]:
        """Export every measurement figure a campaign store can feed."""
        journal = _as_store(store)
        return {
            "figure3": self.figure3_from_store(journal),
            "figure4": self.figure4_from_store(journal),
            "figure5": self.figure5_from_store(journal),
        }

    def export_model_figures(self) -> Mapping[str, Path]:
        """Export every figure derivable without measurements."""
        return {
            "figure3": self.figure3(),
            "figure4": self.figure4(),
            "figure9": self.figure9(),
        }

    # -- from a fleet store ------------------------------------------------

    def export_fleet_figures(
        self, fleet: "str | Path | FleetStore"
    ) -> Mapping[str, Mapping[str, Path]]:
        """Per-shard measurement figures, one subdirectory per shard.

        Each shard exports exactly what a standalone
        :meth:`export_store_figures` over that machine's store would,
        under ``<export dir>/<shard name>/`` -- the fleet variant adds
        layout, not a new serialization.
        """
        store = (
            fleet if isinstance(fleet, FleetStore) else FleetStore.open(fleet)
        )
        exports: Dict[str, Mapping[str, Path]] = {}
        for entry, shard in store.shards():
            exporter = FigureExporter(self.directory / entry.name)
            exports[entry.name] = exporter.export_store_figures(shard)
        return exports
