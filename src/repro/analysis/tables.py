"""Tables 1-4 of the paper, as data plus text rendering.

Tables 2-4 are cross-checked against the live configuration of the
simulator (the Table-2 bench fails if someone changes the cache sizes
in :mod:`repro.hardware` without updating the documented parameters).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.severity import DEFAULT_WEIGHTS
from ..effects import EFFECT_DESCRIPTIONS, EffectType


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Plain-text table rendering used by all regenerators."""
    columns = [list(col) for col in zip(headers, *rows)]
    widths = [max(len(str(cell)) for cell in col) for col in columns]
    def fmt(row: Sequence[object]) -> str:
        return " | ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
    rule = "-+-".join("-" * width for width in widths)
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def table1_prior_work() -> Tuple[List[str], List[List[str]]]:
    """Table 1: summary of undervolting studies on commercial chips."""
    headers = ["ISA", "Processor", "Technology", "Ref."]
    rows = [
        ["POWER 7 / 7+", "IBM Power 750, 780", "45 / 32 nm", "[7, 8]"],
        ["x86 - IA64 extension", "Intel Itanium 9560", "32 nm", "[9, 10]"],
        ["Nvidia Fermi / Kepler", "GTX 480, 580, 680, 780", "40 / 28 nm", "[11]"],
        ["ARMv8", "APM X-Gene 2", "28 nm", "This work"],
    ]
    return headers, rows


def table2_parameters() -> Tuple[List[str], List[List[str]]]:
    """Table 2: basic parameters of the APM X-Gene 2.

    Values are read from the live simulator configuration so the table
    can never drift from the implementation.
    """
    from ..hardware.caches import CacheStack
    from ..faults.models import build_unit_models, FunctionalUnit
    from ..data.calibration import chip_calibration
    from ..units import FREQ_MAX_MHZ

    models = build_unit_models(chip_calibration("TTT"), 0, 0.5, 0.5)
    stack = CacheStack.for_core(models)
    by_name = {level.name: level for level in stack.levels}
    headers = ["Parameter", "Configuration"]
    rows = [
        ["ISA", "ARMv8 (AArch64, AArch32, Thumb)"],
        ["Pipeline", "64-bit OoO (4-issue)"],
        ["CPU", "8 cores"],
        ["Core clock", f"{FREQ_MAX_MHZ / 1000:.1f} GHz"],
        ["L1 Instr. cache",
         f"{by_name['L1I'].size_kb}KB per core "
         f"({by_name['L1I'].protection.capitalize()} Protected)"],
        ["L1 Data cache",
         f"{by_name['L1D'].size_kb}KB per core "
         f"({by_name['L1D'].protection.capitalize()} Protected)"],
        ["L2 cache",
         f"{by_name['L2'].size_kb}KB per PMD (ECC Protected)"],
        ["L3 cache", f"{by_name['L3'].size_kb // 1024}MB (ECC Protected)"],
        ["Technology", "28 nm"],
        ["Max TDP", "35 W"],
    ]
    return headers, rows


def table3_effects() -> Tuple[List[str], List[List[str]]]:
    """Table 3: effects classification, from the live enum."""
    headers = ["Effect", "Description"]
    order = (
        EffectType.NO, EffectType.SDC, EffectType.CE,
        EffectType.UE, EffectType.AC, EffectType.SC,
    )
    rows = [[effect.value, EFFECT_DESCRIPTIONS[effect]] for effect in order]
    return headers, rows


def table_store_summary(store: object) -> Tuple[List[str], List[List[str]]]:
    """Per-cell summary of a journaled campaign store.

    Not a paper table -- the operational counterpart: what a six-month
    unattended campaign's progress report looks like, one row per
    (benchmark, core) grid cell reconstructed from the journal.
    """
    from ..store import CampaignStore

    if not isinstance(store, CampaignStore):
        store = CampaignStore.open(store)  # type: ignore[arg-type]
    campaigns_expected = store.manifest.config.campaigns
    done = {key[:2]: 0 for key in store.completed_keys()}
    for key in store.completed_keys():
        done[key[:2]] += 1
    results = store.results()
    headers = ["Benchmark", "Core", "Campaigns", "Vmin (mV)", "Crash (mV)",
               "Peak severity"]
    rows: List[List[str]] = []
    for name in store.manifest.workloads:
        for core in store.manifest.cores:
            completed = done.get((name, core), 0)
            row = [name, str(core), f"{completed}/{campaigns_expected}"]
            result = results.get((name, core))
            if result is None:
                row += ["--", "--", "--"]
            else:
                crash = result.highest_crash_mv
                severity = result.severity_by_voltage(store.manifest.weights)
                row += [
                    str(result.highest_vmin_mv),
                    "--" if crash is None else str(crash),
                    f"{max(severity.values()):.2f}" if severity else "--",
                ]
            rows.append(row)
    return headers, rows


def table4_weights() -> Tuple[List[str], List[List[str]]]:
    """Table 4: severity weights, from the live defaults."""
    headers = ["Weight", "Value"]
    weights = DEFAULT_WEIGHTS
    rows = [
        ["W_SC", str(int(weights.sc))],
        ["W_AC", str(int(weights.ac))],
        ["W_SDC", str(int(weights.sdc))],
        ["W_UE", str(int(weights.ue))],
        ["W_CE", str(int(weights.ce))],
        ["W_NO", "0"],
    ]
    return headers, rows
