"""Paper-vs-measured claim checking.

:data:`PAPER_CLAIMS` is the machine-readable list of every quantitative
claim the reproduction targets; :func:`check_claims` evaluates the
model-derived ones instantly (the measurement-derived ones are covered
by the benchmark harness and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..data.calibration import chip_calibration
from ..energy.savings import headline_savings
from ..energy.tradeoffs import figure9_ladder
from ..units import PMD_NOMINAL_MV
from ..workloads.spec2006 import benchmark as get_benchmark
from ..workloads.spec2006 import figure_benchmarks


def _worst_robust_saving_pct(chip: str) -> float:
    """Guardband saving of the most demanding figure benchmark on the
    most robust core -- the paper's per-chip minimum saving."""
    calibration = chip_calibration(chip)
    worst_vmin = max(
        calibration.robust_vmin_2400_mv(bench.stress)
        for bench in figure_benchmarks()
    )
    return round(100 * (1 - (worst_vmin / PMD_NOMINAL_MV) ** 2), 1)


@dataclass(frozen=True)
class ClaimCheck:
    """Outcome of checking one paper claim against the model."""

    claim_id: str
    description: str
    paper_value: float
    measured_value: float
    tolerance: float

    @property
    def passed(self) -> bool:
        return abs(self.measured_value - self.paper_value) <= self.tolerance


def _savings() -> Dict[str, float]:
    return headline_savings().as_percent()


#: claim id -> (description, paper value, tolerance, evaluator).
PAPER_CLAIMS: Dict[str, tuple] = {
    "abstract.energy_saving_no_perf_loss": (
        "energy saving without compromising performance (%)",
        19.4, 0.05,
        lambda: _savings()["robust_core_full_speed_pct"],
    ),
    "abstract.energy_saving_25pct_loss": (
        "energy saving at 25% performance reduction (%)",
        38.8, 0.05,
        lambda: _savings()["two_pmds_slowed_pct"],
    ),
    "s5.chip_wide_saving": (
        "chip-wide saving at the shared-plane Vmin (%)",
        12.8, 0.05,
        lambda: _savings()["chip_wide_full_speed_pct"],
    ),
    "s5.power_saving_1p2ghz": (
        "power saving with everything at 1.2 GHz / 760 mV (%)",
        69.9, 0.05,
        lambda: _savings()["all_slowed_power_pct"],
    ),
    "s5.leslie3d_robust_vmin": (
        "leslie3d safe Vmin on the most robust PMD (mV)",
        880, 0,
        lambda: chip_calibration("TTT").vmin_mv(
            4, get_benchmark("leslie3d").stress
        ),
    ),
    "s5.leslie3d_sensitive_vmin": (
        "leslie3d safe Vmin on the most sensitive PMD (mV)",
        915, 0,
        lambda: chip_calibration("TTT").vmin_mv(
            0, get_benchmark("leslie3d").stress
        ),
    ),
    "s3.guardband_ttt_pct": (
        "minimum TTT guardband saving at 2.4 GHz (%)",
        18.4, 0.05,
        lambda: _worst_robust_saving_pct("TTT"),
    ),
    "s3.guardband_tss_pct": (
        "minimum TSS guardband saving at 2.4 GHz (%)",
        15.7, 0.05,
        lambda: _worst_robust_saving_pct("TSS"),
    ),
    "fig9.step0_power_pct": (
        "Figure 9: relative power at 915 mV, all PMDs 2.4 GHz (%)",
        87.2, 0.05,
        lambda: round(100 * figure9_ladder()[1].power_rel, 1),
    ),
    "fig9.step1_power_pct": (
        "Figure 9: relative power at 900 mV, one PMD slowed (%)",
        73.8, 0.05,
        lambda: round(100 * figure9_ladder()[2].power_rel, 1),
    ),
    "fig9.step2_power_pct": (
        "Figure 9: relative power at 885 mV, two PMDs slowed (%)",
        61.2, 0.05,
        lambda: round(100 * figure9_ladder()[3].power_rel, 1),
    ),
    "fig9.step3_power_pct": (
        "Figure 9: relative power at 875 mV, three PMDs slowed (%)",
        49.8, 0.05,
        lambda: round(100 * figure9_ladder()[4].power_rel, 1),
    ),
    "fig9.step4_power_pct_figure_variant": (
        "Figure 9: relative power at 760 mV with the clock-tree term (%)",
        37.6, 0.05,
        lambda: round(
            100 * figure9_ladder(clock_tree_fraction=0.25)[-1].power_rel, 1
        ),
    ),
}


def check_claims(only: Optional[List[str]] = None) -> List[ClaimCheck]:
    """Evaluate (a subset of) the model-derived paper claims."""
    checks = []
    for claim_id, (description, paper_value, tolerance, evaluate) in sorted(
        PAPER_CLAIMS.items()
    ):
        if only is not None and claim_id not in only:
            continue
        checks.append(
            ClaimCheck(
                claim_id=claim_id,
                description=description,
                paper_value=float(paper_value),
                measured_value=float(evaluate()),
                tolerance=float(tolerance),
            )
        )
    return checks


def render_claims(checks: List[ClaimCheck]) -> str:
    """Text report of claim checks."""
    lines = []
    for check in checks:
        status = "OK  " if check.passed else "FAIL"
        lines.append(
            f"[{status}] {check.claim_id}: paper {check.paper_value:g} "
            f"vs measured {check.measured_value:g} -- {check.description}"
        )
    return "\n".join(lines)


def store_report(store: object) -> str:
    """Markdown section describing a journaled campaign store.

    The measured counterpart of the model-derived report: provenance
    from the manifest (spec digest, grid, seed) plus the per-cell grid
    summary reconstructed from the journal.
    """
    from ..store import CampaignStore
    from .tables import render_table, table_store_summary

    if not isinstance(store, CampaignStore):
        store = CampaignStore.open(store)  # type: ignore[arg-type]
    manifest = store.manifest
    done = len(store.completed_keys())
    total = len(store.expected_keys())
    chip = manifest.spec.chip
    chip_name = chip if isinstance(chip, str) else chip.name
    lines = [
        "## Measured campaign store",
        "",
        f"- chip: {chip_name} (spec digest `{manifest.spec.digest()[:12]}`)",
        f"- seed: {manifest.spec.seed}",
        f"- grid: {len(manifest.workloads)} workload(s) x "
        f"{len(manifest.cores)} core(s) x {manifest.config.campaigns} "
        f"campaign(s)",
        f"- progress: {done}/{total} tasks journaled"
        + ("" if store.is_complete() else " (resumable with `repro resume`)"),
        f"- watchdog recoveries: {store.interventions()}",
        "",
        "```",
        render_table(*table_store_summary(store)),
        "```",
    ]
    return "\n".join(lines)


def fleet_report(fleet: object) -> str:
    """Markdown section describing a fleet store, shard by shard.

    The fleet header summarizes population and progress from the fleet
    manifest; each shard then renders the same per-cell grid table a
    standalone :func:`store_report` would, so fleet and single-machine
    reports stay comparable side by side.
    """
    from ..store import FleetStore
    from .tables import render_table, table_store_summary

    if not isinstance(fleet, FleetStore):
        fleet = FleetStore.open(fleet)  # type: ignore[arg-type]
    manifest = fleet.manifest
    done = sum(
        len(store.completed_keys()) for _entry, store in fleet.shards()
    )
    total = manifest.tasks_total()
    lines = [
        "## Fleet campaign store",
        "",
        f"- shards: {len(manifest.shards)} machine(s), digest "
        f"`{fleet.fleet_digest()}`",
        f"- grid per shard: {len(manifest.workloads)} workload(s) x "
        f"{len(manifest.cores)} core(s) x {manifest.config.campaigns} "
        f"campaign(s)",
        f"- progress: {done}/{total} tasks journaled"
        + ("" if done == total else " (resumable with `repro fleet run`)"),
    ]
    for entry, store in fleet.shards():
        chip = store.manifest.spec.chip
        chip_name = chip if isinstance(chip, str) else chip.name
        state = " [compacted]" if entry.compacted else ""
        lines += [
            "",
            f"### Shard {entry.name}{state}",
            "",
            f"- chip: {chip_name} (spec digest `{entry.spec_digest[:12]}`)",
            f"- seed: {store.manifest.spec.seed}",
            f"- progress: {len(store.completed_keys())}/{entry.total} "
            f"tasks journaled",
            f"- watchdog recoveries: {store.interventions()}",
            "",
            "```",
            render_table(*table_store_summary(store)),
            "```",
        ]
    return "\n".join(lines)
