"""Durable campaign persistence: journaled stores, fleet shards, indexes.

The paper's characterization ran unattended for six months, surviving
crashes and accumulating everything into uniform CSV artifacts
(Section 2.2) -- and Section 5 frames it as something a datacenter
operator runs continuously across many machines.  This package is that
durability layer for the reproduction: a schema-versioned
(``repro-campaign/v1``), append-only journal where every completed
campaign lands as typed records under a manifest that pins the machine
spec, grid, seed material and severity weights -- plus the fleet layer
(``repro-fleet/v1``) that shards one journal per machine under an
atomically written fleet manifest, and warm in-memory indexes that
answer Vmin/severity/prediction queries without re-parsing journals.

* :class:`CampaignStore` -- create/open a store directory, append
  completed campaigns, reconstruct results, export the derived CSVs.
* :class:`CampaignManifest` -- the grid definition embedded in
  ``manifest.json``.
* :class:`StoredCampaign` -- one journal line.
* :class:`FleetStore` / :class:`FleetManifest` -- one campaign shard
  per :class:`~repro.machines.MachineSpec` with write routing,
  watermark tracking and grid-order compaction
  (:mod:`repro.store.fleet`).
* :class:`VminIndex` / :class:`SeverityIndex` /
  :class:`PredictionFeatureIndex` / :class:`StoreIndexes` /
  :class:`FleetIndexes` -- incremental query indexes, provably
  answer-identical to a full journal re-parse
  (:mod:`repro.store.index`).
* :class:`ModelStore` / :class:`ModelArtifact` -- versioned
  ``repro-model/v1`` prediction-model artifacts under the same
  manifest (:mod:`repro.store.models`), the single sanctioned
  fitted-model serialization path.

The engine checkpoints into a store as tasks finish
(``ParallelCampaignEngine.run(..., store=...)``) and resumes from one
bit-identically (``resume=True`` / ``repro resume <store>``); a fleet
run routes each machine's tasks to its shard through the same path.
The analysis and prediction layers read stores directly, so a grid can
be characterized on one box and analyzed on another -- and the
streaming prediction trainer persists its models next to the data they
were trained on.
"""

from ..errors import StoreError
from .fleet import (
    FLEET_FORMAT,
    FLEET_MANIFEST_NAME,
    SHARDS_DIR,
    FleetIndexes,
    FleetManifest,
    FleetStore,
    ShardEntry,
)
from .index import (
    INDEX_FORMAT,
    PredictionFeatureIndex,
    SeverityIndex,
    StoreIndexes,
    VminIndex,
    reparse_serialization,
)
from .journal import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    STORE_FORMAT,
    CampaignManifest,
    CampaignStore,
    TaskKey,
)
from .models import (
    MODEL_FORMAT,
    MODELS_DIR,
    ModelArtifact,
    ModelStore,
    train_set_digest,
)
from .records import StoredCampaign

__all__ = [
    "CampaignManifest",
    "CampaignStore",
    "FLEET_FORMAT",
    "FLEET_MANIFEST_NAME",
    "FleetIndexes",
    "FleetManifest",
    "FleetStore",
    "INDEX_FORMAT",
    "JOURNAL_NAME",
    "MANIFEST_NAME",
    "MODEL_FORMAT",
    "MODELS_DIR",
    "ModelArtifact",
    "ModelStore",
    "PredictionFeatureIndex",
    "SHARDS_DIR",
    "STORE_FORMAT",
    "SeverityIndex",
    "ShardEntry",
    "StoreError",
    "StoreIndexes",
    "StoredCampaign",
    "TaskKey",
    "reparse_serialization",
    "train_set_digest",
]
