"""Durable campaign persistence: the journaled store.

The paper's characterization ran unattended for six months, surviving
crashes and accumulating everything into uniform CSV artifacts
(Section 2.2).  This package is that durability layer for the
reproduction: a schema-versioned (``repro-campaign/v1``), append-only
journal where every completed campaign lands as typed records under a
manifest that pins the machine spec, grid, seed material and severity
weights.

* :class:`CampaignStore` -- create/open a store directory, append
  completed campaigns, reconstruct results, export the derived CSVs.
* :class:`CampaignManifest` -- the grid definition embedded in
  ``manifest.json``.
* :class:`StoredCampaign` -- one journal line.
* :class:`ModelStore` / :class:`ModelArtifact` -- versioned
  ``repro-model/v1`` prediction-model artifacts under the same
  manifest (:mod:`repro.store.models`), the single sanctioned
  fitted-model serialization path.

The engine checkpoints into a store as tasks finish
(``ParallelCampaignEngine.run(..., store=...)``) and resumes from one
bit-identically (``resume=True`` / ``repro resume <store>``); the
analysis and prediction layers read stores directly, so a grid can be
characterized on one box and analyzed on another -- and the streaming
prediction trainer persists its models next to the data they were
trained on.
"""

from .journal import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    STORE_FORMAT,
    CampaignManifest,
    CampaignStore,
    TaskKey,
)
from .models import (
    MODEL_FORMAT,
    MODELS_DIR,
    ModelArtifact,
    ModelStore,
    train_set_digest,
)
from .records import StoredCampaign

__all__ = [
    "CampaignManifest",
    "CampaignStore",
    "JOURNAL_NAME",
    "MANIFEST_NAME",
    "MODEL_FORMAT",
    "MODELS_DIR",
    "ModelArtifact",
    "ModelStore",
    "STORE_FORMAT",
    "StoredCampaign",
    "TaskKey",
    "train_set_digest",
]
