"""The append-only campaign journal (``repro-campaign/v1``).

A campaign store is a directory with exactly two files:

* ``manifest.json`` -- written once, atomically, when the store is
  created: the schema format tag, the full
  :class:`~repro.machines.MachineSpec` JSON (plus its content digest),
  the :class:`~repro.core.framework.FrameworkConfig`, the grid
  definition (workload names x cores), the parent seed material and
  the severity weights.  The manifest alone determines every task of
  the grid and every task's derived seed -- which is what makes a
  journal resumable bit-identically.
* ``journal.jsonl`` -- one line per completed (workload, core,
  campaign) task, appended with flush+fsync as tasks finish (see
  :class:`~repro.store.records.StoredCampaign`).  A crash mid-write
  can leave at most one truncated trailing line, which loading
  tolerates; corruption anywhere else is an error, never silently
  skipped.

The store is the single durable persistence path of the stack; the
paper's Section-2.2 CSV artifacts are *derived* from it via
:meth:`CampaignStore.export_csv`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .. import telemetry
from ..core.campaign import CampaignResult, CharacterizationResult
from ..core.framework import FrameworkConfig
from ..core.results import ResultStore
from ..core.severity import DEFAULT_WEIGHTS, SeverityWeights
from ..errors import CampaignError, ConfigurationError, StoreError
from ..machines import MachineSpec
from ..workloads import get_program
from ..workloads.benchmark import Program
from .records import StoredCampaign

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .models import ModelStore

#: Format tag of the store schema, written into every manifest.
STORE_FORMAT = "repro-campaign/v1"
MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"

#: Identity of one grid task: (benchmark name, core, campaign index).
TaskKey = Tuple[str, int, int]


@dataclasses.dataclass(frozen=True)
class CampaignManifest:
    """Everything that defines a campaign grid, JSON-round-trippable."""

    spec: MachineSpec
    config: FrameworkConfig
    #: Workload names in grid order (``"bench"`` or ``"bench/input"``).
    workloads: Tuple[str, ...]
    cores: Tuple[int, ...]
    weights: SeverityWeights = DEFAULT_WEIGHTS

    def __post_init__(self) -> None:
        if not self.workloads or not self.cores:
            raise ConfigurationError(
                "a campaign manifest needs at least one workload and one core"
            )

    def expected_keys(self) -> List[TaskKey]:
        """Every task of the grid, in reference (serial) order."""
        return [
            (name, core, campaign)
            for name in self.workloads
            for core in self.cores
            for campaign in range(1, self.config.campaigns + 1)
        ]

    def programs(self) -> List[Program]:
        """The workload names resolved back to program objects."""
        return [get_program(name) for name in self.workloads]

    # -- JSON round-trip ---------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "format": STORE_FORMAT,
            "machine_spec": self.spec.to_json_dict(),
            "spec_digest": self.spec.digest(),
            "seed": self.spec.seed,
            "config": dataclasses.asdict(self.config),
            "workloads": list(self.workloads),
            "cores": list(self.cores),
            "severity_weights": dataclasses.asdict(self.weights),
        }

    @classmethod
    def from_json_dict(
        cls,
        data: Mapping[str, Any],
        source: Optional[Union[str, Path]] = None,
    ) -> "CampaignManifest":
        """Inverse of :meth:`to_json_dict`.

        ``source`` names the manifest file (or shard path) the dict was
        read from, so integrity errors can point at the offending file.
        """
        where = "" if source is None else f" at {source}"
        fmt = data.get("format")
        if fmt != STORE_FORMAT:
            raise StoreError(
                f"unsupported campaign-store format {fmt!r}{where} "
                f"(expected {STORE_FORMAT!r})"
            )
        try:
            spec = MachineSpec.from_json_dict(data["machine_spec"])
            manifest = cls(
                spec=spec,
                config=FrameworkConfig(**dict(data["config"])),
                workloads=tuple(str(name) for name in data["workloads"]),
                cores=tuple(int(core) for core in data["cores"]),
                weights=SeverityWeights(**dict(data["severity_weights"])),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise StoreError(f"malformed store manifest{where}: {exc}")
        digest = data.get("spec_digest")
        if digest is not None and digest != spec.digest():
            raise StoreError(
                f"store manifest{where} pins spec_digest {digest}, but the "
                f"embedded machine spec digests to {spec.digest()} -- the "
                f"manifest was edited or corrupted"
            )
        return manifest


class CampaignStore:
    """A directory-backed, append-only journal of one campaign grid.

    Construct through :meth:`create` (new store) or :meth:`open`
    (existing store); the constructor itself is internal.
    """

    def __init__(self, directory: Path, manifest: CampaignManifest,
                 campaigns: List[StoredCampaign]) -> None:
        self.directory = directory
        self.manifest = manifest
        self._campaigns = campaigns
        # The grid is fixed at manifest time and appends are per-task,
        # so membership checks run off cached sets instead of rebuilding
        # the expected/completed sets O(grid) on every append.
        self._expected: Set[TaskKey] = set(manifest.expected_keys())
        self._completed: Set[TaskKey] = {c.key for c in campaigns}
        #: Byte offset to truncate the journal to before the next
        #: append, set when loading found a torn trailing line.
        self._torn_tail_bytes: Optional[int] = None
        #: Callbacks fired after every durable append (see
        #: :meth:`subscribe`); the warm query indexes hang off this.
        self._observers: List[Callable[[StoredCampaign], None]] = []

    # -- paths -------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        spec: MachineSpec,
        config: FrameworkConfig,
        workloads: Sequence[str],
        cores: Sequence[int],
        weights: SeverityWeights = DEFAULT_WEIGHTS,
    ) -> "CampaignStore":
        """Create a fresh store: directory + atomically written manifest."""
        path = Path(directory)
        if (path / MANIFEST_NAME).exists():
            raise CampaignError(
                f"campaign store already exists at {path}; open it with "
                f"CampaignStore.open (or resume it) instead of recreating"
            )
        manifest = CampaignManifest(
            spec=spec,
            config=config,
            workloads=tuple(workloads),
            cores=tuple(cores),
            weights=weights,
        )
        path.mkdir(parents=True, exist_ok=True)
        # Atomic manifest write: a crash during creation must leave
        # either no manifest (not a store) or a complete one -- never a
        # half-written file a later open would choke on.
        payload = json.dumps(manifest.to_json_dict(), indent=2, sort_keys=True)
        temp = path / (MANIFEST_NAME + ".tmp")
        temp.write_text(payload + "\n")
        os.replace(temp, path / MANIFEST_NAME)
        return cls(path, manifest, [])

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "CampaignStore":
        """Open an existing store and load its journal."""
        path = Path(directory)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise CampaignError(f"no campaign store at {path}")
        try:
            manifest_data = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt store manifest {manifest_path}: {exc}")
        manifest = CampaignManifest.from_json_dict(
            manifest_data, source=manifest_path
        )
        store = cls(path, manifest, [])
        store._campaigns = store._load_journal()
        store._completed = {c.key for c in store._campaigns}
        return store

    def _load_journal(self) -> List[StoredCampaign]:
        """Parse the journal, tolerating one truncated trailing line.

        A crash can interrupt exactly one append, so only the *last*
        line may legitimately fail to parse; a malformed line anywhere
        else means real corruption and raises.  A torn tail is noted by
        byte offset so :meth:`append_campaign` can truncate it away
        before writing -- otherwise the next append would land on the
        same line as the fragment, producing a merged line that is no
        longer last and bricks every later :meth:`open`.
        """
        if not self.journal_path.exists():
            return []
        entries = self.journal_path.read_bytes().splitlines(keepends=True)
        campaigns: List[StoredCampaign] = []
        seen: Set[TaskKey] = set()
        offset = 0
        for index, entry in enumerate(entries):
            is_last = index == len(entries) - 1
            if not entry.strip():
                offset += len(entry)
                continue
            try:
                data = json.loads(entry.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if is_last:
                    self._torn_tail_bytes = offset
                    break  # torn tail of an interrupted append
                raise StoreError(
                    f"corrupt journal line {index + 1} in "
                    f"{self.journal_path}: {exc}"
                )
            if is_last and not entry.endswith(b"\n"):
                # Parseable but unterminated: still the stub of an
                # interrupted append.  Drop it (the task simply reruns)
                # rather than let the next append share its line.
                self._torn_tail_bytes = offset
                break
            campaign = StoredCampaign.from_json_dict(data)
            if campaign.key not in self._expected:
                raise CampaignError(
                    f"journal line {index + 1} records task "
                    f"{campaign.key!r}, which is not in the manifest grid"
                )
            if campaign.key in seen:
                raise CampaignError(
                    f"journal line {index + 1} duplicates task "
                    f"{campaign.key!r}"
                )
            seen.add(campaign.key)
            campaigns.append(campaign)
            offset += len(entry)
        return campaigns

    # -- append side -------------------------------------------------------

    def append_campaign(
        self,
        result: CampaignResult,
        raw_log: str,
        seed: int,
        interventions: int,
    ) -> StoredCampaign:
        """Journal one completed campaign (flush + fsync before return)."""
        stored = StoredCampaign(
            benchmark=result.benchmark,
            core=result.core,
            campaign_index=result.campaign_index,
            seed=seed,
            freq_mhz=result.freq_mhz,
            interventions=interventions,
            raw_log=raw_log,
            records=result.records,
        )
        if stored.key not in self._expected:
            raise CampaignError(
                f"task {stored.key!r} is not part of this store's grid"
            )
        if stored.key in self._completed:
            raise CampaignError(f"task {stored.key!r} is already journaled")
        if self._torn_tail_bytes is not None:
            # Heal the crash scar first: cut the journal back to the end
            # of its last valid line so this record starts a fresh one.
            with self.journal_path.open("r+b") as handle:
                handle.truncate(self._torn_tail_bytes)
                os.fsync(handle.fileno())
            self._torn_tail_bytes = None
        line = json.dumps(stored.to_json_dict(), sort_keys=True)
        fsync_started = telemetry.clock()
        # A real span (not a point event) so trace analytics can
        # attribute the write+fsync time to the journal_append phase.
        with telemetry.span(
            "journal.append",
            trace_id=telemetry.task_trace_id(
                stored.benchmark, stored.core, stored.campaign_index
            ),
            benchmark=stored.benchmark,
            core=stored.core,
            campaign=stored.campaign_index,
            bytes=len(line) + 1,
        ):
            with self.journal_path.open("a") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        telemetry.observe(
            telemetry.M_JOURNAL_FSYNC_SECONDS, telemetry.clock() - fsync_started
        )
        telemetry.inc_counter(telemetry.M_JOURNAL_APPENDS)
        self._campaigns.append(stored)
        self._completed.add(stored.key)
        for observer in tuple(self._observers):
            observer(stored)
        return stored

    def subscribe(self, observer: Callable[[StoredCampaign], None]) -> None:
        """Call ``observer`` after every durable append.

        Observers run once the record is fsynced and accounted, so an
        incremental index updated from here can never get ahead of the
        journal.  They see appends through *this* store object only --
        another process appending to the same directory is picked up by
        re-opening (or by an index's cursor-based ``refresh``).
        """
        self._observers.append(observer)

    # -- progress ----------------------------------------------------------

    def campaigns(self) -> List[StoredCampaign]:
        """Journaled campaigns, in append order."""
        return list(self._campaigns)

    def completed_keys(self) -> Set[TaskKey]:
        return set(self._completed)

    def expected_keys(self) -> List[TaskKey]:
        return self.manifest.expected_keys()

    def pending_keys(self) -> List[TaskKey]:
        """Grid tasks not yet journaled, in reference order."""
        done = self.completed_keys()
        return [key for key in self.expected_keys() if key not in done]

    def is_complete(self) -> bool:
        return not self.pending_keys()

    def validate_run(
        self,
        spec: MachineSpec,
        config: FrameworkConfig,
        workloads: Sequence[str],
        cores: Sequence[int],
    ) -> None:
        """Reject appends/resumes under a different grid definition.

        A journal is only meaningful against the exact machine
        blueprint, configuration and grid it was recorded for; anything
        else would splice incompatible results into one store.
        """
        manifest = self.manifest
        if spec.digest() != manifest.spec.digest():
            raise CampaignError(
                "machine spec does not match the store manifest "
                "(different blueprint or seed material)"
            )
        if config != manifest.config:
            raise CampaignError(
                "framework configuration does not match the store manifest"
            )
        if tuple(workloads) != manifest.workloads:
            raise CampaignError(
                f"workload grid {tuple(workloads)!r} does not match the "
                f"store manifest {manifest.workloads!r}"
            )
        if tuple(cores) != manifest.cores:
            raise CampaignError(
                f"core grid {tuple(cores)!r} does not match the store "
                f"manifest {manifest.cores!r}"
            )

    # -- read side ---------------------------------------------------------

    def _grid(self) -> Dict[Tuple[str, int], List[StoredCampaign]]:
        """Journaled campaigns grouped by grid cell, in manifest order."""
        grid: Dict[Tuple[str, int], List[StoredCampaign]] = {}
        for campaign in self._campaigns:
            grid.setdefault((campaign.benchmark, campaign.core), []).append(
                campaign
            )
        ordered: Dict[Tuple[str, int], List[StoredCampaign]] = {}
        for name in self.manifest.workloads:
            for core in self.manifest.cores:
                cell = grid.get((name, core))
                if cell:
                    ordered[(name, core)] = sorted(
                        cell, key=lambda c: c.campaign_index
                    )
        return ordered

    def results(self) -> Dict[Tuple[str, int], CharacterizationResult]:
        """Reconstruct every *complete* grid cell, in manifest order."""
        campaigns_per_cell = self.manifest.config.campaigns
        return {
            key: CharacterizationResult(
                campaigns=tuple(c.campaign_result() for c in cell)
            )
            for key, cell in self._grid().items()
            if len(cell) == campaigns_per_cell
        }

    def result_for(self, benchmark: str, core: int) -> CharacterizationResult:
        """Reconstruct one grid cell, requiring it to be complete."""
        cell = self._grid().get((benchmark, core))
        if cell is None:
            raise CampaignError(
                f"store has no journaled campaigns for "
                f"({benchmark!r}, core {core})"
            )
        missing = self.manifest.config.campaigns - len(cell)
        if missing:
            raise CampaignError(
                f"({benchmark!r}, core {core}) is incomplete: {missing} of "
                f"{self.manifest.config.campaigns} campaigns still pending"
            )
        return CharacterizationResult(
            campaigns=tuple(c.campaign_result() for c in cell)
        )

    def raw_logs(self) -> Dict[Tuple[str, int, int, int], str]:
        """Raw campaign logs keyed like the framework's log mapping."""
        logs: Dict[Tuple[str, int, int, int], str] = {}
        for name in self.manifest.workloads:
            for core in self.manifest.cores:
                for campaign in self._grid().get((name, core), []):
                    logs[campaign.raw_log_key] = campaign.raw_log
        return logs

    def interventions(self) -> int:
        """Total watchdog recoveries across all journaled campaigns."""
        return sum(campaign.interventions for campaign in self._campaigns)

    # -- model artifacts ---------------------------------------------------

    def model_store(self) -> "ModelStore":
        """The versioned model-artifact store under this directory.

        Artifacts are bound to this store's machine-spec digest:
        loading or saving one fitted against a different spec raises.
        """
        from .models import ModelStore

        return ModelStore(
            self.directory,
            expected_spec_digest=self.manifest.spec.digest(),
        )

    # -- derived exports ---------------------------------------------------

    def export_csv(
        self, directory: Optional[Union[str, Path]] = None
    ) -> Dict[str, Path]:
        """Write the paper's Section-2.2 CSV artifacts from the journal.

        Results are emitted in manifest grid order regardless of the
        order tasks were journaled in, so an interrupted-and-resumed
        grid exports byte-identical files to an uninterrupted one.
        """
        store = ResultStore(self.directory if directory is None else directory)
        results = list(self.results().values())
        paths = {
            "runs": store.write_runs_csv(results),
            "severity": store.write_severity_csv(
                results, weights=self.manifest.weights
            ),
        }
        store.write_all_raw_logs(self.raw_logs())
        return paths
