"""Warm in-memory query indexes over campaign journals.

The fleet service answers Vmin / severity / prediction-feature queries
continuously while campaigns stream in.  Re-parsing a journal per query
is O(journal) every time; these indexes keep the answers warm instead:

* :class:`VminIndex` -- safe Vmin and crash level per completed
  (benchmark, core) grid cell.
* :class:`SeverityIndex` -- the severity-by-voltage table per completed
  grid cell, under the store manifest's pinned Table-4 weights.
* :class:`PredictionFeatureIndex` -- the training feature rows per
  completed grid cell, advanced through the *same*
  :class:`~repro.prediction.dataset.JournalBatch` cursors the streaming
  trainer consumes.

All three update incrementally -- per appended record through
:meth:`~repro.store.journal.CampaignStore.subscribe`, or in bulk
through cursor-based :meth:`refresh` -- and are **answer-identical to a
full journal re-parse** by contract: every index has a
``from_reparse`` constructor that rebuilds the same answers through the
classic read path (:meth:`CampaignStore.results` and the store-backed
dataset assemblers), and ``serialize()`` is canonical, so equality is
byte-checkable.  ``tests/test_fleet.py`` asserts it across kill-points
and shard-append interleavings.

Serializing index answers anywhere outside :mod:`repro.store` is a
reprolint RPR007 violation: the journal stays the single source of
truth, and these are *caches* of it.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from ..errors import StoreError
from .journal import CampaignManifest, CampaignStore, TaskKey
from .records import StoredCampaign

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..prediction.dataset import RegressionDataset

#: Format tag stamped into every serialized index payload.
INDEX_FORMAT = "repro-index/v1"

#: One grid cell: (benchmark name, core).
CellKey = Tuple[str, int]


def _cell_result(campaigns: List[StoredCampaign]) -> Any:
    """The in-memory aggregate of one complete grid cell.

    Campaigns sort by campaign index first, so the aggregate -- and
    every answer derived from it -- is independent of journal append
    order, which is what makes the indexes order-invariant.
    """
    from ..core.campaign import CharacterizationResult

    return CharacterizationResult(
        campaigns=tuple(
            c.campaign_result()
            for c in sorted(campaigns, key=lambda c: c.campaign_index)
        )
    )


class _CellAccumulator:
    """Shared per-cell buffering: records in, complete cells out."""

    def __init__(self, manifest: CampaignManifest) -> None:
        self.manifest = manifest
        self._needed = manifest.config.campaigns
        self._pending: Dict[CellKey, List[StoredCampaign]] = {}

    def add(self, stored: StoredCampaign) -> Optional[Tuple[CellKey, Any]]:
        """Buffer one record; returns (cell, aggregate) on completion."""
        cell = (stored.benchmark, stored.core)
        buffered = self._pending.setdefault(cell, [])
        buffered.append(stored)
        if len(buffered) < self._needed:
            return None
        del self._pending[cell]
        return cell, _cell_result(buffered)

    def ordered(self, cells: Dict[CellKey, Any]) -> Iterator[CellKey]:
        """The subset of ``cells`` present, in manifest grid order."""
        for name in self.manifest.workloads:
            for core in self.manifest.cores:
                if (name, core) in cells:
                    yield (name, core)


def _serialize(payload: Dict[str, Any]) -> str:
    """The one canonical byte form every index answer is compared in."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class VminIndex:
    """Safe Vmin / crash level per completed (benchmark, core) cell."""

    kind = "vmin"

    def __init__(self, manifest: CampaignManifest) -> None:
        self._cells = _CellAccumulator(manifest)
        self._answers: Dict[CellKey, Tuple[int, Optional[int]]] = {}

    def ingest(self, stored: StoredCampaign) -> None:
        completed = self._cells.add(stored)
        if completed is not None:
            cell, result = completed
            self._answers[cell] = (
                int(result.highest_vmin_mv),
                None
                if result.highest_crash_mv is None
                else int(result.highest_crash_mv),
            )

    # -- queries -----------------------------------------------------------

    def cells(self) -> List[CellKey]:
        """Answerable cells, in manifest grid order."""
        return list(self._cells.ordered(self._answers))

    def vmin_mv(self, benchmark: str, core: int) -> int:
        return self._answer(benchmark, core)[0]

    def crash_mv(self, benchmark: str, core: int) -> Optional[int]:
        return self._answer(benchmark, core)[1]

    def _answer(self, benchmark: str, core: int) -> Tuple[int, Optional[int]]:
        try:
            return self._answers[(benchmark, core)]
        except KeyError:
            raise StoreError(
                f"vmin index has no completed cell for "
                f"({benchmark!r}, core {core})"
            )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "format": INDEX_FORMAT,
            "kind": self.kind,
            "cells": [
                {
                    "benchmark": name,
                    "core": core,
                    "vmin_mv": self._answers[(name, core)][0],
                    "crash_mv": self._answers[(name, core)][1],
                }
                for name, core in self.cells()
            ],
        }

    def serialize(self) -> str:
        return _serialize(self.to_json_dict())

    @classmethod
    def from_reparse(cls, store: CampaignStore) -> "VminIndex":
        """The same answers through the classic full-journal read path."""
        index = cls(store.manifest)
        for (name, core), result in store.results().items():
            index._answers[(name, core)] = (
                int(result.highest_vmin_mv),
                None
                if result.highest_crash_mv is None
                else int(result.highest_crash_mv),
            )
        return index


class SeverityIndex:
    """Severity-by-voltage per completed cell, manifest-pinned weights."""

    kind = "severity"

    def __init__(self, manifest: CampaignManifest) -> None:
        self._cells = _CellAccumulator(manifest)
        self._weights = manifest.weights
        #: cell -> [(voltage_mv, severity)] descending by voltage.
        self._answers: Dict[CellKey, List[Tuple[int, float]]] = {}

    def ingest(self, stored: StoredCampaign) -> None:
        completed = self._cells.add(stored)
        if completed is not None:
            cell, result = completed
            self._answers[cell] = self._table(result)

    def _table(self, result: Any) -> List[Tuple[int, float]]:
        severity = result.severity_by_voltage(self._weights)
        return [
            (int(voltage), float(severity[voltage]))
            for voltage in sorted(severity, reverse=True)
        ]

    # -- queries -----------------------------------------------------------

    def cells(self) -> List[CellKey]:
        return list(self._cells.ordered(self._answers))

    def severity_by_voltage(self, benchmark: str, core: int) -> Dict[int, float]:
        try:
            table = self._answers[(benchmark, core)]
        except KeyError:
            raise StoreError(
                f"severity index has no completed cell for "
                f"({benchmark!r}, core {core})"
            )
        return dict(table)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "format": INDEX_FORMAT,
            "kind": self.kind,
            "cells": [
                {
                    "benchmark": name,
                    "core": core,
                    "severity": [
                        [voltage, value]
                        for voltage, value in self._answers[(name, core)]
                    ],
                }
                for name, core in self.cells()
            ],
        }

    def serialize(self) -> str:
        return _serialize(self.to_json_dict())

    @classmethod
    def from_reparse(cls, store: CampaignStore) -> "SeverityIndex":
        index = cls(store.manifest)
        for (name, core), result in store.results().items():
            index._answers[(name, core)] = index._table(result)
        return index


class PredictionFeatureIndex:
    """Training feature rows per completed cell, cursor-advanced.

    Rows come out of the *same* :func:`iter_journal_datasets` cursors
    the streaming trainer consumes -- one
    :class:`~repro.prediction.dataset.JournalBatch` per completing
    cell -- so a warm query index and a training run can never disagree
    about what the journal says.  Profiling feature vectors is a pure
    function of (spec, program) (see
    :mod:`repro.prediction.dataset`), which is what makes the rows
    append-order invariant.
    """

    kind = "features"

    def __init__(self, manifest: CampaignManifest, target: str = "vmin") -> None:
        self._manifest = manifest
        self.target = target
        #: Per-core journal cursor: one past the last cell-completing
        #: record consumed for that core.
        self._cursors: Dict[int, int] = {core: 0 for core in manifest.cores}
        self._datasets: Dict[CellKey, "RegressionDataset"] = {}

    def refresh(self, store: CampaignStore) -> int:
        """Advance every core's cursor; returns batches folded in."""
        from ..prediction.dataset import iter_journal_datasets

        folded = 0
        for core in self._manifest.cores:
            for batch in iter_journal_datasets(
                store, core, start=self._cursors[core], target=self.target
            ):
                self._datasets[(batch.benchmark, core)] = batch.dataset
                self._cursors[core] = batch.offset
                folded += 1
        return folded

    # -- queries -----------------------------------------------------------

    def cells(self) -> List[CellKey]:
        accumulator = _CellAccumulator(self._manifest)
        return list(accumulator.ordered(self._datasets))

    def rows(self, core: int) -> List[Tuple[str, Tuple[float, ...], float]]:
        """(tag, feature vector, target) rows for ``core``, grid order."""
        rows: List[Tuple[str, Tuple[float, ...], float]] = []
        for name, cell_core in self.cells():
            if cell_core != core:
                continue
            dataset = self._datasets[(name, cell_core)]
            tags = dataset.tags or tuple(
                f"{name}#{i}" for i in range(len(dataset))
            )
            for tag, x, y in zip(tags, dataset.x, dataset.y):
                rows.append((tag, tuple(float(v) for v in x), float(y)))
        return rows

    def dataset(self, core: int) -> "RegressionDataset":
        """All indexed rows of ``core`` as one dataset, grid order.

        On a complete store with ``target="vmin"`` this equals
        :func:`~repro.prediction.dataset.vmin_dataset_from_store`
        row for row.
        """
        import numpy as np

        from ..prediction.dataset import RegressionDataset

        parts = [
            self._datasets[(name, cell_core)]
            for name, cell_core in self.cells()
            if cell_core == core
        ]
        if not parts:
            raise StoreError(
                f"feature index has no completed cells for core {core}"
            )
        return RegressionDataset(
            x=np.vstack([p.x for p in parts]),
            y=np.concatenate([p.y for p in parts]),
            feature_names=parts[0].feature_names,
            tags=tuple(tag for p in parts for tag in p.tags),
        )

    def feature_names(self) -> Tuple[str, ...]:
        for dataset in self._datasets.values():
            names: Tuple[str, ...] = dataset.feature_names
            return names
        raise StoreError("feature index has no completed cells yet")

    def to_json_dict(self) -> Dict[str, Any]:
        cells = self.cells()
        payload: Dict[str, Any] = {
            "format": INDEX_FORMAT,
            "kind": self.kind,
            "target": self.target,
            "cells": [],
        }
        if cells:
            payload["feature_names"] = list(self.feature_names())
        for name, core in cells:
            dataset = self._datasets[(name, core)]
            tags = dataset.tags or tuple(
                f"{name}#{i}" for i in range(len(dataset))
            )
            payload["cells"].append(
                {
                    "benchmark": name,
                    "core": core,
                    "rows": [
                        {
                            "tag": tag,
                            "x": [float(v) for v in x],
                            "y": float(y),
                        }
                        for tag, x, y in zip(tags, dataset.x, dataset.y)
                    ],
                }
            )
        return payload

    def serialize(self) -> str:
        return _serialize(self.to_json_dict())

    @classmethod
    def from_reparse(
        cls, store: CampaignStore, target: str = "vmin"
    ) -> "PredictionFeatureIndex":
        """The same rows through a from-scratch cursor walk.

        A fresh index refreshed once over the whole journal *is* the
        re-parse path: the cursors start at zero and consume every
        record, exactly as a cold reader would.
        """
        index = cls(store.manifest, target=target)
        index.refresh(store)
        return index


class StoreIndexes:
    """The warm index bundle of one open campaign store.

    Subscribes to the store's append stream, so every journaled record
    updates the indexes before ``append_campaign`` returns; cells
    journaled before attachment are folded in by the initial
    :meth:`refresh`.  For appends made by *other* processes, re-open
    the store and build a fresh bundle (the from-reparse equivalence
    guarantees identical answers).
    """

    def __init__(
        self, store: CampaignStore, feature_target: str = "vmin"
    ) -> None:
        self.store = store
        manifest = store.manifest
        self.vmin = VminIndex(manifest)
        self.severity = SeverityIndex(manifest)
        self.features = PredictionFeatureIndex(manifest, target=feature_target)
        self._needed = manifest.config.campaigns
        self._cell_counts: Dict[CellKey, int] = {}
        self._offset = 0
        store.subscribe(self._on_append)
        self.refresh()

    def _on_append(self, stored: StoredCampaign) -> None:
        self._offset += 1
        self.vmin.ingest(stored)
        self.severity.ingest(stored)
        cell = (stored.benchmark, stored.core)
        count = self._cell_counts.get(cell, 0) + 1
        self._cell_counts[cell] = count
        if count == self._needed:
            # A record just completed its grid cell: exactly when the
            # JournalBatch cursors have a batch to emit.
            self.features.refresh(self.store)

    def refresh(self) -> int:
        """Fold in records the bundle has not seen yet; returns count."""
        pending = self.store.campaigns()[self._offset:]
        for stored in pending:
            self._on_append(stored)
        return len(pending)

    def records_indexed(self) -> int:
        return self._offset

    def serialize(self) -> str:
        """Canonical byte form of every answer the bundle serves."""
        return (
            self.vmin.serialize()
            + self.severity.serialize()
            + self.features.serialize()
        )

    @classmethod
    def from_reparse(
        cls, store: CampaignStore, feature_target: str = "vmin"
    ) -> "StoreIndexes":
        """A cold rebuild over a freshly opened store's full journal."""
        return cls(store, feature_target=feature_target)


def reparse_serialization(
    store: CampaignStore, feature_target: str = "vmin"
) -> str:
    """Every index answer recomputed through the classic read paths.

    Byte-comparable with :meth:`StoreIndexes.serialize`: equality is
    the index-equals-reparse contract, checkable by ``repro fleet
    query --json`` vs ``--json --reparse`` without trusting any index
    code path twice.
    """
    return (
        VminIndex.from_reparse(store).serialize()
        + SeverityIndex.from_reparse(store).serialize()
        + PredictionFeatureIndex.from_reparse(
            store, target=feature_target
        ).serialize()
    )


__all__ = [
    "INDEX_FORMAT",
    "CellKey",
    "PredictionFeatureIndex",
    "SeverityIndex",
    "StoreIndexes",
    "VminIndex",
    "reparse_serialization",
]
