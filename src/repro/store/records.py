"""Journal payloads of the campaign store.

One journal line is one completed campaign: the parsed
:class:`~repro.core.runs.RunRecord` set plus the provenance a resume
needs to prove bit-identity -- the derived machine seed the campaign
ran with, the watchdog intervention count and the raw log text.  The
line is self-contained on purpose; replaying a journal never requires
re-running or re-parsing anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from ..core.campaign import CampaignResult
from ..core.runs import RunRecord
from ..errors import CampaignError


@dataclass(frozen=True)
class StoredCampaign:
    """One completed (benchmark, core, campaign) task, as journaled."""

    benchmark: str
    core: int
    campaign_index: int
    #: Derived machine seed the campaign executed with (see
    #: :func:`repro.parallel.tasks.derive_task_seed`); resumes verify
    #: it against a fresh derivation before trusting the line.
    seed: int
    freq_mhz: int
    #: Watchdog recoveries performed during this campaign.
    interventions: int
    #: Raw campaign log text, so the derived CSV/log exports of a
    #: resumed grid equal those of an uninterrupted one.
    raw_log: str
    records: Tuple[RunRecord, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise CampaignError("a stored campaign needs at least one record")

    @property
    def key(self) -> Tuple[str, int, int]:
        """The (benchmark, core, campaign) task this line completes."""
        return (self.benchmark, self.core, self.campaign_index)

    @property
    def raw_log_key(self) -> Tuple[str, int, int, int]:
        """Key of the raw log in the framework's log mapping."""
        return (self.benchmark, self.core, self.freq_mhz, self.campaign_index)

    def campaign_result(self) -> CampaignResult:
        """Rebuild the in-memory campaign aggregate."""
        return CampaignResult(
            chip=self.records[0].chip,
            benchmark=self.benchmark,
            core=self.core,
            freq_mhz=self.freq_mhz,
            campaign_index=self.campaign_index,
            records=self.records,
        )

    # -- JSONL codec -------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-dict form of one journal line."""
        return {
            "benchmark": self.benchmark,
            "core": self.core,
            "campaign": self.campaign_index,
            "seed": self.seed,
            "freq_mhz": self.freq_mhz,
            "interventions": self.interventions,
            "raw_log": self.raw_log,
            "records": [record.to_json_dict() for record in self.records],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "StoredCampaign":
        """Inverse of :meth:`to_json_dict`."""
        try:
            return cls(
                benchmark=data["benchmark"],
                core=int(data["core"]),
                campaign_index=int(data["campaign"]),
                seed=int(data["seed"]),
                freq_mhz=int(data["freq_mhz"]),
                interventions=int(data["interventions"]),
                raw_log=data["raw_log"],
                records=tuple(
                    RunRecord.from_json_dict(entry)
                    for entry in data["records"]
                ),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise CampaignError(f"malformed journal campaign line: {exc}")
