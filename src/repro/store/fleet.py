"""The fleet store (``repro-fleet/v1``): one journal shard per machine.

The paper frames Vmin characterization as something a datacenter
operator runs *continuously across many machines* (Section 5); a fleet
store is the on-disk shape of that: a directory owning one
``repro-campaign/v1`` :class:`~repro.store.journal.CampaignStore`
shard per :class:`~repro.machines.MachineSpec`, under an atomically
written fleet manifest (``fleet.json``)::

    fleet-root/
      fleet.json                    <- format tag, grid, shard table
      shards/
        m00-5a3f2b1c/               <- one full repro-campaign/v1 store
          manifest.json
          journal.jsonl
        m01-9e0d4c77/
          ...

``fleet.json`` records, per shard: the machine-spec digest (the
routing key for writes), the shard path, and a completion watermark
(journaled tasks out of the grid total).  Watermarks are *derived*
state -- :meth:`FleetStore.refresh_watermarks` recomputes them from
the shard journals on disk and rewrites the manifest atomically, so
concurrent appenders in different processes converge on the same
manifest without any cross-shard locking: each shard journal has
exactly one writer, and the manifest is last-writer-wins over facts
read from disk.

Shards stay bit-identical to standalone single-machine stores: the
fleet layer adds routing, aggregation and compaction *around*
:class:`CampaignStore`, never a different write path through it.
Compaction (:meth:`FleetStore.compact`) folds healed, complete shards
into canonical grid-order journal segments -- a pure permutation of
byte-identical lines, refused while versioned model artifacts hold
live mid-journal cursors.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.framework import FrameworkConfig
from ..core.severity import DEFAULT_WEIGHTS, SeverityWeights
from ..errors import StoreError
from ..machines import MachineSpec
from .index import StoreIndexes
from .journal import JOURNAL_NAME, CampaignStore, TaskKey
from .records import StoredCampaign

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .models import ModelStore

#: Format tag of the fleet schema, written into every fleet manifest.
FLEET_FORMAT = "repro-fleet/v1"
FLEET_MANIFEST_NAME = "fleet.json"
#: Subdirectory of the fleet root holding the per-machine shards.
SHARDS_DIR = "shards"


@dataclasses.dataclass(frozen=True)
class ShardEntry:
    """One machine's row in the fleet manifest shard table."""

    #: Stable shard name, also its directory name under ``shards/``.
    name: str
    #: Digest of the shard's :class:`MachineSpec` -- the routing key.
    spec_digest: str
    #: Shard directory, relative to the fleet root.
    path: str
    #: Journaled tasks (completion watermark), out of :attr:`total`.
    watermark: int
    #: Grid size of the shard (``len(expected_keys())``).
    total: int
    #: True once :meth:`FleetStore.compact` rewrote the shard journal
    #: into canonical grid order.
    compacted: bool = False

    @property
    def complete(self) -> bool:
        return self.watermark >= self.total

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "spec_digest": self.spec_digest,
            "path": self.path,
            "watermark": self.watermark,
            "total": self.total,
            "compacted": self.compacted,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ShardEntry":
        return cls(
            name=str(data["name"]),
            spec_digest=str(data["spec_digest"]),
            path=str(data["path"]),
            watermark=int(data["watermark"]),
            total=int(data["total"]),
            compacted=bool(data.get("compacted", False)),
        )


@dataclasses.dataclass(frozen=True)
class FleetManifest:
    """Everything that defines a fleet, JSON-round-trippable.

    The grid definition (config, workloads, cores, weights) is shared
    by every shard; only the machine spec varies per shard.  Shard
    manifests re-state the grid independently, so a shard remains a
    valid standalone store even if the fleet manifest is lost.
    """

    config: FrameworkConfig
    workloads: Tuple[str, ...]
    cores: Tuple[int, ...]
    shards: Tuple[ShardEntry, ...]
    weights: SeverityWeights = DEFAULT_WEIGHTS

    def __post_init__(self) -> None:
        if not self.shards:
            raise StoreError("a fleet manifest needs at least one shard")
        digests = [shard.spec_digest for shard in self.shards]
        if len(set(digests)) != len(digests):
            raise StoreError(
                "fleet shards must have distinct machine-spec digests; "
                "duplicate specs would make write routing ambiguous"
            )

    def entry_for(self, digest: str) -> ShardEntry:
        for shard in self.shards:
            if shard.spec_digest == digest:
                return shard
        raise StoreError(
            f"no fleet shard routes machine-spec digest {digest}; known "
            f"shards: {[s.name for s in self.shards]}"
        )

    def entry_named(self, name: str) -> ShardEntry:
        for shard in self.shards:
            if shard.name == name:
                return shard
        raise StoreError(
            f"no fleet shard named {name!r}; known shards: "
            f"{[s.name for s in self.shards]}"
        )

    def tasks_total(self) -> int:
        return sum(shard.total for shard in self.shards)

    def tasks_done(self) -> int:
        return sum(shard.watermark for shard in self.shards)

    # -- JSON round-trip ---------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "format": FLEET_FORMAT,
            "config": dataclasses.asdict(self.config),
            "workloads": list(self.workloads),
            "cores": list(self.cores),
            "severity_weights": dataclasses.asdict(self.weights),
            "shards": [shard.to_json_dict() for shard in self.shards],
        }

    @classmethod
    def from_json_dict(
        cls,
        data: Mapping[str, Any],
        source: Optional[Union[str, Path]] = None,
    ) -> "FleetManifest":
        where = "" if source is None else f" at {source}"
        fmt = data.get("format")
        if fmt != FLEET_FORMAT:
            raise StoreError(
                f"unsupported fleet-store format {fmt!r}{where} "
                f"(expected {FLEET_FORMAT!r})"
            )
        try:
            return cls(
                config=FrameworkConfig(**dict(data["config"])),
                workloads=tuple(str(name) for name in data["workloads"]),
                cores=tuple(int(core) for core in data["cores"]),
                weights=SeverityWeights(**dict(data["severity_weights"])),
                shards=tuple(
                    ShardEntry.from_json_dict(entry)
                    for entry in data["shards"]
                ),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise StoreError(f"malformed fleet manifest{where}: {exc}")


class FleetStore:
    """A directory of per-machine campaign shards under one manifest.

    Construct through :meth:`create` or :meth:`open`.  Shard stores
    open lazily and are cached per fleet-store object; every shard is
    a full, standalone :class:`CampaignStore`.
    """

    def __init__(self, directory: Path, manifest: FleetManifest) -> None:
        self.directory = directory
        self.manifest = manifest
        self._stores: Dict[str, CampaignStore] = {}

    # -- paths -------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / FLEET_MANIFEST_NAME

    def shard_path(self, entry: ShardEntry) -> Path:
        return self.directory / entry.path

    def tsdb_path(self, entry: ShardEntry) -> Path:
        """Where ``--tsdb`` sampling lands for this shard (may not exist)."""
        from ..telemetry.tsdb import TSDB_NAME

        return self.shard_path(entry) / TSDB_NAME

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        specs: Sequence[MachineSpec],
        config: FrameworkConfig,
        workloads: Sequence[str],
        cores: Sequence[int],
        weights: SeverityWeights = DEFAULT_WEIGHTS,
    ) -> "FleetStore":
        """Create a fleet: one fresh shard per spec + atomic manifest.

        Shards are created *before* the fleet manifest, so a crash
        mid-create leaves either no fleet (no ``fleet.json``) or a
        complete one -- orphan shard directories without a manifest are
        not a fleet and :meth:`open` will not see them.
        """
        path = Path(directory)
        if (path / FLEET_MANIFEST_NAME).exists():
            raise StoreError(
                f"fleet store already exists at {path}; open it with "
                f"FleetStore.open instead of recreating"
            )
        if not specs:
            raise StoreError("a fleet needs at least one machine spec")
        entries: List[ShardEntry] = []
        seen: Dict[str, MachineSpec] = {}
        for position, spec in enumerate(specs):
            digest = spec.digest()
            if digest in seen:
                raise StoreError(
                    f"machine spec #{position} duplicates digest {digest}; "
                    f"every fleet shard needs a distinct spec"
                )
            seen[digest] = spec
            name = f"m{position:02d}-{digest[:8]}"
            shard_dir = Path(SHARDS_DIR) / name
            store = CampaignStore.create(
                path / shard_dir, spec, config, workloads, cores, weights
            )
            entries.append(
                ShardEntry(
                    name=name,
                    spec_digest=digest,
                    path=str(shard_dir),
                    watermark=0,
                    total=len(store.expected_keys()),
                )
            )
        manifest = FleetManifest(
            config=config,
            workloads=tuple(workloads),
            cores=tuple(cores),
            weights=weights,
            shards=tuple(entries),
        )
        fleet = cls(path, manifest)
        fleet._write_manifest()
        return fleet

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "FleetStore":
        """Open an existing fleet; shard journals load lazily."""
        path = Path(directory)
        manifest_path = path / FLEET_MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"no fleet store at {path}")
        try:
            data = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt fleet manifest {manifest_path}: {exc}")
        manifest = FleetManifest.from_json_dict(data, source=manifest_path)
        return cls(path, manifest)

    def _write_manifest(self) -> None:
        """Atomic rewrite: readers see old or new ``fleet.json``, never
        a torn one."""
        payload = json.dumps(
            self.manifest.to_json_dict(), indent=2, sort_keys=True
        )
        temp = self.manifest_path.with_name(FLEET_MANIFEST_NAME + ".tmp")
        temp.write_text(payload + "\n")
        os.replace(temp, self.manifest_path)

    # -- shard routing -----------------------------------------------------

    def shard(self, entry: ShardEntry) -> CampaignStore:
        """Open (cached) the shard store behind a manifest entry.

        The shard's own manifest must agree with the fleet entry on the
        machine-spec digest; a mismatch means the shard directory was
        swapped or edited underneath the fleet.
        """
        cached = self._stores.get(entry.spec_digest)
        if cached is not None:
            return cached
        store = CampaignStore.open(self.shard_path(entry))
        actual = store.manifest.spec.digest()
        if actual != entry.spec_digest:
            raise StoreError(
                f"fleet manifest routes digest {entry.spec_digest} to shard "
                f"{self.shard_path(entry)}, but that shard's manifest "
                f"digests to {actual} -- the shard was swapped or edited"
            )
        self._stores[entry.spec_digest] = store
        return store

    def shard_for(self, spec: MachineSpec) -> CampaignStore:
        """Route a machine spec to its shard store (the write path)."""
        return self.shard(self.manifest.entry_for(spec.digest()))

    def shard_named(self, name: str) -> CampaignStore:
        return self.shard(self.manifest.entry_named(name))

    def shards(self) -> List[Tuple[ShardEntry, CampaignStore]]:
        """Every (entry, open store) pair, in manifest order."""
        return [
            (entry, self.shard(entry)) for entry in self.manifest.shards
        ]

    # -- progress ----------------------------------------------------------

    def refresh_watermarks(self) -> FleetManifest:
        """Re-derive every watermark from disk and rewrite the manifest.

        Watermarks are facts about the shard journals, not independent
        state: each is re-read from its journal file, so concurrent
        refreshers racing on ``fleet.json`` all write manifests that
        agree with disk and the last writer wins harmlessly.
        """
        entries: List[ShardEntry] = []
        for entry in self.manifest.shards:
            fresh = CampaignStore.open(self.shard_path(entry))
            entries.append(
                dataclasses.replace(
                    entry, watermark=len(fresh.completed_keys())
                )
            )
            self._stores[entry.spec_digest] = fresh
        self.manifest = dataclasses.replace(
            self.manifest, shards=tuple(entries)
        )
        self._write_manifest()
        return self.manifest

    def is_complete(self) -> bool:
        return all(entry.complete for entry in self.manifest.shards)

    def pending_tasks(self) -> Dict[str, List[TaskKey]]:
        """Per shard name, the grid tasks not yet journaled."""
        return {
            entry.name: store.pending_keys()
            for entry, store in self.shards()
        }

    # -- warm indexes ------------------------------------------------------

    def indexes(self, feature_target: str = "vmin") -> "FleetIndexes":
        """Warm query indexes over every shard, in manifest order."""
        return FleetIndexes(self, feature_target=feature_target)

    # -- model artifacts ---------------------------------------------------

    def fleet_digest(self) -> str:
        """Content digest of the fleet's machine population.

        Hashes the shard spec digests in manifest order; fleet-trained
        model artifacts pin this the way single-store artifacts pin one
        machine-spec digest, so a model trained on one fleet cannot be
        silently served against another.
        """
        digest = hashlib.sha256()
        for entry in self.manifest.shards:
            digest.update(entry.spec_digest.encode("ascii"))
            digest.update(b"\n")
        return "fleet:" + digest.hexdigest()[:16]

    def model_store(self) -> "ModelStore":
        """The fleet-level model-artifact store (``models/`` at the
        fleet root), bound to :meth:`fleet_digest`."""
        from .models import ModelStore

        return ModelStore(
            self.directory, expected_spec_digest=self.fleet_digest()
        )

    # -- compaction --------------------------------------------------------

    def compact(self, force: bool = False) -> List[str]:
        """Fold complete shards into canonical grid-order segments.

        Journal lines re-serialize byte-identically (``json.dumps(...,
        sort_keys=True)``), so compaction is a pure permutation of the
        existing line bytes into manifest grid order -- every read-path
        answer (results, indexes, exports) is append-order invariant
        and therefore unchanged; a compacted shard re-opens as if the
        grid had run serially.

        Invariants:

        * Only *complete* shards compact; partial journals keep their
          append order so a resuming engine's view is untouched.
        * A versioned model artifact holding a live mid-journal cursor
          (``0 < journal_offset < grid total``) blocks compaction --
          reordering would silently re-train that cursor on wrong
          records -- unless ``force=True`` discards the concern.
        * The rewrite is atomic (tmp + fsync + ``os.replace``): a crash
          leaves the old or the new journal, never a mix.

        Returns the names of the shards that were rewritten.
        """
        compacted: List[str] = []
        entries: List[ShardEntry] = []
        for entry in self.manifest.shards:
            store = CampaignStore.open(self.shard_path(entry))
            self._stores[entry.spec_digest] = store
            watermark = len(store.completed_keys())
            entry = dataclasses.replace(entry, watermark=watermark)
            if entry.compacted or not store.is_complete():
                entries.append(entry)
                continue
            self._check_cursors(entry, store, force)
            by_key: Dict[TaskKey, StoredCampaign] = {
                stored.key: stored for stored in store.campaigns()
            }
            lines = [
                json.dumps(by_key[key].to_json_dict(), sort_keys=True)
                for key in store.expected_keys()
            ]
            journal = self.shard_path(entry) / JOURNAL_NAME
            temp = journal.with_name(JOURNAL_NAME + ".tmp")
            with temp.open("w") as handle:
                handle.write("\n".join(lines) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, journal)
            # The cached store object ordered its records pre-rewrite;
            # drop it so the next reader sees the canonical order.
            del self._stores[entry.spec_digest]
            entry = dataclasses.replace(entry, compacted=True)
            compacted.append(entry.name)
            entries.append(entry)
        self.manifest = dataclasses.replace(
            self.manifest, shards=tuple(entries)
        )
        self._write_manifest()
        return compacted

    def _check_cursors(
        self, entry: ShardEntry, store: CampaignStore, force: bool
    ) -> None:
        total = len(store.expected_keys())
        for artifact in store.model_store().latest_artifacts():
            if 0 < artifact.journal_offset < total and not force:
                raise StoreError(
                    f"shard {entry.name} has model artifact "
                    f"{artifact.target}/core{artifact.core} v"
                    f"{artifact.version} with live journal cursor at "
                    f"offset {artifact.journal_offset} of {total}; "
                    f"compacting would reorder records under it -- "
                    f"finish training or pass force=True"
                )

    # -- derived exports ---------------------------------------------------

    def export_csv(
        self, directory: Optional[Union[str, Path]] = None
    ) -> Dict[str, Dict[str, Path]]:
        """Per-shard Section-2.2 CSV artifacts, keyed by shard name.

        Each shard exports exactly what its standalone
        :meth:`CampaignStore.export_csv` would -- fleet aggregation
        never invents a new serialization of run data.
        """
        base = self.directory if directory is None else Path(directory)
        exports: Dict[str, Dict[str, Path]] = {}
        for entry, store in self.shards():
            exports[entry.name] = store.export_csv(Path(base) / entry.name)
        return exports


class FleetIndexes:
    """Warm :class:`StoreIndexes` bundles for every fleet shard.

    Built over freshly opened shard stores (manifest order) so the
    answers reflect disk at construction time; :meth:`refresh` folds in
    later on-disk appends by re-opening shards.  ``serialize()`` is
    canonical and shard-ordered, so warm-vs-reparse equivalence is a
    byte comparison fleet-wide.
    """

    def __init__(self, fleet: FleetStore, feature_target: str = "vmin") -> None:
        self.fleet = fleet
        self.feature_target = feature_target
        self._bundles: Dict[str, StoreIndexes] = {}
        self.refresh()

    def refresh(self) -> None:
        """Rebuild each shard bundle from the journal on disk."""
        for entry in self.fleet.manifest.shards:
            store = CampaignStore.open(self.fleet.shard_path(entry))
            self._bundles[entry.spec_digest] = StoreIndexes(
                store, feature_target=self.feature_target
            )

    def bundle(self, shard: Union[str, ShardEntry]) -> StoreIndexes:
        """The index bundle of one shard, by name or entry."""
        entry = (
            shard
            if isinstance(shard, ShardEntry)
            else self.fleet.manifest.entry_named(shard)
        )
        return self._bundles[entry.spec_digest]

    def bundles(self) -> List[Tuple[ShardEntry, StoreIndexes]]:
        return [
            (entry, self._bundles[entry.spec_digest])
            for entry in self.fleet.manifest.shards
        ]

    def serialize(self) -> str:
        """Canonical byte form of every answer across the fleet."""
        parts: List[str] = []
        for entry, bundle in self.bundles():
            parts.append(f"# shard {entry.name} spec {entry.spec_digest}\n")
            parts.append(bundle.serialize())
        return "".join(parts)

    def serialize_reparse(self) -> str:
        """The same bytes recomputed through a full journal re-parse.

        Must equal :meth:`serialize` on every fleet -- the
        index-equals-reparse contract, fleet-wide.
        """
        from .index import reparse_serialization

        parts: List[str] = []
        for entry in self.fleet.manifest.shards:
            store = CampaignStore.open(self.fleet.shard_path(entry))
            parts.append(f"# shard {entry.name} spec {entry.spec_digest}\n")
            parts.append(
                reparse_serialization(store, self.feature_target)
            )
        return "".join(parts)


__all__ = [
    "FLEET_FORMAT",
    "FLEET_MANIFEST_NAME",
    "SHARDS_DIR",
    "FleetIndexes",
    "FleetManifest",
    "FleetStore",
    "ShardEntry",
]
